#!/usr/bin/env python
"""CI smoke for the leakage-assessment daemon (`repro serve`).

Drives a real daemon subprocess through the failure modes the service
promises to survive, and exits nonzero if any promise is broken:

1. a request served over HTTP is bit-identical to the same request run
   in-process;
2. concurrent load trips admission control — the overflow submission is
   a typed 429 with a ``Retry-After`` hint, and the daemon keeps
   serving;
3. a request whose deadline expires while queued ends as a typed 504,
   never executed;
4. SIGTERM mid-load drains gracefully: the in-flight request finishes,
   queued requests end in typed ``shutdown`` states, and the exit code
   is 0;
5. the drain writes the SLO manifest (latency quantiles, rejection and
   terminal-state counters) and the request journal accounts for every
   submission exactly once;
6. ``GET /metrics?format=prometheus`` parses and agrees sample-for-
   sample with the JSON snapshot; a completed request's trace and HTML
   report are retrievable; a 429 rejection carries a request ID whose
   timeline stays queryable; the JSONL event log replays into the same
   lifecycle the live timeline recorded.

Usage: ``PYTHONPATH=src python tools/service_smoke.py [--keep DIR]``.
The manifest/journal/trace/report/prometheus artifacts land in ``DIR``
(default: a temp dir) so CI can upload them.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import prom                              # noqa: E402
from repro.obs.events import (replay_events,            # noqa: E402
                              timeline_from_events)
from repro.service.client import ServiceClient          # noqa: E402
from repro.service.errors import AdmissionRejected      # noqa: E402
from repro.service.executor import execute_assessment   # noqa: E402
from repro.service.journal import replay                # noqa: E402
from repro.service.protocol import AssessRequest        # noqa: E402

#: Gauges recomputed at scrape time — excluded from the JSON-vs-prom
#: agreement check because the two scrapes are separate HTTP calls.
VOLATILE = {"service_queue_depth", "service_inflight",
            "service_breaker_open"}

PAIR = {"mode": "pair", "rounds": 2, "client": "smoke"}
SLOW = {"mode": "population", "rounds": 2, "n_traces": 8, "seed": 2003,
        "client": "smoke"}


def check(condition, message):
    if not condition:
        raise SystemExit(f"service smoke FAILED: {message}")


def poll_until(predicate, timeout_s, message):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise SystemExit(f"service smoke FAILED: timed out waiting for "
                     f"{message}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep", type=Path, default=None,
                        help="directory for the journal/manifest artifacts")
    arguments = parser.parse_args()
    out_dir = arguments.keep or Path(tempfile.mkdtemp(prefix="svc-smoke-"))
    out_dir.mkdir(parents=True, exist_ok=True)
    journal_path = out_dir / "service-journal.jsonl"
    manifest_path = out_dir / "service-manifest.json"
    event_log_path = out_dir / "service-events.jsonl"

    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop("REPRO_FAULT_PLAN", None)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "1", "--jobs", "2", "--queue-depth", "2",
         "--chunk-size", "4", "--drain-grace", "120",
         "--journal", str(journal_path),
         "--manifest-out", str(manifest_path),
         "--event-log", str(event_log_path)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, text=True, cwd=REPO_ROOT)
    try:
        listening = json.loads(daemon.stdout.readline())
        check(listening.get("event") == "listening",
              f"bad announce line: {listening}")
        client = ServiceClient(
            f"http://{listening['host']}:{listening['port']}")

        # 1. bit-identity over the wire (with request tracing on) -----
        print("smoke: bit-identity ...", flush=True)
        detailed = client.assess_detailed(PAIR, timeout_s=300.0,
                                          trace_id="tr-smoke-identity")
        served = detailed["result"]
        local = execute_assessment(AssessRequest.from_dict(PAIR))
        check(served["trace_digest"] == local["trace_digest"],
              "HTTP result digest differs from in-process execution")
        check(detailed["trace_id"] == "tr-smoke-identity",
              f"client trace ID not honored: {detailed['trace_id']}")

        # 1b. the completed request is fully explainable --------------
        print("smoke: trace + report endpoints ...", flush=True)
        trace = client.trace(detailed["id"])
        events = [entry["event"] for entry in trace["timeline"]]
        check(events[0] == "received" and events[-1] == "terminal"
              and "started" in events,
              f"incomplete lifecycle timeline: {events}")
        check(trace.get("spans"),
              "completed request has no span tree")
        (out_dir / "request-trace.json").write_text(
            json.dumps(trace, indent=2, sort_keys=True))
        report = client.report_html(detailed["id"])
        check(report.lstrip().startswith("<!DOCTYPE html>")
              and detailed["id"] in report,
              "report.html is not a self-contained request report")
        (out_dir / "request-report.html").write_text(report)

        # 1c. prometheus exposition agrees with the JSON snapshot -----
        print("smoke: prometheus exposition ...", flush=True)
        snapshot = client.metrics()
        text = client.metrics_text()
        (out_dir / "metrics.prom").write_text(text)
        parsed = prom.parse_prometheus(text)
        check(parsed["samples"], "prometheus exposition carried no samples")
        prom.assert_snapshot_agreement(snapshot, text, ignore=VOLATILE)

        # 1d. repeat submission hits the verdict cache ----------------
        print("smoke: verdict cache ...", flush=True)
        warm = client.assess_detailed(PAIR, timeout_s=300.0,
                                      trace_id="tr-smoke-cache-hit")
        check(warm["result"]["trace_digest"] == served["trace_digest"],
              "cached verdict is not bit-identical to the cold result")
        check(warm["result"].get("verdict_cache", {}).get("hit"),
              f"repeat submission missed the verdict cache: "
              f"{warm['result'].get('verdict_cache')}")
        cache_stats = client.cache_stats()
        check(cache_stats["hits"] >= 1 and cache_stats["misses"] >= 1,
              f"cache stats did not record the hit: {cache_stats}")
        cache_samples = prom.parse_prometheus(
            client.metrics_text())["samples"]
        check(any(name == "verdict_cache_hits" and value > 0
                  for (name, _labels), value in cache_samples.items()),
              "verdict_cache_hits carried no nonzero prometheus sample")

        # 2 + 3. admission trip and queued-deadline miss --------------
        print("smoke: admission control + deadlines ...", flush=True)
        slow = client.submit(SLOW)
        poll_until(lambda: client.status(slow["id"])["state"] == "running",
                   60.0, "the slow request to start")
        doomed = client.submit(dict(PAIR, deadline_s=0.05))
        queued = client.submit(PAIR)
        try:
            client.submit(PAIR)
            check(False, "third queued submission was not rejected")
        except AdmissionRejected as error:
            check(error.http_status == 429 and error.retry_after_s >= 1.0,
                  f"untyped admission rejection: {error!r}")
            check(error.request_id is not None,
                  "429 rejection carries no request ID")
            rejected_trace = client.trace(error.request_id)
            check(rejected_trace["state"] == "rejected"
                  and rejected_trace["timeline"][-1]["event"] == "terminal",
                  f"rejected request has no timeline: {rejected_trace}")
        final_doomed = client.status(doomed["id"], wait_s=120.0)
        check(final_doomed["state"] == "timed_out"
              and final_doomed["error"]["code"] == "deadline_exceeded",
              f"queued deadline miss not typed: {final_doomed}")
        check(client.status(queued["id"], wait_s=120.0)["state"] == "done",
              "the queued request behind the load did not complete")
        check(client.status(slow["id"], wait_s=120.0)["state"] == "done",
              "the slow request did not complete")

        # 4. SIGTERM mid-load -----------------------------------------
        print("smoke: SIGTERM mid-load ...", flush=True)
        # A distinct seed: the identical payload would be a verdict-cache
        # hit and finish before SIGTERM could catch it mid-flight.
        slow2 = client.submit(dict(SLOW, seed=2004))
        poll_until(lambda: client.status(slow2["id"])["state"] == "running",
                   60.0, "the second slow request to start")
        stranded = client.submit(PAIR)
        daemon.send_signal(signal.SIGTERM)
        poll_until(lambda: client.health()["status"] == "draining",
                   30.0, "healthz to report draining")
        final = client.status(stranded["id"], wait_s=60.0)
        check(final["state"] == "shutdown"
              and final["error"]["code"] == "shutting_down"
              and final["error"]["retryable"],
              f"queued request not typed-shutdown on drain: {final}")
        stdout, stderr = daemon.communicate(timeout=300)
        check(daemon.returncode == 0,
              f"daemon exited {daemon.returncode}; stderr:\n{stderr}")
        drained = json.loads(stdout.strip().splitlines()[-1])
        check(drained.get("event") == "drained" and drained["drained"],
              f"no drained announce: {drained}")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    # 5. SLO manifest + journal accounting ----------------------------
    print("smoke: SLO manifest + journal accounting ...", flush=True)
    check(manifest_path.exists(), "drain did not write the SLO manifest")
    manifest = json.loads(manifest_path.read_text())
    metrics = manifest["metrics"]
    for name in ("service_request_seconds", "service_rejections_total",
                 "service_terminal_total", "service_goodput_traces_total"):
        check(name in metrics, f"SLO metric {name} missing from manifest")
    latency_series = metrics["service_request_seconds"]["series"]
    check(any(entry.get("p95") is not None for entry in latency_series),
          "latency quantiles missing from the manifest")

    report = replay(journal_path)
    check(report.interrupted == [],
          f"journal lost requests: interrupted={report.interrupted}")
    expected = {"done": 5, "rejected": 1, "timed_out": 1, "shutdown": 1}
    check(report.completed == expected,
          f"journal accounting {report.completed} != {expected}")
    check(report.total_submitted == sum(expected.values()),
          "journal total_submitted mismatch")

    # 6. event-log replay matches the live timeline -------------------
    print("smoke: event-log replay ...", flush=True)
    check(event_log_path.exists(), "daemon wrote no event log")
    replayed = timeline_from_events(replay_events(event_log_path),
                                    detailed["id"])
    check([entry["event"] for entry in replayed]
          == [entry["event"] for entry in trace["timeline"]],
          "event-log replay disagrees with the live timeline")

    print(f"service smoke OK: {report.total_submitted} requests, "
          f"each in exactly one terminal state "
          f"({json.dumps(report.completed, sort_keys=True)}); "
          f"artifacts in {out_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
