#!/usr/bin/env python3
"""Verify (or re-derive) the energy-model calibration.

The defaults in ``repro/energy/params.py`` were fitted once so that the
simulated DES reproduces the paper's reported operating points.  This tool
re-measures every target and reports the deviation — run it after touching
the energy models, the pipeline, or the DES code generator.

Targets (paper section in parentheses):

* unmasked average power ≈ 165 pJ/cycle             (4.3)
* XOR unit 0.3 pJ normal avg / 0.6 pJ secure const  (4.2)
* policy ratios ≈ 1.134 / 1.371 / 1.800             (4.3)
* masking-overhead saving ≈ 0.83                    (abstract)
* single 1 pF wire at 2.5 V = 6.25 pJ/event         (4.2)

Usage:  python tools/calibrate_energy.py [--rounds 16]
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.energy.models import FunctionalUnitModel  # noqa: E402
from repro.energy.params import (DEFAULT_PARAMS,  # noqa: E402
                                 single_wire_event_energy)
from repro.harness.sweeps import measure_policies  # noqa: E402

PAPER = {
    "average_pj": 165.0,
    "xor_normal": 0.3,
    "xor_secure": 0.6,
    "ratio_selective": 52.6 / 46.4,
    "ratio_naive": 63.6 / 46.4,
    "ratio_all": 83.5 / 46.4,
    "saving": 1 - (52.6 - 46.4) / (83.5 - 46.4),
    "wire_event": 6.25,
}


def check(name: str, measured: float, target: float,
          tolerance: float) -> bool:
    deviation = abs(measured - target) / target
    status = "OK " if deviation <= tolerance else "FAIL"
    print(f"  [{status}] {name:<28} measured={measured:9.4f} "
          f"target={target:9.4f} ({deviation:+.1%}, tol {tolerance:.0%})")
    return deviation <= tolerance


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--rounds", type=int, default=16)
    arguments = parser.parse_args()
    params = DEFAULT_PARAMS
    results = []

    print("single-wire convention:")
    results.append(check("1pF @ 2.5V pJ/event",
                         single_wire_event_energy(1.0, 2.5),
                         PAPER["wire_event"], 0.001))

    print("XOR functional unit:")
    unit = FunctionalUnitModel(params.event_energy_xor_static,
                               params.event_energy_xor, params.width)
    rng = np.random.default_rng(7)
    operands = rng.integers(0, 1 << 32, size=(8192, 2), dtype=np.uint64)
    normal = np.mean([unit.execute(int(a), int(b), int(a) ^ int(b), False)
                      for a, b in operands])
    unit.reset()
    secure = unit.execute(0x1234, 0x5678, 0x1234 ^ 0x5678, True)
    results.append(check("normal average pJ", float(normal),
                         PAPER["xor_normal"], 0.05))
    results.append(check("secure constant pJ", float(secure),
                         PAPER["xor_secure"], 0.001))

    print(f"DES policy comparison ({arguments.rounds} rounds):")
    totals = measure_policies(params, rounds=arguments.rounds)
    base = totals["none"]
    # Average power needs cycles; re-derive from a run.
    from repro.harness.runner import des_run
    from repro.programs.des_source import DesProgramSpec
    from repro.programs.workloads import compile_des

    run = des_run(compile_des(DesProgramSpec(rounds=arguments.rounds),
                              masking="none").program,
                  0x133457799BBCDFF1, 0x0123456789ABCDEF, params=params)
    results.append(check("average pJ/cycle", run.average_pj,
                         PAPER["average_pj"], 0.05))
    results.append(check("ratio selective", totals["selective"] / base,
                         PAPER["ratio_selective"], 0.05))
    results.append(check("ratio all-loads-stores",
                         totals["all-loads-stores"] / base,
                         PAPER["ratio_naive"], 0.05))
    results.append(check("ratio all", totals["all"] / base,
                         PAPER["ratio_all"], 0.05))
    saving = 1 - (totals["selective"] - base) / (totals["all"] - base)
    results.append(check("overhead saving", saving, PAPER["saving"], 0.08))

    print()
    if all(results):
        print("calibration VERIFIED: all targets within tolerance")
        return 0
    print("calibration DRIFTED: re-fit repro/energy/params.py "
          "(see the sweep helpers in repro.harness.sweeps)")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
