#!/usr/bin/env python3
"""Regenerate every experiment and archive the results.

Produces, under the output directory:

* ``<experiment-id>.json`` — full result (summary + series) per experiment;
* ``summary.csv``          — long-format (experiment, key, value) table;
* ``SUMMARY.txt``          — the human-readable report.

This is the script behind EXPERIMENTS.md: run it after any change to the
energy model, compiler, or workloads and diff the outputs.

Usage:
    python tools/collect_results.py -o results/ [--only fig6,tab1]
    python tools/collect_results.py --fast    # skip the slowest (dpa, noise)
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.experiments import EXPERIMENTS, run_experiment  # noqa: E402
from repro.harness.io import save_experiment_json, save_summary_csv  # noqa: E402

#: Experiments that take minutes rather than seconds.
SLOW = {"dpa", "ext-noise", "ext-sensitivity"}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("-o", "--output", default="results")
    parser.add_argument("--only",
                        help="comma-separated experiment ids to run")
    parser.add_argument("--fast", action="store_true",
                        help=f"skip the slow experiments ({sorted(SLOW)})")
    arguments = parser.parse_args()

    if arguments.only:
        selected = arguments.only.split(",")
        unknown = [e for e in selected if e not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiments: {unknown}")
    else:
        selected = sorted(EXPERIMENTS)
        if arguments.fast:
            selected = [e for e in selected if e not in SLOW]

    output_dir = Path(arguments.output)
    output_dir.mkdir(parents=True, exist_ok=True)
    results = []
    report_lines = []
    for experiment_id in selected:
        started = time.time()
        print(f"[{experiment_id}] running...", flush=True)
        result = run_experiment(experiment_id)
        elapsed = time.time() - started
        results.append(result)
        save_experiment_json(result,
                             output_dir / f"{experiment_id}.json",
                             include_series=True)
        report_lines.append(f"[{result.experiment_id}] {result.title} "
                            f"({elapsed:.1f}s)")
        for key, value in result.summary.items():
            formatted = f"{value:,.4f}" if isinstance(value, float) \
                else str(value)
            report_lines.append(f"    {key:<42} {formatted}")
        if result.notes:
            report_lines.append(f"    note: {result.notes}")
        report_lines.append("")
        print(f"[{experiment_id}] done in {elapsed:.1f}s")

    save_summary_csv(results, output_dir / "summary.csv")
    (output_dir / "SUMMARY.txt").write_text("\n".join(report_lines))
    print(f"\nwrote {len(results)} experiments to {output_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
