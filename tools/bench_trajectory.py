#!/usr/bin/env python3
"""Benchmark the toolchain's wall-time trajectory and police regressions.

Times the same workloads as ``benchmarks/test_perf_simulator.py`` —
compile, assemble, cycle-accurate simulation with energy, the functional
interpreter, and the 16-trace parallel collection — with plain
``perf_counter`` (no pytest-benchmark dependency), then:

* writes ``BENCH_<sha>.json`` through the observability manifest writer,
  so every CI run leaves a machine-readable performance record next to
  its provenance (toolchain fingerprint, platform, config);
* compares against the committed ``benchmarks/baseline.json`` and exits
  non-zero when any benchmark regresses more than ``--max-regress``
  (default 25 %) in *calibrated* wall time.

Cross-machine calibration: the baseline records how long a fixed
pure-Python spin loop took on the machine that produced it.  Measured
times are scaled by ``baseline_spin / current_spin`` — clamped to
[0.5, 3.0] so a wildly different host can never hide (or fake) a real
regression — before the comparison.

Usage:
    python tools/bench_trajectory.py                      # compare + BENCH json
    python tools/bench_trajectory.py --update-baseline    # re-pin the baseline
    python tools/bench_trajectory.py --out artifacts/ --max-regress 0.25
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro.obs.streaming import WelchTAccumulator  # noqa: E402
from repro.attacks.dpa import collect_traces, random_plaintexts  # noqa: E402
from repro.harness.runner import des_run  # noqa: E402
from repro.machine.fastpath import ensure_schedule  # noqa: E402
from repro.isa.assembler import assemble  # noqa: E402
from repro.lang.compiler import compile_source  # noqa: E402
from repro.machine.interpreter import run_functional  # noqa: E402
from repro.programs.des_source import DesProgramSpec, des_source  # noqa: E402
from repro.programs.workloads import (compile_des, key_words,  # noqa: E402
                                      plaintext_words)

KEY = 0x133457799BBCDFF1
PT = 0x0123456789ABCDEF

BASELINE_SCHEMA = "repro.bench.baseline/v5"
CALIBRATION_CLAMP = (0.5, 3.0)
#: Cycles in the round-1 DES workload; turns simulate walls into
#: simulated-cycles-per-second for the engine throughput gate.
ROUND1_CYCLES = 18_432
#: Traces in the DPA batch benches (the vector engine's headline shape).
BATCH_TRACES = 16
#: The vector engine must collect a 16-trace DPA batch at least this many
#: times faster than serial fast-replay collection.  Calibration-free:
#: both sides of the ratio run on the same host in the same process.
VECTOR_SPEEDUP_MIN = 5.0
#: Dispatching a 16-task batch through the warm shared pool must beat
#: per-chunk pool creation (fork + warm-up + teardown, the pre-pool cost
#: of every chunk) by at least this factor.  Calibration-free ratio.
WARM_DISPATCH_MIN = 5.0
#: Traces folded through the streaming Welch-t accumulator per bench
#: round, at round-1 trace width; gates the campaign-statistics hot loop.
STREAM_TRACES = 256
#: Repeat submissions sampled for the verdict-cache-hit latency p50.
CACHE_HIT_SAMPLES = 15
#: Baselines below this are too small for a relative wall-time budget —
#: scheduler jitter alone exceeds 25% of a sub-5ms measurement.  Such
#: benches are recorded but gated only by the ratio floors
#: (warm_dispatch_speedup) or their own internal assertions
#: (verdict-cache hit counting).
NOISE_FLOOR_S = 0.005


def _spin() -> float:
    """Fixed pure-Python workload; measures this host's interpreter speed."""
    start = time.perf_counter()
    accumulator = 0
    for i in range(2_000_000):
        accumulator ^= (i * 2654435761) & 0xFFFF_FFFF
    if accumulator < 0:  # pragma: no cover - keeps the loop un-elidable
        print(accumulator)
    return time.perf_counter() - start


def _noop() -> None:
    """Pool-dispatch payload: measures dispatch overhead, not work."""


def _best_of(function, rounds: int) -> float:
    return min(_timed(function) for _ in range(rounds))


def _timed(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def run_benches(rounds: int) -> dict[str, float]:
    """Wall seconds per benchmark, best-of-``rounds`` (parallel: 1 round)."""
    source = des_source(DesProgramSpec(rounds=1))
    assembly = compile_source(source, masking="selective").assembly
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program
    inputs = {"key": key_words(KEY), "plaintext": plaintext_words(PT)}
    plaintexts = random_plaintexts(16)
    jobs = 4 if _usable_cores() >= 4 else 2
    ensure_schedule(program)  # record once so the replay bench is warm
    benches = {
        "compile_des_round1":
            lambda: compile_source(source, masking="selective"),
        "assemble_des_round1": lambda: assemble(assembly),
        "simulate_with_energy":
            lambda: des_run(program, KEY, PT, engine="reference"),
        "simulate_fast_replay":
            lambda: des_run(program, KEY, PT, engine="fast"),
        "simulate_vector_replay":
            lambda: des_run(program, KEY, PT, engine="vector"),
        "functional_interpreter":
            lambda: run_functional(program, inputs=inputs),
    }
    results = {name: _best_of(fn, rounds) for name, fn in benches.items()}
    results["parallel_traces_16"] = _timed(
        lambda: collect_traces(program, KEY, plaintexts, jobs=jobs))
    # Batch collection, serial fast replay vs one vector pass — the pair
    # behind the vector_speedup gate (both warm: schedule recorded above,
    # vector plan compiled by the simulate_vector_replay rounds).
    results["batch16_fast_serial"] = _best_of(
        lambda: collect_traces(program, KEY, plaintexts, engine="fast"),
        rounds)
    results["batch16_vector"] = _best_of(
        lambda: collect_traces(program, KEY, plaintexts, engine="vector"),
        rounds)
    # Streaming-accumulator throughput: fold a synthetic two-group
    # campaign (round-1 trace width) through the Welch-t accumulator —
    # the per-trace hot loop of every O(1)-memory campaign.
    rows = np.random.default_rng(7).normal(
        100.0, 5.0, size=(STREAM_TRACES, ROUND1_CYCLES))

    def stream_welch():
        accumulator = WelchTAccumulator()
        for index in range(STREAM_TRACES):
            accumulator.update(rows[index], index & 1)
        accumulator.t_statistic(definite_leaks=True)

    results["streaming_welch_256"] = _best_of(stream_welch, rounds)
    # Per-chunk dispatch overhead, cold vs warm: the cold side is what
    # every chunk paid before the shared pool existed (fork two workers,
    # push 16 no-op tasks, tear the pool down); the warm side leases the
    # persistent pool for the same 16-task batch.
    from concurrent.futures import ProcessPoolExecutor

    from repro.harness import pool as harness_pool

    def dispatch_cold():
        with ProcessPoolExecutor(max_workers=2) as executor:
            for future in [executor.submit(_noop)
                           for _ in range(BATCH_TRACES)]:
                future.result()

    def dispatch_warm():
        lease = harness_pool.acquire_lease(2)
        try:
            for future in [lease.submit(_noop)
                           for _ in range(BATCH_TRACES)]:
                future.result()
        finally:
            lease.release()

    harness_pool.reset_shared_pool()
    dispatch_warm()  # pre-warm: fork + initialize the shared generation
    results["dispatch16_warm"] = _best_of(dispatch_warm, rounds)
    results["dispatch16_cold"] = _best_of(dispatch_cold, rounds)
    harness_pool.reset_shared_pool()
    # Verdict-cache hit latency: repeat submissions of one identical
    # request against an in-process service; after the cold fill every
    # sample is a cache hit — submission-to-terminal, p50.
    results["verdict_cache_hit_p50"] = _bench_verdict_cache_hit()
    return results


def _bench_verdict_cache_hit() -> float:
    from repro.service.core import LeakageService, ServiceConfig

    payload = {"mode": "pair", "rounds": 1, "client": "bench"}
    service = LeakageService(ServiceConfig(workers=1))
    try:
        cold = service.submit(payload)
        assert cold.wait(300.0) and cold.state == "done", cold.state
        samples = []
        for _ in range(CACHE_HIT_SAMPLES):
            start = time.perf_counter()
            record = service.submit(payload)
            assert record.wait(60.0) and record.state == "done"
            samples.append(time.perf_counter() - start)
        hits = service.verdict_cache_stats()["hits"]
        assert hits >= CACHE_HIT_SAMPLES, \
            f"expected every sample to hit the cache, got {hits}"
        return statistics.median(samples)
    finally:
        service.drain(grace_s=10.0)


def cycles_per_second(measured: dict[str, float]) -> dict[str, float]:
    """Simulated-cycles-per-second per engine, from the simulate benches."""
    return {
        "reference": ROUND1_CYCLES / measured["simulate_with_energy"],
        "fast": ROUND1_CYCLES / measured["simulate_fast_replay"],
        "vector": ROUND1_CYCLES / measured["simulate_vector_replay"],
    }


def vector_speedup(measured: dict[str, float]) -> float:
    """Traces-per-second ratio of the vector batch over serial fast."""
    return measured["batch16_fast_serial"] / measured["batch16_vector"]


def warm_dispatch_speedup(measured: dict[str, float]) -> float:
    """How much cheaper a 16-task dispatch is warm than cold."""
    return measured["dispatch16_cold"] / measured["dispatch16_warm"]


def streaming_traces_per_second(measured: dict[str, float]) -> float:
    """Accumulator fold rate of the streaming Welch-t campaign loop."""
    return STREAM_TRACES / measured["streaming_welch_256"]


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _head_sha() -> str:
    sha = os.environ.get("GITHUB_SHA", "")
    if not sha:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "HEAD"], capture_output=True,
                text=True, check=True,
                cwd=Path(__file__).resolve().parent).stdout.strip()
        except (OSError, subprocess.CalledProcessError):
            sha = "unknown"
    return sha[:12] or "unknown"


def compare(measured: dict[str, float], baseline: dict,
            max_regress: float) -> tuple[list[str], dict[str, dict]]:
    """Calibrated comparison; returns (failure lines, per-bench record)."""
    spin = statistics.median(_spin() for _ in range(3))
    factor = baseline["calibration_s"] / spin
    low, high = CALIBRATION_CLAMP
    factor = max(low, min(high, factor))
    failures, record = [], {}
    for name, wall in sorted(measured.items()):
        reference = baseline["benches"].get(name)
        entry = {"wall_s": round(wall, 4),
                 "calibrated_s": round(wall * factor, 4)}
        if reference is not None and reference < NOISE_FLOOR_S:
            entry["baseline_s"] = reference
            entry["gated"] = False
        elif reference is not None:
            delta = wall * factor / reference - 1.0
            entry["baseline_s"] = reference
            entry["regress"] = round(delta, 4)
            entry["passed"] = delta <= max_regress
            if not entry["passed"]:
                failures.append(
                    f"  {name}: {wall:.3f}s (calibrated "
                    f"{wall * factor:.3f}s) vs baseline {reference:.3f}s "
                    f"= {delta:+.1%} (budget {max_regress:+.0%})")
        record[name] = entry
    # Engine throughput gate: calibrated simulated-cycles-per-second may
    # not drop more than the budget below the pinned baseline.
    for engine, cps in sorted(cycles_per_second(measured).items()):
        pinned = baseline.get("cycles_per_s", {}).get(engine)
        calibrated = cps / factor
        entry = {"cycles_per_s": round(cps, 1),
                 "calibrated_cycles_per_s": round(calibrated, 1)}
        if pinned is not None:
            delta = 1.0 - calibrated / pinned
            entry["baseline_cycles_per_s"] = pinned
            entry["regress"] = round(delta, 4)
            entry["passed"] = delta <= max_regress
            if not entry["passed"]:
                failures.append(
                    f"  cycles_per_s[{engine}]: {cps:,.0f} (calibrated "
                    f"{calibrated:,.0f}) vs baseline {pinned:,.0f} "
                    f"= {-delta:+.1%} (budget -{max_regress:.0%})")
        record[f"_cycles_per_s.{engine}"] = entry
    # Streaming-accumulator throughput gate, same calibrated shape.
    stream_tps = streaming_traces_per_second(measured)
    pinned = baseline.get("streaming_traces_per_s")
    calibrated = stream_tps / factor
    entry = {"traces_per_s": round(stream_tps, 1),
             "calibrated_traces_per_s": round(calibrated, 1)}
    if pinned is not None:
        delta = 1.0 - calibrated / pinned
        entry["baseline_traces_per_s"] = pinned
        entry["regress"] = round(delta, 4)
        entry["passed"] = delta <= max_regress
        if not entry["passed"]:
            failures.append(
                f"  streaming_traces_per_s: {stream_tps:,.0f} (calibrated "
                f"{calibrated:,.0f}) vs baseline {pinned:,.0f} "
                f"= {-delta:+.1%} (budget -{max_regress:.0%})")
    record["_streaming_traces_per_s"] = entry
    # Vector batch-throughput gate: the ratio is host-independent, so no
    # calibration is applied and no regression budget softens it.
    speedup = vector_speedup(measured)
    floor = baseline.get("vector_speedup_min", VECTOR_SPEEDUP_MIN)
    entry = {"speedup": round(speedup, 2), "min": floor,
             "passed": speedup >= floor}
    if not entry["passed"]:
        failures.append(
            f"  vector_speedup: {speedup:.2f}x over serial fast replay "
            f"on a {BATCH_TRACES}-trace batch (floor {floor:.1f}x)")
    record["_vector_speedup"] = entry
    # Warm-pool dispatch gate: same calibration-free shape — both sides
    # of the ratio ran back-to-back in this process on this host.
    dispatch = warm_dispatch_speedup(measured)
    floor = baseline.get("warm_dispatch_min", WARM_DISPATCH_MIN)
    entry = {"speedup": round(dispatch, 2), "min": floor,
             "passed": dispatch >= floor}
    pinned = baseline.get("warm_dispatch_speedup")
    if pinned is not None:
        delta = 1.0 - dispatch / pinned
        entry["baseline_speedup"] = pinned
        entry["regress"] = round(delta, 4)
        entry["passed"] = entry["passed"] and delta <= max_regress
    if not entry["passed"]:
        failures.append(
            f"  warm_dispatch_speedup: {dispatch:.2f}x over per-chunk "
            f"pool creation on a {BATCH_TRACES}-task batch "
            f"(floor {floor:.1f}x, baseline "
            f"{pinned if pinned is not None else 'unpinned'}, "
            f"budget -{max_regress:.0%})")
    record["_warm_dispatch_speedup"] = entry
    record["_calibration"] = {"spin_s": round(spin, 4),
                              "baseline_spin_s": baseline["calibration_s"],
                              "factor": round(factor, 4)}
    return failures, record


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    root = Path(__file__).resolve().parent.parent
    parser.add_argument("--baseline", type=Path,
                        default=root / "benchmarks" / "baseline.json")
    parser.add_argument("--out", type=Path, default=Path("."),
                        help="directory for BENCH_<sha>.json")
    parser.add_argument("--max-regress", type=float, default=0.25,
                        help="tolerated fractional wall-time regression")
    parser.add_argument("--rounds", type=int, default=3,
                        help="best-of rounds per benchmark")
    parser.add_argument("--update-baseline", action="store_true",
                        help="re-pin the baseline instead of comparing")
    arguments = parser.parse_args()

    measured = run_benches(arguments.rounds)
    for name, wall in sorted(measured.items()):
        print(f"{name:28s} {wall:8.3f}s")
    throughput = cycles_per_second(measured)
    for engine, cps in sorted(throughput.items()):
        print(f"cycles_per_s[{engine}]{'':>{max(0, 9 - len(engine))}s} "
              f"{cps:>12,.0f}")
    print(f"vector_speedup {vector_speedup(measured):17.2f}x "
          f"(floor {VECTOR_SPEEDUP_MIN:.1f}x)")
    print(f"warm_dispatch_speedup {warm_dispatch_speedup(measured):10.2f}x "
          f"(floor {WARM_DISPATCH_MIN:.1f}x)")
    print(f"streaming_traces_per_s "
          f"{streaming_traces_per_second(measured):9,.0f}")

    if arguments.update_baseline:
        spin = statistics.median(_spin() for _ in range(3))
        arguments.baseline.write_text(json.dumps(
            {"schema": BASELINE_SCHEMA, "calibration_s": round(spin, 4),
             "max_regress": arguments.max_regress,
             "benches": {k: round(v, 4) for k, v in sorted(
                 measured.items())},
             "cycles_per_s": {k: round(v, 1) for k, v in sorted(
                 throughput.items())},
             "vector_speedup": round(vector_speedup(measured), 2),
             "vector_speedup_min": VECTOR_SPEEDUP_MIN,
             "warm_dispatch_speedup": round(
                 warm_dispatch_speedup(measured), 2),
             "warm_dispatch_min": WARM_DISPATCH_MIN,
             "streaming_traces_per_s": round(
                 streaming_traces_per_second(measured), 1)},
            indent=2) + "\n")
        print(f"baseline pinned -> {arguments.baseline}")
        return 0

    baseline = json.loads(arguments.baseline.read_text())
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(f"unrecognized baseline schema in {arguments.baseline}",
              file=sys.stderr)
        return 2
    failures, record = compare(measured, baseline, arguments.max_regress)

    sha = _head_sha()
    manifest = obs.build_manifest(
        experiment_id="bench-trajectory",
        config={"sha": sha, "rounds": arguments.rounds,
                "max_regress": arguments.max_regress,
                "cores": _usable_cores(),
                "calibration": record["_calibration"]},
        summary={name: entry["wall_s"] for name, entry in record.items()
                 if not name.startswith("_")})
    manifest["benches"] = record
    manifest["passed"] = not failures
    out = obs.write_manifest(manifest, arguments.out / f"BENCH_{sha}.json")
    print(f"trajectory record -> {out} "
          f"(calibration factor {record['_calibration']['factor']})")

    if failures:
        print(f"\nFAIL: wall-time regression beyond "
              f"{arguments.max_regress:.0%}:", file=sys.stderr)
        print("\n".join(failures), file=sys.stderr)
        return 1
    print("PASS: all benchmarks within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
