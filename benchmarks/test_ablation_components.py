"""Ablation — which datapath components carry the key-dependent leakage.

Paper Section 1: "the processor datapath and buses exhibit more
data-dependent energy variation as compared to memory components", and
Section 4.3: "We focus only on the processor and buses in this work, as
memory power consumption is largely data-independent."
"""

from conftest import run_once

from repro.harness.experiments import ablation_components


def test_leakage_lives_in_datapath_and_buses(benchmark, record_experiment):
    result = run_once(benchmark, ablation_components)
    record_experiment(result)

    summary = result.summary
    leaky = summary["leak_latches_pj"] + summary["leak_dbus_pj"] \
        + summary["leak_funits_pj"]
    # Datapath latches, buses and functional units carry the leak...
    assert leaky > 0
    # ...while the memory array, register file, clock and instruction bus
    # are data-independent by construction.
    assert summary["leak_memport_pj"] == 0.0
    assert summary["leak_regfile_pj"] == 0.0
    assert summary["leak_clock_pj"] == 0.0
    assert summary["leak_ibus_pj"] == 0.0
    assert summary["dominant_component"] in ("latches", "dbus", "funits")
