"""DPA experiment — the attack the paper defends against.

The paper motivates the design with Kocher/Goubin DPA (Section 1: partition
~1000 traces by a predicted intermediate bit; a mean difference confirms the
guess).  The simulator is noiseless, so ~100 traces suffice: DPA recovers
the round-1 subkey chunk from the unmasked device and finds *exactly
nothing* (all-zero differentials) on the masked one.
"""

from conftest import run_once

from repro.harness.experiments import dpa_experiment


def test_dpa_breaks_unmasked_fails_masked(benchmark, record_experiment):
    result = run_once(benchmark, dpa_experiment, n_traces=100)
    record_experiment(result)

    summary = result.summary
    # Unmasked: the true subkey wins (rank 0) with a clear margin.
    assert summary["unmasked_rank_of_true"] == 0
    assert summary["unmasked_margin"] > 1.2
    assert summary["unmasked_peak_pj"] > 1.0
    assert summary["unmasked_succeeded"]
    # Masked: every guess's differential is zero to float round-off —
    # there is no signal, so no guess is distinguished.
    assert summary["masked_peak_pj"] < 1e-6
    assert not summary["masked_succeeded"]
    # CPA (Hamming-weight correlation) agrees: perfect recovery unmasked,
    # zero correlation masked.
    assert summary["unmasked_cpa_succeeded"]
    assert summary["unmasked_cpa_peak_rho"] > 0.5
    assert summary["masked_cpa_peak_rho"] < 1e-6
    assert not summary["masked_cpa_succeeded"]
    # Full K1 falls to the same trace set: at least 7 of the 8 S-box
    # subkey chunks rank first (48 key bits; the rest brute-force).
    assert summary["unmasked_boxes_recovered_of_8"] >= 7
