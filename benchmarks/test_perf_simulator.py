"""Simulator performance benchmarks (real pytest-benchmark timing).

Unlike the experiment benchmarks (one-shot reproductions), these measure
the toolchain's own throughput so performance regressions are visible:
compilation, assembly, cycle-accurate simulation with energy, the
functional interpreter, and the batch engine's parallel trace collection.
"""

import os
import time

import numpy as np
import pytest

from repro.attacks.dpa import collect_traces, random_plaintexts
from repro.harness.runner import des_run
from repro.isa.assembler import assemble
from repro.lang.compiler import compile_source
from repro.machine.cpu import run_to_halt
from repro.machine.interpreter import run_functional
from repro.programs.des_source import DesProgramSpec, des_source
from repro.programs.workloads import compile_des, key_words, plaintext_words

KEY = 0x133457799BBCDFF1
PT = 0x0123456789ABCDEF


@pytest.fixture(scope="module")
def round1_source():
    return des_source(DesProgramSpec(rounds=1))


@pytest.fixture(scope="module")
def round1_program():
    return compile_des(DesProgramSpec(rounds=1), masking="selective").program


@pytest.fixture(scope="module")
def des_inputs():
    return {"key": key_words(KEY), "plaintext": plaintext_words(PT)}


def test_compile_des_round1(benchmark, round1_source):
    result = benchmark.pedantic(
        lambda: compile_source(round1_source, masking="selective"),
        rounds=3, iterations=1)
    assert len(result.program.text) > 500


def test_assemble_des_round1(benchmark, round1_source):
    assembly = compile_source(round1_source, masking="selective").assembly
    program = benchmark.pedantic(lambda: assemble(assembly),
                                 rounds=3, iterations=1)
    assert len(program.text) > 500


def test_simulate_with_energy(benchmark, round1_program):
    run = benchmark.pedantic(
        lambda: des_run(round1_program, KEY, PT, engine="reference"),
        rounds=3, iterations=1)
    assert run.cycles > 10_000
    # Throughput floor: the cycle-accurate loop should stay usable.
    cycles_per_second = run.cycles / benchmark.stats.stats.mean
    assert cycles_per_second > 10_000


def test_simulate_fast_replay(benchmark, round1_program):
    """Schedule-replay engine: same workload, warm schedule cache.

    Asserts the tentpole's speedup floor in-process (fast vs reference on
    this host), which is robust to absolute machine speed.
    """
    from repro.machine.fastpath import ensure_schedule

    assert ensure_schedule(round1_program)

    reference_s = min(
        _timed(lambda: des_run(round1_program, KEY, PT, engine="reference"))
        for _ in range(3))
    run = benchmark.pedantic(
        lambda: des_run(round1_program, KEY, PT, engine="fast"),
        rounds=3, iterations=1)
    fast_s = benchmark.stats.stats.min
    assert run.engine == "fast"
    assert run.cycles > 10_000
    speedup = reference_s / fast_s
    print(f"\nschedule replay: reference {reference_s:.3f}s, "
          f"fast {fast_s:.3f}s, speedup {speedup:.2f}x")
    assert speedup >= 3.0


def _timed(function):
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def test_simulate_without_energy(benchmark, round1_program, des_inputs):
    cpu = benchmark.pedantic(
        lambda: run_to_halt(round1_program, inputs=des_inputs),
        rounds=3, iterations=1)
    assert cpu.cycles > 10_000


def test_functional_interpreter(benchmark, round1_program, des_inputs):
    interp = benchmark.pedantic(
        lambda: run_functional(round1_program, inputs=des_inputs),
        rounds=3, iterations=1)
    assert interp.executed > 10_000


def test_parallel_trace_collection(benchmark, round1_program):
    """The ISSUE's speedup workload: 16 DPA traces, jobs=1 vs jobs=4.

    Records the parallel collection under benchmark timing and prints the
    measured speedup.  The >=2x wall-clock assertion only fires on hosts
    with at least 4 usable cores — on smaller machines the engine cannot
    beat the GIL-free serial loop, and the benchmark just checks that the
    parallel path stays correct (bit-identical traces).
    """
    plaintexts = random_plaintexts(16)

    start = time.perf_counter()
    serial = collect_traces(round1_program, KEY, plaintexts, jobs=1)
    serial_s = time.perf_counter() - start

    parallel = benchmark.pedantic(
        lambda: collect_traces(round1_program, KEY, plaintexts, jobs=4),
        rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.mean

    assert np.array_equal(serial.traces, parallel.traces)
    speedup = serial_s / parallel_s
    print(f"\nparallel trace collection: serial {serial_s:.2f}s, "
          f"4 workers {parallel_s:.2f}s, speedup {speedup:.2f}x "
          f"({os.cpu_count()} cores)")
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    if cores >= 4:
        assert speedup >= 2.0
    else:
        # Fork + pickling overhead must stay bounded even without cores.
        assert speedup >= 0.5
