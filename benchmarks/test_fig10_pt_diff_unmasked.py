"""Fig. 10 — differential trace for two plaintexts, before masking."""

from conftest import run_once

from repro.harness.experiments import fig10_pt_diff_unmasked


def test_fig10_unmasked_plaintext_leak(benchmark, record_experiment):
    result = run_once(benchmark, fig10_pt_diff_unmasked)
    record_experiment(result)

    summary = result.summary
    # Plaintext differences show in the initial permutation AND the round.
    assert summary["max_abs_diff_ip_pj"] > 0
    assert summary["round_leak_visible"]
    assert summary["max_abs_diff_round_pj"] > 1.0
