"""Fig. 8 — differential trace for two different keys, before masking."""

from conftest import run_once

from repro.harness.experiments import fig08_key_diff_unmasked


def test_fig08_unmasked_key_leak(benchmark, record_experiment):
    result = run_once(benchmark, fig08_key_diff_unmasked)
    record_experiment(result)

    summary = result.summary
    assert summary["leak_visible"]
    assert summary["max_abs_diff_pj"] > 1.0
    assert summary["nonzero_cycles"] > 50
