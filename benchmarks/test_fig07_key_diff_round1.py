"""Fig. 7 — differential trace for two keys differing in key bit 1.

Paper: "it is possible to identify differences in even a single bit of the
secret key" from the unmasked round-1 energy profile.
"""

from conftest import run_once

from repro.harness.experiments import fig07_key_diff_round1


def test_fig07_single_key_bit_visible(benchmark, record_experiment):
    result = run_once(benchmark, fig07_key_diff_round1)
    record_experiment(result)

    summary = result.summary
    assert summary["leak_visible"]
    assert summary["max_abs_diff_pj"] > 1.0
    # The leak is localized, not everywhere: a single key bit flips a
    # bounded set of downstream computations.
    assert 0 < summary["nonzero_cycles"] < summary["window_cycles"] / 2
