"""Extension — the masking scheme generalized to AES-128.

The paper: "our approach is general and can be extended to other
algorithms that need protection against current measurements based
breaks."  The authors' follow-up work ("Masking the Energy Behavior of
Encryption Algorithms") applies it to AES; this benchmark does the same on
our stack: AES-128 written in SecureC with only the key annotated, S-box
and XTIME lookups through the secure-indexed load, MixColumns free of
secret-dependent branches.
"""

from conftest import run_once

from repro.harness.experiments import extension_aes


def test_aes_masking_generalizes(benchmark, record_experiment):
    result = run_once(benchmark, extension_aes)
    record_experiment(result)

    summary = result.summary
    # FIPS-197 correctness under both maskings, both directions.
    assert summary["fips_correct_unmasked"]
    assert summary["fips_correct_masked"]
    assert summary["inverse_cipher_correct_masked"]
    # The unmasked AES leaks the key.
    assert summary["unmasked_max_abs_diff_pj"] > 1.0
    assert summary["unmasked_nonzero_cycles"] > 1000
    # The masked AES is exactly flat over the entire secured region.
    assert summary["masked_max_abs_diff_pj"] == 0.0
    assert summary["masked_nonzero_cycles"] == 0
    # Energy cost in the same regime as DES selective masking (noticeably
    # above 1x, far below whole-program dual-rail's ~1.8x).  AES's secure
    # density is higher than DES's (~20% of instructions vs ~9%).
    assert 1.05 <= summary["energy_ratio"] <= 1.55
