"""Benchmark-suite plumbing.

Every benchmark reproduces one table/figure of the paper: it runs the
registered experiment exactly once under pytest-benchmark timing
(``rounds=1, iterations=1`` — these are multi-second simulations, not
microbenchmarks), asserts the reproduced *shape* (who wins, roughly by how
much, what is flat), and registers its headline numbers with the reporter
below, which prints a paper-vs-measured summary at the end of the session.
"""

from __future__ import annotations

import pytest

_RESULTS: list[tuple[str, str, dict]] = []


@pytest.fixture
def record_experiment():
    """Callable(result: ExperimentResult) -> None; registers a summary."""

    def record(result, extra: dict | None = None):
        summary = dict(result.summary)
        if extra:
            summary.update(extra)
        _RESULTS.append((result.experiment_id, result.title, summary))

    return record


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def pytest_terminal_summary(terminalreporter):
    if not _RESULTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("Paper reproduction summary (Saputra et al., DATE 2003)")
    write("=" * 78)
    for experiment_id, title, summary in _RESULTS:
        write(f"[{experiment_id}] {title}")
        for key, value in summary.items():
            if isinstance(value, float):
                write(f"    {key:38s} {value:,.3f}")
            else:
                write(f"    {key:38s} {value}")
        write("")
