"""Extension — sensitivity analysis of the headline comparison.

The reproduced ratios depend on a calibrated technology parameter set; this
sweep shows the *conclusion* does not: across a 4x range of every
capacitance/energy parameter, selective masking stays strictly cheaper than
the naive and whole-program dual-rail policies, and the overhead saving
stays far above zero.
"""

from conftest import run_once

from repro.harness.experiments import extension_sensitivity


def test_conclusion_robust_to_calibration(benchmark, record_experiment):
    result = run_once(benchmark, extension_sensitivity)
    record_experiment(result)

    summary = result.summary
    assert summary["all_parameters_preserve_ordering"]
    # The ~83% saving claim survives every perturbation with margin.
    assert summary["worst_case_overhead_saving"] > 0.6
