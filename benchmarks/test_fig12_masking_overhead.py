"""Fig. 12 — additional energy consumed by masking, 1st key permutation.

Paper: "this additional energy is 45 pJ per cycle (as compared to an
average energy consumption of 165 pJ per cycle in the original
application)" and "we add excessive energy even in places where the
differential profile in Figure 8 shows no difference" (conservatism).

Our phase-average is lower because the generated code interleaves more
insecure loop bookkeeping between secure operations; on cycles where
secure instructions are actually in flight the overhead sits at the
paper's ~45 pJ operating point.
"""

from conftest import run_once

from repro.harness.experiments import fig12_masking_overhead


def test_fig12_overhead_shape(benchmark, record_experiment):
    result = run_once(benchmark, fig12_masking_overhead)
    record_experiment(result)

    summary = result.summary
    # Positive overhead throughout the phase on average.
    assert summary["mean_overhead_pj_per_cycle"] > 5.0
    # Active-cycle overhead in the paper's regime (45 pJ +/- 50%).
    assert 22.0 <= summary["mean_overhead_active_pj"] <= 90.0
    # Overhead is paid over a substantial fraction of the phase, i.e. it is
    # conservative (present even where the unmasked differential was zero).
    assert summary["active_cycle_fraction"] > 0.1
