"""Extension — TVLA leakage assessment of both devices.

Modern side-channel evaluation methodology applied to the paper's design:
the fixed-vs-random Welch t-test (threshold |t| = 4.5) bounds *all*
first-order attacks without a key hypothesis.  The selectively-masked
device doesn't just pass — its secured region scores identically zero.
"""

from conftest import run_once

from repro.harness.experiments import extension_tvla


def test_tvla_verdicts(benchmark, record_experiment):
    result = run_once(benchmark, extension_tvla)
    record_experiment(result)

    summary = result.summary
    # Unmasked: catastrophic failure (deterministic leaks -> infinite t).
    assert not summary["unmasked_passes"]
    assert summary["unmasked_leaky_cycles"] > 100
    # Masked: identically zero t over the whole secured region.
    assert summary["masked_passes"]
    assert summary["masked_max_abs_t"] == 0.0
    assert summary["masked_leaky_cycles"] == 0
