"""Ablation — forward slicing is necessary (paper Section 4.1).

Paper: "It should be emphasized that it is not sufficient to protect only
the sensitive variables annotated by the programmer.  This is because the
variables whose values are determined based on the values of the protected
variables can also be exploited to leak information."
"""

from conftest import run_once

from repro.harness.experiments import ablation_no_slicing


def test_annotate_only_leaks_sliced_does_not(benchmark, record_experiment):
    result = run_once(benchmark, ablation_no_slicing)
    record_experiment(result)

    summary = result.summary
    # Annotate-only: key-derived values (C/D registers, subkeys, round
    # data) still modulate the trace.
    assert summary["annotate_only_max_abs_diff_pj"] > 0
    assert summary["annotate_only_nonzero_cycles"] > 100
    # Full slicing: exactly flat.
    assert summary["selective_max_abs_diff_pj"] == 0.0
    assert summary["slicing_required"]
