"""Fig. 11 — differential trace for two plaintexts, after masking.

Paper: "The first operation in the DES is plaintext permutation.  Since
this process is not operated in a secure mode, the differences in the
input values result in the difference in both the energy masked and
original versions.  The other operations in the first round are secure;
as a result, there are [no] energy consumption power differences."
"""

from conftest import run_once

from repro.harness.experiments import fig11_pt_diff_masked


def test_fig11_ip_differs_round_flat(benchmark, record_experiment):
    result = run_once(benchmark, fig11_pt_diff_masked)
    record_experiment(result)

    summary = result.summary
    # The deliberately-insecure initial permutation still differs...
    assert summary["ip_still_differs"]
    assert summary["max_abs_diff_ip_pj"] > 0
    # ...but the secured round body is exactly flat.
    assert summary["round_masked_flat"]
    assert summary["max_abs_diff_round_pj"] == 0.0
