"""Section 4.2 — XOR unit: 0.3 pJ normal (average) vs 0.6 pJ secure
(constant), and switch-level validation of the pre-charged cell (Fig. 5).
"""

import pytest
from conftest import run_once

from repro.harness.experiments import xor_unit_energy


def test_xor_unit_operating_points(benchmark, record_experiment):
    result = run_once(benchmark, xor_unit_energy, samples=8192)
    record_experiment(result)

    summary = result.summary
    # "as opposed to energy consumption of .6pJ in the secure mode, the
    # XOR unit consumes only .3pJ in the normal mode"
    assert summary["normal_mean_pj"] == pytest.approx(0.3, abs=0.02)
    assert summary["secure_mean_pj"] == pytest.approx(0.6, abs=1e-9)
    # Secure mode is a constant, not an average: zero variance.
    assert summary["secure_std_pj"] == pytest.approx(0.0, abs=1e-12)
    # Normal mode is genuinely data-dependent.
    assert summary["normal_std_pj"] > 0.01
    # Switch-level cell: one charging event per cycle, any input sequence.
    assert summary["cell_constant_after_first_cycle"]
