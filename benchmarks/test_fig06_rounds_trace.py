"""Fig. 6 — the energy trace of the whole encryption reveals the 16 rounds.

Paper: "Figure 6 shows the energy profile of the original encryption
process revealing clearly the 16 rounds of operation."  We reproduce the
trace and let SPA (autocorrelation + matched filter, no use of program
markers) recover the round structure.
"""

from conftest import run_once

from repro.harness.experiments import fig06_rounds_trace


def test_fig06_sixteen_rounds_visible(benchmark, record_experiment):
    result = run_once(benchmark, fig06_rounds_trace)
    record_experiment(result)

    summary = result.summary
    # The SPA attacker counts exactly the 16 rounds the program executed.
    assert summary["spa_detected_rounds"] == 16
    assert summary["true_round_count"] == 16
    # The detected period matches the true round length within 1%.
    true_period = summary["true_round_period"]
    assert abs(summary["spa_detected_period"] - true_period) <= \
        0.01 * true_period
    # Average power is at the paper's operating point (~165 pJ/cycle).
    assert 150 <= summary["average_pj_per_cycle"] <= 180
    # The decimated series (what the paper plots) is non-trivial.
    assert result.series["energy_every_10_cycles"].size > 1000
