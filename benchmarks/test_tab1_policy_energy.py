"""Section 4.3 totals — the four masking policies on full 16-round DES.

Paper numbers (µJ):  unmasked 46.4 | selective (ours) 52.6 | naive
all-loads/stores 63.6 | whole-program dual-rail 83.5.  Ratios vs unmasked:
1.000 / 1.134 / 1.371 / 1.800, and the headline claim: the selective
scheme's masking-energy overhead is ~83% lower than whole-program
dual-rail.

Our absolute µJ differ by the cycle-count ratio of our generated DES binary
versus the authors' (the simulated core runs our own compiler's code);
the reproduced observables are the policy ratios, the ~165 pJ/cycle
average, and the overhead saving.
"""

import pytest
from conftest import run_once

from repro.harness.experiments import tab1_policy_energy


def test_tab1_policy_ratios(benchmark, record_experiment):
    result = run_once(benchmark, tab1_policy_energy)
    record_experiment(result)

    summary = result.summary
    # Ordering: none < selective < naive < all.
    assert summary["total_none_uj"] < summary["total_selective_uj"] \
        < summary["total_all_loads_stores_uj"] < summary["total_all_uj"]
    # Ratios within 5% of the paper's.
    assert summary["ratio_selective"] == pytest.approx(52.6 / 46.4, rel=0.05)
    assert summary["ratio_all_loads_stores"] == pytest.approx(63.6 / 46.4,
                                                              rel=0.05)
    assert summary["ratio_all"] == pytest.approx(83.5 / 46.4, rel=0.05)
    # ~165 pJ/cycle unmasked average (paper Section 4.3).
    assert summary["average_pj_none"] == pytest.approx(165.0, rel=0.05)
    # The 83% overhead-saving headline (ours within [0.78, 0.90]).
    assert 0.78 <= summary["overhead_saving_vs_all"] <= 0.90
