"""Ablation — the stale-register side channel and operand isolation.

A micro-architectural finding from building this reproduction: the ID
stage of a classic five-stage pipeline latches register-file reads that
forwarding later overrides, and with register reuse the stale value can be
a secret left by an earlier *secure* instruction — transiting the ID/EX
latch of an insecure instruction, outside the reach of any
instruction-level masking.  Operand isolation (gating ID reads that the
forwarding network will supply; control depends only on register numbers)
closes the channel and also saves register-file port energy.
"""

from conftest import run_once

from repro.harness.experiments import ablation_operand_isolation


def test_isolation_closes_stale_register_channel(benchmark,
                                                 record_experiment):
    result = run_once(benchmark, ablation_operand_isolation)
    record_experiment(result)

    summary = result.summary
    # With gating: the masked differential is exactly flat.
    assert summary["with_isolation_max_abs_diff_pj"] == 0.0
    # Without: secrets echo through reused registers.
    assert summary["without_isolation_max_abs_diff_pj"] > 0.5
    assert summary["without_isolation_nonzero_cycles"] > 20
    assert summary["isolation_required"]
