"""Extension — the optimizing compiler's effect on the masked binary.

Quantifies -O0/-O1/-O2 on full masked DES: code size, cycles, energy, and
(crucially) that the masking property survives optimization — only public
computation can fold, and the -O2 schedule depends only on opcodes and
register numbers.
"""

from conftest import run_once

from repro.harness.experiments import extension_optimizer


def test_optimization_levels(benchmark, record_experiment):
    result = run_once(benchmark, extension_optimizer)
    record_experiment(result)

    summary = result.summary
    # -O1 shrinks the binary.
    assert summary["o1_static_instructions"] \
        < summary["o0_static_instructions"]
    # -O2 turns that into real cycles and energy (>=3% on both).
    assert summary["o2_cycle_ratio"] <= 0.97
    assert summary["o2_energy_ratio"] <= 0.97
    # Monotone improvement across levels.
    assert summary["o0_total_uj"] >= summary["o1_total_uj"] \
        >= summary["o2_total_uj"]
    # The masking property holds at every level.
    for level in (0, 1, 2):
        assert summary[f"o{level}_masked_max_diff_pj"] == 0.0
