"""Extension — Section 5's stated limitation, demonstrated.

The paper's conclusion warns that dual-rail masking does not survive
inter-wire coupling on on-chip buses (citing Sotiriadis/Chandrakasan).
With the coupling-aware bus model enabled, the masked program's key
differential — exactly zero under the paper's main model — becomes
nonzero again.
"""

from conftest import run_once

from repro.harness.experiments import extension_coupling


def test_coupling_reintroduces_leakage(benchmark, record_experiment):
    result = run_once(benchmark, extension_coupling)
    record_experiment(result)

    summary = result.summary
    # Paper's main model: masked is exactly flat.
    assert summary["without_coupling_max_abs_diff_pj"] == 0.0
    assert summary["without_coupling_nonzero_cycles"] == 0
    # With coupling: residual data-dependent energy on the secure bus.
    assert summary["with_coupling_max_abs_diff_pj"] > 1.0
    assert summary["with_coupling_nonzero_cycles"] > 50
    assert summary["masking_defeated_by_coupling"]
