"""Extension — random-noise countermeasure vs masking (paper Section 1).

Paper: "random noises in power measurements can be filtered through the
averaging process using a large number of samples" — i.e. noise injection
only raises the attacker's trace budget, while masking removes the signal
entirely.  This is the paper's core argument for why an architectural
countermeasure is needed at all.
"""

from conftest import run_once

from repro.harness.experiments import extension_noise


def test_noise_raises_trace_count_masking_kills_signal(benchmark,
                                                       record_experiment):
    result = run_once(benchmark, extension_noise)
    record_experiment(result)

    summary = result.summary
    # Noiseless device: a handful of traces recover the subkey.
    assert summary["clean_rank_of_true"] == 0
    # The same trace count fails against the noisy device...
    assert summary["noisy_small_rank_of_true"] >= 5
    # ...but averaging over more traces filters the noise back out.
    assert summary["noisy_large_rank_of_true"] == 0
    # Masking leaves nothing to average: the differential is zero.
    assert summary["masked_defeats_attack"]
    assert summary["masked_peak_rho"] < 1e-6
