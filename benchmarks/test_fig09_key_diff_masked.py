"""Fig. 9 — differential trace for two different keys, after masking.

Paper: "using secure instructions can mask the energy behavior of the key
related operations ... the mean of the energy consumption traces which
generate different internal (key related) bits will not exhibit any
differences that can be exploited by DPA attacks."

Our reproduction is exact: the differential trace is identically zero over
the whole secured region.
"""

from conftest import run_once

from repro.harness.experiments import fig09_key_diff_masked


def test_fig09_masked_differential_is_flat(benchmark, record_experiment):
    result = run_once(benchmark, fig09_key_diff_masked)
    record_experiment(result)

    summary = result.summary
    assert summary["masked_flat"]
    assert summary["max_abs_diff_pj"] == 0.0
    assert summary["nonzero_cycles"] == 0
    assert summary["window_cycles"] > 1000
