#!/usr/bin/env python3
"""A non-cryptographic smart-card scenario: power-safe PIN verification.

The paper's opening motivation is exactly this: "power analysis can be
used to identify the specific portions of the program being executed to
induce timing glitches that may in turn help to bypass key checking."
A naive PIN check compares digit by digit and bails out at the first
mismatch — its power/timing trace reveals *how many digits matched*,
letting an attacker guess one digit at a time (4 x 10 tries instead of
10^4).

This script implements the check both ways in SecureC:

* ``naive``  — early-exit loop, digits compared with insecure ops;
* ``secure`` — branch-free accumulate-all-mismatches comparison over a
  ``secure``-annotated stored PIN, compiled with forward slicing.

It then shows what the attacker's differential traces reveal about each.

Usage:  python examples/pin_check.py
"""

import numpy as np

from repro.harness.report import ascii_table
from repro.harness.runner import run_with_trace
from repro.lang.compiler import compile_source

NAIVE = """
int stored[4];
int guess[4];
int ok;
int i;

__marker(1);
ok = 1;
i = 0;
while (i < 4) {
    if (stored[i] != guess[i]) {
        ok = 0;
        i = 4;            // early exit: leaks the match length
    }
    i = i + 1;
}
__marker(2);
"""

SECURE = """
secure int stored[4];
int guess[4];
int ok;
int diff;
int i;

__marker(1);
diff = 0;
for (i = 0; i < 4; i = i + 1) {
    diff = diff | (stored[i] ^ guess[i]);   // sliced -> sxor/s.or
}
__marker(2);
__insecure {
    ok = diff == 0;       // the accept/reject outcome is public anyway
}
"""

#: The attacker submits one fixed guess and watches the card's power
#: trace; the secret is the *stored* PIN inside the card.
ATTACKER_GUESS = [3, 1, 9, 9]


def window(run):
    start = run.trace.marker_cycles(1)[0]
    end = run.trace.marker_cycles(2)[0]
    return run.trace.energy[start:end], run.cycles


def main() -> None:
    stored_pins = {
        "secret matches 0 digits": [7, 7, 7, 7],
        "secret matches 1 digit": [3, 7, 7, 7],
        "secret matches 2 digits": [3, 1, 7, 7],
        "secret is the guess": [3, 1, 9, 9],
    }
    for name, source in (("naive", NAIVE), ("secure", SECURE)):
        compiled = compile_source(source, masking="selective")
        rows = []
        reference = None
        for label, stored in stored_pins.items():
            run = run_with_trace(compiled.program,
                                 inputs={"stored": stored,
                                         "guess": ATTACKER_GUESS})
            energy, cycles = window(run)
            if reference is None:
                reference = energy
            aligned = (energy.shape == reference.shape)
            leak = float(np.abs(energy - reference).max()) if aligned \
                else float("nan")
            verdict = run.cpu.read_symbol_words("ok", 1)[0]
            rows.append((label, verdict, cycles,
                         "-" if not aligned else f"{leak:.2f}",
                         "" if aligned else "<- timing leak!"))
        print(f"=== {name} PIN check (attacker's guess fixed) ===")
        print(ascii_table(
            ["stored secret", "accepted", "total cycles",
             "max |Δ| vs first (pJ)", ""], rows))
        for diagnostic in compiled.diagnostics:
            print(f"compiler diagnostic: {diagnostic.message}")
        print()

    print("Against the naive check, one power/timing trace tells the "
          "attacker how many\ndigits of their guess matched the secret "
          "(digit-by-digit search, 40 tries).\nThe secure check runs "
          "cycle- and energy-identically for every stored PIN —\nonly "
          "the final public accept/reject differs.\n")

    print("=== automated timing extraction (repro.attacks.timing) ===")
    from repro.attacks.timing import extract_secret_by_timing

    secret = [2, 7, 1, 8]
    for name, source in (("naive", NAIVE), ("secure", SECURE)):
        program = compile_source(source, masking="selective").program
        attack = extract_secret_by_timing(program, "guess", positions=4,
                                          fixed_inputs={"stored": secret})
        hits = sum(1 for got, want in zip(attack.recovered, secret)
                   if got == want)
        print(f"[{name}] secret={secret} recovered={attack.recovered} "
              f"-> {hits}/4 digits in {attack.measurements} oracle calls"
              + ("  (the final digit ties; the accept/reject oracle "
                 "finishes it in <=10 more)" if hits == 3 else ""))


if __name__ == "__main__":
    main()
