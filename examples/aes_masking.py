#!/usr/bin/env python3
"""The masking scheme generalized to AES-128.

The paper's technique is algorithm-agnostic; this script runs AES-128 on
the secure-instruction core (with MixColumns reformulated through an XTIME
table so no secret-dependent branch exists), verifies FIPS-197
correctness, and mounts a CPA key-byte attack on both the unmasked and the
masked device.

Usage:  python examples/aes_masking.py [--traces N] [--byte B]
"""

import argparse

import numpy as np

from repro.aes import encrypt_block, int_to_state
from repro.attacks.aes_selection import (aes_cpa_attack,
                                         random_aes_plaintexts,
                                         true_key_byte)
from repro.attacks.dpa import TraceSet
from repro.harness.report import ascii_table
from repro.harness.runner import run_with_trace
from repro.programs import markers as mk
from repro.programs.aes_source import AesProgramSpec
from repro.programs.workloads import aes_ciphertext_of, compile_aes, run_aes

KEY = 0x000102030405060708090a0b0c0d0e0f
PT = 0x00112233445566778899aabbccddeeff


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--traces", type=int, default=30)
    parser.add_argument("--byte", type=int, default=0, choices=range(16))
    arguments = parser.parse_args()

    print("=== functional check (FIPS-197 vector) ===")
    rows = []
    for masking in ("none", "selective"):
        compiled = compile_aes(masking=masking)
        cpu = run_aes(compiled, KEY, PT)
        assert aes_ciphertext_of(cpu) == encrypt_block(PT, KEY)
        rows.append((masking, cpu.cycles,
                     f"{compiled.secure_static_fraction:.1%}", "ok"))
    print(ascii_table(["masking", "cycles", "secure instrs", "FIPS-197"],
                      rows))

    print()
    print(f"=== CPA attack on key byte {arguments.byte} "
          f"({arguments.traces} traces) ===")
    spec = AesProgramSpec(rounds=1, include_output=False)
    plaintexts = random_aes_plaintexts(arguments.traces)
    for masking in ("none", "selective"):
        compiled = compile_aes(spec, masking=masking)
        trace_rows = []
        start = None
        for plaintext in plaintexts:
            result = run_with_trace(compiled.program, inputs={
                "key": int_to_state(KEY),
                "plaintext": int_to_state(plaintext)})
            if start is None:
                start = result.trace.marker_cycles(mk.M_ROUND_BASE)[0]
            trace_rows.append(result.trace.energy[start:])
        traces = np.vstack(trace_rows)
        trace_set = TraceSet(plaintexts=plaintexts, traces=traces,
                             window=(start, start + traces.shape[1]))
        attack = aes_cpa_attack(trace_set, arguments.byte, key=KEY)
        truth = true_key_byte(KEY, arguments.byte)
        top = ", ".join(f"{s.guess:#04x}(ρ={s.peak:.2f})"
                        for s in attack.scores[:3])
        verdict = "KEY BYTE RECOVERED" if attack.succeeded() \
            else "attack defeated"
        print(f"[{masking}] true byte {truth:#04x}; top guesses: {top}")
        print(f"         rank of true byte: {attack.rank_of_true} "
              f"-> {verdict}")


if __name__ == "__main__":
    main()
