#!/usr/bin/env python3
"""The paper's Section 4.3 energy/security trade-off, reproduced.

Runs full 16-round DES encryption under the four masking policies:

* none              — unmodified program (paper: 46.4 µJ)
* selective         — compiler annotation + forward slicing (paper: 52.6 µJ)
* all-loads-stores  — naive secure memory ops, no analysis (paper: 63.6 µJ)
* all               — whole-program dual-rail (paper: 83.5 µJ)

Absolute µJ differ from the paper (different compiler, different binary,
hence different cycle count); the ratios and the ~83% overhead saving are
the reproduced result.

Usage:  python examples/masking_tradeoff.py [--rounds N]
"""

import argparse

from repro import (KEY_A, MaskingPolicy, PT_A, apply_policy, compile_des,
                   des_run)
from repro.harness.report import ascii_table
from repro.programs.des_source import DesProgramSpec

PAPER_UJ = {"none": 46.4, "selective": 52.6,
            "all-loads-stores": 63.6, "all": 83.5}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--rounds", type=int, default=16,
                        help="DES rounds to simulate (16 = the paper)")
    arguments = parser.parse_args()

    spec = DesProgramSpec(rounds=arguments.rounds)
    base = compile_des(spec, masking="none")
    programs = {
        "none": base.program,
        "selective": compile_des(spec, masking="selective").program,
        "all-loads-stores": apply_policy(base.program,
                                         MaskingPolicy.ALL_LOADS_STORES),
        "all": apply_policy(base.program, MaskingPolicy.ALL),
    }

    totals = {}
    rows = []
    for name, program in programs.items():
        print(f"simulating {name} ({len(program.text)} instructions)...")
        run = des_run(program, KEY_A, PT_A)
        totals[name] = run.total_uj
        rows.append((name, f"{run.total_uj:.2f}",
                     f"{run.total_uj / totals['none']:.3f}",
                     f"{PAPER_UJ[name]:.1f}",
                     f"{PAPER_UJ[name] / PAPER_UJ['none']:.3f}",
                     f"{run.average_pj:.1f}"))

    print()
    print(ascii_table(
        ["policy", "ours µJ", "ours ratio", "paper µJ", "paper ratio",
         "avg pJ/cyc"], rows))

    saving = 1 - (totals["selective"] - totals["none"]) \
        / (totals["all"] - totals["none"])
    print()
    print(f"Masking-overhead saving of selective vs whole-program "
          f"dual-rail: {saving:.0%} (paper: 83%)")


if __name__ == "__main__":
    main()
