#!/usr/bin/env python3
"""Mount a differential power analysis attack on the simulated smart card.

The attack is the one the paper defends against (its Section 1): collect
traces with random known plaintexts and a fixed secret key, guess the 6
subkey bits feeding one round-1 S-box, partition traces by a predicted
S-box output bit, and look for a difference-of-means peak.

Against the unmasked device the correct subkey chunk wins outright;
against the selectively-masked device every differential is zero and the
attack learns nothing.

Usage:  python examples/dpa_attack.py [--traces N] [--box B]
"""

import argparse

from repro import (KEY_A, collect_traces, compile_des, des_run, dpa_attack,
                   random_plaintexts)
from repro.attacks.selection import true_round1_subkey_chunk
from repro.harness.report import ascii_table
from repro.programs import markers as mk
from repro.programs.des_source import DesProgramSpec


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--traces", type=int, default=60)
    parser.add_argument("--box", type=int, default=0, choices=range(8))
    arguments = parser.parse_args()

    spec = DesProgramSpec(rounds=1, include_fp=False)
    plaintexts = random_plaintexts(arguments.traces)
    true_chunk = true_round1_subkey_chunk(KEY_A, arguments.box)
    print(f"secret key: {KEY_A:#018x}")
    print(f"true round-1 subkey chunk for S-box {arguments.box + 1}: "
          f"{true_chunk} ({true_chunk:06b})")
    print()

    for masking in ("none", "selective"):
        compiled = compile_des(spec, masking=masking)
        scout = des_run(compiled.program, KEY_A, plaintexts[0])
        window_start = scout.trace.marker_cycles(mk.M_ROUND_BASE)[0]

        print(f"[{masking}] collecting {arguments.traces} traces "
              f"({scout.cycles} cycles each)...")
        traces = collect_traces(compiled.program, KEY_A, plaintexts,
                                window=(window_start, scout.cycles))
        result = dpa_attack(traces, box=arguments.box, key=KEY_A)

        rows = [(f"{score.guess} ({score.guess:06b})", f"{score.peak:.4f}",
                 "<- TRUE" if score.guess == true_chunk else "")
                for score in result.scores[:5]]
        print(ascii_table(["guess", "DPA peak (pJ)", ""], rows))
        verdict = ("KEY RECOVERED" if result.succeeded()
                   and result.scores[0].peak > 1e-6
                   else "attack failed (no signal)")
        print(f"-> {verdict}; rank of true subkey: {result.rank_of_true}, "
              f"margin: {result.margin:.2f}")
        print()


if __name__ == "__main__":
    main()
