#!/usr/bin/env python3
"""Quickstart: compile DES for the secure-instruction core, run it on the
cycle-accurate energy simulator, and look at what an attacker would see.

Runs one round of DES (the paper's Figs. 7-11 workload) twice — once
unmasked, once with compiler-directed selective masking — and prints the
energy totals plus the key-differential leakage that DPA would exploit.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro import (KEY_A, PT_A, ROUND1_DES, ciphertext_of, compile_des,
                   des_run, encrypt_block)
from repro.harness.report import ascii_table
from repro.programs import markers as mk


def main() -> None:
    print("Compiling DES (SecureC -> forward slicing -> secure "
          "instructions -> assembly)...")
    rows = []
    for masking in ("none", "selective"):
        compiled = compile_des(ROUND1_DES, masking=masking)

        run_a = des_run(compiled.program, KEY_A, PT_A)
        run_b = des_run(compiled.program, KEY_A ^ (1 << 63), PT_A)

        # Functional correctness against the FIPS reference.
        assert ciphertext_of(run_a.cpu) == encrypt_block(PT_A, KEY_A,
                                                         rounds=1)

        # What the attacker sees: the differential trace over the
        # key-dependent region (PC-1 through the end of round 1).
        diff = run_a.trace.diff(run_b.trace)
        start = run_a.trace.marker_cycles(mk.M_KEYPERM_START)[0]
        end = run_a.trace.marker_cycles(mk.M_FP_START)[0]
        leak = float(np.abs(diff[start:end]).max())

        rows.append((masking,
                     f"{run_a.cycles}",
                     f"{run_a.total_uj:.2f}",
                     f"{run_a.average_pj:.1f}",
                     f"{compiled.secure_static_fraction:.1%}",
                     f"{leak:.3f}"))

    print()
    print(ascii_table(
        ["masking", "cycles", "total µJ", "avg pJ/cycle",
         "secure instrs", "max |Δ| for 1 key bit (pJ)"],
        rows))
    print()
    print("The selectively-masked binary costs ~12% more energy but its")
    print("key-differential trace is exactly zero: DPA has nothing to "
          "measure.")


if __name__ == "__main__":
    main()
