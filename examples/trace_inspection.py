#!/usr/bin/env python3
"""Inspect an energy trace like the paper's Figure 6 — numerically.

Runs unmasked full DES once, then:

* profiles the energy by program phase (IP, key permutation, each round,
  FP) and by datapath component;
* mounts SPA on the raw trace (no markers!) to recover the round
  structure, exactly what the paper's Fig. 6 lets a human do by eye;
* saves the trace to .npz and loads it back (the artifact an attack
  campaign would archive).

Usage:  python examples/trace_inspection.py [--out trace.npz]
"""

import argparse
import tempfile
from pathlib import Path

from repro import KEY_A, PT_A, compile_des, des_run, spa_analyze
from repro.harness.io import load_trace, save_trace
from repro.harness.profiling import (component_breakdown, des_phase_labels,
                                     phase_energy)
from repro.harness.report import ascii_table, sparkline


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=None,
                        help="path for the saved trace (.npz)")
    arguments = parser.parse_args()

    print("simulating full 16-round DES (unmasked)...")
    compiled = compile_des(masking="none")
    run = des_run(compiled.program, KEY_A, PT_A)
    print(f"{run.cycles} cycles, {run.total_uj:.2f} µJ, "
          f"{run.average_pj:.1f} pJ/cycle\n")

    print("=== energy by phase ===")
    phases = phase_energy(run.trace, des_phase_labels())
    rows = [(p.label, p.cycles, f"{p.energy_pj / 1e6:.3f}",
             f"{p.average_pj:.1f}")
            for p in phases if not p.label.startswith("(")]
    print(ascii_table(["phase", "cycles", "µJ", "avg pJ/cycle"], rows[:8]))
    print(f"... ({len(rows)} phases total)\n")

    print("=== energy by component ===")
    rows = [(name, f"{total / 1e6:.2f}", f"{fraction:.1%}")
            for name, total, fraction in component_breakdown(run)]
    print(ascii_table(["component", "µJ", "share"], rows))
    print()

    print("=== the trace itself (the paper's Fig. 6, as a sparkline) ===")
    print(sparkline(run.trace.decimate(10), width=76))
    print()

    print("=== SPA on the raw trace (attacker's view, no markers) ===")
    spa = spa_analyze(run.trace.energy, min_period=2000, max_period=30000)
    print(f"detected period: {spa.period} cycles; "
          f"repetitions counted: {spa.round_count}  "
          f"(a DES encryption in {spa.round_count} rounds, plainly "
          "visible)\n")

    out_path = arguments.out or str(Path(tempfile.gettempdir())
                                    / "des_trace.npz")
    save_trace(run.trace, out_path)
    reloaded = load_trace(out_path)
    assert (reloaded.energy == run.trace.energy).all()
    print(f"trace archived to {out_path} "
          f"({Path(out_path).stat().st_size / 1024:.0f} KiB) "
          "and verified on reload")


if __name__ == "__main__":
    main()
