#!/usr/bin/env python3
"""Protect your own algorithm with the SecureC compiler.

The paper's approach is not DES-specific: annotate the sensitive variables,
and the compiler forward-slices the annotation and selects secure
instructions for everything derived from them.  This example protects a
toy 8-bit XOR/rotate/S-box cipher, shows the generated assembly, and
verifies the masking property on the simulator.

Usage:  python examples/custom_program.py
"""

import numpy as np

from repro import compile_source, run_with_trace

SOURCE = """
// A toy cipher: y = SBOX[(x ^ k) rotl 3] with an 8-entry S-box.
secure int k;              // the secret -- the only annotation needed
int x;                     // public input
int y;                     // public output (left insecure deliberately)

const int SBOX[8] = {6, 4, 0xC, 5, 0, 7, 2, 0xE};

int t;
int r;

__marker(1);
t = x ^ k;                           // sxor: key-dependent
r = ((t << 3) | (t >> 5)) & 0xFF;    // secure shifts and ALU ops
t = SBOX[r & 7];                     // silw: secret-derived index
__marker(2);
__insecure {
    y = t;                           // output is public by definition
}
"""


def main() -> None:
    compiled = compile_source(SOURCE, masking="selective")

    print("=== forward slice ===")
    print("tainted variables:", ", ".join(sorted(compiled.slice.tainted_vars)))
    print(f"critical IR operations: {len(compiled.slice.critical)} of "
          f"{len(compiled.ir)}")
    for diagnostic in compiled.diagnostics:
        print("diagnostic:", diagnostic.message)

    print()
    print("=== generated assembly (text section) ===")
    in_text = False
    for line in compiled.assembly.splitlines():
        if line.startswith(".text"):
            in_text = True
        if in_text:
            print(line)

    print()
    print("=== dynamic information-flow audit ===")
    from repro.masking.audit import audit_masking

    report = audit_masking(compiled.program, {"k": 1},
                           {"k": [0xA5], "x": [0x3C]})
    print(report.describe())
    if not report.clean:
        print("(expected: the flagged instructions are the deliberate "
              "`__insecure` output\n store of y — declassified because the "
              "cipher output is public by definition)")

    print()
    print("=== masking property on the simulator ===")
    runs = {}
    for key in (0x00, 0xA5):
        runs[key] = run_with_trace(compiled.program,
                                   inputs={"k": [key], "x": [0x3C]})
    diff = runs[0x00].trace.diff(runs[0xA5].trace)
    start = runs[0x00].trace.marker_cycles(1)[0]
    end = runs[0x00].trace.marker_cycles(2)[0]
    print(f"cycles: {runs[0x00].cycles}, "
          f"energy: {runs[0x00].total_uj * 1e6:.0f} pJ")
    print(f"max |energy difference| between k=0x00 and k=0xA5 over the "
          f"protected region: {np.abs(diff[start:end]).max():.4f} pJ")
    for key, run in runs.items():
        print(f"k={key:#04x}: y = "
              f"{run.cpu.read_symbol_words('y', 1)[0]:#x}")


if __name__ == "__main__":
    main()
