"""SPA round detection on synthetic signals."""

import numpy as np
import pytest

from repro.attacks.spa import analyze, count_rounds, detect_period


def synthetic_rounds(n_rounds=16, period=500, preamble=300, noise=0.0,
                     seed=0):
    """Preamble + n repetitions of a fixed pattern + small postamble."""
    rng = np.random.default_rng(seed)
    pattern = rng.normal(100.0, 20.0, size=period)
    signal = [rng.normal(150.0, 5.0, size=preamble)]
    signal.extend([pattern] * n_rounds)
    signal.append(rng.normal(150.0, 5.0, size=period // 2))
    trace = np.concatenate(signal)
    if noise:
        trace = trace + rng.normal(0, noise, size=trace.size)
    return trace


def test_detect_period_exact():
    trace = synthetic_rounds(period=500)
    period, score = detect_period(trace, min_period=100, max_period=2000)
    assert abs(period - 500) <= 5
    assert score > 0.5


def test_detect_period_with_noise():
    trace = synthetic_rounds(period=400, noise=5.0)
    period, _ = detect_period(trace, min_period=100, max_period=2000)
    assert abs(period - 400) <= 5


def test_detect_period_too_short_raises():
    with pytest.raises(ValueError):
        detect_period(np.ones(50), min_period=100, max_period=40)


def test_count_rounds_exact():
    trace = synthetic_rounds(n_rounds=16, period=500)
    rounds, starts = count_rounds(trace, 500, smooth_window=8)
    assert rounds == 16
    assert len(starts) == 16
    gaps = np.diff(starts)
    assert all(abs(g - 500) <= 5 for g in gaps)


def test_count_rounds_other_counts():
    for n in (4, 9, 12):
        trace = synthetic_rounds(n_rounds=n, period=300)
        rounds, _ = count_rounds(trace, 300, smooth_window=8)
        assert rounds == n, n


def test_count_rounds_degenerate_trace():
    assert count_rounds(np.ones(100), 200) == (0, [])


def test_analyze_end_to_end():
    trace = synthetic_rounds(n_rounds=16, period=450)
    result = analyze(trace, min_period=100, max_period=2000)
    assert result.round_count == 16
    assert abs(result.period - 450) <= 5


def test_no_repetition_counts_nothing_at_scale():
    rng = np.random.default_rng(3)
    trace = rng.normal(100, 10, size=4000)
    rounds, _ = count_rounds(trace, 500, smooth_window=8)
    # Pure noise: the self-matching template yields very few "rounds".
    assert rounds <= 2
