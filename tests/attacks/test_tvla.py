"""TVLA fixed-vs-random leakage assessment."""

import numpy as np
import pytest

from repro.attacks.dpa import random_plaintexts
from repro.attacks.tvla import (T_THRESHOLD, TvlaResult, assess_des_program,
                                fixed_vs_random)

KEY = 0x133457799BBCDFF1
PT = 0x0123456789ABCDEF


def test_identical_sets_pass():
    traces = np.random.default_rng(0).normal(100, 1, size=(40, 16))
    result = fixed_vs_random(traces, traces.copy())
    assert result.passes
    assert result.max_abs_t < T_THRESHOLD


def test_strong_leak_detected():
    rng = np.random.default_rng(1)
    fixed = rng.normal(100, 0.5, size=(60, 8))
    randoms = rng.normal(100, 0.5, size=(60, 8))
    randoms[:, 3] += 5.0
    result = fixed_vs_random(fixed, randoms)
    assert not result.passes
    assert result.leaky_cycles >= 1
    assert abs(result.t_statistic[3]) > T_THRESHOLD


def test_deterministic_mean_shift_is_definite_leak():
    """Zero variance in both groups but different means -> |t| = inf."""
    fixed = np.full((10, 4), 100.0)
    randoms = np.full((10, 4), 100.0)
    randoms[:, 2] = 101.0
    result = fixed_vs_random(fixed, randoms)
    assert np.isinf(result.t_statistic[2])
    assert not result.passes


def test_misaligned_sets_rejected():
    with pytest.raises(ValueError):
        fixed_vs_random(np.ones((4, 5)), np.ones((4, 6)))


def test_result_properties():
    result = TvlaResult(t_statistic=np.array([0.0, 5.0, -6.0]))
    assert result.max_abs_t == 6.0
    assert result.leaky_cycles == 2
    assert not result.passes


def test_unmasked_des_fails_tvla(round1_unmasked):
    from repro.programs.markers import M_KEYPERM_START

    from repro.harness.runner import des_run

    scout = des_run(round1_unmasked.program, KEY, PT)
    start = scout.trace.marker_cycles(M_KEYPERM_START)[0]
    result = assess_des_program(
        round1_unmasked.program, KEY, PT, random_plaintexts(12),
        window=(start, scout.cycles))
    assert not result.passes
    assert result.leaky_cycles > 50


def test_masked_des_passes_tvla_in_secured_region(round1_masked):
    from repro.programs.markers import M_FP_START, M_KEYPERM_START

    from repro.harness.runner import des_run

    scout = des_run(round1_masked.program, KEY, PT)
    start = scout.trace.marker_cycles(M_KEYPERM_START)[0]
    end = scout.trace.marker_cycles(M_FP_START)[0]
    result = assess_des_program(
        round1_masked.program, KEY, PT, random_plaintexts(12),
        window=(start, end))
    assert result.passes
    # Stronger than the 4.5 threshold: identically zero everywhere.
    assert result.max_abs_t == 0.0
