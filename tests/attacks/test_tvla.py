"""TVLA fixed-vs-random leakage assessment."""

import numpy as np
import pytest

from repro.attacks.dpa import random_plaintexts
from repro.attacks.tvla import (T_THRESHOLD, TvlaResult, assess_des_program,
                                fixed_vs_random)

KEY = 0x133457799BBCDFF1
PT = 0x0123456789ABCDEF


def test_identical_sets_pass():
    traces = np.random.default_rng(0).normal(100, 1, size=(40, 16))
    result = fixed_vs_random(traces, traces.copy())
    assert result.passes
    assert result.max_abs_t < T_THRESHOLD


def test_strong_leak_detected():
    rng = np.random.default_rng(1)
    fixed = rng.normal(100, 0.5, size=(60, 8))
    randoms = rng.normal(100, 0.5, size=(60, 8))
    randoms[:, 3] += 5.0
    result = fixed_vs_random(fixed, randoms)
    assert not result.passes
    assert result.leaky_cycles >= 1
    assert abs(result.t_statistic[3]) > T_THRESHOLD


def test_deterministic_mean_shift_is_definite_leak():
    """Zero variance in both groups but different means -> |t| = inf."""
    fixed = np.full((10, 4), 100.0)
    randoms = np.full((10, 4), 100.0)
    randoms[:, 2] = 101.0
    result = fixed_vs_random(fixed, randoms)
    assert np.isinf(result.t_statistic[2])
    assert not result.passes


def test_misaligned_sets_rejected():
    with pytest.raises(ValueError):
        fixed_vs_random(np.ones((4, 5)), np.ones((4, 6)))


def test_result_properties():
    result = TvlaResult(t_statistic=np.array([0.0, 5.0, -6.0]))
    assert result.max_abs_t == 6.0
    assert result.leaky_cycles == 2
    assert not result.passes


def test_unmasked_des_fails_tvla(round1_unmasked):
    from repro.programs.markers import M_KEYPERM_START

    from repro.harness.runner import des_run

    scout = des_run(round1_unmasked.program, KEY, PT)
    start = scout.trace.marker_cycles(M_KEYPERM_START)[0]
    result = assess_des_program(
        round1_unmasked.program, KEY, PT, random_plaintexts(12),
        window=(start, scout.cycles))
    assert not result.passes
    assert result.leaky_cycles > 50


def test_masked_des_passes_tvla_in_secured_region(round1_masked):
    from repro.programs.markers import M_FP_START, M_KEYPERM_START

    from repro.harness.runner import des_run

    scout = des_run(round1_masked.program, KEY, PT)
    start = scout.trace.marker_cycles(M_KEYPERM_START)[0]
    end = scout.trace.marker_cycles(M_FP_START)[0]
    result = assess_des_program(
        round1_masked.program, KEY, PT, random_plaintexts(12),
        window=(start, end))
    assert result.passes
    # Stronger than the 4.5 threshold: identically zero everywhere.
    assert result.max_abs_t == 0.0


# -- streaming campaigns ----------------------------------------------------


def test_streaming_assessment_matches_batch(round1_unmasked):
    """Same seeds, same traces: the streaming t must equal the batch t,
    including the deterministic ±inf definite-leak rule."""
    from repro.attacks.tvla import streaming_assess_des_program

    plaintexts = random_plaintexts(6, seed=42)
    batch = assess_des_program(round1_unmasked.program, KEY, PT, plaintexts)
    campaign = streaming_assess_des_program(round1_unmasked.program, KEY,
                                            PT, plaintexts, chunk_size=4)
    assert campaign.traces_consumed == 12
    streamed_t = campaign.result.t_statistic
    # Wherever the batch path sees a definite (±inf) leak, so must the
    # streaming path.
    assert np.all(np.isinf(streamed_t[np.isinf(batch.t_statistic)]))
    both_finite = np.isfinite(batch.t_statistic) & np.isfinite(streamed_t)
    np.testing.assert_allclose(streamed_t[both_finite],
                               batch.t_statistic[both_finite], rtol=1e-9,
                               atol=1e-9)
    # One-pass Welford yields an exact zero variance for identical
    # traces where two-pass np.var leaves epsilon residue, so a few
    # cycles read ±inf streaming vs astronomically-large-finite batch.
    # The verdict must agree there regardless.
    disagree = np.isinf(streamed_t) & np.isfinite(batch.t_statistic)
    assert np.all(np.abs(batch.t_statistic[disagree]) > 1e6)
    assert campaign.result.passes == batch.passes
    assert campaign.result.leaky_cycles == batch.leaky_cycles


def test_streaming_assessment_with_noise_matches_batch(round1_unmasked):
    from repro.attacks.tvla import streaming_assess_des_program

    plaintexts = random_plaintexts(6, seed=42)
    batch = assess_des_program(round1_unmasked.program, KEY, PT, plaintexts,
                               noise_sigma=2.0)
    campaign = streaming_assess_des_program(round1_unmasked.program, KEY,
                                            PT, plaintexts, noise_sigma=2.0,
                                            chunk_size=4)
    # Gaussian noise removes the zero-variance corner entirely: the two
    # paths must agree everywhere.
    np.testing.assert_allclose(campaign.result.t_statistic,
                               batch.t_statistic, rtol=1e-9, atol=1e-9)


def test_streaming_assessment_jobs_bit_identical(round1_unmasked):
    from repro.attacks.tvla import streaming_assess_des_program

    plaintexts = random_plaintexts(4, seed=42)
    serial = streaming_assess_des_program(
        round1_unmasked.program, KEY, PT, plaintexts, noise_sigma=1.0,
        chunk_size=2, jobs=1)
    parallel = streaming_assess_des_program(
        round1_unmasked.program, KEY, PT, plaintexts, noise_sigma=1.0,
        chunk_size=2, jobs=2)
    np.testing.assert_array_equal(serial.result.t_statistic,
                                  parallel.result.t_statistic)
    assert serial.curve.values == parallel.curve.values


def test_streaming_key_differential_disclosure(round1_unmasked,
                                               round1_masked):
    """Unmasked key pairs disclose within a small budget; the masked
    secured region never does — its true differential is zero."""
    from repro.harness.runner import des_run
    from repro.attacks.tvla import streaming_key_differential
    from repro.programs.markers import M_KEYPERM_START, M_KEYPERM_END

    KEY_B = 0x0123456789ABCDEF
    scout = des_run(round1_unmasked.program, KEY, PT)
    window = (scout.trace.marker_cycles(M_KEYPERM_START)[0],
              scout.trace.marker_cycles(M_KEYPERM_END)[0])
    unmasked = streaming_key_differential(
        round1_unmasked.program, KEY, KEY_B, PT, n_traces=8,
        window=window, noise_sigma=2.0, chunk_size=4)
    assert unmasked.disclosure_traces is not None
    assert unmasked.disclosure_traces <= 16

    scout_m = des_run(round1_masked.program, KEY, PT)
    window_m = (scout_m.trace.marker_cycles(M_KEYPERM_START)[0],
                scout_m.trace.marker_cycles(M_KEYPERM_END)[0])
    masked = streaming_key_differential(
        round1_masked.program, KEY, KEY_B, PT, n_traces=8,
        window=window_m, noise_sigma=2.0, chunk_size=4)
    assert masked.disclosure_traces is None
    assert masked.curve.final_value < unmasked.curve.final_value
