"""Timing attack on early-exit comparisons (and its defeat)."""

import pytest

from repro.attacks.timing import extract_secret_by_timing, measure_cycles
from repro.lang.compiler import compile_source

NAIVE_CHECK = """
int stored[4];
int guess[4];
int ok;
int i;

ok = 1;
i = 0;
while (i < 4) {
    if (stored[i] != guess[i]) {
        ok = 0;
        i = 4;
    }
    i = i + 1;
}
"""

SECURE_CHECK = """
secure int stored[4];
int guess[4];
int ok;
int diff;
int i;

diff = 0;
for (i = 0; i < 4; i = i + 1) {
    diff = diff | (stored[i] ^ guess[i]);
}
__insecure { ok = diff == 0; }
"""

PIN = [3, 1, 4, 1]


def test_oracle_measures_cycles():
    program = compile_source(NAIVE_CHECK, masking="none").program
    cycles = measure_cycles(program, "guess", [9, 9, 9, 9],
                            fixed_inputs={"stored": PIN})
    assert cycles > 0


def test_naive_check_leaks_timing_per_position():
    program = compile_source(NAIVE_CHECK, masking="none").program
    wrong_at_0 = measure_cycles(program, "guess", [9, 9, 9, 9],
                                fixed_inputs={"stored": PIN})
    wrong_at_1 = measure_cycles(program, "guess", [3, 9, 9, 9],
                                fixed_inputs={"stored": PIN})
    wrong_at_2 = measure_cycles(program, "guess", [3, 1, 9, 9],
                                fixed_inputs={"stored": PIN})
    assert wrong_at_0 < wrong_at_1 < wrong_at_2


def test_timing_attack_extracts_pin_prefix():
    """Digit-by-digit extraction: 40 oracle calls instead of 10^4."""
    program = compile_source(NAIVE_CHECK, masking="none").program
    result = extract_secret_by_timing(program, "guess", positions=4,
                                      fixed_inputs={"stored": PIN})
    # The first three digits fall unambiguously; the final digit may tie
    # (no further loop iterations to expose), which the accept/reject
    # oracle finishes off in <= 10 more tries.
    assert result.recovered[:3] == PIN[:3]
    assert result.measurements <= 40


def test_timing_attack_defeated_by_constant_time_check():
    program = compile_source(SECURE_CHECK, masking="selective").program
    result = extract_secret_by_timing(program, "guess", positions=4,
                                      fixed_inputs={"stored": PIN})
    assert not result.conclusive
    assert result.recovered[0] is None  # not even one digit
    assert any("tie" in note for note in result.notes)


def test_secure_check_constant_cycles():
    program = compile_source(SECURE_CHECK, masking="selective").program
    counts = {measure_cycles(program, "guess", guess,
                             fixed_inputs={"stored": PIN})
              for guess in ([0, 0, 0, 0], [3, 0, 0, 0], [3, 1, 4, 0], PIN)}
    assert len(counts) == 1
