"""DPA machinery on synthetic and (small) simulated traces."""

import numpy as np
import pytest

from repro.attacks.dpa import (DpaResult, GuessScore, TraceSet,
                               dpa_attack, dpa_attack_multibit,
                               random_plaintexts)
from repro.attacks.selection import (predict_sbox_output_bit,
                                     true_round1_subkey_chunk)

KEY = 0x133457799BBCDFF1


def synthetic_trace_set(n=200, box=0, leak_scale=2.0, cycles=40,
                        leak_cycle=25, seed=5):
    """Traces whose energy at leak_cycle depends on the true S-box output
    bit — an idealized leaky device."""
    rng = np.random.default_rng(seed)
    plaintexts = random_plaintexts(n, seed=seed)
    true_guess = true_round1_subkey_chunk(KEY, box)
    traces = rng.normal(100.0, 1.0, size=(n, cycles))
    for row, plaintext in enumerate(plaintexts):
        bit = predict_sbox_output_bit(plaintext, true_guess, box, 0)
        traces[row, leak_cycle] += leak_scale * bit
    return TraceSet(plaintexts=plaintexts, traces=traces,
                    window=(0, cycles))


def test_dpa_recovers_true_subkey_from_synthetic_leak():
    trace_set = synthetic_trace_set()
    result = dpa_attack(trace_set, box=0, target_bit=0, key=KEY)
    assert result.succeeded()
    assert result.scores[0].peak_cycle == 25
    assert result.margin > 1.2


def test_dpa_fails_on_flat_traces():
    trace_set = synthetic_trace_set(leak_scale=0.0)
    result = dpa_attack(trace_set, box=0, target_bit=0, key=KEY)
    # No leak: margins collapse toward 1 and ranking is arbitrary.
    assert result.margin < 1.5


def test_dpa_fails_on_constant_traces():
    trace_set = synthetic_trace_set()
    trace_set.traces[:] = 42.0
    result = dpa_attack(trace_set, box=0, target_bit=0, key=KEY)
    assert result.scores[0].peak == 0.0


def test_multibit_also_recovers():
    trace_set = synthetic_trace_set(n=300, leak_scale=2.0)
    result = dpa_attack_multibit(trace_set, box=0, key=KEY)
    assert result.rank_of_true <= 3


def test_guess_subset():
    trace_set = synthetic_trace_set(n=100)
    true_guess = true_round1_subkey_chunk(KEY, 0)
    result = dpa_attack(trace_set, box=0, key=KEY,
                        guesses=[true_guess, (true_guess + 1) % 64])
    assert len(result.scores) == 2
    assert result.best_guess == true_guess


def test_result_properties():
    scores = [GuessScore(guess=5, peak=10.0, peak_cycle=1),
              GuessScore(guess=7, peak=5.0, peak_cycle=2)]
    result = DpaResult(box=0, target_bit=0, scores=scores, true_subkey=5)
    assert result.best_guess == 5
    assert result.rank_of_true == 0
    assert result.margin == 2.0
    assert result.succeeded()


def test_margin_with_zero_runner_up():
    scores = [GuessScore(guess=5, peak=10.0, peak_cycle=1),
              GuessScore(guess=7, peak=0.0, peak_cycle=2)]
    result = DpaResult(box=0, target_bit=0, scores=scores)
    assert result.margin == float("inf")


def test_margin_all_zero():
    scores = [GuessScore(guess=5, peak=0.0, peak_cycle=0),
              GuessScore(guess=7, peak=0.0, peak_cycle=0)]
    result = DpaResult(box=0, target_bit=0, scores=scores)
    assert result.margin == 1.0


def test_random_plaintexts_deterministic_and_64bit():
    a = random_plaintexts(10, seed=1)
    b = random_plaintexts(10, seed=1)
    c = random_plaintexts(10, seed=2)
    assert a == b != c
    assert all(0 <= p < (1 << 64) for p in a)
    assert any(p >= (1 << 32) for p in a)  # high halves populated


def test_collect_traces_window_and_alignment(round1_masked):
    from repro.attacks.dpa import collect_traces

    plaintexts = random_plaintexts(3)
    traces = collect_traces(round1_masked.program, KEY, plaintexts,
                            window=(100, 200))
    assert traces.traces.shape == (3, 100)
    assert traces.n == 3
    assert traces.window == (100, 200)


# -- streaming accumulator --------------------------------------------------


def test_dpa_accumulator_matches_batch_attack():
    from repro.attacks.dpa import DpaAccumulator

    trace_set = synthetic_trace_set()
    accumulator = DpaAccumulator(box=0, target_bit=0, key=KEY)
    for plaintext, row in zip(trace_set.plaintexts, trace_set.traces):
        accumulator.update(plaintext, row)
    streamed = accumulator.result()
    batch = dpa_attack(trace_set, box=0, target_bit=0, key=KEY)
    assert streamed.rank_of_true == 0
    assert streamed.best_guess == batch.best_guess
    for s, b in zip(streamed.scores, batch.scores):
        assert s.guess == b.guess
        assert s.peak == pytest.approx(b.peak, rel=1e-9)


def test_dpa_accumulator_sharded_merge_matches_single_pass():
    from repro.attacks.dpa import DpaAccumulator

    trace_set = synthetic_trace_set(n=60)
    single = DpaAccumulator(box=0, key=KEY)
    combined = DpaAccumulator(box=0, key=KEY)
    for start in range(0, 60, 15):
        shard = DpaAccumulator(box=0, key=KEY)
        for i in range(start, start + 15):
            shard.update(trace_set.plaintexts[i], trace_set.traces[i])
            single.update(trace_set.plaintexts[i], trace_set.traces[i])
        combined.merge(shard)
    assert combined.count == single.count == 60
    merged_scores = {s.guess: s.peak for s in combined.result().scores}
    single_scores = {s.guess: s.peak for s in single.result().scores}
    for guess in merged_scores:
        assert merged_scores[guess] == pytest.approx(single_scores[guess],
                                                     rel=1e-9)


def test_dpa_accumulator_merge_rejects_different_hypotheses():
    from repro.attacks.dpa import DpaAccumulator

    a = DpaAccumulator(box=0)
    with pytest.raises(ValueError):
        a.merge(DpaAccumulator(box=1))
    with pytest.raises(ValueError):
        a.merge(DpaAccumulator(box=0, target_bit=2))


def test_streaming_dpa_attack_matches_collect_then_attack(keyperm_unmasked):
    from repro.attacks.dpa import collect_traces, streaming_dpa_attack

    plaintexts = random_plaintexts(6, seed=8)
    trace_set = collect_traces(keyperm_unmasked.program, KEY, plaintexts,
                               noise_sigma=0.5)
    batch = dpa_attack(trace_set, box=0, key=KEY)
    campaign = streaming_dpa_attack(keyperm_unmasked.program, KEY,
                                    plaintexts, box=0, target_bit=0,
                                    noise_sigma=0.5, chunk_size=3)
    assert campaign.traces_consumed == 6
    for s, b in zip(campaign.result.scores, batch.scores):
        assert s.guess == b.guess
        assert s.peak == pytest.approx(b.peak, rel=1e-9)
    # The curve sampled the true subkey's rank at each chunk checkpoint.
    assert campaign.curve.checkpoints == [3, 6]
