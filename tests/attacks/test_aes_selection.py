"""AES key-byte attack: selection functions and end-to-end CPA."""

import numpy as np
import pytest

from repro.aes.reference import int_to_state
from repro.aes.tables import SBOX
from repro.attacks.aes_selection import (aes_cpa_attack, aes_plaintext_byte,
                                         predict_sbox_output,
                                         predicted_hamming_weights,
                                         random_aes_plaintexts,
                                         true_key_byte)
from repro.attacks.dpa import TraceSet

KEY = 0x000102030405060708090a0b0c0d0e0f


def test_plaintext_byte_extraction():
    plaintext = 0x00112233445566778899aabbccddeeff
    assert aes_plaintext_byte(plaintext, 0) == 0x00
    assert aes_plaintext_byte(plaintext, 1) == 0x11
    assert aes_plaintext_byte(plaintext, 15) == 0xFF
    with pytest.raises(ValueError):
        aes_plaintext_byte(plaintext, 16)


def test_predict_matches_reference_path():
    plaintext = 0x00112233445566778899aabbccddeeff
    for byte_index in (0, 7, 15):
        truth = true_key_byte(KEY, byte_index)
        predicted = predict_sbox_output(plaintext, truth, byte_index)
        expected = SBOX[int_to_state(plaintext)[byte_index]
                        ^ int_to_state(KEY)[byte_index]]
        assert predicted == expected


def test_guess_range_check():
    with pytest.raises(ValueError):
        predict_sbox_output(0, 256, 0)


def test_random_plaintexts_128bit():
    plaintexts = random_aes_plaintexts(16)
    assert len(set(plaintexts)) == 16
    assert all(0 <= p < (1 << 128) for p in plaintexts)
    assert any(p >> 96 for p in plaintexts)


def test_hw_predictions_bounds():
    plaintexts = random_aes_plaintexts(32)
    weights = predicted_hamming_weights(plaintexts, 0x3C, 5)
    assert weights.min() >= 0
    assert weights.max() <= 8


def test_cpa_recovers_key_byte_from_synthetic_hw_leak():
    plaintexts = random_aes_plaintexts(200)
    byte_index = 3
    truth = true_key_byte(KEY, byte_index)
    rng = np.random.default_rng(11)
    traces = rng.normal(50.0, 0.4, size=(200, 24))
    weights = predicted_hamming_weights(plaintexts, truth, byte_index)
    traces[:, 17] += 0.8 * weights
    trace_set = TraceSet(plaintexts=plaintexts, traces=traces,
                         window=(0, 24))
    result = aes_cpa_attack(trace_set, byte_index, key=KEY)
    assert result.succeeded()
    assert result.scores[0].peak_cycle == 17


def test_cpa_fails_on_flat_traces():
    plaintexts = random_aes_plaintexts(60)
    traces = np.full((60, 10), 9.0)
    result = aes_cpa_attack(TraceSet(plaintexts=plaintexts, traces=traces,
                                     window=(0, 10)), 0, key=KEY)
    assert result.scores[0].peak == 0.0
    assert not result.succeeded()


def test_simulator_aes_cpa_breaks_unmasked_not_masked(tmp_path):
    """End-to-end: CPA on the simulated AES recovers a key byte from the
    unmasked device and gets zero signal from the masked one."""
    from repro.harness.runner import run_with_trace
    from repro.programs.aes_source import AesProgramSpec
    from repro.programs.workloads import compile_aes
    from repro.programs.markers import M_ROUND_BASE

    spec = AesProgramSpec(rounds=1, include_output=False)
    plaintexts = random_aes_plaintexts(40)
    outcomes = {}
    for masking in ("none", "selective"):
        compiled = compile_aes(spec, masking=masking)
        rows = []
        start = None
        for plaintext in plaintexts:
            result = run_with_trace(compiled.program, inputs={
                "key": int_to_state(KEY),
                "plaintext": int_to_state(plaintext)})
            if start is None:
                start = result.trace.marker_cycles(M_ROUND_BASE)[0]
            rows.append(result.trace.energy[start:])
        traces = np.vstack(rows)
        trace_set = TraceSet(plaintexts=plaintexts, traces=traces,
                             window=(start, start + traces.shape[1]))
        outcomes[masking] = aes_cpa_attack(trace_set, byte_index=0, key=KEY)
    assert outcomes["none"].succeeded()
    assert outcomes["none"].scores[0].peak == pytest.approx(1.0)
    assert outcomes["none"].margin > 1.2
    # Masked: the key byte is not distinguished.  Residual (weak,
    # non-discriminating) correlations remain because the *plaintext*
    # loads are public and deliberately insecure — the same effect as the
    # paper's Fig. 11, where the initial permutation still differs.
    assert not outcomes["selective"].succeeded()
    assert outcomes["selective"].rank_of_true > 5
    assert outcomes["selective"].scores[0].peak < 0.9
    assert outcomes["selective"].margin < 1.2
