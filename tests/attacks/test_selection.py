"""DPA selection functions vs. the reference cipher internals."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.selection import (predict_sbox_output_bit,
                                     round1_sbox_input_bits,
                                     true_round1_subkey_chunk)
from repro.des.bitops import bits_to_int, int_to_bits, permute
from repro.des.keyschedule import key_schedule
from repro.des.reference import f_function
from repro.des.tables import IP, P

KEY = 0x133457799BBCDFF1
PT = 0x0123456789ABCDEF

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def test_input_bits_range_checks():
    with pytest.raises(ValueError):
        round1_sbox_input_bits(PT, 8)
    with pytest.raises(ValueError):
        predict_sbox_output_bit(PT, 64, 0)
    with pytest.raises(ValueError):
        predict_sbox_output_bit(PT, 0, 0, bit=4)


def test_true_subkey_chunks_reassemble_k1():
    chunks = [true_round1_subkey_chunk(KEY, box) for box in range(8)]
    k1 = 0
    for chunk in chunks:
        k1 = (k1 << 6) | chunk
    assert k1 == bits_to_int(key_schedule(KEY)[0])


@settings(max_examples=20, deadline=None)
@given(plaintext=U64, box=st.integers(min_value=0, max_value=7),
       bit=st.integers(min_value=0, max_value=3))
def test_correct_guess_predicts_real_intermediate(plaintext, box, bit):
    """With the true subkey chunk, the selection function equals the bit of
    the real round-1 S-box output (pre-P-permutation) of the device."""
    guess = true_round1_subkey_chunk(KEY, box)
    predicted = predict_sbox_output_bit(plaintext, guess, box, bit)

    # Ground truth from the reference: recompute S-box outputs in round 1.
    bits = permute(int_to_bits(plaintext, 64), IP)
    r0 = bits[32:]
    f_out = f_function(r0, key_schedule(KEY)[0])
    # f_function returns P(S(...)); invert P to get raw S-box output bits.
    s_bits = [0] * 32
    for out_position, src in enumerate(P):
        s_bits[src - 1] = f_out[out_position]
    actual = s_bits[4 * box + bit]
    assert predicted == actual


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       box=st.integers(min_value=0, max_value=7))
def test_wrong_guess_decorrelates(seed, box):
    """A wrong guess's prediction differs from the true one on a random
    plaintext ensemble (the S-boxes have no affine structure that would
    make two subkeys equivalent)."""
    from repro.attacks.dpa import random_plaintexts

    true_guess = true_round1_subkey_chunk(KEY, box)
    wrong = (true_guess + 21) % 64
    plaintexts = random_plaintexts(64, seed=seed)
    agree = sum(
        predict_sbox_output_bit(pt, true_guess, box)
        == predict_sbox_output_bit(pt, wrong, box)
        for pt in plaintexts)
    assert agree < 64


def test_input_bits_depend_only_on_plaintext():
    a = round1_sbox_input_bits(PT, 0)
    assert 0 <= a < 64
    assert round1_sbox_input_bits(PT, 0) == a
