"""CPA machinery on synthetic traces plus small simulator checks."""

import numpy as np
import pytest

from repro.attacks.cpa import (correlation_trace, cpa_attack,
                               predicted_hamming_weights)
from repro.attacks.dpa import TraceSet, random_plaintexts
from repro.attacks.selection import true_round1_subkey_chunk

KEY = 0x133457799BBCDFF1


def hw_leaky_traces(n=150, box=0, scale=1.0, cycles=30, leak_cycle=12,
                    noise=0.3, seed=9):
    rng = np.random.default_rng(seed)
    plaintexts = random_plaintexts(n, seed=seed)
    true_guess = true_round1_subkey_chunk(KEY, box)
    weights = predicted_hamming_weights(plaintexts, true_guess, box)
    traces = rng.normal(100.0, noise, size=(n, cycles))
    traces[:, leak_cycle] += scale * weights
    return TraceSet(plaintexts=plaintexts, traces=traces,
                    window=(0, cycles))


def test_correlation_trace_perfect_signal():
    predictions = np.array([0.0, 1.0, 2.0, 3.0])
    traces = np.stack([predictions * 2 + 5, np.ones(4)], axis=1)
    rho = correlation_trace(traces, predictions)
    assert rho[0] == pytest.approx(1.0)
    assert rho[1] == 0.0  # zero-variance cycle -> 0, not NaN


def test_correlation_trace_anticorrelation():
    predictions = np.array([0.0, 1.0, 2.0, 3.0])
    traces = (-predictions).reshape(-1, 1)
    rho = correlation_trace(traces, predictions)
    assert rho[0] == pytest.approx(-1.0)


def test_correlation_length_mismatch():
    with pytest.raises(ValueError):
        correlation_trace(np.ones((4, 2)), np.ones(3))


def test_constant_predictions_give_zero():
    rho = correlation_trace(np.random.default_rng(0).normal(size=(8, 3)),
                            np.ones(8))
    assert np.all(rho == 0.0)


def test_predicted_hamming_weights_range():
    plaintexts = random_plaintexts(20)
    weights = predicted_hamming_weights(plaintexts, 0, 0)
    assert weights.min() >= 0
    assert weights.max() <= 4


def test_cpa_recovers_subkey_from_hw_leak():
    result = cpa_attack(hw_leaky_traces(), box=0, key=KEY)
    assert result.succeeded()
    assert result.scores[0].peak_cycle == 12
    assert result.margin > 1.1


def test_cpa_fails_without_leak():
    result = cpa_attack(hw_leaky_traces(scale=0.0), box=0, key=KEY)
    assert result.margin < 1.5


def test_cpa_fails_on_constant_traces():
    trace_set = hw_leaky_traces()
    trace_set.traces[:] = 7.0
    result = cpa_attack(trace_set, box=0, key=KEY)
    assert result.scores[0].peak == 0.0
    assert not result.succeeded()


def test_cpa_guess_subset():
    trace_set = hw_leaky_traces()
    true_guess = true_round1_subkey_chunk(KEY, 0)
    result = cpa_attack(trace_set, box=0, key=KEY,
                        guesses=[true_guess, (true_guess + 7) % 64])
    assert result.best_guess == true_guess


def test_cpa_margin_semantics():
    from repro.attacks.dpa import GuessScore
    from repro.attacks.cpa import CpaResult

    result = CpaResult(box=0, scores=[
        GuessScore(guess=1, peak=0.8, peak_cycle=0),
        GuessScore(guess=2, peak=0.4, peak_cycle=0)], true_subkey=1)
    assert result.margin == pytest.approx(2.0)
    assert result.succeeded()


# -- streaming accumulator --------------------------------------------------


def test_cpa_accumulator_matches_batch_attack():
    from repro.attacks.cpa import CpaAccumulator

    trace_set = hw_leaky_traces()
    accumulator = CpaAccumulator(box=0, key=KEY)
    for plaintext, row in zip(trace_set.plaintexts, trace_set.traces):
        accumulator.update(plaintext, row)
    streamed = accumulator.result()
    batch = cpa_attack(trace_set, box=0, key=KEY)
    assert streamed.best_guess == batch.best_guess
    assert streamed.rank_of_true == 0
    for s, b in zip(streamed.scores, batch.scores):
        assert s.guess == b.guess
        assert s.peak == pytest.approx(b.peak, rel=1e-9)
        assert s.peak_cycle == b.peak_cycle


def test_cpa_accumulator_sharded_merge_matches_single_pass():
    from repro.attacks.cpa import CpaAccumulator

    trace_set = hw_leaky_traces(n=60)
    single = CpaAccumulator(box=0, key=KEY)
    combined = CpaAccumulator(box=0, key=KEY)
    for start in range(0, 60, 20):
        shard = CpaAccumulator(box=0, key=KEY)
        for i in range(start, start + 20):
            shard.update(trace_set.plaintexts[i], trace_set.traces[i])
            single.update(trace_set.plaintexts[i], trace_set.traces[i])
        combined.merge(shard)
    np.testing.assert_allclose(combined.correlation(0),
                               single.correlation(0), rtol=1e-9)
    assert combined.result().best_guess == single.result().best_guess


def test_cpa_accumulator_constant_traces_score_zero():
    from repro.attacks.cpa import CpaAccumulator

    accumulator = CpaAccumulator(box=0, key=KEY)
    for plaintext in random_plaintexts(8, seed=3):
        accumulator.update(plaintext, np.full(5, 42.0))
    assert accumulator.result().scores[0].peak == 0.0
