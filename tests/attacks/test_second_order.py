"""Second-order DPA: breaks share-based masking, not dual-rail masking."""

import numpy as np
import pytest

from repro.attacks.dpa import TraceSet, dpa_attack, random_plaintexts
from repro.attacks.second_order import centered_product, second_order_dpa
from repro.attacks.selection import (predict_sbox_output_bit,
                                     true_round1_subkey_chunk)

KEY = 0x133457799BBCDFF1


def share_masked_traces(n=400, box=0, scale=2.0, cycles=24, c1=8, c2=17,
                        seed=13):
    """A device protected by *randomized boolean masking*: the sensitive
    bit b is split into (b ^ r) leaking at cycle c1 and r at cycle c2.
    Each point alone is uniformly random; only their combination leaks."""
    rng = np.random.default_rng(seed)
    plaintexts = random_plaintexts(n, seed=seed)
    true_guess = true_round1_subkey_chunk(KEY, box)
    traces = rng.normal(100.0, 0.05, size=(n, cycles))
    for row, plaintext in enumerate(plaintexts):
        bit = predict_sbox_output_bit(plaintext, true_guess, box, 0)
        random_share = rng.integers(0, 2)
        traces[row, c1] += scale * (bit ^ random_share)
        traces[row, c2] += scale * random_share
    return TraceSet(plaintexts=plaintexts, traces=traces,
                    window=(0, cycles))


def test_centered_product_shape():
    combined = centered_product(np.ones((5, 6)))
    assert combined.shape == (5, 15)  # C(6, 2)


def test_centered_product_window():
    traces = np.arange(40, dtype=np.float64).reshape(4, 10)
    combined = centered_product(traces, window=(2, 6))
    assert combined.shape == (4, 6)  # C(4, 2)


def test_centered_product_rejects_huge_window():
    with pytest.raises(ValueError):
        centered_product(np.ones((2, 600)))


def test_first_order_dpa_fails_on_share_masking():
    trace_set = share_masked_traces()
    result = dpa_attack(trace_set, box=0, target_bit=0, key=KEY)
    # Each share alone is balanced: first-order sees nothing special.
    assert result.rank_of_true != 0 or result.margin < 1.1


def test_second_order_dpa_breaks_share_masking():
    trace_set = share_masked_traces()
    result = second_order_dpa(trace_set, box=0, target_bit=0, key=KEY)
    assert result.succeeded()
    assert result.margin > 1.3


def test_second_order_on_constant_traces_is_zero():
    trace_set = share_masked_traces(n=50)
    trace_set.traces[:] = 5.0
    result = second_order_dpa(trace_set, box=0, key=KEY)
    assert result.scores[0].peak == 0.0


def test_second_order_fails_on_dual_rail_masked_device(round1_masked):
    """The paper's masking yields constant (not randomized) secured cycles,
    so even the second-order combining function carries no signal."""
    from repro.attacks.dpa import collect_traces
    from repro.harness.runner import des_run
    from repro.programs.markers import M_ROUND_BASE

    plaintexts = random_plaintexts(24)
    scout = des_run(round1_masked.program, KEY, plaintexts[0])
    start = scout.trace.marker_cycles(M_ROUND_BASE)[0]
    # Narrow window inside the secured round (second-order is quadratic).
    trace_set = collect_traces(round1_masked.program, KEY, plaintexts,
                               window=(start + 1000, start + 1300))
    result = second_order_dpa(trace_set, box=0, key=KEY)
    assert result.scores[0].peak < 1e-6
    assert not result.succeeded()
