"""Attack statistics primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.attacks.stats import (difference_of_means, max_bias,
                                 moving_average, signal_to_noise,
                                 welch_t_statistic)


def test_difference_of_means_basic():
    traces = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0], [7.0, 8.0]])
    partition = np.array([0, 0, 1, 1])
    delta = difference_of_means(traces, partition)
    assert list(delta) == [4.0, 4.0]


def test_difference_of_means_empty_group():
    traces = np.ones((3, 4))
    assert list(difference_of_means(traces, np.zeros(3, dtype=int))) == \
        [0.0] * 4


def test_difference_of_means_length_mismatch():
    with pytest.raises(ValueError):
        difference_of_means(np.ones((3, 4)), np.array([0, 1]))


def test_max_bias():
    traces = np.array([[0.0, 10.0], [0.0, 0.0]])
    assert max_bias(traces, np.array([1, 0])) == 10.0


def test_welch_t_needs_two_per_group():
    traces = np.ones((3, 2))
    assert list(welch_t_statistic(traces, np.array([1, 0, 0]))) == [0.0, 0.0]


def test_welch_t_length_mismatch():
    with pytest.raises(ValueError):
        welch_t_statistic(np.ones((4, 2)), np.array([0, 1]))


def test_signal_to_noise_length_mismatch():
    with pytest.raises(ValueError):
        signal_to_noise(np.ones((4, 2)), np.array([0, 1, 0, 1, 0]))


def test_welch_t_detects_difference():
    rng = np.random.default_rng(1)
    group0 = rng.normal(0.0, 0.1, size=(50, 3))
    group1 = rng.normal(0.0, 0.1, size=(50, 3))
    group1[:, 1] += 5.0  # big effect at cycle 1
    traces = np.vstack([group0, group1])
    partition = np.array([0] * 50 + [1] * 50)
    t = welch_t_statistic(traces, partition)
    assert abs(t[1]) > 10
    assert abs(t[0]) < 4


def test_welch_t_zero_variance_is_zero_not_nan():
    traces = np.ones((6, 2))
    t = welch_t_statistic(traces, np.array([0, 0, 0, 1, 1, 1]))
    assert not np.isnan(t).any()
    assert list(t) == [0.0, 0.0]


def test_signal_to_noise_single_class():
    traces = np.ones((4, 2))
    assert list(signal_to_noise(traces, np.zeros(4, dtype=int))) == [0.0, 0.0]


def test_signal_to_noise_detects_leaky_cycle():
    rng = np.random.default_rng(2)
    labels = np.array([0, 1] * 40)
    traces = rng.normal(0, 0.1, size=(80, 4))
    traces[:, 2] += labels * 3.0
    snr = signal_to_noise(traces, labels)
    assert snr[2] > snr[0]
    assert snr[2] > 10


def test_moving_average_window_one_is_identity():
    signal = np.array([1.0, 5.0, 3.0])
    assert list(moving_average(signal, 1)) == [1.0, 5.0, 3.0]


def test_moving_average_smooths():
    signal = np.array([0.0, 10.0, 0.0, 10.0, 0.0, 10.0])
    smooth = moving_average(signal, 2)
    assert smooth.var() < signal.var()


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=4,
                max_size=32))
def test_difference_of_means_antisymmetric(values):
    traces = np.array(values, dtype=np.float64).reshape(-1, 1)
    n = traces.shape[0]
    partition = np.array([0, 1] * (n // 2) + [0] * (n % 2))
    if partition.sum() == 0 or partition.sum() == n:
        return
    d1 = difference_of_means(traces, partition)
    d2 = difference_of_means(traces, 1 - partition)
    assert np.allclose(d1, -d2)
