"""Attack statistics primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.attacks.stats import (difference_of_means, max_bias,
                                 moving_average, signal_to_noise,
                                 welch_t_statistic)


def test_difference_of_means_basic():
    traces = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0], [7.0, 8.0]])
    partition = np.array([0, 0, 1, 1])
    delta = difference_of_means(traces, partition)
    assert list(delta) == [4.0, 4.0]


def test_difference_of_means_empty_group():
    traces = np.ones((3, 4))
    assert list(difference_of_means(traces, np.zeros(3, dtype=int))) == \
        [0.0] * 4


def test_difference_of_means_length_mismatch():
    with pytest.raises(ValueError):
        difference_of_means(np.ones((3, 4)), np.array([0, 1]))


def test_max_bias():
    traces = np.array([[0.0, 10.0], [0.0, 0.0]])
    assert max_bias(traces, np.array([1, 0])) == 10.0


def test_welch_t_needs_two_per_group():
    traces = np.ones((3, 2))
    assert list(welch_t_statistic(traces, np.array([1, 0, 0]))) == [0.0, 0.0]


def test_welch_t_length_mismatch():
    with pytest.raises(ValueError):
        welch_t_statistic(np.ones((4, 2)), np.array([0, 1]))


def test_signal_to_noise_length_mismatch():
    with pytest.raises(ValueError):
        signal_to_noise(np.ones((4, 2)), np.array([0, 1, 0, 1, 0]))


def test_welch_t_detects_difference():
    rng = np.random.default_rng(1)
    group0 = rng.normal(0.0, 0.1, size=(50, 3))
    group1 = rng.normal(0.0, 0.1, size=(50, 3))
    group1[:, 1] += 5.0  # big effect at cycle 1
    traces = np.vstack([group0, group1])
    partition = np.array([0] * 50 + [1] * 50)
    t = welch_t_statistic(traces, partition)
    assert abs(t[1]) > 10
    assert abs(t[0]) < 4


def test_welch_t_zero_variance_is_zero_not_nan():
    traces = np.ones((6, 2))
    t = welch_t_statistic(traces, np.array([0, 0, 0, 1, 1, 1]))
    assert not np.isnan(t).any()
    assert list(t) == [0.0, 0.0]


def test_signal_to_noise_single_class():
    traces = np.ones((4, 2))
    assert list(signal_to_noise(traces, np.zeros(4, dtype=int))) == [0.0, 0.0]


def test_signal_to_noise_detects_leaky_cycle():
    rng = np.random.default_rng(2)
    labels = np.array([0, 1] * 40)
    traces = rng.normal(0, 0.1, size=(80, 4))
    traces[:, 2] += labels * 3.0
    snr = signal_to_noise(traces, labels)
    assert snr[2] > snr[0]
    assert snr[2] > 10


def test_moving_average_window_one_is_identity():
    signal = np.array([1.0, 5.0, 3.0])
    assert list(moving_average(signal, 1)) == [1.0, 5.0, 3.0]


def test_moving_average_smooths():
    signal = np.array([0.0, 10.0, 0.0, 10.0, 0.0, 10.0])
    smooth = moving_average(signal, 2)
    assert smooth.var() < signal.var()


# -- regressions against brute-force references -------------------------

def test_signal_to_noise_matches_brute_force_sample_variance():
    """The noise floor is the mean *sample* variance (ddof=1), matching
    welch_t_statistic — not the population variance (ddof=0) the first
    implementation used, which biased the SNR upward."""
    rng = np.random.default_rng(3)
    traces = rng.normal(0.0, 1.0, size=(30, 5))
    labels = np.array([0, 1, 2] * 10)
    snr = signal_to_noise(traces, labels)
    classes = np.unique(labels)
    means = np.stack([traces[labels == c].mean(axis=0) for c in classes])
    noise = np.stack([traces[labels == c].var(axis=0, ddof=1)
                      for c in classes]).mean(axis=0)
    expected = means.var(axis=0) / noise
    assert np.allclose(snr, expected)
    # ddof=0 would deflate the noise floor by (n-1)/n per class: make sure
    # the fix is actually observable on this data.
    noise0 = np.stack([traces[labels == c].var(axis=0, ddof=0)
                       for c in classes]).mean(axis=0)
    assert not np.allclose(expected, means.var(axis=0) / noise0)


def test_signal_to_noise_excludes_singleton_classes_from_noise():
    """A class with one trace has no variance estimate; counting it as
    zero-variance deflated the denominator and inflated the SNR."""
    traces = np.array([[1.0], [3.0], [1.0], [3.0], [100.0]])
    labels = np.array([0, 0, 1, 1, 2])
    snr = signal_to_noise(traces, labels)
    means = np.array([2.0, 2.0, 100.0])
    noise = 2.0  # mean of the two ddof=1 class variances; class 2 excluded
    assert np.allclose(snr, means.var() / noise)


def test_signal_to_noise_all_singletons_returns_zeros():
    traces = np.arange(6.0).reshape(3, 2)
    snr = signal_to_noise(traces, np.array([0, 1, 2]))
    assert list(snr) == [0.0, 0.0]


def test_moving_average_matches_brute_force_window_means():
    """Each output sample averages the samples actually inside the
    window — no implicit zero padding dragging the edges toward zero."""
    signal = np.array([4.0, 8.0, 6.0, 2.0, 10.0])
    for window in (2, 3, 4, 5):
        smooth = moving_average(signal, window)
        for i in range(signal.size):
            # The window 'same'-mode convolution places around sample i.
            lo = max(0, i - window // 2)
            hi = min(signal.size, i + (window - 1) // 2 + 1)
            assert smooth[i] == pytest.approx(signal[lo:hi].mean()), \
                (window, i)


def test_moving_average_edges_not_dragged_to_zero():
    signal = np.full(8, 5.0)
    smooth = moving_average(signal, 4)
    assert np.allclose(smooth, 5.0)  # zero padding would dip the edges


def test_moving_average_window_larger_than_signal_is_clamped():
    signal = np.array([2.0, 4.0, 6.0])
    smooth = moving_average(signal, 10)
    assert smooth.shape == signal.shape
    assert np.isfinite(smooth).all()
    assert smooth[1] == pytest.approx(4.0)


def test_moving_average_empty_signal():
    assert moving_average(np.array([]), 5).size == 0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=4,
                max_size=32))
def test_difference_of_means_antisymmetric(values):
    traces = np.array(values, dtype=np.float64).reshape(-1, 1)
    n = traces.shape[0]
    partition = np.array([0, 1] * (n // 2) + [0] * (n % 2))
    if partition.sum() == 0 or partition.sum() == n:
        return
    d1 = difference_of_means(traces, partition)
    d2 = difference_of_means(traces, 1 - partition)
    assert np.allclose(d1, -d2)


# -- streaming path ---------------------------------------------------------


def test_difference_of_means_streaming_matches_batch():
    rng = np.random.default_rng(31)
    traces = rng.normal(100, 2, size=(25, 12))
    partition = (rng.random(25) > 0.5).astype(int)
    np.testing.assert_allclose(
        difference_of_means(traces, partition, streaming=True),
        difference_of_means(traces, partition), rtol=1e-10)


def test_welch_t_streaming_matches_batch():
    rng = np.random.default_rng(37)
    traces = rng.normal(100, 2, size=(30, 10))
    partition = (np.arange(30) % 2).astype(int)
    np.testing.assert_allclose(
        welch_t_statistic(traces, partition, streaming=True),
        welch_t_statistic(traces, partition), rtol=1e-9)


def test_streaming_path_keeps_edge_case_semantics():
    traces = np.ones((3, 4))
    one_sided = np.zeros(3, dtype=int)
    for streaming in (False, True):
        assert list(difference_of_means(traces, one_sided,
                                        streaming=streaming)) == [0.0] * 4
        assert list(welch_t_statistic(traces, one_sided,
                                      streaming=streaming)) == [0.0] * 4
