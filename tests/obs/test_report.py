"""HTML leakage report: SVG primitives, section assembly, manifest path."""

import math

from repro import obs
from repro.obs.report import (MAX_POINTS, build_report, decimate,
                              report_from_manifest, svg_line_chart,
                              svg_stacked_bars, write_report)


def test_decimate_preserves_short_series_and_means_long_ones():
    short = [1.0, 2.0, 3.0]
    assert decimate(short) == short
    long = list(range(8000))
    out = decimate(long)
    assert len(out) == MAX_POINTS
    assert out[0] == sum(range(10)) / 10  # first bucket mean
    assert out[-1] > out[0]


def test_svg_line_chart_overlay_and_nonfinite():
    chart = svg_line_chart({"a": [0.0, 1.0, 2.0],
                            "b": [2.0, 1.0, 0.0]}, title="overlay")
    assert chart.startswith("<svg")
    assert chart.count("<polyline") == 2
    assert "overlay" in chart
    # NaN samples are dropped from the polyline, not rendered as NaN.
    chart = svg_line_chart({"a": [1.0, math.nan, 3.0]})
    assert "nan" not in chart.lower()
    assert svg_line_chart({"a": []}) == ""
    assert svg_line_chart({"a": [math.nan]}) == ""


def test_svg_stacked_bars():
    chart = svg_stacked_bars({"alu": {"xor": 5.0, "shift": 3.0},
                              "dbus": {"load": 10.0}}, title="units")
    assert chart.count("<rect") >= 6  # 3 segments + 3 legend swatches
    assert "alu" in chart and "dbus" in chart
    assert svg_stacked_bars({}) == ""
    assert svg_stacked_bars({"empty": {}}) == ""


def test_build_report_sections(tmp_path):
    leakage = {"budget_pj": 1e-6, "passed": False, "violations": 1,
               "label": "unit",
               "regions": [
                   {"region": "keyperm", "start": 0, "end": 10,
                    "protected": True, "cycles": 10,
                    "max_abs_diff_pj": 5.0, "mean_abs_diff_pj": 1.0,
                    "leaking_cycles": 4, "passed": False},
                   {"region": "ip", "start": 10, "end": 20,
                    "protected": False, "cycles": 10,
                    "max_abs_diff_pj": 0.0, "mean_abs_diff_pj": 0.0,
                    "leaking_cycles": 0, "passed": True}]}
    attribution = {"schema": "repro.obs.attribution/v1", "total_pj": 100.0,
                   "cells": [[0, "alu", "xor", 0, 60.0, 3],
                             [4, "dbus", "load", 1, 40.0, 2]],
                   "pc_info": {"0": {"asm": "xor $t0, $t1, $t2",
                                     "line": 7, "sliced": True}}}
    html = build_report("unit report",
                        summary={"total_uj": 1.25, "cycles": 100},
                        series={"diff": [0.0, 1.0, -1.0, 0.0]},
                        leakage=leakage, attribution=attribution,
                        meta={"schema": "test/v2"}, notes="a note")
    assert html.startswith("<!DOCTYPE html>")
    assert "unit report" in html
    assert "verdict-banner fail" in html  # headline verdict
    assert "FAIL" in html and "unprotected" in html
    assert "<svg" in html
    assert "Hotspots" in html
    assert "xor $t0, $t1, $t2" in html  # escaped asm reaches the table
    assert "a note" in html
    assert "test/v2" in html
    path = write_report(html, tmp_path / "sub" / "report.html")
    assert path.read_text() == html


def test_html_escapes_untrusted_strings():
    html = build_report("<script>alert(1)</script>",
                        summary={"<k>": "<v>"})
    assert "<script>" not in html
    assert "&lt;script&gt;" in html


def test_report_from_manifest_round_trip(obs_on, tmp_path):
    obs_on.attribution.book(pc=0, unit="alu", iclass="xor",
                            secure=False, pj=2.5)
    leakage = {"budget_pj": 1e-6, "passed": True, "violations": 0,
               "regions": [], "label": "unit"}
    manifest = obs.build_manifest(experiment_id="fig9",
                                  summary={"total_uj": 1.0},
                                  leakage=leakage)
    result = {"series": {"diff": [0.0, 0.5, 0.0]},
              "notes": "from the result json"}
    html = report_from_manifest(manifest, result)
    assert "fig9" in html
    assert "verdict-banner pass" in html
    assert "<polyline" in html  # the series chart made it in
    assert "from the result json" in html
    assert "Energy attribution" in html
    # Without the result JSON the report still builds (no charts).
    bare = report_from_manifest(manifest)
    assert "fig9" in bare and "Leakage budget" in bare
