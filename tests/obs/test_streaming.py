"""Streaming accumulators: batch equivalence, merge associativity,
disclosure-curve semantics."""

import numpy as np
import pytest

from repro.attacks.stats import difference_of_means, welch_t_statistic
from repro.obs.streaming import (MERGE_RTOL, CorrelationAccumulator,
                                 DisclosureCurve, MeanAccumulator,
                                 WelchTAccumulator, WelfordAccumulator,
                                 merged, stream_rows)


def _traces(n, cycles, seed=7):
    return np.random.default_rng(seed).normal(10.0, 3.0, size=(n, cycles))


# -- batch equivalence ------------------------------------------------------


def test_mean_accumulator_matches_numpy():
    traces = _traces(17, 40)
    accumulator = stream_rows(traces, MeanAccumulator())
    assert accumulator.count == 17
    np.testing.assert_allclose(accumulator.mean, traces.mean(axis=0),
                               rtol=1e-12)


def test_welford_matches_numpy_mean_and_variance():
    traces = _traces(23, 32, seed=11)
    accumulator = stream_rows(traces, WelfordAccumulator())
    np.testing.assert_allclose(accumulator.mean, traces.mean(axis=0),
                               rtol=1e-12)
    np.testing.assert_allclose(accumulator.variance(ddof=1),
                               traces.var(axis=0, ddof=1), rtol=1e-10)
    np.testing.assert_allclose(accumulator.variance(ddof=0),
                               traces.var(axis=0), rtol=1e-10)


def test_welford_variance_is_zero_below_ddof():
    accumulator = WelfordAccumulator()
    accumulator.update([1.0, 2.0])
    assert np.all(accumulator.variance(ddof=1) == 0.0)


def test_welch_t_matches_batch_statistic():
    traces = _traces(30, 24, seed=3)
    partition = (np.arange(30) % 2 == 0).astype(int)
    accumulator = stream_rows(traces, WelchTAccumulator(), groups=partition)
    batch = welch_t_statistic(traces, partition)
    np.testing.assert_allclose(accumulator.t_statistic(), batch, rtol=1e-9)


def test_mean_difference_matches_difference_of_means():
    traces = _traces(20, 16, seed=5)
    partition = (np.arange(20) >= 10).astype(int)
    accumulator = stream_rows(traces, WelchTAccumulator(), groups=partition)
    batch = difference_of_means(traces, partition)
    np.testing.assert_allclose(accumulator.mean_difference(), batch,
                               rtol=1e-10)


def test_welch_t_definite_leak_reports_signed_inf():
    accumulator = WelchTAccumulator()
    for _ in range(3):
        accumulator.update([1.0, 5.0, 2.0], 0)
        accumulator.update([1.0, 3.0, 4.0], 1)
    t = accumulator.t_statistic(definite_leaks=True)
    assert t[0] == 0.0                       # identical constants: no leak
    assert t[1] == float("-inf")             # group1 below group0
    assert t[2] == float("inf")
    assert accumulator.t_statistic(definite_leaks=False)[1] == 0.0
    assert accumulator.max_abs_t() == float("inf")


def test_welch_t_zeros_until_both_groups_have_two():
    accumulator = WelchTAccumulator()
    accumulator.update([1.0, 2.0], 0)
    accumulator.update([3.0, 4.0], 0)
    accumulator.update([5.0, 6.0], 1)
    assert np.all(accumulator.t_statistic(definite_leaks=True) == 0.0)


def test_correlation_matches_corrcoef():
    rng = np.random.default_rng(13)
    predictions = rng.integers(0, 5, size=40).astype(float)
    traces = np.outer(predictions, np.ones(8)) * rng.normal(
        1.0, 0.1, size=(40, 8)) + rng.normal(0, 0.5, size=(40, 8))
    accumulator = CorrelationAccumulator()
    for row, h in zip(traces, predictions):
        accumulator.update(row, h)
    rho = accumulator.correlation()
    for cycle in range(8):
        expected = np.corrcoef(predictions, traces[:, cycle])[0, 1]
        assert rho[cycle] == pytest.approx(expected, rel=1e-9)


def test_correlation_zero_for_constant_sides():
    accumulator = CorrelationAccumulator()
    for h in (1.0, 2.0, 3.0):
        accumulator.update([5.0, h], h)      # cycle 0 constant trace
    rho = accumulator.correlation()
    assert rho[0] == 0.0
    assert rho[1] == pytest.approx(1.0)
    constant = CorrelationAccumulator()
    for value in (1.0, 2.0, 3.0):
        constant.update([value], 7.0)        # constant prediction
    assert constant.correlation()[0] == 0.0


# -- merge: associativity, commutativity, shard equivalence -----------------


@pytest.mark.parametrize("factory,feed", [
    (MeanAccumulator, lambda acc, row, i: acc.update(row)),
    (WelfordAccumulator, lambda acc, row, i: acc.update(row)),
    (WelchTAccumulator, lambda acc, row, i: acc.update(row, i % 2)),
])
def test_merge_commutes_and_associates(factory, feed):
    traces = _traces(24, 12, seed=17)
    shards = []
    for start in (0, 8, 16):
        shard = factory()
        for i, row in enumerate(traces[start:start + 8], start=start):
            feed(shard, row, i)
        shards.append(shard)
    a, b, c = shards
    ab_c = merged(merged(a, b), c)
    a_bc = merged(a, merged(b, c))
    ba_c = merged(merged(b, a), c)

    def state(acc):
        if isinstance(acc, WelchTAccumulator):
            return acc.t_statistic()
        if isinstance(acc, WelfordAccumulator):
            return np.concatenate([acc.mean, acc.variance()])
        return acc.mean

    np.testing.assert_allclose(state(ab_c), state(a_bc), rtol=MERGE_RTOL)
    np.testing.assert_allclose(state(ab_c), state(ba_c), rtol=MERGE_RTOL)


def test_sharded_merge_matches_single_pass_within_tolerance():
    traces = _traces(40, 20, seed=23)
    partition = (np.arange(40) % 2).astype(int)
    single = stream_rows(traces, WelchTAccumulator(), groups=partition)
    combined = WelchTAccumulator()
    for start in range(0, 40, 10):
        shard = stream_rows(traces[start:start + 10], WelchTAccumulator(),
                            groups=partition[start:start + 10])
        combined.merge(shard)
    np.testing.assert_allclose(combined.t_statistic(), single.t_statistic(),
                               rtol=MERGE_RTOL)
    assert combined.count == single.count == 40


def test_merge_into_empty_copies_state():
    source = stream_rows(_traces(5, 6), WelfordAccumulator())
    empty = WelfordAccumulator()
    empty.merge(source)
    np.testing.assert_array_equal(empty.mean, source.mean)
    source.update(np.ones(6))                # no aliasing
    assert empty.count == 5


def test_merge_misaligned_raises():
    a = stream_rows(_traces(3, 4), WelfordAccumulator())
    b = stream_rows(_traces(3, 5), WelfordAccumulator())
    with pytest.raises(ValueError):
        a.merge(b)


def test_update_rejects_misaligned_and_matrix_rows():
    accumulator = MeanAccumulator()
    accumulator.update([1.0, 2.0])
    with pytest.raises(ValueError):
        accumulator.update([1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        accumulator.update(np.ones((2, 2)))


# -- disclosure curve -------------------------------------------------------


def test_disclosure_requires_sustained_crossing():
    curve = DisclosureCurve(threshold=4.5, mode="t")
    for traces, value in ((8, 4.9), (16, 4.2), (24, 5.0), (32, 6.0)):
        curve.record(traces, value)
    # The 8-trace blip does not count: only the crossing that holds
    # through the end of the budget does.
    assert curve.disclosure_traces == 24
    assert curve.final_value == 6.0


def test_disclosure_never_within_budget_is_none():
    curve = DisclosureCurve(threshold=4.5)
    curve.record(8, 1.0)
    curve.record(16, 4.4)
    assert curve.disclosure_traces is None


def test_disclosure_rank_mode_uses_lower_is_disclosed():
    curve = DisclosureCurve(threshold=0, mode="rank")
    for traces, rank in ((4, 12), (8, 0), (12, 3), (16, 0), (20, 0)):
        curve.record(traces, rank)
    assert curve.disclosure_traces == 16


def test_disclosure_curve_validates_inputs():
    with pytest.raises(ValueError):
        DisclosureCurve(threshold=4.5, mode="sideways")
    curve = DisclosureCurve(threshold=4.5)
    curve.record(8, 1.0)
    with pytest.raises(ValueError):
        curve.record(8, 2.0)


def test_disclosure_curve_to_dict_stringifies_inf():
    curve = DisclosureCurve(threshold=4.5)
    curve.record(2, float("inf"))
    curve.record(4, float("inf"))
    document = curve.to_dict()
    assert document["values"] == ["inf", "inf"]
    assert document["disclosure_traces"] == 2
