"""Leakage telemetry: region construction, budget verdicts, population
statistics, and the paper's headline acceptance pair (fig8 FAIL / fig9
PASS)."""

import numpy as np
import pytest

from repro import obs
from repro.harness.runner import des_run
from repro.obs.leakage import (DEFAULT_BUDGET_PJ, DEFAULT_BUDGET_T, Region,
                               assess_pair, assess_population,
                               regions_from_markers)
from repro.programs import markers as mk
from repro.programs.des_source import DesProgramSpec
from repro.programs.workloads import compile_des

KEY_A = 0x133457799BBCDFF1
KEY_C = 0x0E329232EA6D0D73
PT_A = 0x0123456789ABCDEF


def _key_pair(masking):
    program = compile_des(DesProgramSpec(rounds=1), masking=masking).program
    return (des_run(program, KEY_A, PT_A), des_run(program, KEY_C, PT_A))


# -- region construction ---------------------------------------------------


def test_regions_from_markers_synthetic():
    markers = [(10, mk.M_IP_START), (20, mk.M_IP_END),
               (30, mk.M_KEYPERM_START), (40, mk.M_KEYPERM_END),
               (50, mk.M_ROUND_BASE), (70, mk.M_ROUND_BASE + 1),
               (90, mk.M_FP_START), (95, mk.M_FP_END)]
    regions = {r.name: r for r in regions_from_markers(markers, 100)}
    assert (regions["ip"].start, regions["ip"].end) == (10, 20)
    assert not regions["ip"].protected
    assert regions["keyperm"].protected
    assert (regions["round00"].start, regions["round00"].end) == (50, 70)
    assert (regions["round01"].start, regions["round01"].end) == (70, 90)
    assert regions["round01"].protected
    assert (regions["fp"].start, regions["fp"].end) == (90, 95)


def test_regions_from_real_run():
    run, _ = _key_pair("none")
    regions = regions_from_markers(run.trace.markers, run.cycles)
    names = [r.name for r in regions]
    assert names == ["ip", "keyperm", "round00", "fp"]
    assert [r.protected for r in regions] == [False, True, True, False]
    # Regions tile without overlap in start order.
    for earlier, later in zip(regions, regions[1:]):
        assert earlier.end <= later.start + 1


# -- pair assessment -------------------------------------------------------


def test_unmasked_pair_fails_budget():
    run_a, run_b = _key_pair("none")
    report = assess_pair(run_a.trace, run_b.trace, label="unmasked")
    assert not report.passed
    assert len(report.violations) == 2  # keyperm + round00
    violated = {v.region for v in report.violations}
    assert violated == {"keyperm", "round00"}
    assert all(v.max_abs_diff_pj > DEFAULT_BUDGET_PJ
               for v in report.violations)


def test_masked_pair_passes_budget():
    run_a, run_b = _key_pair("selective")
    report = assess_pair(run_a.trace, run_b.trace, label="masked")
    assert report.passed
    assert report.violations == []
    for assessment in report.regions:
        if assessment.protected:
            assert assessment.max_abs_diff_pj == 0.0
            assert assessment.leaking_cycles == 0


def test_unprotected_regions_never_count_as_violations():
    run_a, run_b = _key_pair("selective")
    report = assess_pair(run_a.trace, run_b.trace)
    fp = next(a for a in report.regions if a.region == "fp")
    # The final permutation legitimately differs (ciphertext handling)
    # but is not a claimed-protected region, so the report still passes.
    assert fp.max_abs_diff_pj > 0
    assert report.passed


def test_to_dict_and_render():
    run_a, run_b = _key_pair("none")
    report = assess_pair(run_a.trace, run_b.trace, label="pair")
    record = report.to_dict()
    assert record["passed"] is False
    assert record["violations"] == 2
    assert record["label"] == "pair"
    assert {r["region"] for r in record["regions"]} \
        == {"ip", "keyperm", "round00", "fp"}
    text = report.render()
    assert "FAIL" in text
    assert "keyperm" in text
    assert "2 violation(s)" in text


def test_publish_metrics(obs_scope):
    run_a, run_b = _key_pair("none")
    report = assess_pair(run_a.trace, run_b.trace)
    report.publish_metrics(obs_scope.registry)
    totals = obs.snapshot_totals(obs_scope.registry.snapshot())
    assert totals["leakage_budget_violations"] == 2
    assert totals["leakage_region_passed{region=keyperm}"] == 0.0
    assert totals["leakage_region_max_abs_diff_pj{region=keyperm}"] > 0


def test_custom_regions_and_budget():
    trace = np.zeros(100)
    trace[50] = 3.0

    class FakeTrace:
        def __init__(self, energy):
            self.energy = energy
            self.markers = ()

        def diff(self, other):
            return self.energy - other.energy

    a, b = FakeTrace(trace), FakeTrace(np.zeros(100))
    regions = [Region("lo", 0, 50, protected=True),
               Region("hi", 50, 100, protected=True)]
    report = assess_pair(a, b, budget_pj=2.0, regions=regions)
    assert [r.passed for r in report.regions] == [True, False]
    report = assess_pair(a, b, budget_pj=4.0, regions=regions)
    assert report.passed


# -- population assessment -------------------------------------------------


def test_population_unmasked_fails_masked_passes():
    rng = np.random.default_rng(7)
    partition = np.array([0, 1] * 8)
    markers = [(0, mk.M_KEYPERM_START), (64, mk.M_KEYPERM_END)]
    flat = rng.normal(100.0, 0.1, size=(16, 64))
    leaky = flat.copy()
    leaky[partition == 1, 20:30] += 50.0  # strong partition-correlated step
    failing = assess_population(leaky, partition, markers,
                                budget_t=DEFAULT_BUDGET_T)
    assert not failing.passed
    keyperm = failing.regions[0]
    assert keyperm.welch_t_max is not None
    assert keyperm.welch_t_max > DEFAULT_BUDGET_T
    assert keyperm.snr_max is not None
    passing = assess_population(flat, partition, markers,
                                budget_t=DEFAULT_BUDGET_T)
    assert passing.passed
    assert passing.regions[0].welch_t_max < DEFAULT_BUDGET_T
    assert passing.budget_t == DEFAULT_BUDGET_T


# -- acceptance: the paper's figures as budget checks ----------------------


def test_fig8_fails_and_fig9_passes_the_budget():
    from repro.harness.experiments import (fig08_key_diff_unmasked,
                                           fig09_key_diff_masked)

    unmasked = fig08_key_diff_unmasked()
    masked = fig09_key_diff_masked()
    assert unmasked.leakage is not None and not unmasked.leakage.passed
    assert masked.leakage is not None and masked.leakage.passed
    assert len(masked.leakage.violations) == 0
