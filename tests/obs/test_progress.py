"""Progress telemetry: sinks, heartbeat rate limiting, reporter stack,
environment wiring."""

import json

import pytest

from repro import obs
from repro.obs import progress


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def read_jsonl(path):
    return [json.loads(line)
            for line in path.read_text().strip().splitlines()]


# -- sink -------------------------------------------------------------------


def test_sink_appends_json_lines(tmp_path):
    target = tmp_path / "progress.jsonl"
    sink = progress.ProgressSink(str(target))
    sink.emit({"b": 2, "a": 1})
    sink.emit({"event": "x"})
    sink.close()
    lines = target.read_text().splitlines()
    assert json.loads(lines[0]) == {"a": 1, "b": 2}
    assert lines[0].index('"a"') < lines[0].index('"b"')  # sorted keys
    # Append mode: a second sink extends rather than truncates.
    again = progress.ProgressSink(str(target))
    again.emit({"event": "y"})
    again.close()
    assert len(read_jsonl(target)) == 3


def test_sink_stderr_aliases(capsys):
    for target in ("-", "stderr"):
        sink = progress.ProgressSink(target)
        sink.emit({"event": "hb"})
        sink.close()                         # must not close sys.stderr
    err = capsys.readouterr().err
    assert err.count('"event": "hb"') == 2


# -- reporter ---------------------------------------------------------------


def test_reporter_rate_limits_heartbeats(tmp_path):
    clock = FakeClock()
    target = tmp_path / "hb.jsonl"
    reporter = progress.ProgressReporter(
        10, label="tvla", sink=progress.ProgressSink(str(target)),
        interval_s=1.0, clock=clock)
    reporter.job_done(1)                     # first beat always emits
    reporter.job_done(2)                     # suppressed: interval not up
    clock.now += 1.5
    reporter.job_done(3)                     # emits
    reporter.heartbeat(force=True)           # forced emits regardless
    reporter.finish()                        # terminal record always emits
    records = read_jsonl(target)
    assert [r["event"] for r in records] == \
        ["heartbeat", "heartbeat", "heartbeat", "finished"]
    assert records[1]["done"] == 3
    assert records[-1]["total"] == 10


def test_reporter_record_fields_and_watermarks():
    clock = FakeClock()
    reporter = progress.ProgressReporter(8, label="campaign",
                                         interval_s=0.0, clock=clock)
    clock.now += 2.0
    reporter.job_done(4)
    reporter.note_failure()
    reporter.note_retry()
    reporter.set_watermark("max_abs_t", 3.25)
    reporter.set_watermark("rank", float("inf"))
    record = reporter.heartbeat(force=True)
    assert record["done"] == 4 and record["total"] == 8
    assert record["failed"] == 1 and record["retried"] == 1
    assert record["rate_per_s"] == pytest.approx(2.0)
    assert record["eta_s"] == pytest.approx(2.0)
    assert record["max_abs_t"] == 3.25
    assert record["rank"] == "inf"           # JSON-safe encoding
    assert json.dumps(record)                # whole record serializes


def test_reporter_finish_is_idempotent(tmp_path):
    target = tmp_path / "hb.jsonl"
    reporter = progress.ProgressReporter(
        2, sink=progress.ProgressSink(str(target)), clock=FakeClock())
    reporter.finish()
    reporter.finish()
    assert len(read_jsonl(target)) == 1


def test_heartbeat_publishes_counter_when_obs_enabled(obs_on):
    reporter = progress.ProgressReporter(4, label="run_stream",
                                         interval_s=0.0, clock=FakeClock())
    reporter.heartbeat(force=True)
    reporter.heartbeat(force=True)
    assert obs.registry().counter("progress_heartbeats") \
        .value(label="run_stream") == 2


def test_heartbeat_publishes_nothing_when_obs_disabled(obs_scope):
    assert not obs.enabled()
    reporter = progress.ProgressReporter(4, interval_s=0.0,
                                         clock=FakeClock())
    reporter.heartbeat(force=True)
    assert len(obs.registry().counter("progress_heartbeats")) == 0


# -- current-reporter stack -------------------------------------------------


def test_active_stack_nests_and_unwinds():
    assert progress.current() is None
    outer = progress.ProgressReporter(1, clock=FakeClock())
    inner = progress.ProgressReporter(1, clock=FakeClock())
    with progress.active(outer):
        assert progress.current() is outer
        with progress.active(inner):
            assert progress.current() is inner
        assert progress.current() is outer
    assert progress.current() is None


def test_active_none_is_a_noop():
    with progress.active(None) as reporter:
        assert reporter is None
        assert progress.current() is None


# -- environment wiring -----------------------------------------------------


def test_sink_from_env_unset_is_none(monkeypatch):
    monkeypatch.delenv(progress.PROGRESS_ENV, raising=False)
    assert progress.sink_from_env() is None


def test_reporter_from_env_builds_configured_reporter(monkeypatch, tmp_path):
    target = tmp_path / "hb.jsonl"
    monkeypatch.setenv(progress.PROGRESS_ENV, str(target))
    monkeypatch.setenv(progress.INTERVAL_ENV, "0.25")
    reporter = progress.reporter_from_env(16, label="run_jobs")
    assert reporter is not None
    assert reporter.total == 16
    assert reporter.interval_s == 0.25
    assert reporter.sink.target == str(target)


def test_reporter_from_env_yields_none_when_reporter_active(monkeypatch):
    monkeypatch.setenv(progress.PROGRESS_ENV, "-")
    outer = progress.ProgressReporter(4, clock=FakeClock())
    with progress.active(outer):
        # A streaming campaign owns the batch; nested run_jobs chunks
        # must not spin up their own reporters and double-count.
        assert progress.reporter_from_env(2) is None
    assert progress.reporter_from_env(2) is not None


def test_interval_from_env_falls_back_on_garbage(monkeypatch):
    monkeypatch.setenv(progress.INTERVAL_ENV, "soon")
    assert progress.interval_from_env() == progress.DEFAULT_INTERVAL_S
    monkeypatch.setenv(progress.INTERVAL_ENV, "-3")
    assert progress.interval_from_env() == 0.0


# -- sink survives a vanished consumer (EPIPE, closed stream) ---------------


def test_sink_survives_closed_stream_and_counts_drops(tmp_path, caplog):
    """Telemetry must never kill the campaign: a stream closed under the
    sink disables it after one warning; later emits are counted, not
    raised."""
    import logging

    target = tmp_path / "progress.jsonl"
    sink = progress.ProgressSink(str(target))
    sink.emit({"event": "hb"})
    sink._stream.close()                     # consumer vanished
    with caplog.at_level(logging.WARNING, "repro.obs.progress"):
        sink.emit({"event": "hb"})           # must not raise
    assert sink.disabled and sink.dropped == 1
    assert "telemetry disabled" in caplog.text
    sink.emit({"event": "hb"})               # silent, counted
    assert sink.dropped == 2
    assert len(caplog.records) == 1          # warned exactly once
    assert len(read_jsonl(target)) == 1      # only the pre-failure record


def test_sink_survives_real_epipe(tmp_path):
    """An actual broken pipe (``tail`` killed mid-run): write into a pipe
    whose read end is gone."""
    import os

    read_fd, write_fd = os.pipe()
    fifo_stream = os.fdopen(write_fd, "w", encoding="utf-8")
    sink = progress.ProgressSink(str(tmp_path / "unused"))
    sink._stream = fifo_stream               # simulate an open consumer
    sink._owns_stream = True
    sink.emit({"event": "hb"})
    os.close(read_fd)                        # consumer dies
    sink.emit({"padding": "x" * 65536})      # overflow the pipe buffer
    sink.emit({"event": "hb"})
    assert sink.disabled
    assert sink.dropped == 2


def test_sink_error_publishes_obs_counter(tmp_path, obs_on):
    target = tmp_path / "progress.jsonl"
    sink = progress.ProgressSink(str(target))
    sink.emit({"event": "hb"})
    sink._stream.close()
    sink.emit({"event": "hb"})
    assert obs.registry().counter("progress_sink_errors").value() == 1


def test_reporter_finishes_cleanly_on_a_dead_sink(tmp_path):
    """The reporter keeps working after its sink dies: heartbeats and the
    terminal record are dropped, not raised into the batch."""
    target = tmp_path / "hb.jsonl"
    sink = progress.ProgressSink(str(target))
    reporter = progress.ProgressReporter(4, sink=sink, interval_s=0.0,
                                         clock=FakeClock())
    reporter.job_done(1)
    sink._stream.close()
    reporter.job_done(2)                     # sink dies here, silently
    reporter.heartbeat(force=True)
    reporter.finish()
    assert sink.disabled
    assert len(read_jsonl(target)) == 1
