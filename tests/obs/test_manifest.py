"""Run manifests: round-trip, atomicity, aggregation, diff, rendering."""

import json

import pytest

from repro import obs


def _sample_manifest(obs_on) -> dict:
    obs_on.registry.counter("ops").inc(5, opcode="xor", secure=True)
    obs_on.registry.gauge("energy_component_pj").add(12.5, component="dbus")
    with obs.span("experiment", id="unit"):
        with obs.span("execute"):
            pass
    return obs.build_manifest(
        experiment_id="unit",
        config={"jobs_requested": 2, "jobs_effective": 2, "seed": 7},
        summary={"total_uj": 1.25})


def test_manifest_write_load_round_trip(tmp_path, obs_on):
    manifest = _sample_manifest(obs_on)
    path = obs.write_manifest(manifest, tmp_path / "run.json")
    loaded = obs.load_manifest(path)
    assert loaded == json.loads(json.dumps(manifest))  # JSON-exact
    assert loaded["schema"] == "repro.obs.manifest/v2"
    assert loaded["config"]["jobs_effective"] == 2
    assert loaded["spans"][0]["name"] == "experiment"
    assert loaded["spans"][0]["children"][0]["name"] == "execute"
    # Atomic write leaves no temp droppings next to the manifest.
    assert [p.name for p in tmp_path.iterdir()] == ["run.json"]


def test_manifest_captures_current_context_by_default(obs_on):
    obs.counter("ops").inc(3)
    manifest = obs.build_manifest()
    assert obs.snapshot_totals(manifest["metrics"])["ops"] == 3
    assert manifest["package"]["name"] == "repro"
    assert len(manifest["toolchain_fingerprint"]) == 16
    assert "python" in manifest["platform"]


def test_load_manifest_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(ValueError):
        obs.load_manifest(path)


def test_load_manifest_accepts_v1_documents(tmp_path):
    # v2 only adds optional sections; v1 archives must keep loading.
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"schema": "repro.obs.manifest/v1",
                                "metrics": {}, "spans": []}))
    assert obs.load_manifest(path)["schema"] == "repro.obs.manifest/v1"


def test_manifest_v2_sections_default_from_context(obs_on):
    # No attribution collected, no leakage passed: the optional sections
    # are absent, so the document has the exact v1 field set.
    plain = obs.build_manifest()
    assert "attribution" not in plain
    assert "leakage" not in plain

    obs_on.attribution.book(pc=0, unit="alu", iclass="xor",
                            secure=False, pj=2.5)
    leakage = {"budget_pj": 1e-6, "passed": True, "violations": 0,
               "regions": [], "label": "unit"}
    manifest = obs.build_manifest(leakage=leakage)
    assert manifest["attribution"]["total_pj"] == pytest.approx(2.5)
    assert manifest["attribution"]["by_unit"]["alu"]["pj"] \
        == pytest.approx(2.5)
    assert manifest["leakage"]["passed"] is True
    text = obs.summarize_manifest(manifest)
    assert "attribution:" in text
    assert "leakage:" in text and "PASS" in text


def test_aggregate_of_one_manifest_is_identity(obs_on):
    manifest = _sample_manifest(obs_on)
    aggregate = obs.aggregate_manifests([manifest])
    assert aggregate["manifests"] == 1
    assert aggregate["experiment_ids"] == ["unit"]
    assert aggregate["metrics"] == manifest["metrics"]


def test_aggregate_of_two_manifests_doubles_totals(obs_on):
    manifest = _sample_manifest(obs_on)
    aggregate = obs.aggregate_manifests([manifest, manifest])
    totals = obs.snapshot_totals(aggregate["metrics"])
    assert totals["ops{opcode=xor,secure=true}"] == 10
    assert totals["energy_component_pj{component=dbus}"] == 25.0


def test_diff_totals_reads_absent_series_as_zero(obs_on):
    manifest = _sample_manifest(obs_on)
    empty = obs.build_manifest(metrics={}, spans=[])
    rows = {name: (before, after)
            for name, before, after in obs.diff_totals(empty, manifest)}
    assert rows["ops{opcode=xor,secure=true}"] == (0.0, 5.0)
    same = obs.diff_totals(manifest, manifest)
    assert all(before == after for _, before, after in same)


def test_summarize_manifest_renders_all_sections(obs_on):
    text = obs.summarize_manifest(_sample_manifest(obs_on))
    assert "manifest: unit" in text
    assert "jobs_effective" in text
    assert "total_uj" in text
    assert "ops{opcode=xor,secure=true}" in text
    assert "experiment [id=unit]" in text  # rendered span tree
