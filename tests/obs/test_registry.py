"""Metrics registry: label handling, cardinality, histogram buckets, merge."""

import importlib

import pytest

from repro.obs.registry import (CardinalityError, Histogram, MetricsRegistry,
                                snapshot_totals)

# `repro.obs.registry` the *function* shadows the submodule on attribute
# lookup, so resolve the module object explicitly for monkeypatching.
registry_module = importlib.import_module("repro.obs.registry")


# -- counters ---------------------------------------------------------------


def test_counter_labels_are_order_insensitive():
    registry = MetricsRegistry()
    counter = registry.counter("ops")
    counter.inc(opcode="xor", secure=True)
    counter.inc(2, secure=True, opcode="xor")
    assert counter.value(opcode="xor", secure=True) == 3
    assert counter.value(secure=True, opcode="xor") == 3
    assert len(counter) == 1  # one series, not two


def test_counter_bool_labels_stringify_lowercase():
    registry = MetricsRegistry()
    registry.counter("ops").inc(secure=True)
    registry.counter("ops").inc(secure=False)
    snapshot = registry.snapshot()
    labels = [series["labels"] for series in snapshot["ops"]["series"]]
    assert {"secure": "false"} in labels
    assert {"secure": "true"} in labels


def test_counter_rejects_negative_increment():
    counter = MetricsRegistry().counter("ops")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_total_sums_all_series():
    counter = MetricsRegistry().counter("ops")
    counter.inc(2, opcode="xor")
    counter.inc(3, opcode="lw")
    assert counter.total() == 5
    assert counter.value(opcode="sw") == 0  # unseen series reads zero


def test_gauge_set_overwrites_add_accumulates():
    gauge = MetricsRegistry().gauge("energy")
    gauge.set(10.0, component="clock")
    gauge.set(4.0, component="clock")
    gauge.add(1.5, component="clock")
    assert gauge.value(component="clock") == 5.5


# -- cardinality ceiling ----------------------------------------------------


def test_cardinality_ceiling_raises(monkeypatch):
    monkeypatch.setattr(registry_module, "MAX_SERIES_PER_METRIC", 4)
    counter = MetricsRegistry().counter("addresses")
    for address in range(4):
        counter.inc(address=address)
    with pytest.raises(CardinalityError):
        counter.inc(address=4)
    # Existing series are still writable at the ceiling.
    counter.inc(address=0)
    assert counter.value(address=0) == 2


def test_kind_conflict_raises_type_error():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


# -- histogram bucket edges -------------------------------------------------


def test_histogram_value_on_bound_lands_in_that_bucket():
    histogram = Histogram("h", buckets=(1.0, 2.0))
    histogram.observe(1.0)   # == first bound -> bucket 0
    histogram.observe(1.5)   # -> bucket 1
    histogram.observe(2.0)   # == second bound -> bucket 1
    histogram.observe(2.5)   # past the last bound -> +Inf bucket
    (_, series), = histogram.series()
    assert series.counts == [1, 2, 1]
    assert series.count == 4
    assert series.sum == pytest.approx(7.0)
    assert (series.min, series.max) == (1.0, 2.5)


def test_histogram_buckets_sorted_and_nonempty():
    assert Histogram("h", buckets=(5.0, 1.0)).buckets == (1.0, 5.0)
    with pytest.raises(ValueError):
        Histogram("h", buckets=())


def test_histogram_summary_unseen_series_is_zeros():
    histogram = Histogram("h")
    assert histogram.summary(label="nope") == {
        "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
        "p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_histogram_quantile_zero_count_is_zero():
    # regression: quantile() on a never-observed series must not divide
    # by a zero count or emit NaN/Inf into snapshots
    histogram = Histogram("h")
    assert histogram.quantile(0.95) == 0.0
    assert histogram.quantile(0.5, label="nope") == 0.0


def test_histogram_summary_mean():
    histogram = Histogram("h", buckets=(10.0,))
    for value in (1.0, 2.0, 6.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 3
    assert summary["mean"] == pytest.approx(3.0)
    assert summary["min"] == 1.0
    assert summary["max"] == 6.0


# -- snapshot / merge -------------------------------------------------------


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("ops", "retired ops").inc(7, opcode="xor", secure=True)
    registry.gauge("energy_pj").add(12.5, component="dbus")
    histogram = registry.histogram("wall", buckets=(0.5, 1.0))
    histogram.observe(0.25)
    histogram.observe(2.0)
    return registry


def test_merge_snapshot_doubles_everything():
    registry = _populated_registry()
    snapshot = registry.snapshot()
    registry.merge_snapshot(snapshot)
    assert registry.counter("ops").value(opcode="xor", secure=True) == 14
    assert registry.gauge("energy_pj").value(component="dbus") == 25.0
    summary = registry.histogram("wall").summary()
    assert summary["count"] == 4
    assert summary["sum"] == pytest.approx(4.5)
    assert (summary["min"], summary["max"]) == (0.25, 2.0)


def test_merge_into_empty_registry_reproduces_snapshot():
    snapshot = _populated_registry().snapshot()
    fresh = MetricsRegistry()
    fresh.merge_snapshot(snapshot)
    assert fresh.snapshot() == snapshot


def test_merge_histogram_bucket_mismatch_raises():
    registry = MetricsRegistry()
    registry.histogram("wall", buckets=(0.5, 1.0)).observe(0.1)
    snapshot = registry.snapshot()
    other = MetricsRegistry()
    other.histogram("wall", buckets=(0.25, 1.0))  # incompatible layout
    with pytest.raises(ValueError):
        other.merge_snapshot(snapshot)


def test_merge_unknown_kind_raises():
    with pytest.raises(ValueError):
        MetricsRegistry().merge_snapshot(
            {"weird": {"kind": "summary", "series": []}})


def test_snapshot_totals_formatting():
    totals = snapshot_totals(_populated_registry().snapshot())
    assert totals["ops{opcode=xor,secure=true}"] == 7
    assert totals["energy_pj{component=dbus}"] == 12.5
    assert totals["wall_count"] == 2
    assert totals["wall_sum"] == pytest.approx(2.25)
