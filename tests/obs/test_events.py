"""JSONL event log: emit/replay, rotation, torn tails, timelines."""

import json
import threading

import pytest

from repro.obs.events import (SCHEMA, EventLog, replay_events,
                              timeline_from_events)


def test_emit_writes_schema_stamped_jsonl(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("received", id="req-1", client="cli")
        log.emit("terminal", id="req-1", state="done")
    lines = [json.loads(line) for line in
             path.read_text().splitlines()]
    assert [line["event"] for line in lines] == ["received", "terminal"]
    assert all(line["schema"] == SCHEMA for line in lines)
    assert all(line["ts"] > 0 for line in lines)
    assert lines[0]["client"] == "cli"
    assert log.events_written == 2


def test_replay_round_trips_fields(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("chunk", id="req-1", done=16, total=32)
    events = replay_events(path)
    assert len(events) == 1
    assert events[0]["done"] == 16 and events[0]["total"] == 32


def test_rotation_keeps_bounded_two_file_window(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path, max_bytes=4096)
    for index in range(200):
        log.emit("tick", id=f"req-{index}", padding="x" * 64)
    log.close()
    assert log.rotations >= 1
    assert log.rotated_path.exists()
    assert path.stat().st_size <= 4096
    assert log.rotated_path.stat().st_size <= 4096
    # replay order matches write order across the rotation boundary
    ids = [event["id"] for event in replay_events(path)]
    assert ids == sorted(ids, key=lambda i: int(i.split("-")[1]))
    assert len(ids) < 200  # older rotations were dropped, by design


def test_replay_skips_torn_tail_and_foreign_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("received", id="req-1")
        log.emit("terminal", id="req-1")
    with open(path, "ab") as stream:
        stream.write(b'{"schema": "other/v9", "event": "noise"}\n')
        stream.write(b'{"schema": "' + SCHEMA.encode() + b'", "ev')
    events = replay_events(path)
    assert [event["event"] for event in events] == ["received",
                                                    "terminal"]


def test_replay_missing_file_is_empty(tmp_path):
    assert replay_events(tmp_path / "absent.jsonl") == []


def test_timeline_from_events_filters_and_rebases(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("received", id="req-1", trace_id="tr-a", client="cli")
        log.emit("received", id="req-2", trace_id="tr-b")
        log.emit("admitted", id="req-1", trace_id="tr-a", queue_depth=1)
        log.emit("terminal", id="req-1", trace_id="tr-a", state="done")
    timeline = timeline_from_events(replay_events(path), "req-1")
    assert [entry["event"] for entry in timeline] == \
        ["received", "admitted", "terminal"]
    assert timeline[0]["t_s"] == 0.0
    assert all(entry["t_s"] >= 0.0 for entry in timeline)
    # detail fields survive, transport fields do not
    assert timeline[1]["queue_depth"] == 1
    assert "trace_id" not in timeline[0] and "ts" not in timeline[0]


def test_unwritable_path_degrades_to_warning(tmp_path):
    blocked = tmp_path / "dir-not-file"
    blocked.mkdir()
    with pytest.warns(RuntimeWarning):
        log = EventLog(blocked)  # opening a directory fails
    log.emit("received", id="req-1")  # silently dropped, no raise
    assert log.events_written == 0
    log.close()


def test_concurrent_emitters_keep_lines_whole(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path, max_bytes=16 * 1024)

    def pound(worker: int) -> None:
        for index in range(50):
            log.emit("tick", id=f"w{worker}-{index}")

    threads = [threading.Thread(target=pound, args=(worker,))
               for worker in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    log.close()
    events = replay_events(path)
    assert len(events) == log.events_written
    assert all(event["schema"] == SCHEMA for event in events)
