"""Shared fixtures for the observability suite.

Every test that flips the sink on must leave the process in the default
(disabled) state, and must not leak metrics or spans into the module-level
context other tests see — hence the scoped fixtures below.
"""

import pytest

from repro import obs


@pytest.fixture
def obs_scope():
    """A fresh registry+tracer pushed for the test; sink state untouched."""
    with obs.scope() as scoped:
        yield scoped


@pytest.fixture
def obs_on():
    """Sink enabled inside a fresh scope; disabled again afterwards."""
    was_enabled = obs.enabled()
    with obs.scope() as scoped:
        obs.enable()
        try:
            yield scoped
        finally:
            if not was_enabled:
                obs.disable()
