"""Span tracing: nesting, serialization, grafting, rendering, no-op sink."""

from repro import obs
from repro.obs.spans import Tracer, render_tree


def test_span_nesting_builds_a_tree():
    tracer = Tracer()
    with tracer.span("experiment", id="tab1"):
        with tracer.span("job", label="a"):
            with tracer.span("compile"):
                pass
            with tracer.span("execute"):
                pass
        with tracer.span("job", label="b"):
            pass
    (root,) = tracer.roots
    assert root.name == "experiment"
    assert [child.name for child in root.children] == ["job", "job"]
    assert [g.name for g in root.children[0].children] == ["compile",
                                                           "execute"]
    assert tracer.current is None  # fully unwound


def test_span_times_are_recorded():
    tracer = Tracer()
    with tracer.span("work") as record:
        total = sum(range(1000))
    assert total == 499500
    assert record.wall_s >= 0.0
    assert record.cpu_s >= 0.0


def test_tree_round_trips_through_dicts():
    tracer = Tracer()
    with tracer.span("outer", kind="test"):
        with tracer.span("inner"):
            pass
    tree = tracer.tree()
    assert tree[0]["name"] == "outer"
    assert tree[0]["attributes"] == {"kind": "test"}
    assert tree[0]["children"][0]["name"] == "inner"
    assert "attributes" not in tree[0]["children"][0]

    receiver = Tracer()
    with receiver.span("parent"):
        receiver.attach(tree)  # graft under the open span (worker -> parent)
    grafted = receiver.tree()
    assert grafted[0]["children"][0]["name"] == "outer"
    assert grafted[0]["children"][0]["children"][0]["name"] == "inner"


def test_to_dict_coerces_non_json_attributes():
    # Regression: attributes are caller-supplied and used to crash
    # manifest serialization when a Path, tuple, or dataclass slipped in.
    import json
    from pathlib import Path

    tracer = Tracer()
    with tracer.span("job", path=Path("/tmp/x"), shape=(4, 2),
                     label="plain", count=3, ratio=0.5, flag=True,
                     missing=None):
        pass
    attributes = tracer.tree()[0]["attributes"]
    assert attributes["label"] == "plain"          # primitives untouched
    assert attributes["count"] == 3
    assert attributes["ratio"] == 0.5
    assert attributes["flag"] is True
    assert attributes["missing"] is None
    assert attributes["path"] == repr(Path("/tmp/x"))
    assert attributes["shape"] == repr((4, 2))
    json.dumps(tracer.tree())                      # serializes end to end


def test_attach_without_open_span_adds_roots():
    tracer = Tracer()
    tracer.attach([{"name": "orphan", "wall_s": 0.5, "cpu_s": 0.4}])
    assert tracer.tree()[0]["name"] == "orphan"
    assert tracer.tree()[0]["wall_s"] == 0.5


def test_render_tree_connectors_and_attributes():
    tree = [{"name": "experiment", "wall_s": 1.0, "cpu_s": 0.9,
             "attributes": {"id": "tab1"},
             "children": [
                 {"name": "compile", "wall_s": 0.25, "cpu_s": 0.2},
                 {"name": "execute", "wall_s": 0.75, "cpu_s": 0.7}]}]
    lines = render_tree(tree)
    assert lines[0].startswith("└─ experiment [id=tab1]")
    assert "wall=1.000s" in lines[0]
    assert lines[1].startswith("   ├─ compile")
    assert lines[2].startswith("   └─ execute")


def test_obs_span_is_noop_when_disabled(obs_scope):
    assert not obs.enabled()
    with obs.span("invisible"):
        pass
    assert obs_scope.tracer.tree() == []


def test_obs_span_records_when_enabled(obs_on):
    with obs.span("visible", why="test"):
        pass
    tree = obs_on.tracer.tree()
    assert tree[0]["name"] == "visible"
    assert tree[0]["attributes"] == {"why": "test"}


def test_phase_totals_folds_indexed_siblings():
    from repro.obs.spans import phase_totals

    tracer = Tracer()
    with tracer.span("compile"):
        pass
    for number in range(3):
        with tracer.span(f"chunk[{number}]"):
            with tracer.span("job"):
                pass
    totals = phase_totals(tracer.tree())
    assert set(totals) == {"compile", "chunk", "job"}
    assert totals["chunk"]["count"] == 3
    assert totals["job"]["count"] == 3
    assert totals["chunk"]["wall_s"] >= 0.0


def test_phase_totals_unfolded_keeps_indices():
    from repro.obs.spans import phase_totals

    tracer = Tracer()
    with tracer.span("chunk[0]"):
        pass
    with tracer.span("chunk[1]"):
        pass
    totals = phase_totals(tracer.tree(), fold_indexed=False)
    assert set(totals) == {"chunk[0]", "chunk[1]"}


def test_count_spans_counts_every_node():
    from repro.obs.spans import count_spans

    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
        with tracer.span("c"):
            with tracer.span("d"):
                pass
    assert count_spans(tracer.tree()) == 4
    assert count_spans([]) == 0


def test_forced_scope_enables_without_global_sink():
    assert not obs.enabled()
    with obs.scope(force=True) as scoped:
        assert obs.enabled()
        assert not obs.attribution_enabled()
        with obs.span("traced"):
            pass
        assert scoped.tracer.tree()[0]["name"] == "traced"
    assert not obs.enabled()  # force is scoped, not sticky


def test_forced_scope_attribution_flag():
    with obs.scope(force=True, attribution=True):
        assert obs.enabled()
        assert obs.attribution_enabled()
    assert not obs.attribution_enabled()


def test_forced_scope_is_thread_local():
    import threading

    seen = {}

    def peer():
        seen["enabled"] = obs.enabled()

    with obs.scope(force=True):
        thread = threading.Thread(target=peer)
        thread.start()
        thread.join()
    assert seen["enabled"] is False  # forcing never leaks across threads
