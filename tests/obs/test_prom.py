"""Prometheus exposition: golden file, escaping, round-trip agreement."""

import math
from pathlib import Path

import pytest

from repro.obs.prom import (CONTENT_TYPE, PromParseError,
                            assert_snapshot_agreement, escape_label_value,
                            format_value, parse_prometheus,
                            render_prometheus, samples_from_snapshot,
                            sanitize_name)
from repro.obs.registry import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


def golden_registry() -> MetricsRegistry:
    """A deterministic registry covering every metric kind."""
    registry = MetricsRegistry()
    ops = registry.counter("ops_total", help="operations by opcode")
    ops.inc(3, opcode="xor", secure=True)
    ops.inc(1, opcode="lw", secure=False)
    registry.gauge("queue_depth", help="queued requests").set(7)
    latency = registry.histogram("latency_seconds",
                                 help="request latency",
                                 buckets=(0.1, 1.0, 10.0))
    latency.observe(0.05, client="cli")
    latency.observe(0.5, client="cli")
    latency.observe(30.0, client="cli")
    return registry


# -- golden file ------------------------------------------------------------


def test_golden_file_matches_renderer():
    text = render_prometheus(golden_registry().snapshot())
    assert text == GOLDEN.read_text(), (
        "exposition drifted from tests/obs/golden/metrics.prom; if the "
        "change is intentional, regenerate the golden file")


def test_golden_file_parses_and_agrees():
    snapshot = golden_registry().snapshot()
    assert_snapshot_agreement(snapshot, GOLDEN.read_text())


def test_golden_histogram_buckets_are_cumulative():
    parsed = parse_prometheus(GOLDEN.read_text())
    buckets = {labels: value for (name, labels), value
               in parsed["samples"].items()
               if name == "latency_seconds_bucket"}
    by_le = {dict(labels)["le"]: value for labels, value in buckets.items()}
    assert by_le == {"0.1": 1, "1": 2, "10": 2, "+Inf": 3}
    assert parsed["samples"][("latency_seconds_count",
                              (("client", "cli"),))] == 3
    assert parsed["types"]["latency_seconds"] == "histogram"


# -- escaping ---------------------------------------------------------------


def test_label_escaping_round_trips():
    nasty = 'quote " backslash \\ newline \n tab\tend'
    registry = MetricsRegistry()
    registry.counter("evil").inc(label=nasty)
    snapshot = registry.snapshot()
    text = render_prometheus(snapshot)
    assert '\\"' in text and "\\\\" in text and "\\n" in text
    sample_lines = [line for line in text.splitlines()
                    if line.startswith("evil{")]
    assert len(sample_lines) == 1  # the newline was escaped, not emitted
    parsed = parse_prometheus(text)
    assert parsed["samples"][("evil", (("label", nasty),))] == 1.0
    assert_snapshot_agreement(snapshot, text)


def test_escape_label_value_spec():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"


def test_sanitize_name():
    assert sanitize_name("service.request-seconds") == \
        "service_request_seconds"
    assert sanitize_name("9lives") == "_9lives"
    assert sanitize_name("") == "_"


def test_format_value_edge_cases():
    assert format_value(3) == "3"
    assert format_value(3.5) == "3.5"
    assert format_value(float("inf")) == "+Inf"
    assert format_value(float("-inf")) == "-Inf"
    assert format_value(float("nan")) == "NaN"
    assert format_value(2.0 ** 53) == repr(2.0 ** 53)


# -- round trip -------------------------------------------------------------


def test_round_trip_equals_snapshot_oracle():
    snapshot = golden_registry().snapshot()
    parsed = parse_prometheus(render_prometheus(snapshot))
    assert parsed["samples"] == samples_from_snapshot(snapshot)


def test_agreement_detects_missing_series():
    snapshot = golden_registry().snapshot()
    text = render_prometheus(snapshot)
    clipped = "\n".join(line for line in text.splitlines()
                        if not line.startswith("queue_depth")) + "\n"
    with pytest.raises(AssertionError):
        assert_snapshot_agreement(snapshot, clipped)


def test_agreement_detects_distorted_value():
    snapshot = golden_registry().snapshot()
    text = render_prometheus(snapshot).replace("queue_depth 7",
                                               "queue_depth 8")
    with pytest.raises(AssertionError):
        assert_snapshot_agreement(snapshot, text)


def test_agreement_ignore_skips_metric_family():
    snapshot = golden_registry().snapshot()
    text = "\n".join(line for line in
                     render_prometheus(snapshot).splitlines()
                     if "latency_seconds" not in line) + "\n"
    assert_snapshot_agreement(snapshot, text,
                              ignore={"latency_seconds"})


def test_parser_rejects_malformed_lines():
    with pytest.raises(PromParseError):
        parse_prometheus('broken{label="unterminated} 1\n')
    with pytest.raises(PromParseError):
        parse_prometheus("name_without_value\n")
    with pytest.raises(PromParseError):
        parse_prometheus("metric 1.2.3\n")


def test_empty_snapshot_renders_empty():
    assert render_prometheus({}) == ""
    assert parse_prometheus("")["samples"] == {}


def test_nan_sum_round_trips():
    parsed = parse_prometheus("weird NaN\n")
    assert math.isnan(parsed["samples"][("weird", ())])


def test_content_type_pin():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"
