"""Energy attribution: conservation, determinism, and the debug chain.

The two load-bearing guarantees:

* **conservation** — with attribution on, the sum of attributed pJ equals
  the tracker's ``total_energy_pj`` (nothing double-booked, nothing
  dropped);
* **non-interference** — with attribution off, traces are bit-identical
  to the seed (golden digests below); with it on, the energy numbers are
  unchanged because booking never touches the arithmetic.
"""

import hashlib

import pytest

from repro import obs
from repro.harness.engine import SimJob, run_jobs
from repro.harness.runner import des_run
from repro.obs.attribution import (CLASS_BY_OP, OVERHEAD_PC, AttributionSink,
                                   render_attribution, rollup_classes,
                                   rollup_lines, rollup_regions, rollup_units,
                                   summarize_attribution, top_hotspots)
from repro.programs.des_source import DesProgramSpec
from repro.programs.workloads import compile_des, key_words, plaintext_words

KEY_A = 0x133457799BBCDFF1
KEY_C = 0x0E329232EA6D0D73
PT_A = 0x0123456789ABCDEF

#: sha256 of ``run.trace.energy.tobytes()`` for the round-1 DES workload
#: on the seed simulator — the attribution layer must never move these.
GOLDEN_DIGESTS = {
    "none":
        "a63e8b8e0cd6cd22c0cbbc20008443d4ca47533378988a03106778e3b071d8b4",
    "selective":
        "5d1a41d858d421defc6f4dc3650af5951f026157ea5baca802c971d1c83ce954",
}


@pytest.fixture
def attribution_on():
    """Attribution (and the sink it implies) enabled in a fresh scope."""
    was_obs = obs.enabled()
    was_attr = obs.attribution_enabled()
    with obs.scope() as scoped:
        obs.enable_attribution()
        try:
            yield scoped
        finally:
            if not was_attr:
                obs.disable_attribution()
            if not was_obs:
                obs.disable()


def _digest(run):
    return hashlib.sha256(run.trace.energy.tobytes()).hexdigest()


@pytest.mark.parametrize("masking", ["none", "selective"])
def test_traces_match_seed_golden_digests(masking):
    program = compile_des(DesProgramSpec(rounds=1), masking=masking).program
    run = des_run(program, KEY_A, PT_A)
    assert run.cycles == 18432
    assert _digest(run) == GOLDEN_DIGESTS[masking]


@pytest.mark.parametrize("masking", ["none", "selective"])
def test_attribution_does_not_change_the_trace(attribution_on, masking):
    program = compile_des(DesProgramSpec(rounds=1), masking=masking).program
    run = des_run(program, KEY_A, PT_A)
    assert _digest(run) == GOLDEN_DIGESTS[masking]


@pytest.mark.parametrize("masking", ["none", "selective"])
def test_attributed_energy_equals_total(attribution_on, masking):
    program = compile_des(DesProgramSpec(rounds=1), masking=masking).program
    run = des_run(program, KEY_A, PT_A)
    assert run.attribution is not None
    assert run.attribution.total_pj() == pytest.approx(
        run.tracker.total_energy_pj, rel=1e-9)


def test_unit_rollup_matches_tracker_components(attribution_on):
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program
    run = des_run(program, KEY_A, PT_A)
    by_unit = rollup_units(run.attribution.snapshot())
    for component, total in run.tracker.totals.items():
        if component == "noise":
            continue
        assert by_unit[component]["pj"] == pytest.approx(total, rel=1e-9)
    for component, count in run.tracker.counts.items():
        if component == "noise":
            continue
        assert by_unit[component]["events"] == count


def test_attribution_off_collects_nothing():
    program = compile_des(DesProgramSpec(rounds=1), masking="none").program
    with obs.scope():
        assert not obs.attribution_enabled()
        run = des_run(program, KEY_A, PT_A)
        assert run.attribution is None
        assert not obs.attribution()


def test_parallel_merge_matches_serial(attribution_on):
    program = compile_des(DesProgramSpec(rounds=1), masking="none").program
    jobs = [SimJob(program=program,
                   inputs={"key": key_words(key),
                           "plaintext": plaintext_words(PT_A)},
                   label=f"k{index}")
            for index, key in enumerate((KEY_A, KEY_C, KEY_A ^ 1, KEY_C ^ 1))]
    run_jobs(jobs, jobs=1)
    serial = obs.attribution().snapshot()
    obs.attribution().reset()
    run_jobs(jobs, jobs=2)
    parallel = obs.attribution().snapshot()
    assert parallel == serial  # merge is associative + order-independent


def test_snapshot_merge_round_trip(attribution_on):
    program = compile_des(DesProgramSpec(rounds=1), masking="none").program
    run = des_run(program, KEY_A, PT_A)
    snapshot = run.attribution.snapshot()
    rebuilt = AttributionSink()
    rebuilt.merge_snapshot(snapshot)
    rebuilt.merge_snapshot(snapshot)
    assert rebuilt.total_pj() == pytest.approx(
        2 * run.attribution.total_pj(), rel=1e-9)


def test_merge_snapshot_rejects_foreign_schema():
    sink = AttributionSink()
    with pytest.raises(ValueError):
        sink.merge_snapshot({"schema": "something/else", "cells": []})


def test_overhead_books_to_sentinel_pc():
    sink = AttributionSink()
    sink.book_overhead("clock", 148.0)
    ((pc, unit, iclass, secure), (pj, events)), = sink.cells.items()
    assert (pc, unit, iclass, secure) == (OVERHEAD_PC, "clock",
                                          "overhead", False)
    assert (pj, events) == (148.0, 1)


def test_classifier_buckets():
    assert CLASS_BY_OP["xor"] == "xor"
    assert CLASS_BY_OP["xori"] == "xor"
    assert CLASS_BY_OP["lw"] == "load"
    assert CLASS_BY_OP["sw"] == "store"
    assert CLASS_BY_OP["beq"] == "branch"
    assert CLASS_BY_OP["sll"] == "shift"
    assert CLASS_BY_OP["add"] == "alu"


def test_source_lines_and_slice_reach_the_rollups(attribution_on):
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program
    run = des_run(program, KEY_A, PT_A)
    snapshot = run.attribution.snapshot()
    by_line = {line: slot for line, slot in rollup_lines(snapshot).items()
               if line is not None}
    assert by_line, "codegen .loc directives must reach attribution"
    assert any(slot["sliced"] for slot in by_line.values())
    regions = rollup_regions(snapshot)
    assert regions["secured"]["pj"] > 0
    assert regions["unsecured"]["pj"] > 0
    assert regions["overhead"]["pj"] > 0


def test_summary_and_render(attribution_on):
    program = compile_des(DesProgramSpec(rounds=1), masking="none").program
    run = des_run(program, KEY_A, PT_A)
    snapshot = run.attribution.snapshot()
    summary = summarize_attribution(snapshot, top=5)
    assert summary["total_pj"] == pytest.approx(snapshot["total_pj"])
    assert summary["cells"] == len(snapshot["cells"])
    assert len(summary["top_hotspots"]) == 5
    assert summary["top_hotspots"] == top_hotspots(snapshot, n=5)
    # by_class totals also conserve energy.
    assert sum(slot["pj"] for slot in rollup_classes(snapshot).values()) \
        == pytest.approx(snapshot["total_pj"], rel=1e-9)
    full_text = render_attribution(snapshot, top=3)
    summary_text = render_attribution(summary, top=3)
    for text in (full_text, summary_text):
        assert "by unit:" in text
        assert "clock" in text
        assert "hotspots" in text
    assert "by source line:" in full_text  # full form only
