"""End-to-end observability: engine instrumentation, parallel merge
determinism, the no-op-sink bit-identicality guarantee, and the CLI
surface (``--manifest`` / ``--metrics-out`` / ``obs summarize``)."""

import json

import numpy as np

from repro import obs
from repro.harness.engine import (CompileRequest, SimJob, execute_job,
                                  run_jobs)
from repro.programs.des_source import DesProgramSpec
from repro.programs.workloads import compile_des

KEY = 0x133457799BBCDFF1
TINY_SPEC = DesProgramSpec(rounds=0, include_ip=False, include_fp=False)

#: Metrics whose values depend on scheduling/timing, not on the simulated
#: work: wall clocks vary per run, and compile-cache hit/miss splits
#: depend on how jobs land on worker processes.  Everything else must be
#: exactly equal between serial and parallel runs.
_NONDETERMINISTIC = ("job_wall_seconds", "compile_cache_lookups")


def _shape(tree):
    """Span tree minus the timing fields: (name, attributes, children)."""
    return [(node["name"],
             tuple(sorted((node.get("attributes") or {}).items())),
             _shape(node.get("children", [])))
            for node in tree]


def _batch():
    request = CompileRequest(spec=TINY_SPEC, masking="selective")
    return [SimJob(program=request, des_pair=(KEY, plaintext),
                   label=f"pt{plaintext}", noise_sigma=1.0,
                   noise_seed=plaintext)
            for plaintext in range(3)]


def test_disabled_sink_records_nothing(obs_scope):
    assert not obs.enabled()
    results = run_jobs(_batch())
    assert all(result.metrics is None and result.spans is None
               for result in results)
    assert obs_scope.registry.snapshot() == {}
    assert obs_scope.tracer.tree() == []


def test_enabled_sink_energy_bit_identical():
    """Instrumentation must not perturb the simulation (acceptance gate)."""
    program = compile_des(TINY_SPEC, masking="selective").program

    def job():
        return SimJob(program=program, des_pair=(KEY, 7), noise_sigma=1.5,
                      noise_seed=42, label="probe")

    obs.disable()
    baseline = execute_job(job())
    try:
        obs.enable()
        with obs.scope():
            observed = execute_job(job())
    finally:
        obs.disable()
    assert np.array_equal(baseline.energy, observed.energy)
    assert baseline.cycles == observed.cycles
    assert baseline.markers == observed.markers
    assert baseline.totals == observed.totals
    assert observed.metrics is not None  # but the sink did collect


def test_job_metrics_cover_instruction_mix_and_energy(obs_on):
    run_jobs(_batch())
    totals = obs.snapshot_totals(obs_on.registry.snapshot())
    secure_ops = [name for name in totals
                  if name.startswith("instructions_executed{")
                  and "secure=true" in name]
    normal_ops = [name for name in totals
                  if name.startswith("instructions_executed{")
                  and "secure=false" in name]
    assert secure_ops and normal_ops  # mix is split secure vs normal
    assert totals["instructions_retired{secure=true}"] > 0
    assert totals["energy_component_pj{component=secure}"] > 0
    assert totals["energy_component_pj{component=clock}"] > 0
    assert totals["cycles_simulated"] > 0
    assert totals["job_wall_seconds_count"] == 3
    # One compile request, three jobs: 1 miss + 2 hits, or 3 hits when an
    # earlier test already populated the process-wide cache.
    lookups = obs_on.registry.counter("compile_cache_lookups")
    assert lookups.total() == 3


def test_parallel_merge_is_deterministic():
    """jobs=1 and jobs=2 must aggregate to identical metrics and span
    shapes — merge happens in submission order, not completion order."""
    contexts = {}
    try:
        obs.enable()
        for workers in (1, 2):
            with obs.scope() as scoped:
                with obs.span("batch", workers=workers):
                    run_jobs(_batch(), jobs=workers)
                contexts[workers] = scoped
    finally:
        obs.disable()

    snapshots = {}
    for workers, scoped in contexts.items():
        snapshot = scoped.registry.snapshot()
        for name in _NONDETERMINISTIC:
            snapshot.pop(name, None)
        snapshots[workers] = snapshot
    assert snapshots[1] == snapshots[2]  # exact equality, floats included

    serial_tree = contexts[1].tracer.tree()
    parallel_tree = contexts[2].tracer.tree()
    (batch_root,) = _shape(serial_tree)
    name, attributes, children = batch_root
    assert name == "batch" and attributes == (("workers", 1),)
    assert [child[0] for child in children] == ["job", "job", "job"]
    assert [grand[0] for grand in children[0][2]] == ["compile", "execute"]
    # Same tree shape under the pool, modulo the workers attribute.
    (parallel_root,) = _shape(parallel_tree)
    assert parallel_root[2] == children


def test_prebuilt_jobs_count_separately(obs_on):
    program = compile_des(TINY_SPEC, masking="none").program
    run_jobs([SimJob(program=program, des_pair=(KEY, 0), label="pre")])
    assert obs_on.registry.counter("jobs_prebuilt").total() == 1
    assert obs_on.registry.counter("compile_cache_lookups").total() == 0


# -- CLI surface ------------------------------------------------------------


def _run_cli(argv):
    from repro.cli import main

    try:
        return main(argv)
    finally:
        obs.disable()
        obs.reset()


def test_cli_manifest_and_metrics_out(tmp_path, capsys):
    manifest_path = tmp_path / "fig12.json"
    metrics_path = tmp_path / "metrics.json"
    assert _run_cli(["experiment", "fig12",
                     "--manifest", str(manifest_path),
                     "--metrics-out", str(metrics_path)]) == 0
    output = capsys.readouterr().out
    assert f"saved manifest {manifest_path}" in output

    manifest = obs.load_manifest(manifest_path)
    assert manifest["experiment_id"] == "fig12"
    assert manifest["config"]["jobs_requested"] == 1
    assert manifest["config"]["jobs_effective"] == 1
    assert "energy_params" in manifest["config"]
    totals = obs.snapshot_totals(manifest["metrics"])
    assert any(name.startswith("instructions_executed{")
               and "secure=true" in name for name in totals)
    assert totals["energy_component_pj{component=secure}"] > 0
    assert manifest["spans"][0]["name"] == "experiment"
    assert json.loads(metrics_path.read_text()) == manifest["metrics"]


def test_cli_obs_summarize_aggregates_and_diffs(tmp_path, capsys):
    manifest_path = tmp_path / "fig12.json"
    assert _run_cli(["experiment", "fig12",
                     "--manifest", str(manifest_path)]) == 0
    capsys.readouterr()

    assert _run_cli(["obs", "summarize", str(manifest_path)]) == 0
    rendered = capsys.readouterr().out
    assert "manifest: fig12" in rendered
    assert "instructions_executed" in rendered
    assert "experiment [id=fig12]" in rendered

    # Two manifests: aggregate section; identical pair -> empty diff body.
    assert _run_cli(["obs", "summarize", str(manifest_path),
                     str(manifest_path)]) == 0
    rendered = capsys.readouterr().out
    assert "aggregate of 2 manifests (fig12, fig12):" in rendered
    assert "diff (first -> second):" in rendered


def test_cli_experiment_without_flags_keeps_sink_off(capsys):
    assert _run_cli(["experiment", "fig12"]) == 0
    output = capsys.readouterr().out
    assert "saved manifest" not in output
    assert not obs.enabled()
