"""Flamegraph aggregation and rendering (SVG fragment + standalone HTML)."""

import json

from repro.obs.flamegraph import (Frame, aggregate_spans, flamegraph_html,
                                  svg_flamegraph)
from repro.obs.spans import Tracer

SPANS = [
    {"name": "experiment", "wall_s": 10.0, "cpu_s": 8.0, "children": [
        {"name": "job", "wall_s": 4.0, "cpu_s": 3.5, "children": [
            {"name": "compile", "wall_s": 1.0, "cpu_s": 0.9,
             "children": []},
            {"name": "execute", "wall_s": 2.5, "cpu_s": 2.4,
             "children": []},
        ]},
        {"name": "job", "wall_s": 5.0, "cpu_s": 4.0, "children": [
            {"name": "execute", "wall_s": 4.5, "cpu_s": 3.8,
             "children": []},
        ]},
    ]},
]


def test_aggregate_merges_same_name_siblings():
    root = aggregate_spans(SPANS)
    experiment = root.children["experiment"]
    job = experiment.children["job"]
    assert job.count == 2
    assert job.wall_s == 9.0                 # 4.0 + 5.0 folded
    assert job.children["execute"].wall_s == 7.0
    assert job.children["compile"].count == 1
    assert root.wall_s == 10.0


def test_self_value_subtracts_children():
    root = aggregate_spans(SPANS)
    job = root.children["experiment"].children["job"]
    assert job.self_value("wall") == 9.0 - (1.0 + 7.0)
    # Self time is clamped at zero for over-attributed frames.
    frame = Frame("x")
    frame.wall_s = 1.0
    child = Frame("y")
    child.wall_s = 2.0
    frame.children["y"] = child
    assert frame.self_value("wall") == 0.0


def test_frame_to_dict_round_trips_through_json():
    document = json.loads(json.dumps(aggregate_spans(SPANS).to_dict()))
    assert document["name"] == "all"
    assert document["children"][0]["name"] == "experiment"


def test_svg_contains_frames_and_tooltips():
    svg = svg_flamegraph(SPANS, metric="wall")
    assert svg.startswith("<svg")
    assert "experiment" in svg
    assert "execute — 7.000s wall" in svg
    assert "2×" in svg                       # merged job count in tooltip


def test_svg_empty_spans_renders_placeholder():
    svg = svg_flamegraph([])
    assert "no span data" in svg


def test_svg_elides_sub_pixel_frames():
    spans = [{"name": "big", "wall_s": 1000.0, "cpu_s": 1.0,
              "children": [{"name": "tiny", "wall_s": 0.0001, "cpu_s": 0.0,
                            "children": []}]}]
    assert "tiny" not in svg_flamegraph(spans, metric="wall")


def test_html_is_standalone_and_embeds_frames():
    page = flamegraph_html(SPANS, title="ext-tvla <spans>",
                           meta={"experiment": "ext-tvla"})
    assert page.startswith("<!DOCTYPE html>")
    assert "ext-tvla &lt;spans&gt;" in page  # title escaped
    assert "experiment=ext-tvla" in page
    assert '"name": "experiment"' in page
    assert "<script>" in page
    assert "src=" not in page                # no external assets


def test_renders_real_tracer_output():
    tracer = Tracer()
    with tracer.span("experiment", id="t"):
        with tracer.span("job"):
            pass
        with tracer.span("job"):
            pass
    spans = tracer.tree()
    root = aggregate_spans(spans)
    assert root.children["experiment"].children["job"].count == 2
    assert "<svg" in svg_flamegraph(spans)
