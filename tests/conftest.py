"""Shared fixtures: compiled programs are expensive, so cache per session."""

from __future__ import annotations

import pytest

from repro.harness.runner import des_run
from repro.lang.compiler import compile_source
from repro.programs.des_source import DesProgramSpec
from repro.programs.workloads import compile_des

KEY = 0x133457799BBCDFF1
PLAINTEXT = 0x0123456789ABCDEF


def pytest_addoption(parser, pluginmanager):
    """Keep the ``timeout`` ini option valid without pytest-timeout.

    CI installs pytest-timeout so a wedged pool test cannot hang a run
    forever; local environments may not have it.  Registering the ini
    option ourselves when the plugin is absent means `pyproject.toml`
    can set a default timeout unconditionally (it is simply inert
    without the plugin) instead of warning about an unknown key.
    """
    if not pluginmanager.hasplugin("timeout"):
        parser.addini("timeout", "per-test timeout (needs pytest-timeout)",
                      default=None)


@pytest.fixture(scope="session")
def round1_unmasked():
    return compile_des(DesProgramSpec(rounds=1), masking="none")


@pytest.fixture(scope="session")
def round1_masked():
    return compile_des(DesProgramSpec(rounds=1), masking="selective")


@pytest.fixture(scope="session")
def keyperm_unmasked():
    spec = DesProgramSpec(rounds=0, include_ip=False, include_fp=False)
    return compile_des(spec, masking="none")


@pytest.fixture(scope="session")
def keyperm_masked():
    spec = DesProgramSpec(rounds=0, include_ip=False, include_fp=False)
    return compile_des(spec, masking="selective")


def run_source(source: str, masking: str = "selective", inputs=None,
               tracker=None):
    """Compile and run a SecureC snippet; returns the CPU."""
    from repro.machine.cpu import run_to_halt

    compiled = compile_source(source, masking=masking)
    return compiled, run_to_halt(compiled.program, tracker=tracker,
                                 inputs=inputs)


@pytest.fixture
def des_runner():
    return des_run
