"""The generated AES program: correctness and masking on the simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aes.reference import encrypt_block
from repro.programs.aes_source import AesProgramSpec, aes_source
from repro.programs.markers import M_FP_START, M_KEYPERM_START
from repro.programs.workloads import aes_ciphertext_of, compile_aes, run_aes

KEY = 0x000102030405060708090a0b0c0d0e0f
PT = 0x00112233445566778899aabbccddeeff

U128 = st.integers(min_value=0, max_value=(1 << 128) - 1)


def test_spec_validation():
    with pytest.raises(ValueError):
        AesProgramSpec(rounds=0)
    with pytest.raises(ValueError):
        AesProgramSpec(rounds=11)


def test_source_structure():
    source = aes_source()
    assert "secure int key[16];" in source
    assert "SBOX_T[256]" in source
    assert "XTIME_T[256]" in source
    assert "__insecure" in source


def test_full_aes_matches_fips():
    compiled = compile_aes(masking="selective")
    cpu = run_aes(compiled, KEY, PT)
    assert aes_ciphertext_of(cpu) == 0x69c4e0d86a7b0430d8cdb78070b4c55a


def test_unmasked_aes_matches_fips():
    compiled = compile_aes(masking="none")
    cpu = run_aes(compiled, KEY, PT)
    assert aes_ciphertext_of(cpu) == 0x69c4e0d86a7b0430d8cdb78070b4c55a


def test_no_secret_branches():
    """The XTIME-table formulation must avoid secret-dependent control
    flow entirely."""
    compiled = compile_aes(masking="selective")
    assert [d for d in compiled.diagnostics if d.kind == "secret-branch"] \
        == []


def test_sbox_and_xtime_use_secure_indexing():
    compiled = compile_aes(masking="selective")
    assert "silw" in compiled.assembly
    assert compiled.slice.secure_index_loads


@settings(max_examples=5, deadline=None)
@given(key=U128, plaintext=U128)
def test_reduced_round_random_property(key, plaintext):
    compiled = compile_aes(AesProgramSpec(rounds=2), masking="selective")
    cpu = run_aes(compiled, key, plaintext)
    assert aes_ciphertext_of(cpu) == encrypt_block(plaintext, key, rounds=2)


def test_cycle_alignment_across_keys():
    compiled = compile_aes(masking="selective")
    c1 = run_aes(compiled, KEY, PT).cycles
    c2 = run_aes(compiled, (1 << 128) - 1, PT).cycles
    assert c1 == c2


def _secure_window_diff(masking, key_a, key_b):
    from repro.energy.tracker import EnergyTracker

    compiled = compile_aes(masking=masking)
    traces = []
    markers = []
    for key in (key_a, key_b):
        tracker = EnergyTracker()
        cpu = run_aes(compiled, key, PT, tracker=tracker)
        traces.append(np.asarray(tracker.cycle_energy))
        markers.append(cpu.pipeline.markers)
    start = next(c for c, v in markers[0] if v == M_KEYPERM_START)
    end = next(c for c, v in markers[0] if v == M_FP_START)
    return (traces[0] - traces[1])[start:end]


def test_masked_aes_key_differential_flat():
    window = _secure_window_diff("selective", KEY, KEY ^ (1 << 127))
    assert np.abs(window).max() == 0.0


def test_unmasked_aes_leaks():
    window = _secure_window_diff("none", KEY, KEY ^ (1 << 127))
    assert np.abs(window).max() > 1.0
    assert np.count_nonzero(window) > 100
