"""The AES-128 inverse-cipher program on the simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aes.reference import decrypt_block, encrypt_block, int_to_state
from repro.programs.aes_source import AesProgramSpec, aes_source
from repro.programs.markers import M_FP_START, M_KEYPERM_START
from repro.programs.workloads import aes_ciphertext_of, compile_aes, run_aes

KEY = 0x000102030405060708090a0b0c0d0e0f
PT = 0x00112233445566778899aabbccddeeff

U128 = st.integers(min_value=0, max_value=(1 << 128) - 1)


def test_decrypt_requires_full_rounds():
    with pytest.raises(ValueError):
        AesProgramSpec(rounds=2, decrypt=True)


def test_source_has_inverse_tables():
    source = aes_source(AesProgramSpec(decrypt=True))
    assert "ISBOX_T[256]" in source
    assert "ISR_T[16]" in source
    assert "XT3" in source


def test_inverse_cipher_inverts_reference():
    ciphertext = encrypt_block(PT, KEY)
    compiled = compile_aes(AesProgramSpec(decrypt=True), masking="none")
    cpu = run_aes(compiled, KEY, ciphertext)
    assert aes_ciphertext_of(cpu) == PT


def test_masked_inverse_cipher_correct():
    ciphertext = encrypt_block(PT, KEY)
    compiled = compile_aes(AesProgramSpec(decrypt=True),
                           masking="selective")
    cpu = run_aes(compiled, KEY, ciphertext)
    assert aes_ciphertext_of(cpu) == PT


def test_matches_reference_decrypt_on_arbitrary_block():
    block = 0xDEADBEEFCAFEF00D0123456789ABCDEF
    compiled = compile_aes(AesProgramSpec(decrypt=True), masking="none")
    cpu = run_aes(compiled, KEY, block)
    assert aes_ciphertext_of(cpu) == decrypt_block(block, KEY)


def test_no_secret_branches_in_inv_mixcolumns():
    compiled = compile_aes(AesProgramSpec(decrypt=True),
                           masking="selective")
    assert [d for d in compiled.diagnostics
            if d.kind == "secret-branch"] == []
    assert "silw" in compiled.assembly


@settings(max_examples=3, deadline=None)
@given(key=U128, block=U128)
def test_simulated_roundtrip_property(key, block):
    encryptor = compile_aes(AesProgramSpec(), masking="selective")
    decryptor = compile_aes(AesProgramSpec(decrypt=True),
                            masking="selective")
    ciphertext = aes_ciphertext_of(run_aes(encryptor, key, block))
    assert aes_ciphertext_of(run_aes(decryptor, key, ciphertext)) == block


def test_masked_decrypt_key_differential_flat():
    from repro.energy.tracker import EnergyTracker

    compiled = compile_aes(AesProgramSpec(decrypt=True),
                           masking="selective")
    traces = []
    markers = []
    for key in (KEY, KEY ^ (1 << 127)):
        tracker = EnergyTracker()
        cpu = run_aes(compiled, key, PT, tracker=tracker)
        traces.append(np.asarray(tracker.cycle_energy))
        markers.append(cpu.pipeline.markers)
    start = next(c for c, v in markers[0] if v == M_KEYPERM_START)
    end = next(c for c, v in markers[0] if v == M_FP_START)
    delta = (traces[0] - traces[1])[start:end]
    assert np.abs(delta).max() == 0.0