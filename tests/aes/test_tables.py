"""AES table algebra: GF(2^8), S-box construction, permutations."""

from hypothesis import given, strategies as st

from repro.aes.tables import (INV_SBOX, INV_SHIFT_ROWS, RCON, SBOX,
                              SHIFT_ROWS, XTIME, gf_inv, gf_mul)

BYTE = st.integers(min_value=0, max_value=255)


def test_sbox_known_values():
    # FIPS-197 examples.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_sbox_is_permutation():
    assert sorted(SBOX) == list(range(256))


def test_inv_sbox_inverts():
    for value in range(256):
        assert INV_SBOX[SBOX[value]] == value


def test_sbox_has_no_fixed_points():
    assert all(SBOX[v] != v for v in range(256))
    # ... and no anti-fixed points.
    assert all(SBOX[v] != v ^ 0xFF for v in range(256))


def test_xtime_matches_gf_mul():
    for value in range(256):
        assert XTIME[value] == gf_mul(value, 2)


def test_xtime_linearity():
    for a in (0x03, 0x57, 0x80, 0xFF):
        for b in (0x01, 0x13, 0xAE):
            assert XTIME[a ^ b] == XTIME[a] ^ XTIME[b]


def test_gf_mul_known():
    # FIPS-197 example: {57} . {83} = {c1}
    assert gf_mul(0x57, 0x83) == 0xC1
    assert gf_mul(0x57, 0x13) == 0xFE


def test_gf_mul_identity_and_zero():
    for value in range(256):
        assert gf_mul(value, 1) == value
        assert gf_mul(value, 0) == 0


@given(a=BYTE, b=BYTE)
def test_gf_mul_commutative(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(a=BYTE, b=BYTE, c=BYTE)
def test_gf_mul_distributive(a, b, c):
    assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


@given(a=st.integers(min_value=1, max_value=255))
def test_gf_inverse_property(a):
    assert gf_mul(a, gf_inv(a)) == 1


def test_gf_inv_zero_is_zero():
    assert gf_inv(0) == 0


def test_shift_rows_is_permutation():
    assert sorted(SHIFT_ROWS) == list(range(16))


def test_shift_rows_row_structure():
    # Row 0 unshifted: positions 0, 4, 8, 12 map to themselves.
    for column in range(4):
        assert SHIFT_ROWS[4 * column] == 4 * column
    # Row 1 shifted by one column.
    assert SHIFT_ROWS[1] == 5


def test_inv_shift_rows_inverts():
    state = list(range(16))
    shifted = [state[SHIFT_ROWS[i]] for i in range(16)]
    back = [shifted[INV_SHIFT_ROWS[i]] for i in range(16)]
    assert back == state


def test_rcon_values():
    assert RCON == (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B,
                    0x36)
