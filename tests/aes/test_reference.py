"""Reference AES-128 against FIPS-197 vectors and properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aes.reference import (decrypt_block, encrypt_block, expand_key,
                                 int_to_state, state_to_int)

U128 = st.integers(min_value=0, max_value=(1 << 128) - 1)

#: (key, plaintext, ciphertext) from FIPS-197 appendices.
KAT = [
    (0x000102030405060708090a0b0c0d0e0f,
     0x00112233445566778899aabbccddeeff,
     0x69c4e0d86a7b0430d8cdb78070b4c55a),
    (0x2b7e151628aed2a6abf7158809cf4f3c,
     0x3243f6a8885a308d313198a2e0370734,
     0x3925841d02dc09fbdc118597196a0b32),
]


@pytest.mark.parametrize("key,plaintext,ciphertext", KAT)
def test_known_answer_encrypt(key, plaintext, ciphertext):
    assert encrypt_block(plaintext, key) == ciphertext


@pytest.mark.parametrize("key,plaintext,ciphertext", KAT)
def test_known_answer_decrypt(key, plaintext, ciphertext):
    assert decrypt_block(ciphertext, key) == plaintext


def test_key_expansion_fips_example():
    # FIPS-197 A.1: last round-key word for the 2b7e... key is d014f9a8
    # c9ee2589 e13f0cc8 b6630ca6.
    expanded = expand_key(0x2b7e151628aed2a6abf7158809cf4f3c)
    assert len(expanded) == 176
    assert expanded[160:] == [0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25,
                              0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63,
                              0x0c, 0xa6]


def test_state_roundtrip():
    value = 0x000102030405060708090a0b0c0d0e0f
    assert state_to_int(int_to_state(value)) == value


def test_state_range_check():
    with pytest.raises(ValueError):
        int_to_state(1 << 128)


def test_rounds_validated():
    with pytest.raises(ValueError):
        encrypt_block(0, 0, rounds=0)
    with pytest.raises(ValueError):
        decrypt_block(0, 0, rounds=11)


@settings(max_examples=20, deadline=None)
@given(key=U128, plaintext=U128)
def test_decrypt_inverts_encrypt(key, plaintext):
    assert decrypt_block(encrypt_block(plaintext, key), key) == plaintext


@settings(max_examples=10, deadline=None)
@given(key=U128, plaintext=U128,
       rounds=st.integers(min_value=1, max_value=10))
def test_reduced_rounds_invertible(key, plaintext, rounds):
    ciphertext = encrypt_block(plaintext, key, rounds=rounds)
    assert decrypt_block(ciphertext, key, rounds=rounds) == plaintext


def test_avalanche():
    key, plaintext, _ = KAT[0]
    base = encrypt_block(plaintext, key)
    flipped = encrypt_block(plaintext ^ 1, key)
    assert 40 <= bin(base ^ flipped).count("1") <= 88
