"""Golden statistics of the generated DES/AES binaries.

Loose structural invariants (not exact golden files, which would break on
every benign codegen tweak): instruction-class counts, secure-instruction
composition, and the specific secure-mnemonic inventory the paper's scheme
requires for each cipher.
"""

from collections import Counter

import pytest

from repro.programs.aes_source import AesProgramSpec
from repro.programs.des_source import DesProgramSpec
from repro.programs.workloads import compile_aes, compile_des


def mnemonic_counts(program):
    return Counter(ins.mnemonic for ins in program.text)


@pytest.fixture(scope="module")
def des_masked():
    return compile_des(DesProgramSpec(rounds=16), masking="selective")


@pytest.fixture(scope="module")
def aes_masked():
    return compile_aes(AesProgramSpec(), masking="selective")


def test_des_uses_all_four_canonical_classes(des_masked):
    counts = mnemonic_counts(des_masked.program)
    # Secure assignment (load + store).
    assert counts["slw"] >= 10
    assert counts["ssw"] >= 10
    # Secure XOR (the round function and L/R mixing).
    assert counts["sxor"] >= 2
    # Secure shift (S-box input assembly).
    assert counts["ssllv"] >= 1 or counts["ssll"] >= 1
    # Secure indexing (the eight S-box lookups share one silw site).
    assert counts["silw"] >= 1


def test_des_insecure_skeleton_remains(des_masked):
    counts = mnemonic_counts(des_masked.program)
    # Loop bookkeeping stays insecure — that is the whole point.
    assert counts["lw"] > counts["slw"]
    assert counts["addu"] > 0
    assert counts["beq"] + counts["bne"] > 0


def test_des_static_secure_fraction_band(des_masked):
    fraction = des_masked.secure_static_fraction
    # ~9-10% static; a large drift signals a slicing/codegen regression.
    assert 0.06 <= fraction <= 0.16


def test_aes_static_secure_fraction_band(aes_masked):
    assert 0.14 <= aes_masked.secure_static_fraction <= 0.28


def test_aes_secure_inventory(aes_masked):
    counts = mnemonic_counts(aes_masked.program)
    assert counts["silw"] >= 2      # SBOX and XTIME lookups
    assert counts["sxor"] >= 5      # AddRoundKey / MixColumns
    assert counts["slw"] >= 10


def test_des_binary_size_band(des_masked):
    assert 600 <= len(des_masked.program.text) <= 900


def test_aes_binary_size_band(aes_masked):
    assert 600 <= len(aes_masked.program.text) <= 950


def test_no_lwx_without_secure_bit(des_masked, aes_masked):
    """lwx only exists as silw (secure); a bare lwx is a codegen bug."""
    for compiled in (des_masked, aes_masked):
        for ins in compiled.program.text:
            if ins.op == "lwx":
                assert ins.secure


def test_secure_index_loads_only_on_const_tables(des_masked, aes_masked):
    """The slicer may only secure-index *public* tables (secret-indexed
    secret arrays would need more than address masking)."""
    for compiled in (des_masked, aes_masked):
        table = compiled.table
        for position in compiled.slice.secure_index_loads:
            instr = compiled.ir[position]
            assert table.lookup(instr.array, 0).const