"""The DES decryption program variant on the simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.reference import decrypt_block, encrypt_block
from repro.programs.des_source import DesProgramSpec, des_source
from repro.programs.workloads import ciphertext_of, compile_des, run_des

KEY = 0x133457799BBCDFF1
PT = 0x0123456789ABCDEF

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def test_decrypt_requires_full_rounds():
    with pytest.raises(ValueError):
        DesProgramSpec(rounds=1, decrypt=True)


def test_decrypt_shift_table():
    spec = DesProgramSpec(decrypt=True)
    table = spec.shift_table
    assert len(table) == 16
    assert table[0] == 0
    # The decrypt schedule walks back through the encrypt schedule: after
    # all 16 decrypt rounds, C/D sit at K1's position (one left rotation).
    from repro.des.tables import SHIFTS
    assert sum(table) % 28 == SHIFTS[0]
    assert table[1] == (28 - SHIFTS[15]) % 28
    # Cross-check against the reference key schedule: the subkey computed
    # at each decrypt position equals the reference subkey in reverse.
    from repro.des.bitops import int_to_bits, permute, rotate_left
    from repro.des.keyschedule import key_schedule
    from repro.des.tables import PC1, PC2

    key = 0x133457799BBCDFF1
    forward = key_schedule(key)
    cd = permute(int_to_bits(key, 64), PC1)
    c, d = cd[:28], cd[28:]
    for round_index, amount in enumerate(table):
        c = rotate_left(c, amount)
        d = rotate_left(d, amount)
        assert permute(c + d, PC2) == forward[15 - round_index]


def test_decrypt_program_inverts_reference_encrypt():
    ciphertext = encrypt_block(PT, KEY)
    compiled = compile_des(DesProgramSpec(decrypt=True), masking="none")
    cpu = run_des(compiled, KEY, ciphertext)
    assert ciphertext_of(cpu) == PT


def test_masked_decrypt_also_correct():
    ciphertext = encrypt_block(PT, KEY)
    compiled = compile_des(DesProgramSpec(decrypt=True),
                           masking="selective")
    cpu = run_des(compiled, KEY, ciphertext)
    assert ciphertext_of(cpu) == PT


def test_decrypt_matches_reference_decrypt():
    compiled = compile_des(DesProgramSpec(decrypt=True), masking="none")
    cpu = run_des(compiled, KEY, 0xDEADBEEFCAFEF00D)
    assert ciphertext_of(cpu) == decrypt_block(0xDEADBEEFCAFEF00D, KEY)


@settings(max_examples=3, deadline=None)
@given(key=U64, block=U64)
def test_simulated_roundtrip_property(key, block):
    encryptor = compile_des(DesProgramSpec(), masking="selective")
    decryptor = compile_des(DesProgramSpec(decrypt=True),
                            masking="selective")
    ciphertext = ciphertext_of(run_des(encryptor, key, block))
    assert ciphertext_of(run_des(decryptor, key, ciphertext)) == block


def test_decrypt_masking_flat():
    """The masking property holds in the decryption direction too."""
    import numpy as np

    from repro.harness.runner import des_run
    from repro.programs.markers import M_FP_START, M_KEYPERM_START

    compiled = compile_des(DesProgramSpec(decrypt=True),
                           masking="selective")
    run_a = des_run(compiled.program, KEY, PT)
    run_b = des_run(compiled.program, 0x0E329232EA6D0D73, PT)
    diff = run_a.trace.diff(run_b.trace)
    start = run_a.trace.marker_cycles(M_KEYPERM_START)[0]
    end = run_a.trace.marker_cycles(M_FP_START)[0]
    assert np.abs(diff[start:end]).max() == 0.0
