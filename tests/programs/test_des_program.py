"""The generated DES program: correctness against the reference cipher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.reference import encrypt_block
from repro.programs.des_source import (DesProgramSpec, FULL_DES,
                                       KEYPERM_ONLY, ROUND1_DES, des_source)
from repro.programs.markers import (M_FP_END, M_FP_START, M_IP_END,
                                    M_IP_START, M_KEYPERM_END,
                                    M_KEYPERM_START, M_ROUND_BASE,
                                    round_marker)
from repro.programs.workloads import (ciphertext_of, compile_des, key_words,
                                      plaintext_words, run_des)

KEY = 0x133457799BBCDFF1
PT = 0x0123456789ABCDEF

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def test_spec_validation():
    with pytest.raises(ValueError):
        DesProgramSpec(rounds=17)
    with pytest.raises(ValueError):
        DesProgramSpec(rounds=1, include_keyschedule=False)


def test_source_contains_annotation_and_insecure_block():
    source = des_source(FULL_DES)
    assert "secure int key[64];" in source
    assert "__insecure" in source
    assert "SBOX_T[512]" in source


def test_round1_matches_reference():
    compiled = compile_des(ROUND1_DES, masking="none")
    cpu = run_des(compiled, KEY, PT)
    assert ciphertext_of(cpu) == encrypt_block(PT, KEY, rounds=1)


def test_two_rounds_match_reference():
    compiled = compile_des(DesProgramSpec(rounds=2), masking="selective")
    cpu = run_des(compiled, KEY, PT)
    assert ciphertext_of(cpu) == encrypt_block(PT, KEY, rounds=2)


@pytest.mark.slow
def test_full_des_matches_reference_unmasked():
    compiled = compile_des(FULL_DES, masking="none")
    cpu = run_des(compiled, KEY, PT)
    assert ciphertext_of(cpu) == 0x85E813540F0AB405


@pytest.mark.slow
def test_full_des_matches_reference_masked():
    compiled = compile_des(FULL_DES, masking="selective")
    cpu = run_des(compiled, KEY, PT)
    assert ciphertext_of(cpu) == 0x85E813540F0AB405


@settings(max_examples=5, deadline=None)
@given(key=U64, plaintext=U64)
def test_round1_random_inputs_property(key, plaintext):
    compiled = compile_des(ROUND1_DES, masking="selective")
    cpu = run_des(compiled, key, plaintext)
    assert ciphertext_of(cpu) == encrypt_block(plaintext, key, rounds=1)


def test_markers_emitted_in_order():
    compiled = compile_des(DesProgramSpec(rounds=2), masking="none")
    cpu = run_des(compiled, KEY, PT)
    values = [v for _, v in cpu.pipeline.markers]
    assert values == [M_IP_START, M_IP_END, M_KEYPERM_START, M_KEYPERM_END,
                      M_ROUND_BASE, M_ROUND_BASE + 1, M_FP_START, M_FP_END]


def test_marker_cycles_strictly_increasing():
    compiled = compile_des(DesProgramSpec(rounds=2), masking="none")
    cpu = run_des(compiled, KEY, PT)
    cycles = [c for c, _ in cpu.pipeline.markers]
    assert cycles == sorted(cycles)
    assert len(set(cycles)) == len(cycles)


def test_keyperm_only_variant():
    compiled = compile_des(KEYPERM_ONLY, masking="none")
    cpu = run_des(compiled, KEY, PT)
    values = [v for _, v in cpu.pipeline.markers]
    assert values == [M_KEYPERM_START, M_KEYPERM_END]
    # C/D registers hold the PC-1 output.
    from repro.des.bitops import int_to_bits, permute
    from repro.des.tables import PC1
    cd = permute(int_to_bits(KEY, 64), PC1)
    assert cpu.read_symbol_words("C", 28) == cd[:28]
    assert cpu.read_symbol_words("D", 28) == cd[28:]


def test_no_markers_variant():
    spec = DesProgramSpec(rounds=1, emit_markers=False)
    compiled = compile_des(spec, masking="none")
    cpu = run_des(compiled, KEY, PT)
    assert cpu.pipeline.markers == []
    assert ciphertext_of(cpu) == encrypt_block(PT, KEY, rounds=1)


def test_round_marker_helper():
    assert round_marker(0) == M_ROUND_BASE
    assert round_marker(15) == M_ROUND_BASE + 15
    with pytest.raises(ValueError):
        round_marker(16)


def test_compile_des_memoizes():
    a = compile_des(ROUND1_DES, masking="none")
    b = compile_des(ROUND1_DES, masking="none")
    assert a is b


def test_key_and_plaintext_word_builders():
    assert key_words(1)[-1] == 1
    assert key_words(1 << 63)[0] == 1
    assert sum(plaintext_words(0)) == 0
    assert len(key_words(0)) == 64


def test_no_secret_dependent_control_flow():
    """The compiled DES must have no secret-dependent branches (the
    masking scheme cannot hide control flow)."""
    compiled = compile_des(ROUND1_DES, masking="selective")
    branch_diags = [d for d in compiled.diagnostics
                    if d.kind == "secret-branch"]
    assert branch_diags == []


def test_program_is_cycle_deterministic():
    compiled = compile_des(ROUND1_DES, masking="selective")
    c1 = run_des(compiled, KEY, PT).cycles
    c2 = run_des(compiled, 0xFFFFFFFFFFFFFFFF, 0).cycles
    assert c1 == c2
