"""Trace and experiment persistence."""

import numpy as np
import pytest

from repro.attacks.dpa import TraceSet
from repro.energy.trace import EnergyTrace
from repro.harness.experiments import ExperimentResult
from repro.harness.io import (experiment_to_dict, load_experiment_json,
                              load_trace, load_trace_set,
                              save_experiment_json, save_summary_csv,
                              save_trace, save_trace_set)


def make_trace(with_components=False):
    components = np.arange(8, dtype=np.float64).reshape(4, 2) \
        if with_components else None
    return EnergyTrace(energy=np.array([1.5, 2.5, 3.5, 4.5]),
                       markers=((1, 10), (3, 20)),
                       components=components, label="test-trace")


def test_trace_roundtrip(tmp_path):
    path = tmp_path / "trace.npz"
    original = make_trace()
    save_trace(original, path)
    loaded = load_trace(path)
    assert np.array_equal(loaded.energy, original.energy)
    assert loaded.markers == original.markers
    assert loaded.label == original.label
    assert loaded.components is None


def test_trace_roundtrip_with_components(tmp_path):
    path = tmp_path / "trace.npz"
    original = make_trace(with_components=True)
    save_trace(original, path)
    loaded = load_trace(path)
    assert np.array_equal(loaded.components, original.components)


def test_trace_roundtrip_empty_markers(tmp_path):
    path = tmp_path / "t.npz"
    trace = EnergyTrace(energy=np.array([1.0]), markers=())
    save_trace(trace, path)
    assert load_trace(path).markers == ()


def test_trace_set_roundtrip(tmp_path):
    path = tmp_path / "set.npz"
    original = TraceSet(
        plaintexts=[0x0123456789ABCDEF, (1 << 127) | 5],  # incl. 128-bit
        traces=np.arange(6, dtype=np.float64).reshape(2, 3),
        window=(100, 103))
    save_trace_set(original, path)
    loaded = load_trace_set(path)
    assert loaded.plaintexts == original.plaintexts
    assert np.array_equal(loaded.traces, original.traces)
    assert loaded.window == original.window


def make_result():
    return ExperimentResult(
        experiment_id="fig-test", title="A test",
        summary={"a": 1, "b": 2.5, "flag": True},
        series={"diff": np.array([0.0, 1.0])},
        rows=[("x", "1"), ("y", "2")],
        notes="note")


def test_experiment_json_roundtrip(tmp_path):
    path = tmp_path / "r.json"
    save_experiment_json(make_result(), path)
    loaded = load_experiment_json(path)
    assert loaded["experiment_id"] == "fig-test"
    assert loaded["summary"]["b"] == 2.5
    assert loaded["series"]["diff"] == [0.0, 1.0]
    assert loaded["rows"] == [["x", "1"], ["y", "2"]]


def test_experiment_json_without_series(tmp_path):
    path = tmp_path / "r.json"
    save_experiment_json(make_result(), path, include_series=False)
    loaded = load_experiment_json(path)
    assert "omitted" in loaded["series"]["diff"]


def test_experiment_dict_handles_numpy_scalars():
    result = make_result()
    result.summary["np_value"] = np.float64(3.25)
    payload = experiment_to_dict(result)
    assert payload["summary"]["np_value"] == 3.25
    assert not isinstance(payload["summary"]["np_value"], np.generic)


def test_summary_csv(tmp_path):
    path = tmp_path / "summary.csv"
    save_summary_csv([make_result()], path)
    text = path.read_text()
    assert "experiment_id,key,value" in text
    assert "fig-test,a,1" in text


def test_real_trace_roundtrip(tmp_path, round1_masked):
    """A simulator-produced trace survives the save/load cycle intact."""
    from repro.harness.runner import des_run

    run = des_run(round1_masked.program, 0x133457799BBCDFF1,
                  0x0123456789ABCDEF)
    path = tmp_path / "real.npz"
    save_trace(run.trace, path)
    loaded = load_trace(path)
    assert np.array_equal(loaded.energy, run.trace.energy)
    assert loaded.markers == run.trace.markers


# -- streaming per-cycle export --------------------------------------------


def test_streaming_ndjson_round_trips_floats(tmp_path):
    import json

    from repro.harness.io import stream_trace

    path = tmp_path / "trace.ndjson"
    trace = make_trace()
    assert stream_trace(trace, path) == 4
    records = [json.loads(line) for line in path.read_text().splitlines()]
    cycles = [r for r in records if "pj" in r]
    markers = [(r["cycle"], r["marker"]) for r in records if "marker" in r]
    assert [r["cycle"] for r in cycles] == [0, 1, 2, 3]
    # repr() round-trip: the exported floats are exact, not approximations.
    assert [r["pj"] for r in cycles] == list(trace.energy)
    assert markers == list(trace.markers)


def test_streaming_ndjson_components(tmp_path):
    import json

    from repro.harness.io import stream_trace

    path = tmp_path / "trace.ndjson"
    stream_trace(make_trace(with_components=True), path)
    first = json.loads(path.read_text().splitlines()[0])
    assert "components" in first
    assert len(first["components"]) == 2


def test_streaming_csv_format_from_suffix(tmp_path):
    from repro.harness.io import StreamingTraceWriter, stream_trace

    path = tmp_path / "trace.csv"
    trace = make_trace()
    stream_trace(trace, path)
    lines = path.read_text().splitlines()
    assert lines[0] == "cycle,total_pj"
    assert lines[1] == "0,1.5"
    assert len(lines) == 5  # header + 4 cycles; markers skipped in CSV
    with pytest.raises(ValueError):
        StreamingTraceWriter(tmp_path / "x", fmt="parquet")


def test_streaming_writer_buffers_and_flushes(tmp_path):
    from repro.harness.io import StreamingTraceWriter

    path = tmp_path / "big.ndjson"
    with StreamingTraceWriter(path, buffer_cycles=8) as writer:
        for cycle in range(20):
            writer.write_cycle(cycle, float(cycle))
            # Nothing is written until a full buffer accumulates.
            if cycle == 3:
                assert path.read_text() == ""
            if cycle == 8:
                assert len(path.read_text().splitlines()) == 8
    assert len(path.read_text().splitlines()) == 20
    assert writer.cycles_written == 20


def test_tracker_streams_without_keeping_the_trace(tmp_path):
    """keep_trace=False + stream: bounded memory, identical numbers."""
    import json

    from repro.harness.io import StreamingTraceWriter
    from repro.harness.runner import run_with_trace
    from repro.isa.assembler import assemble

    source = "li $t0, 5\nli $t1, 6\nxor $t2, $t0, $t1\nhalt\n"
    kept = run_with_trace(assemble(source))
    path = tmp_path / "streamed.ndjson"
    with StreamingTraceWriter(path) as stream:
        streamed = run_with_trace(assemble(source), stream=stream,
                                  keep_trace=False)
    assert len(streamed.trace.energy) == 0  # nothing retained in memory
    assert streamed.tracker.total_energy_pj == pytest.approx(
        kept.tracker.total_energy_pj)
    values = [json.loads(line)["pj"]
              for line in path.read_text().splitlines()]
    assert values == list(kept.trace.energy)


def test_experiment_dict_includes_leakage():
    from repro.obs.leakage import LeakageReport, RegionAssessment

    result = make_result()
    result.leakage = LeakageReport(
        budget_pj=1e-6, label="unit",
        regions=[RegionAssessment(
            region="keyperm", start=0, end=10, protected=True, cycles=10,
            max_abs_diff_pj=0.0, mean_abs_diff_pj=0.0, leaking_cycles=0,
            passed=True)])
    payload = experiment_to_dict(result)
    assert payload["leakage"]["passed"] is True
    assert payload["leakage"]["regions"][0]["region"] == "keyperm"
    assert "leakage" not in experiment_to_dict(make_result())
