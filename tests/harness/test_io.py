"""Trace and experiment persistence."""

import numpy as np
import pytest

from repro.attacks.dpa import TraceSet
from repro.energy.trace import EnergyTrace
from repro.harness.experiments import ExperimentResult
from repro.harness.io import (experiment_to_dict, load_experiment_json,
                              load_trace, load_trace_set,
                              save_experiment_json, save_summary_csv,
                              save_trace, save_trace_set)


def make_trace(with_components=False):
    components = np.arange(8, dtype=np.float64).reshape(4, 2) \
        if with_components else None
    return EnergyTrace(energy=np.array([1.5, 2.5, 3.5, 4.5]),
                       markers=((1, 10), (3, 20)),
                       components=components, label="test-trace")


def test_trace_roundtrip(tmp_path):
    path = tmp_path / "trace.npz"
    original = make_trace()
    save_trace(original, path)
    loaded = load_trace(path)
    assert np.array_equal(loaded.energy, original.energy)
    assert loaded.markers == original.markers
    assert loaded.label == original.label
    assert loaded.components is None


def test_trace_roundtrip_with_components(tmp_path):
    path = tmp_path / "trace.npz"
    original = make_trace(with_components=True)
    save_trace(original, path)
    loaded = load_trace(path)
    assert np.array_equal(loaded.components, original.components)


def test_trace_roundtrip_empty_markers(tmp_path):
    path = tmp_path / "t.npz"
    trace = EnergyTrace(energy=np.array([1.0]), markers=())
    save_trace(trace, path)
    assert load_trace(path).markers == ()


def test_trace_set_roundtrip(tmp_path):
    path = tmp_path / "set.npz"
    original = TraceSet(
        plaintexts=[0x0123456789ABCDEF, (1 << 127) | 5],  # incl. 128-bit
        traces=np.arange(6, dtype=np.float64).reshape(2, 3),
        window=(100, 103))
    save_trace_set(original, path)
    loaded = load_trace_set(path)
    assert loaded.plaintexts == original.plaintexts
    assert np.array_equal(loaded.traces, original.traces)
    assert loaded.window == original.window


def make_result():
    return ExperimentResult(
        experiment_id="fig-test", title="A test",
        summary={"a": 1, "b": 2.5, "flag": True},
        series={"diff": np.array([0.0, 1.0])},
        rows=[("x", "1"), ("y", "2")],
        notes="note")


def test_experiment_json_roundtrip(tmp_path):
    path = tmp_path / "r.json"
    save_experiment_json(make_result(), path)
    loaded = load_experiment_json(path)
    assert loaded["experiment_id"] == "fig-test"
    assert loaded["summary"]["b"] == 2.5
    assert loaded["series"]["diff"] == [0.0, 1.0]
    assert loaded["rows"] == [["x", "1"], ["y", "2"]]


def test_experiment_json_without_series(tmp_path):
    path = tmp_path / "r.json"
    save_experiment_json(make_result(), path, include_series=False)
    loaded = load_experiment_json(path)
    assert "omitted" in loaded["series"]["diff"]


def test_experiment_dict_handles_numpy_scalars():
    result = make_result()
    result.summary["np_value"] = np.float64(3.25)
    payload = experiment_to_dict(result)
    assert payload["summary"]["np_value"] == 3.25
    assert not isinstance(payload["summary"]["np_value"], np.generic)


def test_summary_csv(tmp_path):
    path = tmp_path / "summary.csv"
    save_summary_csv([make_result()], path)
    text = path.read_text()
    assert "experiment_id,key,value" in text
    assert "fig-test,a,1" in text


def test_real_trace_roundtrip(tmp_path, round1_masked):
    """A simulator-produced trace survives the save/load cycle intact."""
    from repro.harness.runner import des_run

    run = des_run(round1_masked.program, 0x133457799BBCDFF1,
                  0x0123456789ABCDEF)
    path = tmp_path / "real.npz"
    save_trace(run.trace, path)
    loaded = load_trace(path)
    assert np.array_equal(loaded.energy, run.trace.energy)
    assert loaded.markers == run.trace.markers
