"""Fault tolerance: retries, timeouts, pool recovery, checkpoint/resume.

The process-pool tests inject real faults (worker death, hangs, garbage
returns) through the deterministic ``REPRO_FAULT_PLAN`` hook, so every
recovery path runs against an actual ``ProcessPoolExecutor`` — not a
mock.  The acceptance gate throughout is bit-identical results: whatever
the engine survives, the numbers must match a clean serial run exactly.
"""

import logging
import pickle
import time

import numpy as np
import pytest

from repro import obs
from repro.harness.engine import (CompileCache, CompileRequest, SimJob,
                                  run_jobs)
from repro.harness.resilience import (FAULT_PLAN_ENV, BatchError,
                                      CheckpointJournal, FaultInjected,
                                      JobFailure, JobTimeout, backoff_delay,
                                      batch_digest, fault_for,
                                      require_results)
from repro.isa.assembler import assemble
from repro.machine.exceptions import CpuError, CycleLimitExceeded
from repro.programs.des_source import DesProgramSpec

ASM = """
.data
x: .word 5
.text
lw $t0, x
xor $t1, $t0, $t0
sw $t1, x
nop
halt
"""

TINY_SPEC = DesProgramSpec(rounds=0, include_ip=False, include_fp=False)


def _batch(count=6, sigma=0.8):
    """Noisy tiny jobs: per-seed noise makes bit-identity a real check."""
    program = assemble(ASM)
    return [SimJob(program=program, noise_sigma=sigma, noise_seed=i + 1,
                   label=f"job[{i}]") for i in range(count)]


def _energies(results):
    return [result.energy.copy() for result in results]


@pytest.fixture
def no_fault_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


# -- deterministic primitives ----------------------------------------------


def test_backoff_is_deterministic_and_bounded():
    first = backoff_delay(42, 3, 1)
    assert first == backoff_delay(42, 3, 1)  # clock-free
    assert backoff_delay(42, 3, 1) != backoff_delay(42, 3, 2)
    assert backoff_delay(42, 4, 1) != backoff_delay(42, 3, 1)
    for attempt in range(1, 12):
        assert 0.0 < backoff_delay(7, 0, attempt) <= 2.0
    with pytest.raises(ValueError):
        backoff_delay(1, 0, 0)


def test_fault_plan_parses_targets_and_attempts(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "2:1:crash;trace[5]:*:raise")
    assert fault_for(2, "job[2]", 1) == "crash"
    assert fault_for(2, "job[2]", 2) is None       # attempt-specific
    assert fault_for(9, "trace[5]", 4) == "raise"  # label match, any attempt
    assert fault_for(0, "job[0]", 1) is None


def test_fault_plan_rejects_malformed_entries(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "2:oops")
    with pytest.raises(ValueError, match="TARGET:ATTEMPT:KIND"):
        fault_for(2, "", 1)
    monkeypatch.setenv(FAULT_PLAN_ENV, "2:1:meltdown")
    with pytest.raises(ValueError, match="unknown fault kind"):
        fault_for(2, "", 1)


def test_require_results_raises_typed_batch_error():
    failure = JobFailure(label="t", index=3, error_type="FaultInjected",
                         message="boom", attempts=2)
    with pytest.raises(BatchError) as excinfo:
        require_results([None, failure])
    assert excinfo.value.failures == [failure]
    assert "[3] t: FaultInjected after 2 attempt(s)" in str(excinfo.value)
    ok = [object(), object()]
    assert require_results(ok) == ok


def test_cycle_limit_exceeded_is_typed_and_picklable():
    error = CycleLimitExceeded(pc=0x40, cycles=100, max_cycles=100)
    assert isinstance(error, CpuError)  # old except-clauses still work
    clone = pickle.loads(pickle.dumps(error))
    assert (clone.pc, clone.cycles, clone.max_cycles) == (0x40, 100, 100)
    assert "max_cycles=100" in str(clone) and "pc=0x00000040" in str(clone)


def test_job_timeout_survives_pickling():
    clone = pickle.loads(pickle.dumps(JobTimeout(1.5)))
    assert isinstance(clone, JobTimeout) and clone.seconds == 1.5


# -- failure policies (serial path) ----------------------------------------


def test_cycle_overrun_surfaces_pc_and_cycles(no_fault_plan):
    job = SimJob(program=assemble(ASM), max_cycles=3, label="runaway")
    (failure,) = run_jobs([job], failure_policy="collect")
    assert isinstance(failure, JobFailure)
    assert failure.error_type == "CycleLimitExceeded"
    assert failure.cycles == 3 and failure.pc is not None
    assert failure.attempts == 1


def test_raise_policy_rethrows_the_real_exception(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "1:*:raise")
    with pytest.raises(FaultInjected):
        run_jobs(_batch(3))  # default policy is seed-compatible "raise"


def test_collect_policy_slots_failures_in_place(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "1:*:raise")
    results = run_jobs(_batch(3), failure_policy="collect")
    assert isinstance(results[1], JobFailure)
    assert results[1].error_type == "FaultInjected"
    assert results[1].label == "job[1]" and results[1].index == 1
    assert results[0].cycles == results[2].cycles  # neighbors unharmed


def test_retry_policy_recovers_transient_failure_bit_identical(
        monkeypatch, no_fault_plan):
    clean = _energies(run_jobs(_batch()))
    monkeypatch.setenv(FAULT_PLAN_ENV, "1:1:raise;4:1:raise;4:2:raise")
    recovered = run_jobs(_batch(), failure_policy="retry", retries=2)
    for clean_energy, result in zip(clean, require_results(recovered)):
        assert np.array_equal(clean_energy, result.energy)


def test_retry_budget_is_bounded(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "1:*:raise")
    results = run_jobs(_batch(3), failure_policy="retry", retries=2)
    assert isinstance(results[1], JobFailure)
    assert results[1].attempts == 3  # 1 first try + 2 retries


def test_garbage_worker_return_becomes_typed_failure(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "0:*:garbage")
    results = run_jobs(_batch(2), failure_policy="collect")
    assert isinstance(results[0], JobFailure)
    assert results[0].error_type == "GarbageResult"
    assert "tuple" in results[0].message


def test_unknown_policy_and_negative_retries_rejected():
    with pytest.raises(ValueError, match="failure_policy"):
        run_jobs(_batch(2), failure_policy="ignore")
    with pytest.raises(ValueError, match="retries"):
        run_jobs(_batch(2), failure_policy="retry", retries=-1)


def test_in_worker_timeout_raises_typed_job_timeout(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "0:*:hang")
    start = time.monotonic()
    (failure,) = run_jobs(_batch(1), failure_policy="collect",
                          job_timeout=0.3)
    assert isinstance(failure, JobFailure)
    assert failure.error_type == "JobTimeout"
    assert time.monotonic() - start < 5.0  # alarm fired, not the 1 h sleep


# -- process-pool fault recovery -------------------------------------------


@pytest.mark.slow
def test_worker_crash_retried_bit_identical_to_serial(
        monkeypatch, no_fault_plan):
    """ISSUE acceptance: kill one worker mid-batch; retried results must
    match a fault-free serial run bit for bit."""
    clean = _energies(run_jobs(_batch()))
    monkeypatch.setenv(FAULT_PLAN_ENV, "2:1:crash")
    results = run_jobs(_batch(), jobs=3, failure_policy="retry", retries=2)
    for clean_energy, result in zip(clean, require_results(results)):
        assert np.array_equal(clean_energy, result.energy)


@pytest.mark.slow
def test_worker_crash_under_raise_policy_propagates(monkeypatch):
    from concurrent.futures.process import BrokenProcessPool

    monkeypatch.setenv(FAULT_PLAN_ENV, "1:*:crash")
    with pytest.raises(BrokenProcessPool):
        run_jobs(_batch(4), jobs=2)


@pytest.mark.slow
def test_pool_soft_hang_killed_by_in_worker_alarm(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "1:*:hang")
    results = run_jobs(_batch(4), jobs=2, failure_policy="collect",
                       job_timeout=0.5)
    assert isinstance(results[1], JobFailure)
    assert results[1].error_type == "JobTimeout"
    assert all(not isinstance(results[i], JobFailure) for i in (0, 2, 3))


@pytest.mark.slow
def test_pool_hard_hang_reaped_by_parent_deadline(monkeypatch, no_fault_plan):
    """A worker wedged in signal-blind code is killed from the parent;
    innocent in-flight jobs are requeued and still finish correctly."""
    clean = _energies(run_jobs(_batch()))
    monkeypatch.setenv(FAULT_PLAN_ENV, "1:*:hang-hard")
    start = time.monotonic()
    results = run_jobs(_batch(), jobs=3, failure_policy="collect",
                       job_timeout=0.5)
    assert time.monotonic() - start < 30.0  # reaped, not the 1 h sleep
    assert isinstance(results[1], JobFailure)
    assert results[1].error_type == "JobTimeout"
    for index, clean_energy in enumerate(clean):
        if index == 1:
            continue
        assert np.array_equal(clean_energy, results[index].energy)


@pytest.mark.slow
def test_pool_timeout_under_raise_policy_raises_job_timeout(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "0:*:hang-hard")
    with pytest.raises(JobTimeout):
        run_jobs(_batch(3), jobs=2, job_timeout=0.5)


def test_pool_unavailable_degrades_to_serial(monkeypatch, caplog,
                                             no_fault_plan):
    from repro.harness import resilience

    clean = _energies(run_jobs(_batch(4)))
    monkeypatch.setattr(resilience, "_make_pool", lambda workers: None)
    with caplog.at_level(logging.WARNING, "repro.harness.resilience"):
        results = run_jobs(_batch(4), jobs=4)
    for clean_energy, result in zip(clean, results):
        assert np.array_equal(clean_energy, result.energy)


# -- checkpoint / resume ----------------------------------------------------


def test_checkpoint_resume_recomputes_only_unfinished(monkeypatch, tmp_path):
    """ISSUE acceptance: an interrupted batch resumed from its journal
    recomputes only the unfinished jobs (verified via obs counters)."""
    journal_path = tmp_path / "sweep.ckpt"
    monkeypatch.setenv(FAULT_PLAN_ENV, "4:*:raise")
    first = run_jobs(_batch(), failure_policy="collect",
                     checkpoint=journal_path)
    assert isinstance(first[4], JobFailure)  # 5 completed, 1 failed

    monkeypatch.delenv(FAULT_PLAN_ENV)
    seen = []
    try:
        obs.enable()
        with obs.scope() as scoped:
            resumed = run_jobs(_batch(), checkpoint=journal_path,
                               progress=lambda d, t: seen.append((d, t)))
    finally:
        obs.disable()
    assert seen == [(5, 6), (6, 6)]  # one catch-up tick, one real job
    totals = obs.snapshot_totals(scoped.registry.snapshot())
    assert totals["checkpoint_jobs_skipped"] == 5
    assert totals["jobs_prebuilt"] == 1  # exactly one simulation executed
    clean = run_jobs(_batch())
    for clean_result, result in zip(clean, require_results(resumed)):
        assert np.array_equal(clean_result.energy, result.energy)


def test_checkpoint_digest_mismatch_starts_fresh(tmp_path, caplog,
                                                 no_fault_plan):
    journal_path = tmp_path / "sweep.ckpt"
    run_jobs(_batch(3), checkpoint=journal_path)
    different = _batch(3, sigma=0.1)  # same length, different content
    with caplog.at_level(logging.WARNING, "repro.harness.resilience"):
        journal = CheckpointJournal.open(journal_path, different)
    assert journal.completed == {}
    assert "digest mismatch" in caplog.text
    assert journal.digest == batch_digest(different)


def test_checkpoint_tolerates_truncated_tail(tmp_path, no_fault_plan):
    journal_path = tmp_path / "sweep.ckpt"
    run_jobs(_batch(3), checkpoint=journal_path)
    payload = journal_path.read_bytes()
    journal_path.write_bytes(payload[:-7])  # crash mid-append
    journal = CheckpointJournal.open(journal_path, _batch(3))
    assert len(journal.completed) == 2  # last frame dropped, prefix kept
    resumed = run_jobs(_batch(3), checkpoint=journal_path)
    clean = run_jobs(_batch(3))
    for clean_result, result in zip(clean, resumed):
        assert np.array_equal(clean_result.energy, result.energy)


def test_checkpoint_compile_requests_digest_by_cache_key(tmp_path):
    request_jobs = [SimJob(program=CompileRequest(spec=TINY_SPEC,
                                                  masking=masking),
                           des_pair=(0x133457799BBCDFF1, 0), label=masking)
                    for masking in ("none", "selective")]
    digest = batch_digest(request_jobs)
    assert digest == batch_digest(list(request_jobs))  # stable
    assert digest != batch_digest(list(reversed(request_jobs)))


# -- compile-cache hygiene --------------------------------------------------


def test_corrupt_cache_entry_is_quarantined(tmp_path):
    request = CompileRequest(spec=TINY_SPEC, masking="none")
    CompileCache(directory=tmp_path).program_for(request)
    (artifact,) = tmp_path.glob("*.pkl")
    artifact.write_bytes(b"not a pickle at all")

    fresh = CompileCache(directory=tmp_path)
    program = fresh.program_for(request)  # recompiles instead of crashing
    assert program.text
    assert (fresh.stats.hits, fresh.stats.misses) == (0, 1)
    corrupt = list(tmp_path.glob("*.corrupt"))
    assert len(corrupt) == 1  # bad artifact moved aside, recompiled once
    again = CompileCache(directory=tmp_path)
    again.program_for(request)
    assert again.stats.hits == 1  # the re-stored artifact is healthy


def test_stale_writer_tmp_files_swept_on_construction(tmp_path):
    import os

    stale = tmp_path / "orphan.tmp"
    stale.write_bytes(b"half-written")
    old = time.time() - 2 * CompileCache.STALE_TMP_S
    os.utime(stale, (old, old))
    live = tmp_path / "busy.tmp"
    live.write_bytes(b"in flight")

    CompileCache(directory=tmp_path)
    assert not stale.exists()  # orphan swept
    assert live.exists()       # a live writer's file survives


# -- checkpoint CRC frames (v2) ---------------------------------------------


def _frame_offsets(journal_path):
    """Byte offsets of each record frame (header excluded)."""
    offsets = []
    with journal_path.open("rb") as stream:
        pickle.load(stream)  # header
        while True:
            offsets.append(stream.tell())
            try:
                pickle.load(stream)
            except EOFError:
                offsets.pop()
                break
    return offsets


def test_checkpoint_rejects_corrupt_mid_file_frame(tmp_path, caplog,
                                                   no_fault_plan):
    """A flipped bit in the *middle* of the journal (bit rot, torn write)
    must never come back as a plausible result: the CRC rejects the frame
    before unpickling, everything from it onward is recomputed, and the
    resumed batch is bit-identical to a clean run."""
    journal_path = tmp_path / "sweep.ckpt"
    run_jobs(_batch(4), checkpoint=journal_path)
    offsets = _frame_offsets(journal_path)
    assert len(offsets) == 4
    data = bytearray(journal_path.read_bytes())
    # Flip one byte deep inside record 1's payload: the outer pickle
    # still parses, so only the CRC can catch it.
    data[offsets[1] + (offsets[2] - offsets[1]) // 2] ^= 0xFF
    journal_path.write_bytes(bytes(data))

    with caplog.at_level(logging.WARNING, "repro.harness.resilience"):
        journal = CheckpointJournal.open(journal_path, _batch(4))
    assert set(journal.completed) == {0}  # strict prefix before the rot
    assert "CRC mismatch" in caplog.text or "unreadable frame" in caplog.text
    resumed = run_jobs(_batch(4), checkpoint=journal_path)
    clean = run_jobs(_batch(4))
    for clean_result, result in zip(clean, resumed):
        assert np.array_equal(clean_result.energy, result.energy)


def test_checkpoint_v1_journal_discarded_not_misread(tmp_path, caplog,
                                                     no_fault_plan):
    """Journals from the pre-CRC format are discarded whole — an old
    frame layout must not be reinterpreted as data."""
    batch = _batch(3)
    results = run_jobs(batch)
    journal_path = tmp_path / "sweep.ckpt"
    with journal_path.open("wb") as stream:
        pickle.dump({"schema": "repro.checkpoint/v1",
                     "digest": batch_digest(batch), "total": 3}, stream)
        for index, result in enumerate(results):
            pickle.dump((index, result), stream)  # v1: bare frames, no CRC
    with caplog.at_level(logging.WARNING, "repro.harness.resilience"):
        journal = CheckpointJournal.open(journal_path, batch)
    assert journal.completed == {}
    assert "schema or batch digest mismatch" in caplog.text


# -- graceful interruption (SIGTERM/SIGINT) ---------------------------------


def test_sigterm_interrupts_serial_batch_preserving_checkpoint(
        tmp_path, no_fault_plan):
    """ISSUE satellite: SIGTERM mid-batch flushes the checkpoint, raises
    a typed BatchInterrupted (CLI exits nonzero), and the resumed run is
    bit-identical; the previous signal disposition is restored."""
    import os
    import signal as signal_module

    from repro.harness.resilience import BatchInterrupted

    journal_path = tmp_path / "sweep.ckpt"
    before = signal_module.getsignal(signal_module.SIGTERM)

    def fire(done, total):
        if done == 2:
            os.kill(os.getpid(), signal_module.SIGTERM)

    with pytest.raises(BatchInterrupted) as excinfo:
        run_jobs(_batch(), checkpoint=journal_path, progress=fire)
    assert excinfo.value.done == 2 and excinfo.value.total == 6
    assert "SIGTERM" in str(excinfo.value)
    assert signal_module.getsignal(signal_module.SIGTERM) is before

    journal = CheckpointJournal.open(journal_path, _batch())
    assert set(journal.completed) == {0, 1}  # interrupted work persisted
    resumed = run_jobs(_batch(), checkpoint=journal_path)
    clean = run_jobs(_batch())
    for clean_result, result in zip(clean, resumed):
        assert np.array_equal(clean_result.energy, result.energy)


@pytest.mark.slow
def test_sigint_interrupts_pool_batch_preserving_checkpoint(
        tmp_path, no_fault_plan):
    import os
    import signal as signal_module

    from repro.harness.resilience import BatchInterrupted

    journal_path = tmp_path / "sweep.ckpt"

    def fire(done, total):
        if done == 2:
            os.kill(os.getpid(), signal_module.SIGINT)

    with pytest.raises(BatchInterrupted) as excinfo:
        run_jobs(_batch(), jobs=3, checkpoint=journal_path, progress=fire)
    assert excinfo.value.done >= 2
    assert "SIGINT" in str(excinfo.value)

    journal = CheckpointJournal.open(journal_path, _batch())
    assert len(journal.completed) >= 2  # pool completions are unordered
    resumed = run_jobs(_batch(), checkpoint=journal_path)
    clean = run_jobs(_batch())
    for clean_result, result in zip(clean, resumed):
        assert np.array_equal(clean_result.energy, result.energy)
