"""Energy profiling utilities."""

import numpy as np
import pytest

from repro.energy.trace import EnergyTrace
from repro.harness.profiling import (component_breakdown, des_phase_labels,
                                     phase_energy)


def test_phase_energy_basic():
    trace = EnergyTrace(energy=np.array([1.0, 1.0, 2.0, 2.0, 3.0]),
                        markers=((2, 7), (4, 8)))
    phases = phase_energy(trace)
    assert [(p.label, p.energy_pj) for p in phases] == [
        ("start", 2.0), ("marker=7", 4.0), ("marker=8", 3.0)]
    assert phases[0].cycles == 2
    assert phases[1].average_pj == 2.0


def test_phase_energy_labels():
    trace = EnergyTrace(energy=np.ones(4), markers=((1, 5),))
    phases = phase_energy(trace, labels={5: "round 1"})
    assert phases[1].label == "round 1"


def test_phase_energy_no_markers():
    trace = EnergyTrace(energy=np.ones(3), markers=())
    phases = phase_energy(trace)
    assert len(phases) == 1
    assert phases[0].energy_pj == 3.0


def test_phase_energy_marker_at_zero():
    trace = EnergyTrace(energy=np.ones(3), markers=((0, 1),))
    phases = phase_energy(trace)
    # Empty leading span dropped.
    assert phases[0].label == "marker=1"


def test_phase_energy_zero_length_marker_span_kept():
    # Two markers on the same cycle: the earlier one compiled to zero
    # instructions but must still appear (with zero energy), and the
    # phase energies must still sum to the trace total.
    trace = EnergyTrace(energy=np.ones(4), markers=((2, 7), (2, 8)))
    phases = phase_energy(trace, labels={7: "empty phase"})
    assert [(p.label, p.cycles, p.energy_pj) for p in phases] == [
        ("start", 2, 2.0), ("empty phase", 0, 0.0), ("marker=8", 2, 2.0)]
    assert phases[1].average_pj == 0.0  # no division by zero
    assert sum(p.energy_pj for p in phases) == trace.total_pj


def test_profile_batch_empty_raises():
    from repro.harness.profiling import profile_batch

    with pytest.raises(ValueError, match="empty batch"):
        profile_batch([])


def test_batch_profile_carries_registry_snapshot():
    from repro.harness.engine import SimJob, run_jobs
    from repro.harness.profiling import profile_batch
    from repro.isa.assembler import assemble

    program = assemble(".text\nnop\nhalt\n")
    profile = profile_batch(run_jobs([SimJob(program=program)] * 2))
    assert profile.jobs == 2
    assert profile.metrics["job_wall_seconds"]["series"][0]["count"] == 2
    assert profile.metrics["jobs_prebuilt"]["series"][0]["value"] == 2


def test_des_phase_labels():
    labels = des_phase_labels(rounds=2)
    assert labels[1] == "initial permutation"
    assert labels[10] == "round 1"
    assert labels[11] == "round 2"
    assert 12 not in labels


def test_component_breakdown_sums_to_one(round1_unmasked):
    from repro.harness.runner import des_run

    run = des_run(round1_unmasked.program, 0x133457799BBCDFF1,
                  0x0123456789ABCDEF)
    rows = component_breakdown(run)
    assert sum(fraction for _, _, fraction in rows) == pytest.approx(1.0)
    totals = {name: total for name, total, _ in rows}
    assert totals["clock"] > 0
    assert totals["secure"] == 0.0  # unmasked build


def test_des_phase_energy_covers_run(round1_unmasked):
    from repro.harness.runner import des_run

    run = des_run(round1_unmasked.program, 0x133457799BBCDFF1,
                  0x0123456789ABCDEF)
    phases = phase_energy(run.trace, des_phase_labels(rounds=1))
    total = sum(p.energy_pj for p in phases)
    assert total == pytest.approx(run.trace.total_pj)
    labels = [p.label for p in phases]
    assert "initial permutation" in labels
    assert "round 1" in labels
    # Round 1 dominates the energy of the 1-round program.
    round1 = next(p for p in phases if p.label == "round 1")
    assert round1.energy_pj > 0.5 * total
