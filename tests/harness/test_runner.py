"""Harness runner: traces, labels, inputs."""

import pytest

from repro.harness.runner import des_run, run_with_trace
from repro.isa.assembler import assemble

KEY = 0x133457799BBCDFF1
PT = 0x0123456789ABCDEF


def test_run_with_trace_basic():
    program = assemble("""
    .data
    x: .word 0
    .text
    lw $t0, x
    addiu $t0, $t0, 1
    sw $t0, x
    halt
    """)
    result = run_with_trace(program, inputs={"x": [41]}, label="t")
    assert result.cpu.read_symbol_words("x", 1) == [42]
    assert len(result.trace) == result.cycles
    assert result.total_uj > 0
    assert result.average_pj > 0
    assert result.trace.label == "t"


def test_trace_markers_propagated():
    program = assemble("""
    li $t0, 7
    li $at, 0xFF00
    sw $t0, 0($at)
    halt
    """)
    result = run_with_trace(program)
    assert result.trace.marker_cycles(7)


def test_component_collection_optional():
    program = assemble("nop\nhalt\n")
    with_components = run_with_trace(program, collect_components=True)
    without = run_with_trace(program)
    assert with_components.trace.components is not None
    assert without.trace.components is None


def test_des_run_injects_key_and_plaintext(round1_unmasked):
    from repro.des.reference import encrypt_block
    from repro.programs.workloads import ciphertext_from_words

    result = des_run(round1_unmasked.program, KEY, PT)
    words = result.cpu.read_symbol_words("ciphertext", 64)
    assert ciphertext_from_words(words) == encrypt_block(PT, KEY, rounds=1)


def test_des_run_without_plaintext_symbol(keyperm_unmasked):
    result = des_run(keyperm_unmasked.program, KEY, PT)
    assert result.cycles > 0
