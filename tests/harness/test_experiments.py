"""Experiment registry: fast experiments run here; the expensive full
reproductions live in benchmarks/."""

import pytest

from repro.harness.experiments import (EXPERIMENTS, fig12_masking_overhead,
                                       run_experiment, xor_unit_energy)


def test_registry_covers_all_paper_artifacts():
    paper = {"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
             "tab1", "xor-op", "dpa"}
    ablations = {"ablation-slice", "ablation-components",
                 "ablation-isolation"}
    extensions = {"ext-aes", "ext-opt", "ext-coupling", "ext-noise",
                  "ext-tvla", "ext-sensitivity", "ext-disclosure"}
    assert paper | ablations | extensions == set(EXPERIMENTS)


def test_run_experiment_unknown_id():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_xor_unit_experiment_matches_paper():
    result = xor_unit_energy(samples=1024)
    assert result.summary["normal_mean_pj"] == pytest.approx(0.3, abs=0.03)
    assert result.summary["secure_mean_pj"] == pytest.approx(0.6, abs=1e-9)
    assert result.summary["secure_std_pj"] == pytest.approx(0.0, abs=1e-9)
    assert result.summary["cell_constant_after_first_cycle"]


def test_fig12_overhead_positive():
    result = fig12_masking_overhead()
    assert result.summary["mean_overhead_pj_per_cycle"] > 0
    assert result.summary["mean_overhead_active_pj"] > \
        result.summary["mean_overhead_pj_per_cycle"]
    assert result.summary["window_cycles"] > 100
    assert "overhead" in result.series


def test_experiment_result_fields():
    result = xor_unit_energy(samples=64)
    assert result.experiment_id == "xor-op"
    assert result.title
    assert isinstance(result.summary, dict)
