"""Report formatting."""

import numpy as np

from repro.harness.report import (ascii_table, series_preview,
                                  sparkline, summarize_series)


def test_ascii_table_alignment():
    table = ascii_table(["name", "value"], [("x", 1), ("longer", 22)])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert "----" in lines[1]
    assert len(lines) == 4
    # Columns align: 'value' header position matches data.
    assert lines[0].index("value") == lines[2].index("1")


def test_ascii_table_empty_rows():
    table = ascii_table(["a"], [])
    assert table.splitlines()[0] == "a"


def test_series_preview_short():
    assert series_preview(np.array([1.0, 2.0]), count=5) == "1.0 2.0"


def test_series_preview_long_elides():
    preview = series_preview(np.arange(100, dtype=float), count=3)
    assert "..." in preview
    assert "(n=100)" in preview


def test_summarize_series():
    summary = summarize_series(np.array([0.0, 2.0, 4.0]))
    assert summary["n"] == 3
    assert summary["mean"] == 2.0
    assert summary["max"] == 4.0
    assert summary["min"] == 0.0
    assert summary["nonzero_fraction"] == 2 / 3


def test_summarize_empty():
    summary = summarize_series(np.array([]))
    assert summary["n"] == 0
    assert summary["mean"] == 0.0


def test_sparkline_shape_and_range():
    line = sparkline(np.linspace(0, 1, 200), width=40)
    assert len(line) == 40
    assert line[0] == "\u2581"   # lowest block
    assert line[-1] == "\u2588"  # highest block


def test_sparkline_flat_series():
    line = sparkline(np.ones(10))
    assert set(line) == {"\u2581"}
    assert len(line) == 10


def test_sparkline_empty():
    assert sparkline(np.array([])) == ""


def test_sparkline_short_series_not_resampled():
    assert len(sparkline(np.array([1.0, 2.0, 3.0]), width=50)) == 3


def test_sparkline_nonfinite_samples_render_as_holes():
    values = np.array([1.0, np.nan, 3.0, np.inf, 2.0, -np.inf])
    line = sparkline(values, width=10)
    assert len(line) == 6
    assert line[1] == "·" and line[3] == "·" and line[5] == "·"
    # Finite samples still scale normally: the scale ignores the holes.
    assert line[0] == "▁"
    assert line[2] == "█"


def test_sparkline_all_nonfinite():
    assert sparkline(np.array([np.nan, np.inf])) == "··"


def test_sparkline_flat_finite_with_holes():
    line = sparkline(np.array([2.0, np.nan, 2.0]))
    assert line == "▁·▁"
