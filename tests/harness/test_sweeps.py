"""Sensitivity-sweep machinery (fast smoke paths; the full sweep runs in
benchmarks)."""

import pytest

from repro.harness.sweeps import (PolicyMeasurement, SWEEPABLE, SweepResult,
                                  measure_policies, sensitivity_sweep)

GOOD_TOTALS = {"none": 10.0, "selective": 11.0, "all-loads-stores": 13.0,
               "all": 18.0}
DEGENERATE_TOTALS = {"none": 10.0, "selective": 10.0,
                     "all-loads-stores": 10.0, "all": 10.0}


def test_unknown_parameter_rejected():
    with pytest.raises(ValueError):
        sensitivity_sweep("c_not_a_parameter")


def test_measure_policies_ordering():
    totals = measure_policies(__import__("repro").DEFAULT_PARAMS, rounds=1)
    assert set(totals) == {"none", "selective", "all-loads-stores", "all"}
    assert totals["none"] < totals["selective"] \
        < totals["all-loads-stores"] < totals["all"]


def test_single_point_sweep():
    result = sensitivity_sweep("c_data_bus", factors=(1.0,), rounds=1)
    assert result.parameter == "c_data_bus"
    assert len(result.measurements) == 1
    assert result.always_ordered
    assert 0 < result.min_saving <= result.max_saving < 1


def test_extreme_factor_still_ordered():
    result = sensitivity_sweep("c_data_bus", factors=(4.0,), rounds=1)
    assert result.always_ordered


def test_policy_measurement_properties():
    measurement = PolicyMeasurement(factor=1.0, totals_uj={
        "none": 10.0, "selective": 11.0, "all-loads-stores": 13.0,
        "all": 18.0})
    assert measurement.ordering_holds
    assert measurement.overhead_saving == pytest.approx(1 - 1 / 8)


def test_degenerate_measurement():
    measurement = PolicyMeasurement(factor=1.0, totals_uj={
        "none": 10.0, "selective": 10.0, "all-loads-stores": 10.0,
        "all": 10.0})
    assert not measurement.ordering_holds
    import math
    assert math.isnan(measurement.overhead_saving)


def test_saving_range_ignores_nan_points():
    """A degenerate point's NaN must not poison min/max (the result of
    min()/max() over a NaN-bearing list depends on element order)."""
    degenerate = PolicyMeasurement(factor=0.5, totals_uj=DEGENERATE_TOTALS)
    good = PolicyMeasurement(factor=1.0, totals_uj=GOOD_TOTALS)
    for ordering in ([degenerate, good], [good, degenerate]):
        sweep = SweepResult(parameter="c_data_bus",
                            measurements=list(ordering))
        assert sweep.min_saving == pytest.approx(1 - 1 / 8)
        assert sweep.max_saving == pytest.approx(1 - 1 / 8)


def test_saving_range_all_nan_propagates():
    import math

    sweep = SweepResult(parameter="c_data_bus", measurements=[
        PolicyMeasurement(factor=1.0, totals_uj=DEGENERATE_TOTALS)])
    assert math.isnan(sweep.min_saving)
    assert math.isnan(sweep.max_saving)


def test_sweepable_parameters_exist_on_params():
    from repro import DEFAULT_PARAMS

    for parameter in SWEEPABLE:
        assert hasattr(DEFAULT_PARAMS, parameter)
