"""Batch engine: determinism vs the serial path, compile cache, profiling."""

import numpy as np
import pytest

from repro.attacks.dpa import collect_traces, random_plaintexts
from repro.harness.engine import (CompileCache, CompileRequest, SimJob,
                                  execute_job, run_jobs)
from repro.harness.profiling import job_timings, profile_batch
from repro.harness.sweeps import measure_policies, sensitivity_sweep
from repro.isa.assembler import assemble
from repro.programs.des_source import DesProgramSpec
from repro.programs.workloads import compile_des

KEY = 0x133457799BBCDFF1

ASM = """
.data
x: .word 5
.text
lw $t0, x
xor $t1, $t0, $t0
sw $t1, x
nop
halt
"""

TINY_SPEC = DesProgramSpec(rounds=0, include_ip=False, include_fp=False)


# -- serial semantics -------------------------------------------------------


def test_serial_results_match_runner():
    program = assemble(ASM)
    results = run_jobs([SimJob(program=program, label="a"),
                        SimJob(program=program, label="b")])
    assert [r.label for r in results] == ["a", "b"]
    for result in results:
        assert result.cycles == len(result.energy)
        assert result.total_pj == pytest.approx(sum(result.totals.values()))
        assert result.wall_time_s > 0
        assert result.cache_hit is None  # prebuilt program, no cache


def test_progress_callback_counts():
    program = assemble(ASM)
    seen = []
    run_jobs([SimJob(program=program)] * 3,
             progress=lambda done, total: seen.append((done, total)))
    assert seen == [(1, 3), (2, 3), (3, 3)]


def test_job_result_trace_navigation():
    program = compile_des(TINY_SPEC, masking="none").program
    result = execute_job(SimJob(program=program, des_pair=(KEY, 0)))
    assert result.markers  # key permutation markers survive the hop
    assert result.trace.total_pj == pytest.approx(result.total_pj)


# -- compile cache ----------------------------------------------------------


def test_compile_cache_memory_and_disk(tmp_path):
    request = CompileRequest(spec=TINY_SPEC, masking="none")
    cache = CompileCache(directory=tmp_path)
    first = cache.program_for(request)
    assert (cache.stats.hits, cache.stats.misses) == (0, 1)
    assert cache.program_for(request) is first  # memory hit
    assert cache.stats.hits == 1

    fresh = CompileCache(directory=tmp_path)  # simulates another process
    loaded = fresh.program_for(request)
    assert (fresh.stats.hits, fresh.stats.misses) == (1, 0)
    assert [str(i) for i in loaded.text] == [str(i) for i in first.text]
    assert loaded.data == first.data


def test_compile_cache_distinguishes_variants(tmp_path):
    cache = CompileCache(directory=tmp_path)
    unmasked = cache.program_for(CompileRequest(spec=TINY_SPEC,
                                                masking="none"))
    masked = cache.program_for(CompileRequest(spec=TINY_SPEC,
                                              masking="selective"))
    assert cache.stats.misses == 2
    assert unmasked.secure_fraction() == 0.0
    assert masked.secure_fraction() > 0.0


def test_compile_request_rejects_unknown_cipher():
    with pytest.raises(ValueError):
        CompileRequest(cipher="3des").compile()


# -- parallel == serial (the headline determinism guarantee) ----------------


def test_parallel_dpa_collection_bit_identical():
    program = compile_des(DesProgramSpec(rounds=1, include_fp=False),
                          masking="none").program
    plaintexts = random_plaintexts(4)
    serial = collect_traces(program, KEY, plaintexts, noise_sigma=2.0)
    parallel = collect_traces(program, KEY, plaintexts, noise_sigma=2.0,
                              jobs=4)
    assert np.array_equal(serial.traces, parallel.traces)
    assert serial.plaintexts == parallel.plaintexts
    assert serial.window == parallel.window


def test_parallel_sweep_bit_identical():
    from repro import DEFAULT_PARAMS

    serial = measure_policies(DEFAULT_PARAMS, rounds=1)
    parallel = measure_policies(DEFAULT_PARAMS, rounds=1, jobs=4)
    assert serial == parallel  # exact float equality, not approx

    sweep_serial = sensitivity_sweep("c_data_bus", factors=(1.0,), rounds=1)
    sweep_parallel = sensitivity_sweep("c_data_bus", factors=(1.0,),
                                       rounds=1, jobs=4)
    assert sweep_serial.measurements[0].totals_uj \
        == sweep_parallel.measurements[0].totals_uj
    assert sweep_serial.min_saving == sweep_parallel.min_saving


def test_parallel_progress_reaches_total():
    program = assemble(ASM)
    seen = []
    run_jobs([SimJob(program=program)] * 3, jobs=2,
             progress=lambda done, total: seen.append((done, total)))
    assert seen[-1] == (3, 3)
    assert [done for done, _ in seen] == [1, 2, 3]


# -- observability ----------------------------------------------------------


def test_profile_batch_and_timings():
    request = CompileRequest(spec=TINY_SPEC, masking="none")
    results = run_jobs([
        SimJob(program=request, des_pair=(KEY, 0), label="first"),
        SimJob(program=request, des_pair=(KEY, 0), label="second"),
        SimJob(program=assemble(ASM), label="raw"),
    ])
    profile = profile_batch(results)
    assert profile.jobs == 3
    assert profile.cache_hits >= 1   # second request reuses the first
    assert profile.cache_untracked == 1
    assert profile.total_wall_s >= profile.max_wall_s > 0
    assert profile.mean_wall_s == pytest.approx(profile.total_wall_s / 3)
    assert len(profile.rows()) == 5

    timings = job_timings(results)
    assert {label for label, _ in timings} == {"first", "second", "raw"}
    assert timings[0][1] >= timings[-1][1]


# -- streaming execution ----------------------------------------------------


def _noisy_batch(count):
    program = assemble(ASM)
    return [SimJob(program=program, noise_sigma=0.8, noise_seed=i + 1,
                   label=f"trace[{i}]") for i in range(count)]


def test_run_stream_consumes_in_submission_order():
    from repro.harness.engine import run_stream

    seen = []
    consumed = run_stream(_noisy_batch(7),
                          lambda index, result: seen.append(
                              (index, result.label)),
                          chunk_size=3)
    assert consumed == 7
    assert seen == [(i, f"trace[{i}]") for i in range(7)]


def test_run_stream_jobs_parallel_is_bit_identical():
    from repro.harness.engine import run_stream

    def collect(jobs, chunk_size):
        energies = []
        run_stream(_noisy_batch(8),
                   lambda index, result: energies.append(result.energy),
                   jobs=jobs, chunk_size=chunk_size)
        return energies

    serial = collect(jobs=1, chunk_size=3)
    parallel = collect(jobs=3, chunk_size=3)
    rechunked = collect(jobs=1, chunk_size=8)
    for a, b, c in zip(serial, parallel, rechunked):
        assert np.array_equal(a, b)    # exact, not approx
        assert np.array_equal(a, c)    # chunking never changes results


def test_run_stream_accumulator_matches_run_jobs():
    from repro.harness.engine import run_stream
    from repro.obs.streaming import WelfordAccumulator

    batch = _noisy_batch(10)
    streamed = WelfordAccumulator()
    run_stream(batch, lambda index, result: streamed.update(result.energy),
               chunk_size=4)
    whole = WelfordAccumulator()
    for result in run_jobs(batch):
        whole.update(result.energy)
    assert np.array_equal(streamed.mean, whole.mean)
    assert np.array_equal(streamed.m2, whole.m2)


def test_run_stream_progress_callback_spans_whole_batch():
    from repro.harness.engine import run_stream

    seen = []
    run_stream(_noisy_batch(5), lambda index, result: None, chunk_size=2,
               progress=lambda done, total: seen.append((done, total)))
    assert seen == [(i, 5) for i in range(1, 6)]


def test_run_stream_failed_slots_reach_consumer(monkeypatch):
    from repro.harness.engine import run_stream
    from repro.harness.resilience import FAULT_PLAN_ENV, JobFailure

    monkeypatch.setenv(FAULT_PLAN_ENV, "trace[1]:*:raise")
    slots = []
    consumed = run_stream(_noisy_batch(4),
                          lambda index, result: slots.append(result),
                          chunk_size=2, failure_policy="collect")
    assert consumed == 4
    assert isinstance(slots[1], JobFailure)
    assert all(not isinstance(slots[i], JobFailure) for i in (0, 2, 3))


def test_run_stream_rejects_bad_chunk_size():
    from repro.harness.engine import run_stream

    with pytest.raises(ValueError):
        run_stream(_noisy_batch(1), lambda index, result: None, chunk_size=0)


def test_run_stream_reporter_heartbeats_and_failures(monkeypatch, tmp_path):
    import json

    from repro.harness.engine import run_stream
    from repro.harness.resilience import FAULT_PLAN_ENV
    from repro.obs import progress as obs_progress

    monkeypatch.setenv(FAULT_PLAN_ENV, "trace[2]:*:raise")
    target = tmp_path / "progress.jsonl"
    monkeypatch.setenv(obs_progress.PROGRESS_ENV, str(target))
    consumed = run_stream(_noisy_batch(6), lambda index, result: None,
                          chunk_size=2, failure_policy="retry", retries=2)
    assert consumed == 6
    records = [json.loads(line)
               for line in target.read_text().strip().splitlines()]
    assert records[-1]["event"] == "finished"
    assert records[-1]["done"] == 6
    assert records[-1]["retried"] >= 1     # resilience layer reported in
    # One forced beat per chunk boundary at minimum, plus the terminal.
    assert len(records) >= 4


def test_run_jobs_reporter_from_env(monkeypatch, tmp_path):
    import json

    from repro.obs import progress as obs_progress

    target = tmp_path / "progress.jsonl"
    monkeypatch.setenv(obs_progress.PROGRESS_ENV, str(target))
    user_seen = []
    run_jobs(_noisy_batch(3),
             progress=lambda done, total: user_seen.append(done))
    assert user_seen == [1, 2, 3]          # user callback still honored
    records = [json.loads(line)
               for line in target.read_text().strip().splitlines()]
    assert records[-1]["event"] == "finished"
    assert records[-1]["total"] == 3


def test_cache_degrades_to_memory_only_when_disk_writes_fail(
        tmp_path, caplog):
    """ISSUE satellite: a full or read-only artifact store must not kill
    a run — the first failed store disables disk writes with one warning
    and the cache keeps serving from memory."""
    import logging

    from repro.programs.des_source import DesProgramSpec

    blocker = tmp_path / "cache"
    blocker.write_bytes(b"")  # a FILE where the cache dir should be
    cache = CompileCache(directory=blocker)
    request = CompileRequest(
        spec=DesProgramSpec(rounds=0, include_ip=False, include_fp=False),
        masking="none")
    with caplog.at_level(logging.WARNING, "repro.harness.engine"):
        program = cache.program_for(request)  # compile works, store fails
    assert program.text
    assert cache.disk_write_disabled
    assert cache.stats.disk_errors == 1
    assert "memory-only" in caplog.text

    caplog.clear()
    other = CompileRequest(
        spec=DesProgramSpec(rounds=0, include_ip=False, include_fp=False),
        masking="selective")
    with caplog.at_level(logging.WARNING, "repro.harness.engine"):
        cache.program_for(other)              # store short-circuits
    assert cache.stats.disk_errors == 1       # failed once, loudly, once
    assert not caplog.records
    assert cache.program_for(request).text    # memory still serves
    assert cache.stats.hits == 1
