"""Command-line interface."""

import pytest

from repro.cli import main

SC_SOURCE = """
secure int k;
int out;
out = k ^ 5;
"""

ASM_SOURCE = """
.data
out: .word 0
.text
li $t0, 7
sw $t0, out
halt
"""


@pytest.fixture
def sc_file(tmp_path):
    path = tmp_path / "toy.sc"
    path.write_text(SC_SOURCE)
    return str(path)


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "toy.s"
    path.write_text(ASM_SOURCE)
    return str(path)


def test_compile_to_stdout(sc_file, capsys):
    assert main(["compile", sc_file]) == 0
    out = capsys.readouterr()
    assert "sxori" in out.out or "sxor" in out.out
    assert "secure" in out.err


def test_compile_to_file(sc_file, tmp_path, capsys):
    output = str(tmp_path / "out.s")
    assert main(["compile", sc_file, "-o", output]) == 0
    text = open(output).read()
    assert ".text" in text


def test_compile_optimized(sc_file, capsys):
    assert main(["compile", sc_file, "-O", "1"]) == 0
    assert "sxori" in capsys.readouterr().out


def test_asm_listing(asm_file, capsys):
    assert main(["asm", asm_file]) == 0
    out = capsys.readouterr().out
    assert "0x00000000" in out
    assert "halt" in out


def test_run_assembly(asm_file, capsys):
    assert main(["run", asm_file, "--dump", "out"]) == 0
    out = capsys.readouterr().out
    assert "cycles:" in out
    assert "out = [7]" in out


def test_run_securec_with_inputs(sc_file, capsys):
    assert main(["run", sc_file, "--input", "k=3", "--dump", "out"]) == 0
    out = capsys.readouterr().out
    assert "out = [6]" in out  # 3 ^ 5
    assert "secure_retired" in out


def test_run_bad_input_spec(sc_file):
    with pytest.raises(SystemExit):
        main(["run", sc_file, "--input", "garbage"])


def test_experiments_listing(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out
    assert "tab1" in out
    assert "ext-aes" in out


def test_experiment_runs_fast_one(capsys):
    assert main(["experiment", "xor-op"]) == 0
    out = capsys.readouterr().out
    assert "normal_mean_pj" in out


def test_experiment_jobs_flag_parses():
    from repro.cli import build_parser

    arguments = build_parser().parse_args(["experiment", "dpa",
                                           "--jobs", "4"])
    assert arguments.jobs == 4
    assert build_parser().parse_args(["experiment", "dpa"]).jobs == 1


def test_experiment_jobs_flag_on_serial_experiment(capsys):
    """--jobs on an experiment without batch loops warns but still runs."""
    assert main(["experiment", "xor-op", "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "normal_mean_pj" in captured.out
    assert "--jobs not applicable" in captured.err


def test_run_fast_mode(sc_file, capsys):
    assert main(["run", sc_file, "--fast", "--input", "k=3",
                 "--dump", "out"]) == 0
    out = capsys.readouterr().out
    assert "functional mode" in out
    assert "out = [6]" in out


def test_experiment_json_export(tmp_path, capsys):
    out = str(tmp_path / "xor.json")
    assert main(["experiment", "xor-op", "--json", out]) == 0
    import json
    data = json.loads(open(out).read())
    assert data["experiment_id"] == "xor-op"
    assert abs(data["summary"]["secure_mean_pj"] - 0.6) < 1e-9
