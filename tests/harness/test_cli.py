"""Command-line interface."""

import pytest

from repro.cli import main

SC_SOURCE = """
secure int k;
int out;
out = k ^ 5;
"""

ASM_SOURCE = """
.data
out: .word 0
.text
li $t0, 7
sw $t0, out
halt
"""


@pytest.fixture
def sc_file(tmp_path):
    path = tmp_path / "toy.sc"
    path.write_text(SC_SOURCE)
    return str(path)


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "toy.s"
    path.write_text(ASM_SOURCE)
    return str(path)


def test_compile_to_stdout(sc_file, capsys):
    assert main(["compile", sc_file]) == 0
    out = capsys.readouterr()
    assert "sxori" in out.out or "sxor" in out.out
    assert "secure" in out.err


def test_compile_to_file(sc_file, tmp_path, capsys):
    output = str(tmp_path / "out.s")
    assert main(["compile", sc_file, "-o", output]) == 0
    text = open(output).read()
    assert ".text" in text


def test_compile_optimized(sc_file, capsys):
    assert main(["compile", sc_file, "-O", "1"]) == 0
    assert "sxori" in capsys.readouterr().out


def test_asm_listing(asm_file, capsys):
    assert main(["asm", asm_file]) == 0
    out = capsys.readouterr().out
    assert "0x00000000" in out
    assert "halt" in out


def test_run_assembly(asm_file, capsys):
    assert main(["run", asm_file, "--dump", "out"]) == 0
    out = capsys.readouterr().out
    assert "cycles:" in out
    assert "out = [7]" in out


def test_run_securec_with_inputs(sc_file, capsys):
    assert main(["run", sc_file, "--input", "k=3", "--dump", "out"]) == 0
    out = capsys.readouterr().out
    assert "out = [6]" in out  # 3 ^ 5
    assert "secure_retired" in out


def test_run_bad_input_spec(sc_file):
    with pytest.raises(SystemExit):
        main(["run", sc_file, "--input", "garbage"])


def test_experiments_listing(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out
    assert "tab1" in out
    assert "ext-aes" in out


def test_experiment_runs_fast_one(capsys):
    assert main(["experiment", "xor-op"]) == 0
    out = capsys.readouterr().out
    assert "normal_mean_pj" in out


def test_experiment_engine_env_restored(capsys, monkeypatch):
    """--engine scopes REPRO_ENGINE to the experiment run: a previous
    value is restored afterwards, and an unset variable stays unset
    instead of leaking the last --engine into the rest of the process."""
    import os

    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert main(["experiment", "xor-op", "--engine", "reference"]) == 0
    assert "REPRO_ENGINE" not in os.environ
    monkeypatch.setenv("REPRO_ENGINE", "fast")
    assert main(["experiment", "xor-op", "--engine", "reference"]) == 0
    assert os.environ["REPRO_ENGINE"] == "fast"
    capsys.readouterr()


def test_experiment_engine_env_restored_on_failure(monkeypatch):
    """The scope restores the variable even when the experiment raises."""
    import os

    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    with pytest.raises(KeyError):
        main(["experiment", "no-such-experiment", "--engine", "reference"])
    assert "REPRO_ENGINE" not in os.environ


def test_run_accepts_vector_engine(asm_file, capsys):
    assert main(["run", asm_file, "--engine", "vector", "--dump",
                 "out"]) == 0
    assert "out = [7]" in capsys.readouterr().out


def test_experiment_jobs_flag_parses():
    from repro.cli import build_parser

    arguments = build_parser().parse_args(["experiment", "dpa",
                                           "--jobs", "4"])
    assert arguments.jobs == 4
    assert build_parser().parse_args(["experiment", "dpa"]).jobs == 1


def test_experiment_jobs_flag_on_serial_experiment(capsys):
    """--jobs on an experiment without batch loops warns but still runs."""
    assert main(["experiment", "xor-op", "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "normal_mean_pj" in captured.out
    assert "--jobs not applicable" in captured.err


def test_run_fast_mode(sc_file, capsys):
    assert main(["run", sc_file, "--fast", "--input", "k=3",
                 "--dump", "out"]) == 0
    out = capsys.readouterr().out
    assert "functional mode" in out
    assert "out = [6]" in out


def test_experiment_json_export(tmp_path, capsys):
    out = str(tmp_path / "xor.json")
    assert main(["experiment", "xor-op", "--json", out]) == 0
    import json
    data = json.loads(open(out).read())
    assert data["experiment_id"] == "xor-op"
    assert abs(data["summary"]["secure_mean_pj"] - 0.6) < 1e-9


def test_run_trace_out_streams_ndjson(asm_file, tmp_path, capsys):
    import json

    path = tmp_path / "trace.ndjson"
    assert main(["run", asm_file, "--trace-out", str(path)]) == 0
    out = capsys.readouterr().out
    assert "streamed" in out and "ndjson" in out
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert all("pj" in r or "marker" in r for r in records)
    assert sum("pj" in r for r in records) > 0


def test_run_trace_out_csv(asm_file, tmp_path, capsys):
    path = tmp_path / "trace.csv"
    assert main(["run", asm_file, "--trace-out", str(path)]) == 0
    assert path.read_text().splitlines()[0] == "cycle,total_pj"


def test_experiment_attribution_and_report(tmp_path, capsys):
    import json

    from repro import obs

    manifest_path = tmp_path / "m.json"
    attribution_path = tmp_path / "a.json"
    report_path = tmp_path / "r.html"
    result_path = tmp_path / "j.json"
    try:
        assert main(["experiment", "fig12",
                     "--manifest", str(manifest_path),
                     "--attribution", str(attribution_path),
                     "--report-html", str(report_path),
                     "--json", str(result_path), "--no-series"]) == 0
    finally:
        obs.disable_attribution()
        obs.disable()
        obs.reset()
    out = capsys.readouterr().out
    assert "saved attribution" in out and "saved report" in out

    snapshot = json.loads(attribution_path.read_text())
    assert snapshot["schema"] == "repro.obs.attribution/v1"
    assert snapshot["total_pj"] > 0
    manifest = json.loads(manifest_path.read_text())
    assert manifest["schema"] == "repro.obs.manifest/v2"
    assert manifest["attribution"]["cells"] == len(snapshot["cells"])
    html = report_path.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "Energy attribution" in html

    # The artifacts feed the obs subcommands.
    assert main(["obs", "attribution", str(attribution_path),
                 "--top", "3"]) == 0
    full = capsys.readouterr().out
    assert "attributed energy" in full and "by unit:" in full
    assert main(["obs", "attribution", str(manifest_path)]) == 0
    assert "summarized" in capsys.readouterr().out
    out_html = tmp_path / "out.html"
    assert main(["obs", "report", str(manifest_path),
                 "--json", str(result_path), "-o", str(out_html)]) == 0
    capsys.readouterr()
    assert "fig12" in out_html.read_text()


def test_obs_attribution_rejects_manifest_without_section(tmp_path,
                                                          capsys):
    import json

    import pytest

    from repro import obs

    manifest = obs.build_manifest(metrics={}, spans=[])
    path = tmp_path / "plain.json"
    obs.write_manifest(manifest, path)
    with pytest.raises(SystemExit):
        main(["obs", "attribution", str(path)])
    other = tmp_path / "foreign.json"
    other.write_text(json.dumps({"schema": "nope"}))
    with pytest.raises(SystemExit):
        main(["obs", "attribution", str(other)])


def test_experiment_streaming_and_progress_flags(tmp_path, capsys,
                                                 monkeypatch):
    import json
    import os

    monkeypatch.delenv("REPRO_PROGRESS", raising=False)
    progress_path = tmp_path / "progress.jsonl"
    assert main(["experiment", "ext-tvla", "--streaming",
                 "--progress", str(progress_path),
                 "--progress-interval", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "unmasked_disclosure_traces" in out
    assert "masked_disclosure_traces" in out
    # The env scope unwound: later library calls see no progress sink.
    assert "REPRO_PROGRESS" not in os.environ
    records = [json.loads(line) for line
               in progress_path.read_text().strip().splitlines()]
    assert records[-1]["event"] == "finished"
    assert any(r["event"] == "heartbeat" for r in records)
    assert any("max_abs_t" in r for r in records)


def test_experiment_streaming_flag_on_non_streaming_experiment(capsys):
    assert main(["experiment", "xor-op", "--streaming"]) == 0
    assert "--streaming" in capsys.readouterr().err


def test_obs_flamegraph_subcommand(tmp_path, capsys):
    manifest_path = tmp_path / "m.json"
    assert main(["experiment", "xor-op",
                 "--manifest", str(manifest_path)]) == 0
    from repro import obs

    obs.disable()
    capsys.readouterr()
    out_html = tmp_path / "flame.html"
    assert main(["obs", "flamegraph", str(manifest_path),
                 "-o", str(out_html), "--title", "xor spans"]) == 0
    assert "saved flamegraph" in capsys.readouterr().out
    page = out_html.read_text()
    assert page.startswith("<!DOCTYPE html>")
    assert "xor spans" in page
    assert "experiment=xor-op" in page
