"""Shared worker pool: leasing, generations, fingerprints, shutdown.

Every test runs against a real forked ``ProcessPoolExecutor`` (the pool
module has no mock path) but keeps worker counts at 1, so the suite
stays cheap.  The singleton is reset around every test — shared state
must never leak between tests, exactly as it must never leak between a
daemon's requests.
"""

import os

import pytest

from repro.harness import pool as pool_module
from repro.harness import resilience
from repro.harness.engine import SimJob, run_jobs
from repro.harness.pool import (FINGERPRINT_KEYS, SharedWorkerPool,
                                environment_fingerprint)
from repro.isa.assembler import assemble

ASM = """
.data
x: .word 5
.text
lw $t0, x
xor $t1, $t0, $t0
sw $t1, x
nop
halt
"""


def _echo(value):
    return value


@pytest.fixture(autouse=True)
def fresh_pool(monkeypatch):
    """Isolate the process-wide singleton and the fault-plan env."""
    monkeypatch.delenv(resilience.FAULT_PLAN_ENV, raising=False)
    pool_module.reset_shared_pool()
    yield
    pool_module.reset_shared_pool()


def _jobs(count=2):
    program = assemble(ASM)
    return [SimJob(program=program, noise_sigma=0.5, noise_seed=i + 1,
                   label=f"job[{i}]") for i in range(count)]


# -- leasing ----------------------------------------------------------------


def test_second_acquire_reuses_warm_generation():
    pool = SharedWorkerPool()
    lease = pool.acquire(1)
    assert lease is not None and not lease.private
    assert lease.submit(_echo, 17).result(timeout=30) == 17
    lease.release()
    again = pool.acquire(1)
    assert again is not None and not again.private
    assert again.submit(_echo, 18).result(timeout=30) == 18
    again.release()
    stats = pool.shutdown(grace_s=10.0)
    assert stats["cold_builds"] == 1
    assert stats["warm_acquires"] == 1
    assert stats["generation"] == 1
    assert stats["stranded_workers"] == 0


def test_concurrent_acquire_overflows_to_private_lease():
    pool = SharedWorkerPool()
    holder = pool.acquire(1)
    overflow = pool.acquire(1)
    try:
        assert holder is not None and not holder.private
        assert overflow is not None and overflow.private
        # The overflow lease really works, on its own executor.
        assert overflow.submit(_echo, 3).result(timeout=30) == 3
    finally:
        overflow.release()
        holder.release()
    stats = pool.shutdown(grace_s=10.0)
    assert stats["shared_leases"] == 1
    assert stats["private_leases"] == 1
    assert stats["stranded_workers"] == 0


def test_kill_and_rebuild_forks_a_fresh_generation():
    pool = SharedWorkerPool()
    lease = pool.acquire(1)
    first_generation = pool.stats()["generation"]
    lease.kill()
    assert lease.rebuild()
    assert pool.stats()["generation"] == first_generation + 1
    assert lease.submit(_echo, 5).result(timeout=30) == 5
    lease.release()
    stats = pool.shutdown(grace_s=10.0)
    assert stats["rebuilds"] == 1
    assert stats["stranded_workers"] == 0


def test_release_with_running_work_retires_the_generation():
    import time as time_module

    pool = SharedWorkerPool()
    lease = pool.acquire(1)
    generation = pool.stats()["generation"]
    lease.submit(time_module.sleep, 60)
    lease.release()  # must not block for the sleeping worker
    follow_up = pool.acquire(1)
    assert follow_up is not None
    assert pool.stats()["generation"] == generation + 1
    assert follow_up.submit(_echo, 9).result(timeout=30) == 9
    follow_up.release()
    assert pool.shutdown(grace_s=10.0)["stranded_workers"] == 0


# -- environment fingerprinting ---------------------------------------------


def test_fingerprint_covers_the_worker_facing_environment(monkeypatch):
    for key in FINGERPRINT_KEYS:
        monkeypatch.delenv(key, raising=False)
    baseline = environment_fingerprint()
    monkeypatch.setenv("REPRO_FAULT_PLAN", "1:1:crash")
    assert environment_fingerprint() != baseline


def test_fingerprint_change_rebuilds_idle_pool(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    pool = SharedWorkerPool()
    lease = pool.acquire(1)
    lease.release()
    generation = pool.stats()["generation"]
    monkeypatch.setenv("REPRO_FAULT_PLAN", "99:9:crash")  # never matches
    lease = pool.acquire(1)
    assert lease is not None and not lease.private
    assert pool.stats()["generation"] == generation + 1
    assert pool.stats()["fingerprint_rebuilds"] == 1
    lease.release()
    pool.shutdown(grace_s=10.0)


# -- probes -----------------------------------------------------------------


def test_probe_passes_live_pool_and_quarantines_dead_workers():
    pool = SharedWorkerPool()
    assert pool.probe(timeout_s=30.0)  # nothing built yet: trivially fine
    lease = pool.acquire(1)
    lease.release()
    assert pool.probe(timeout_s=30.0)
    # Kill the workers behind the pool's back: the probe must notice and
    # quarantine the generation instead of leaving it wedged.
    generation = pool.stats()["generation"]
    executor = pool._executor
    for process in list(executor._processes.values()):
        process.kill()
    assert not pool.probe(timeout_s=10.0)
    assert pool.stats()["probe_failures"] == 1
    lease = pool.acquire(1)
    assert lease is not None
    assert pool.stats()["generation"] == generation + 1
    assert lease.submit(_echo, 2).result(timeout=30) == 2
    lease.release()
    pool.shutdown(grace_s=10.0)


# -- factory identity -------------------------------------------------------


def test_injected_factory_refusal_degrades_instead_of_masking():
    """A monkeypatched factory returning None must yield serial (None),
    never be papered over by a warm shared executor."""
    lease = pool_module.acquire_lease(2, factory=lambda workers: None)
    assert lease is None


def test_canonical_factory_takes_the_shared_path():
    lease = pool_module.acquire_lease(
        1, factory=resilience._DEFAULT_POOL_FACTORY)
    assert lease is not None and not lease.private
    lease.release()


# -- shutdown ---------------------------------------------------------------


def test_shutdown_is_idempotent_and_acquire_after_is_private():
    pool = SharedWorkerPool()
    lease = pool.acquire(1)
    lease.release()
    first = pool.shutdown(grace_s=10.0)
    assert first["shut_down"] and first["stranded_workers"] == 0
    assert pool.shutdown(grace_s=10.0)["stranded_workers"] == 0
    late = pool.acquire(1)
    assert late is not None and late.private
    assert late.submit(_echo, 11).result(timeout=30) == 11
    late.release()


# -- resilience integration -------------------------------------------------


def test_run_jobs_batches_share_one_warm_pool():
    """Two consecutive parallel batches: the second must lease the warm
    generation instead of forking a fresh pool, bit-identically."""
    first = run_jobs(_jobs(), jobs=2)
    second = run_jobs(_jobs(), jobs=2)
    for a, b in zip(first, second):
        assert (a.energy == b.energy).all()
    stats = pool_module.pool_stats()
    assert stats is not None
    assert stats["shared_leases"] == 2
    assert stats["warm_acquires"] >= 1
    assert stats["generation"] == 1


def test_broken_pool_recovery_leaves_no_stranded_workers(monkeypatch):
    """The broken-pool cleanup contract, extended to the shared pool: a
    worker crash that condemns the executor mid-batch must end with a
    rebuilt generation serving correct results, and the pool's own
    shutdown must account for zero stranded worker processes."""
    import numpy as np

    clean = [result.energy for result in run_jobs(_jobs(4))]
    monkeypatch.setenv(resilience.FAULT_PLAN_ENV, "job[2]:1:crash")
    results = run_jobs(_jobs(4), jobs=2, failure_policy="retry", retries=2)
    for clean_energy, result in zip(clean, results):
        assert np.array_equal(clean_energy, result.energy)
    summary = pool_module.shutdown_shared_pool(grace_s=30.0)
    assert summary is not None
    assert summary["stranded_workers"] == 0
    assert summary["rebuilds"] >= 1
