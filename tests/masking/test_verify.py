"""The reusable masking verifier."""

import pytest

from repro.lang.compiler import compile_source
from repro.masking.verify import (MaskingReport, random_secret_assignments,
                                  verify_masking)

SOURCE = """
secure int k[4];
int out;
int t;
int i;

__marker(1);
t = 0;
for (i = 0; i < 4; i = i + 1) { t = t | (k[i] << i); }
__marker(2);
__insecure { out = t & 1; }
"""


def compiled(masking):
    return compile_source(SOURCE, masking=masking)


def assignments(count=4):
    return random_secret_assignments("k", words=4, count=count)


def test_masked_program_verifies_flat():
    report = verify_masking(compiled("selective").program, assignments(),
                            window_markers=(1, 2))
    assert report.flat
    assert report.max_abs_diff_pj == 0.0
    assert "masking holds" in report.describe()


def test_unmasked_program_fails_verification():
    report = verify_masking(compiled("none").program, assignments(),
                            window_markers=(1, 2))
    assert not report.flat
    assert report.max_abs_diff_pj > 0
    assert report.first_leaking_pair is not None
    assert "VIOLATION" in report.describe()


def test_needs_two_assignments():
    with pytest.raises(ValueError):
        verify_masking(compiled("selective").program, assignments(1),
                       window_markers=(1, 2))


def test_whole_trace_comparison_without_markers():
    # Without windowing, the declassified output store differs -> not flat
    # even for the masked build (by design: the output is public).
    report = verify_masking(compiled("selective").program, [
        {"k": [0, 0, 0, 0]}, {"k": [1, 0, 0, 0]}])
    assert not report.flat


def test_secret_dependent_timing_detected():
    source = """
    secure int k;
    int out;
    __marker(1);
    if (k) { out = 1; } else { out = 0; }
    __marker(2);
    """
    program = compile_source(source, masking="selective").program
    with pytest.raises(RuntimeError, match="control flow"):
        verify_masking(program, [{"k": [0]}, {"k": [1]}],
                       window_markers=(1, 2))


def test_random_assignments_shape():
    generated = random_secret_assignments("key", words=8, count=3,
                                          max_value=255)
    assert len(generated) == 3
    for assignment in generated:
        assert set(assignment) == {"key"}
        assert len(assignment["key"]) == 8
        assert all(0 <= v <= 255 for v in assignment["key"])


def test_des_program_verifies(round1_masked):
    from repro.programs.markers import M_FP_START, M_KEYPERM_START
    from repro.programs.workloads import plaintext_words

    report = verify_masking(
        round1_masked.program,
        random_secret_assignments("key", words=64, count=3),
        public_inputs={"plaintext": plaintext_words(0x0123456789ABCDEF)},
        window_markers=(M_KEYPERM_START, M_FP_START))
    assert report.flat
    assert report.assignments_tested == 3
