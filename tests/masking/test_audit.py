"""Dynamic information-flow audit."""

import pytest

from repro.lang.compiler import compile_source
from repro.masking.audit import audit_masking
from repro.programs.des_source import DesProgramSpec
from repro.programs.workloads import compile_des, key_words, plaintext_words

KEY = 0x133457799BBCDFF1
PT = 0x0123456789ABCDEF
DES_INPUTS = {"key": key_words(KEY), "plaintext": plaintext_words(PT)}


def audit_source(source, masking="selective", secrets=None, inputs=None):
    compiled = compile_source(source, masking=masking)
    return audit_masking(compiled.program, secrets or {"k": 1}, inputs)


def test_clean_masked_snippet():
    report = audit_source("""
    secure int k;
    int out;
    out = (k ^ 5) << 1;
    """, inputs={"k": [3]})
    assert report.clean
    assert report.tainted_instructions > 0
    assert "audit clean" in report.describe()


def test_unmasked_snippet_flagged():
    report = audit_source("""
    secure int k;
    int out;
    out = (k ^ 5) << 1;
    """, masking="none", inputs={"k": [3]})
    assert not report.clean
    assert any(v.kind == "data" for v in report.violations)
    assert "AUDIT FAILED" in report.describe()


def test_load_address_taint_detected():
    """A plain load at a secret-derived address is an index leak."""
    report = audit_source("""
    secure int k;
    const int t[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    int out;
    __insecure { out = t[k & 7]; }
    """, inputs={"k": [2]})
    assert not report.clean
    kinds = {v.kind for v in report.violations}
    assert "load-address" in kinds or "data" in kinds


def test_secret_branch_violates_even_when_secure():
    """Control flow on secrets is a violation regardless of secure bits."""
    from repro.isa.assembler import assemble

    program = assemble("""
    .data
    k: .word 1
    out: .word 0
    .text
    slw $t0, k
    s.beq $t0, $zero, skip    # secure bit cannot mask control flow
    li $t1, 1
    skip:
    sw $t1, out
    halt
    """)
    report = audit_masking(program, {"k": 1})
    assert any(v.kind == "control" for v in report.violations)


def test_taint_clears_on_overwrite():
    """Dynamic precision: reusing a register for clean data is fine."""
    report = audit_source("""
    secure int k;
    int scratch;
    int out;
    scratch = k;          // scratch (and its register) tainted, secured
    scratch = 7;          // overwritten with a constant: clean again
    out = scratch + 1;    // insecure use is now legitimate
    """, inputs={"k": [9]})
    assert report.clean


def test_masked_des_round1_audits_clean(round1_masked):
    # round1_masked includes the declassified FP -> use the FP-less build.
    compiled = compile_des(DesProgramSpec(rounds=1, include_fp=False),
                           masking="selective")
    report = audit_masking(compiled.program, {"key": 64}, DES_INPUTS)
    assert report.clean
    assert report.tainted_instructions > 500


def test_unmasked_des_round1_fully_flagged():
    compiled = compile_des(DesProgramSpec(rounds=1, include_fp=False),
                           masking="none")
    report = audit_masking(compiled.program, {"key": 64}, DES_INPUTS)
    assert len(report.violations) == report.tainted_instructions > 500


def test_annotate_only_misses_derived_data():
    compiled = compile_des(DesProgramSpec(rounds=1, include_fp=False),
                           masking="annotate-only")
    report = audit_masking(compiled.program, {"key": 64}, DES_INPUTS)
    # Direct key loads are covered; everything derived is not.
    assert 0 < len(report.violations) < report.tainted_instructions


def test_full_des_violations_confined_to_declassified_output():
    """The full program's only insecure secret touches are the FP reads —
    the paper's deliberate declassification."""
    compiled = compile_des(DesProgramSpec(rounds=1), masking="selective")
    report = audit_masking(compiled.program, {"key": 64}, DES_INPUTS)
    assert not report.clean
    # All violations are plain loads/stores (the FP copy loop), not ALU
    # leaks.
    for violation in report.violations:
        mnemonic = violation.instruction.split()[0]
        assert mnemonic in ("lw", "sw"), violation


def test_masked_aes_audits_clean():
    from repro.aes.reference import int_to_state
    from repro.programs.aes_source import AesProgramSpec
    from repro.programs.workloads import compile_aes

    compiled = compile_aes(AesProgramSpec(rounds=2, include_output=False),
                           masking="selective")
    report = audit_masking(
        compiled.program, {"key": 16},
        {"key": int_to_state(0x000102030405060708090a0b0c0d0e0f),
         "plaintext": int_to_state(0x00112233445566778899aabbccddeeff)})
    assert report.clean
    assert report.tainted_instructions > 300
