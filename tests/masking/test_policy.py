"""Masking policies: rewriters and policy semantics."""

import pytest

from repro.isa.assembler import assemble
from repro.machine.cpu import run_to_halt
from repro.masking.policy import (MaskingPolicy, apply_policy, secure_all,
                                  secure_all_loads_stores)

SOURCE = """
.data
x: .word 3
y: .word 0
.text
lw $t0, x
xor $t1, $t0, $t0
addu $t2, $t1, $t0
sw $t2, y
halt
"""


def test_all_loads_stores_rewrite():
    program = assemble(SOURCE)
    rewritten = secure_all_loads_stores(program)
    for ins in rewritten.text:
        if ins.spec.is_load or ins.spec.is_store:
            assert ins.secure
        else:
            assert not ins.secure


def test_secure_all_rewrite():
    program = assemble(SOURCE)
    rewritten = secure_all(program)
    assert all(ins.secure for ins in rewritten.text)


def test_rewrites_preserve_results():
    program = assemble(SOURCE)
    expected = run_to_halt(program).read_symbol_words("y", 1)
    for policy in (MaskingPolicy.ALL_LOADS_STORES, MaskingPolicy.ALL):
        rewritten = apply_policy(assemble(SOURCE), policy)
        assert run_to_halt(rewritten).read_symbol_words("y", 1) == expected


def test_rewrites_preserve_cycle_count():
    program = assemble(SOURCE)
    base_cycles = run_to_halt(program).cycles
    for policy in (MaskingPolicy.ALL_LOADS_STORES, MaskingPolicy.ALL):
        rewritten = apply_policy(assemble(SOURCE), policy)
        assert run_to_halt(rewritten).cycles == base_cycles


def test_apply_policy_none_is_identity():
    program = assemble(SOURCE)
    assert apply_policy(program, MaskingPolicy.NONE) is program


def test_compiler_policies_rejected():
    program = assemble(SOURCE)
    with pytest.raises(ValueError):
        apply_policy(program, MaskingPolicy.SELECTIVE)
    with pytest.raises(ValueError):
        apply_policy(program, MaskingPolicy.ANNOTATE_ONLY)


def test_compiler_mode_mapping():
    assert MaskingPolicy.NONE.compiler_mode == "none"
    assert MaskingPolicy.SELECTIVE.compiler_mode == "selective"
    assert MaskingPolicy.ANNOTATE_ONLY.compiler_mode == "annotate-only"
    assert MaskingPolicy.ALL.compiler_mode is None
    assert MaskingPolicy.ALL_LOADS_STORES.compiler_mode is None


def test_original_program_untouched_by_rewrites():
    program = assemble(SOURCE)
    secure_all(program)
    assert not any(ins.secure for ins in program.text)
