"""Register file: $zero hardwiring, masking, dump/load."""

import pytest

from repro.machine.regfile import RegisterFile


def test_initially_zero():
    regs = RegisterFile()
    assert all(regs.read(i) == 0 for i in range(32))


def test_write_read():
    regs = RegisterFile()
    regs.write(5, 123)
    assert regs.read(5) == 123


def test_zero_register_ignores_writes():
    regs = RegisterFile()
    regs.write(0, 999)
    assert regs.read(0) == 0


def test_values_masked_to_32_bits():
    regs = RegisterFile()
    regs.write(1, 0x1_0000_0001)
    assert regs.read(1) == 1


def test_dump_load_roundtrip():
    regs = RegisterFile()
    for i in range(32):
        regs.write(i, i * 7)
    snapshot = regs.dump()
    other = RegisterFile()
    other.load(snapshot)
    assert other.dump() == snapshot
    assert other.read(0) == 0


def test_load_wrong_length_raises():
    with pytest.raises(ValueError):
        RegisterFile().load([0] * 31)
