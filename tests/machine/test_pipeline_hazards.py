"""Forwarding and hazard corner cases."""

from repro.isa.assembler import assemble
from repro.machine.cpu import run_to_halt


def result(source, symbol="out", count=1, inputs=None):
    cpu = run_to_halt(assemble(source), inputs=inputs)
    return cpu.read_symbol_words(symbol, count)


def test_ex_to_ex_forwarding():
    assert result("""
    .data
    out: .word 0
    .text
    li $t0, 5
    addu $t1, $t0, $t0     # needs $t0 from previous EX
    addu $t2, $t1, $t1     # needs $t1 from previous EX
    sw $t2, out
    halt
    """) == [20]


def test_mem_to_ex_forwarding():
    assert result("""
    .data
    out: .word 0
    .text
    li $t0, 5
    nop
    addu $t1, $t0, $t0     # producer two back -> MEM/WB path
    sw $t1, out
    halt
    """) == [10]


def test_load_use_interlock_value_correct():
    assert result("""
    .data
    x: .word 11
    out: .word 0
    .text
    la $t9, x
    lw $t0, 0($t9)
    addu $t1, $t0, $t0     # load-use: must stall then forward
    sw $t1, out
    halt
    """) == [22]


def test_load_then_gap_then_use():
    assert result("""
    .data
    x: .word 7
    out: .word 0
    .text
    la $t9, x
    lw $t0, 0($t9)
    nop
    addu $t1, $t0, $t0
    sw $t1, out
    halt
    """) == [14]


def test_store_data_forwarding():
    assert result("""
    .data
    out: .word 0
    .text
    li $t0, 33
    la $t9, out
    sw $t0, 0($t9)         # store data produced two instructions ago
    halt
    """) == [33]


def test_store_data_forwarding_immediate_producer():
    assert result("""
    .data
    out: .word 0
    .text
    la $t9, out
    li $t0, 44
    sw $t0, 0($t9)         # store data produced by previous instruction
    halt
    """) == [44]


def test_load_to_store_forwarding():
    assert result("""
    .data
    x: .word 55
    out: .word 0
    .text
    la $t9, x
    la $t8, out
    lw $t0, 0($t9)
    sw $t0, 0($t8)         # store of just-loaded value
    halt
    """) == [55]


def test_branch_operand_forwarding():
    assert result("""
    .data
    out: .word 0
    .text
    li $t0, 1
    li $t1, 1
    beq $t0, $t1, yes      # operands from immediately preceding EX results
    li $t2, 0
    j done
    yes:
    li $t2, 9
    done:
    sw $t2, out
    halt
    """) == [9]


def test_double_producer_newest_wins():
    assert result("""
    .data
    out: .word 0
    .text
    li $t0, 1
    li $t0, 2              # newer producer of $t0
    addu $t1, $t0, $t0     # must see 2, not 1
    sw $t1, out
    halt
    """) == [4]


def test_writeback_read_same_cycle():
    # Producer three instructions back: WB writes in the same cycle the
    # consumer reads in ID (write-before-read register file).
    assert result("""
    .data
    out: .word 0
    .text
    li $t0, 6
    nop
    nop
    addu $t1, $t0, $t0
    sw $t1, out
    halt
    """) == [12]


def test_zero_register_not_forwarded():
    # Writes targeting $zero must not create forwarding paths.
    assert result("""
    .data
    out: .word 0
    .text
    addu $zero, $zero, $zero
    li $t0, 3
    addu $t1, $zero, $t0
    sw $t1, out
    halt
    """) == [3]


def test_chain_of_dependent_loads():
    # Pointer chase: each load's address depends on the previous load.
    assert result("""
    .data
    p1: .word 0
    p2: .word 0
    val: .word 77
    out: .word 0
    .text
    la $t0, p1
    la $t1, p2
    la $t2, val
    sw $t2, 0($t1)         # p2 = &val
    sw $t1, 0($t0)         # p1 = &p2
    lw $t3, 0($t0)         # t3 = p1 = &p2
    lw $t4, 0($t3)         # t4 = *p2 = &val  (load-use on t3)
    lw $t5, 0($t4)         # t5 = 77          (load-use on t4)
    sw $t5, out
    halt
    """) == [77]


def test_operand_isolation_preserves_semantics():
    """Gated ID reads must still produce correct results via forwarding."""
    assert result("""
    .data
    out: .word 0
    .text
    li $t0, 100
    li $t1, 10
    subu $t2, $t0, $t1     # both operands gated (producers in EX/MEM)
    subu $t3, $t2, $t1     # t2 gated (EX), t1 from regfile
    sw $t3, out
    halt
    """) == [80]
