"""Memory: word/byte semantics, alignment, images."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.exceptions import MemoryError_
from repro.machine.memory import Memory


def test_uninitialized_reads_zero():
    assert Memory().read_word(0x1000) == 0
    assert Memory().read_byte(0x1003) == 0


def test_word_write_read():
    memory = Memory()
    memory.write_word(0x20, 0xDEADBEEF)
    assert memory.read_word(0x20) == 0xDEADBEEF


def test_word_write_masks_to_32_bits():
    memory = Memory()
    memory.write_word(0, 0x1_2345_6789)
    assert memory.read_word(0) == 0x2345_6789


def test_unaligned_word_access_raises():
    memory = Memory()
    with pytest.raises(MemoryError_):
        memory.read_word(2)
    with pytest.raises(MemoryError_):
        memory.write_word(1, 0)


def test_byte_within_word_little_endian():
    memory = Memory()
    memory.write_word(0x40, 0x44332211)
    assert memory.read_byte(0x40) == 0x11
    assert memory.read_byte(0x41) == 0x22
    assert memory.read_byte(0x42) == 0x33
    assert memory.read_byte(0x43) == 0x44


def test_byte_write_preserves_other_bytes():
    memory = Memory()
    memory.write_word(0x40, 0x44332211)
    memory.write_byte(0x41, 0xAA)
    assert memory.read_word(0x40) == 0x4433AA11


def test_load_image():
    memory = Memory()
    memory.load_image(0x100, [1, 2, 3])
    assert memory.read_words(0x100, 3) == [1, 2, 3]


def test_load_image_unaligned_raises():
    with pytest.raises(MemoryError_):
        Memory().load_image(0x101, [1])


def test_write_words_read_words():
    memory = Memory()
    memory.write_words(0x200, [10, 20, 30])
    assert memory.read_words(0x200, 3) == [10, 20, 30]


def test_contains():
    memory = Memory()
    assert 0x30 not in memory
    memory.write_word(0x30, 5)
    assert 0x30 in memory


def test_clear():
    memory = Memory()
    memory.write_word(0, 1)
    memory.clear()
    assert memory.read_word(0) == 0


@given(address=st.integers(min_value=0, max_value=0xFFFF).map(lambda a: a * 4),
       value=st.integers(min_value=0, max_value=0xFFFF_FFFF))
def test_word_roundtrip_property(address, value):
    memory = Memory()
    memory.write_word(address, value)
    assert memory.read_word(address) == value


@given(base=st.integers(min_value=0, max_value=0xFFF).map(lambda a: a * 4),
       data=st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                     max_size=16))
def test_byte_roundtrip_property(base, data):
    memory = Memory()
    for offset, byte in enumerate(data):
        memory.write_byte(base + offset, byte)
    for offset, byte in enumerate(data):
        assert memory.read_byte(base + offset) == byte
