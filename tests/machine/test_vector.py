"""Vector trace-batch engine: bit-identity against the reference engine.

The vector engine inherits the fast engine's absolute contract: for every
program whose control path is data-independent, replaying the recorded
schedule — here as one NumPy pass over a whole batch — must reproduce
the reference pipeline's output *bit for bit*: per-cycle energies (same
floats, same accumulation order), component matrices, totals/counts,
final architectural state, markers, and performance counters.  These
tests enforce that contract over the full set of experiment programs
(mirroring ``test_fastpath.py``), plus the batch-native dispatch in
``run_jobs``, the registry fallback chain, and engine resolution.
"""

import hashlib

import numpy as np
import pytest

from repro import obs
from repro.aes.reference import int_to_state
from repro.harness.engine import SimJob, run_jobs
from repro.harness.runner import des_run, run_with_trace
from repro.isa.assembler import assemble
from repro.machine import engines, fastpath, vector
from repro.machine.exceptions import CycleLimitExceeded
from repro.masking.policy import MaskingPolicy, apply_policy
from repro.programs.des_source import DesProgramSpec
from repro.programs.workloads import compile_des, key_words, plaintext_words

KEY = 0x133457799BBCDFF1
PLAINTEXT = 0x0123456789ABCDEF
AES_KEY = 0x000102030405060708090A0B0C0D0E0F
AES_PLAINTEXT = 0x00112233445566778899AABBCCDDEEFF

#: Same golden digests the fast path and attribution layer are pinned to.
GOLDEN_DIGESTS = {
    "none":
        "a63e8b8e0cd6cd22c0cbbc20008443d4ca47533378988a03106778e3b071d8b4",
    "selective":
        "5d1a41d858d421defc6f4dc3650af5951f026157ea5baca802c971d1c83ce954",
}


def _digest(run):
    return hashlib.sha256(run.trace.energy.tobytes()).hexdigest()


def _des_inputs(program):
    inputs = {"key": key_words(KEY)}
    if "plaintext" in program.symbols:
        inputs["plaintext"] = plaintext_words(PLAINTEXT)
    return inputs


def _assert_identical(reference, vectored):
    """Every observable of the two runs must match exactly."""
    assert _digest(reference) == _digest(vectored)
    assert reference.cycles == vectored.cycles
    assert reference.cpu.pipeline.regs.dump() == \
        vectored.cpu.pipeline.regs.dump()
    assert reference.cpu.memory._words == vectored.cpu.memory._words
    assert reference.cpu.pipeline.markers == vectored.cpu.pipeline.markers
    assert reference.cpu.pipeline.stats == vectored.cpu.pipeline.stats
    assert reference.tracker.totals == vectored.tracker.totals
    assert reference.tracker.counts == vectored.tracker.counts
    if reference.tracker.component_energy:
        assert np.array_equal(
            np.asarray(reference.tracker.component_energy),
            np.asarray(vectored.tracker.component_energy))


def _differential(program, operand_isolation=True, inputs=None,
                  **run_kwargs):
    if inputs is None:
        inputs = _des_inputs(program)
    reference = run_with_trace(program, inputs=inputs, engine="reference",
                               operand_isolation=operand_isolation,
                               collect_components=True, **run_kwargs)
    vectored = run_with_trace(program, inputs=inputs, engine="vector",
                              operand_isolation=operand_isolation,
                              collect_components=True, **run_kwargs)
    assert vectored.engine == "vector"
    assert reference.engine == "reference"
    _assert_identical(reference, vectored)
    return reference, vectored


# -- golden digests -----------------------------------------------------

@pytest.mark.parametrize("masking", ["none", "selective"])
def test_round1_vector_hits_golden_digest(masking):
    program = compile_des(DesProgramSpec(rounds=1), masking=masking).program
    run = des_run(program, KEY, PLAINTEXT, engine="vector")
    assert run.engine == "vector"
    assert run.cycles == 18432
    assert _digest(run) == GOLDEN_DIGESTS[masking]


# -- differential bit-identity over the experiment programs -------------

@pytest.mark.parametrize("masking", ["none", "selective"])
def test_full_des_bit_identical(masking):
    program = compile_des(DesProgramSpec(rounds=16), masking=masking).program
    _differential(program)


@pytest.mark.parametrize("masking", ["none", "selective", "annotate-only"])
def test_round1_bit_identical(masking):
    program = compile_des(DesProgramSpec(rounds=1), masking=masking).program
    _differential(program)


def test_keyschedule_only_bit_identical():
    spec = DesProgramSpec(rounds=0, include_keyschedule=True)
    program = compile_des(spec, masking="selective").program
    _differential(program)


@pytest.mark.parametrize("policy", [MaskingPolicy.ALL_LOADS_STORES,
                                    MaskingPolicy.ALL])
def test_whole_program_policies_bit_identical(policy):
    base = compile_des(DesProgramSpec(rounds=2), masking="none").program
    _differential(apply_policy(base, policy))


def test_no_operand_isolation_bit_identical():
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program
    _differential(program, operand_isolation=False)


@pytest.mark.parametrize("masking", ["none", "selective"])
def test_aes_bit_identical(masking):
    from repro.programs.workloads import compile_aes

    program = compile_aes(masking=masking).program
    _differential(program, inputs={"key": int_to_state(AES_KEY),
                                   "plaintext": int_to_state(AES_PLAINTEXT)})


def test_noise_bit_identical():
    """Same noise seed -> the vector post-pass replays the tracker's
    chunked draw stream draw-for-draw."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program
    _differential(program, noise_sigma=0.1, noise_seed=7)


def test_coupled_bus_bit_identical():
    """The vectorized dual-rail coupling math (spread/interleave popcount)
    matches the scalar CoupledBusModel event for event."""
    import dataclasses

    from repro.energy.params import DEFAULT_PARAMS

    params = dataclasses.replace(DEFAULT_PARAMS, c_coupling=0.12)
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program
    _differential(program, params=params)


def test_opcode_mix_identical():
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program

    def observed(engine):
        was_enabled = obs.enabled()
        with obs.scope():
            obs.enable()
            try:
                return des_run(program, KEY, PLAINTEXT, engine=engine)
            finally:
                if not was_enabled:
                    obs.disable()

    reference, vectored = observed("reference"), observed("vector")
    assert vectored.engine == "vector"
    assert reference.cpu.pipeline.opcode_mix
    assert reference.cpu.pipeline.opcode_mix == \
        vectored.cpu.pipeline.opcode_mix


def test_attribution_substitutes_hooked_engine():
    """Attribution needs per-cycle hooks; the registry substitutes the
    vector engine's declared ``hooked`` engine (fast) transparently."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program

    def attributed(engine):
        was_enabled = obs.enabled()
        with obs.scope():
            obs.enable_attribution()
            try:
                return des_run(program, KEY, PLAINTEXT, engine=engine)
            finally:
                obs.disable_attribution()
                if not was_enabled:
                    obs.disable()

    reference, vectored = attributed("reference"), attributed("vector")
    assert vectored.engine == "fast"
    assert reference.attribution.cells == vectored.attribution.cells


# -- divergence and fallback --------------------------------------------

DIVERGENT_SOURCE = """
.data
inval: .word 0
.text
main:
    la $t0, inval
    lw $t1, 0($t0)
    beq $t1, $zero, skip
    addi $t2, $zero, 99
skip:
    addi $t3, $zero, 7
    halt
"""


def test_divergence_falls_back_bit_identically():
    """An input that flips a recorded branch re-runs down the fallback
    chain with completely fresh state, labeled with the requested engine."""
    program = assemble(DIVERGENT_SOURCE)
    fastpath._clear_caches()
    vector._clear_caches()
    reference = run_with_trace(program, inputs={"inval": [1]},
                               engine="reference", collect_components=True)
    vectored = run_with_trace(program, inputs={"inval": [1]},
                              engine="vector", collect_components=True)
    assert vectored.engine == "vector-fallback"
    _assert_identical(reference, vectored)
    assert (fastpath.program_digest(program), True) in fastpath._DIVERGENT


def test_matching_input_replays_before_any_divergence():
    program = assemble(DIVERGENT_SOURCE)
    fastpath._clear_caches()
    vector._clear_caches()
    reference = run_with_trace(program, inputs={"inval": [0]},
                               engine="reference")
    vectored = run_with_trace(program, inputs={"inval": [0]},
                              engine="vector")
    assert vectored.engine == "vector"
    _assert_identical(reference, vectored)


def test_divergent_batch_falls_back_per_job():
    """One divergent trace poisons the whole batch (whole-program
    divergence marking, like the fast engine); every job still comes back
    bit-identical via the per-job fallback chain."""
    program = assemble(DIVERGENT_SOURCE)
    fastpath._clear_caches()
    vector._clear_caches()
    values = (0, 0, 1, 0)
    jobs = [SimJob(program=program, inputs={"inval": [v]}, label=f"j{i}",
                   engine="vector") for i, v in enumerate(values)]
    results = run_jobs(jobs)
    assert [r.engine for r in results] == ["vector-fallback"] * 4
    for result, value in zip(results, values):
        ref = run_with_trace(program, inputs={"inval": [value]},
                             engine="reference")
        assert np.array_equal(result.energy, ref.trace.energy)


def test_cycle_limit_parity():
    program = assemble("""
.text
main:
    j main
""")
    fastpath._clear_caches()
    vector._clear_caches()
    with pytest.raises(CycleLimitExceeded) as reference:
        run_with_trace(program, engine="reference", max_cycles=500)
    with pytest.raises(CycleLimitExceeded) as vectored:
        run_with_trace(program, engine="vector", max_cycles=500)
    assert vectored.value.cycles == reference.value.cycles == 500
    assert vectored.value.pc == reference.value.pc


def test_streaming_always_uses_reference_engine(tmp_path):
    from repro.harness.io import StreamingTraceWriter

    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    stream = StreamingTraceWriter(tmp_path / "trace.csv")
    try:
        run = run_with_trace(program, inputs=_des_inputs(program),
                             stream=stream, engine="vector")
    finally:
        stream.close()
    assert run.engine == "reference"


# -- engine registry and resolution -------------------------------------

def test_registry_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert engines.resolve(None) == "fast"
    assert engines.resolve("vector") == "vector"
    monkeypatch.setenv("REPRO_ENGINE", "vector")
    assert engines.resolve(None) == "vector"
    assert engines.resolve("reference") == "reference"
    monkeypatch.setenv("REPRO_ENGINE", "warp")
    with pytest.raises(ValueError):
        engines.resolve(None)
    with pytest.raises(ValueError):
        engines.resolve("warp")
    # The historical fastpath entry point is a live shim over the registry.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert fastpath.resolve_engine("vector") == "vector"
    with pytest.raises(ValueError):
        fastpath.resolve_engine("warp")
    assert set(fastpath.ENGINES) == {"fast", "reference", "vector"}


def test_registry_specs():
    assert engines.get("vector").fallback == "fast"
    assert engines.get("fast").fallback == "reference"
    assert engines.get("reference").fallback is None
    assert engines.get("vector").batch is not None
    assert engines.get("fast").batch is None
    with pytest.raises(ValueError):
        engines.get("warp")


# -- batch-native dispatch ----------------------------------------------

def test_run_jobs_batch_native_bit_identical():
    """A homogeneous vector batch is served in one vectorized pass and
    matches the reference per-job path result for result."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    batch = lambda: [SimJob(program=program, des_pair=(KEY, PLAINTEXT ^ i),
                            label=f"job[{i}]") for i in range(4)]
    reference = run_jobs(batch(), engine="reference")
    vectored = run_jobs(batch(), engine="vector")
    for ref_result, vec_result in zip(reference, vectored):
        assert vec_result.engine == "vector"
        assert ref_result.cycles == vec_result.cycles
        assert np.array_equal(ref_result.energy, vec_result.energy)
        assert ref_result.markers == vec_result.markers
        assert ref_result.totals == vec_result.totals
        assert ref_result.counts == vec_result.counts
        assert ref_result.label == vec_result.label


def test_run_jobs_batch_native_noise_and_components():
    """Per-job noise seeds and component matrices survive the batch path."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    batch = lambda: [SimJob(program=program, des_pair=(KEY, PLAINTEXT ^ i),
                            noise_sigma=0.2, noise_seed=i + 1,
                            collect_components=True, label=f"job[{i}]")
                     for i in range(3)]
    reference = run_jobs(batch(), engine="reference")
    vectored = run_jobs(batch(), engine="vector")
    for ref_result, vec_result in zip(reference, vectored):
        assert np.array_equal(ref_result.energy, vec_result.energy)
        assert ref_result.totals == vec_result.totals
        assert np.array_equal(np.asarray(ref_result.components),
                              np.asarray(vec_result.components))


def test_run_jobs_mixed_engines_fall_back_to_per_job():
    """A batch that mixes engines cannot go batch-native; results still
    come back correct, each under its own engine."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    jobs = [SimJob(program=program, des_pair=(KEY, PLAINTEXT),
                   label="a", engine="vector"),
            SimJob(program=program, des_pair=(KEY, PLAINTEXT),
                   label="b", engine="reference")]
    results = run_jobs(jobs)
    assert results[0].engine == "vector"
    assert results[1].engine == "reference"
    assert np.array_equal(results[0].energy, results[1].energy)


def test_collect_traces_vector_bit_identical():
    """DPA collection via the batch-native vector path matches the
    reference engine trace matrix exactly."""
    from repro.attacks.dpa import collect_traces, random_plaintexts

    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    plaintexts = random_plaintexts(6)
    reference = collect_traces(program, KEY, plaintexts,
                               engine="reference")
    vectored = collect_traces(program, KEY, plaintexts, engine="vector")
    assert np.array_equal(reference.traces, vectored.traces)


def test_final_state_is_input_dependent():
    """The vector replay applies *this batch's* data flow, not the
    recorded run's: different plaintexts -> different ciphertexts."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    first = des_run(program, KEY, PLAINTEXT, engine="vector")
    second = des_run(program, KEY, PLAINTEXT ^ 0xFF, engine="vector")
    assert first.engine == second.engine == "vector"
    assert first.cpu.read_symbol_words("ciphertext", 64) != \
        second.cpu.read_symbol_words("ciphertext", 64)
    assert _digest(first) != _digest(second)


def test_vector_cpu_is_one_shot():
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    run = des_run(program, KEY, PLAINTEXT, engine="vector")
    from repro.machine.exceptions import SimulationError

    with pytest.raises(SimulationError):
        run.cpu.run()


def test_plan_compiled_once(monkeypatch):
    """Repeated vector runs of the same program reuse the compiled plan."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    fastpath._clear_caches()
    vector._clear_caches()
    calls = []
    compile_plan = vector._compile_plan

    def counting(prog, bound):
        calls.append(1)
        return compile_plan(prog, bound)

    monkeypatch.setattr(vector, "_compile_plan", counting)
    des_run(program, KEY, PLAINTEXT, engine="vector")
    des_run(program, KEY, PLAINTEXT ^ 1, engine="vector")
    des_run(program, KEY ^ (1 << 60), PLAINTEXT, engine="vector")
    assert len(calls) == 1
