"""ALU semantics vs. Python reference, including signedness edge cases."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import AluOp
from repro.machine.alu import alu_execute

WORD = 0xFFFF_FFFF
U32 = st.integers(min_value=0, max_value=WORD)


def signed(x):
    return x - 0x1_0000_0000 if x & 0x8000_0000 else x


def test_add_wraps():
    assert alu_execute(AluOp.ADD, WORD, 1) == 0


def test_sub_wraps():
    assert alu_execute(AluOp.SUB, 0, 1) == WORD


def test_logic_ops():
    assert alu_execute(AluOp.AND, 0xF0F0, 0x0FF0) == 0x00F0
    assert alu_execute(AluOp.OR, 0xF000, 0x000F) == 0xF00F
    assert alu_execute(AluOp.XOR, 0xFFFF, 0x0F0F) == 0xF0F0
    assert alu_execute(AluOp.NOR, 0, 0) == WORD


def test_slt_signed():
    assert alu_execute(AluOp.SLT, 0xFFFF_FFFF, 0) == 1  # -1 < 0
    assert alu_execute(AluOp.SLT, 0, 0xFFFF_FFFF) == 0
    assert alu_execute(AluOp.SLT, 5, 5) == 0


def test_sltu_unsigned():
    assert alu_execute(AluOp.SLTU, 0xFFFF_FFFF, 0) == 0
    assert alu_execute(AluOp.SLTU, 0, 0xFFFF_FFFF) == 1


def test_shifts():
    assert alu_execute(AluOp.SLL, 1, 31) == 0x8000_0000
    assert alu_execute(AluOp.SRL, 0x8000_0000, 31) == 1
    assert alu_execute(AluOp.SRA, 0x8000_0000, 31) == WORD


def test_shift_amount_masked_to_5_bits():
    assert alu_execute(AluOp.SLL, 1, 32) == 1
    assert alu_execute(AluOp.SRL, 2, 33) == 1


def test_lui():
    assert alu_execute(AluOp.LUI, 0, 0x1234) == 0x1234_0000


def test_pass_a():
    assert alu_execute(AluOp.PASS_A, 0xABCD, 99) == 0xABCD


def test_none_returns_zero():
    assert alu_execute(AluOp.NONE, 5, 6) == 0


@given(a=U32, b=U32)
def test_add_matches_python(a, b):
    assert alu_execute(AluOp.ADD, a, b) == (a + b) & WORD


@given(a=U32, b=U32)
def test_sub_matches_python(a, b):
    assert alu_execute(AluOp.SUB, a, b) == (a - b) & WORD


@given(a=U32, b=U32)
def test_xor_matches_python(a, b):
    assert alu_execute(AluOp.XOR, a, b) == a ^ b


@given(a=U32, b=U32)
def test_slt_matches_python(a, b):
    assert alu_execute(AluOp.SLT, a, b) == (1 if signed(a) < signed(b) else 0)


@given(a=U32, shamt=st.integers(min_value=0, max_value=31))
def test_sra_matches_python(a, shamt):
    assert alu_execute(AluOp.SRA, a, shamt) == (signed(a) >> shamt) & WORD
