"""Schedule-replay fast path: bit-identity against the reference engine.

The fast engine's contract is absolute: for every program whose control
path is data-independent, replaying the recorded cycle schedule must
reproduce the reference pipeline's output *bit for bit* — per-cycle
energies (same floats, same order of accumulation), component matrices,
totals/counts, final architectural state, markers, performance counters,
and attribution cells.  These tests enforce that contract over the full
set of experiment programs (DES in every masking variant and policy,
AES, operand isolation on and off, with and without noise) plus the
divergence / budget / caching edge cases.
"""

import hashlib

import numpy as np
import pytest

from repro import obs
from repro.aes.reference import int_to_state
from repro.harness.engine import SimJob, run_jobs
from repro.harness.runner import des_run, run_with_trace
from repro.isa.assembler import assemble
from repro.machine import fastpath
from repro.machine.exceptions import CycleLimitExceeded
from repro.masking.policy import MaskingPolicy, apply_policy
from repro.programs.des_source import DesProgramSpec
from repro.programs.workloads import compile_des, key_words, plaintext_words

KEY = 0x133457799BBCDFF1
PLAINTEXT = 0x0123456789ABCDEF
AES_KEY = 0x000102030405060708090A0B0C0D0E0F
AES_PLAINTEXT = 0x00112233445566778899AABBCCDDEEFF

#: sha256 of ``run.trace.energy.tobytes()`` for the round-1 DES workload
#: on the seed (reference) simulator.  The fast path must hit these
#: exactly — same digests the attribution layer is pinned to.
GOLDEN_DIGESTS = {
    "none":
        "a63e8b8e0cd6cd22c0cbbc20008443d4ca47533378988a03106778e3b071d8b4",
    "selective":
        "5d1a41d858d421defc6f4dc3650af5951f026157ea5baca802c971d1c83ce954",
}


def _digest(run):
    return hashlib.sha256(run.trace.energy.tobytes()).hexdigest()


def _des_inputs(program):
    inputs = {"key": key_words(KEY)}
    if "plaintext" in program.symbols:
        inputs["plaintext"] = plaintext_words(PLAINTEXT)
    return inputs


def _assert_identical(reference, fast):
    """Every observable of the two runs must match exactly."""
    assert _digest(reference) == _digest(fast)
    assert reference.cycles == fast.cycles
    assert reference.cpu.pipeline.regs.dump() == \
        fast.cpu.pipeline.regs.dump()
    assert reference.cpu.memory._words == fast.cpu.memory._words
    assert reference.cpu.pipeline.markers == fast.cpu.pipeline.markers
    assert reference.cpu.pipeline.stats == fast.cpu.pipeline.stats
    assert reference.tracker.totals == fast.tracker.totals
    assert reference.tracker.counts == fast.tracker.counts
    if reference.tracker.component_energy:
        assert np.array_equal(
            np.asarray(reference.tracker.component_energy),
            np.asarray(fast.tracker.component_energy))


def _differential(program, operand_isolation=True, inputs=None,
                  **run_kwargs):
    if inputs is None:
        inputs = _des_inputs(program)
    reference = run_with_trace(program, inputs=inputs, engine="reference",
                               operand_isolation=operand_isolation,
                               collect_components=True, **run_kwargs)
    fast = run_with_trace(program, inputs=inputs, engine="fast",
                          operand_isolation=operand_isolation,
                          collect_components=True, **run_kwargs)
    assert fast.engine == "fast"
    assert reference.engine == "reference"
    _assert_identical(reference, fast)
    return reference, fast


# -- golden digests -----------------------------------------------------

@pytest.mark.parametrize("masking", ["none", "selective"])
def test_round1_fast_hits_golden_digest(masking):
    program = compile_des(DesProgramSpec(rounds=1), masking=masking).program
    run = des_run(program, KEY, PLAINTEXT, engine="fast")
    assert run.engine == "fast"
    assert run.cycles == 18432
    assert _digest(run) == GOLDEN_DIGESTS[masking]


# -- differential bit-identity over the experiment programs -------------

@pytest.mark.parametrize("masking", ["none", "selective"])
def test_full_des_bit_identical(masking):
    """fig6/fig7-11 workload: the complete 16-round cipher."""
    program = compile_des(DesProgramSpec(rounds=16), masking=masking).program
    _differential(program)


@pytest.mark.parametrize("masking", ["none", "selective", "annotate-only"])
def test_round1_bit_identical(masking):
    program = compile_des(DesProgramSpec(rounds=1), masking=masking).program
    _differential(program)


def test_keyschedule_only_bit_identical():
    """fig12 workload: rounds=0, the masked key permutation."""
    spec = DesProgramSpec(rounds=0, include_keyschedule=True)
    program = compile_des(spec, masking="selective").program
    _differential(program)


@pytest.mark.parametrize("policy", [MaskingPolicy.ALL_LOADS_STORES,
                                    MaskingPolicy.ALL])
def test_whole_program_policies_bit_identical(policy):
    """tab1 workloads: assembly-level rewrites of the unmasked program."""
    base = compile_des(DesProgramSpec(rounds=2), masking="none").program
    _differential(apply_policy(base, policy))


def test_no_operand_isolation_bit_identical():
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program
    _differential(program, operand_isolation=False)


@pytest.mark.parametrize("masking", ["none", "selective"])
def test_aes_bit_identical(masking):
    """Extension workload: AES-128 under both maskings."""
    from repro.programs.workloads import compile_aes

    program = compile_aes(masking=masking).program
    _differential(program, inputs={"key": int_to_state(AES_KEY),
                                   "plaintext": int_to_state(AES_PLAINTEXT)})


def test_noise_bit_identical():
    """Same noise seed -> same post-pass draws -> identical noisy trace."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program
    _differential(program, noise_sigma=0.1, noise_seed=7)


def test_attribution_bit_identical():
    """The hooked replay books the same cells as the reference engine."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program

    def attributed(engine):
        was_enabled = obs.enabled()
        with obs.scope():
            obs.enable_attribution()
            try:
                return des_run(program, KEY, PLAINTEXT, engine=engine)
            finally:
                obs.disable_attribution()
                if not was_enabled:
                    obs.disable()

    reference, fast = attributed("reference"), attributed("fast")
    assert fast.engine == "fast"
    _assert_identical(reference, fast)
    assert reference.attribution.cells == fast.attribution.cells
    assert reference.attribution.pc_info == fast.attribution.pc_info


def test_opcode_mix_identical():
    """The replay installs the recorded dynamic instruction mix."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="selective").program

    def observed(engine):
        was_enabled = obs.enabled()
        with obs.scope():
            obs.enable()
            try:
                return des_run(program, KEY, PLAINTEXT, engine=engine)
            finally:
                if not was_enabled:
                    obs.disable()

    reference, fast = observed("reference"), observed("fast")
    assert fast.engine == "fast"
    assert reference.cpu.pipeline.opcode_mix
    assert reference.cpu.pipeline.opcode_mix == fast.cpu.pipeline.opcode_mix


# -- divergence and fallback --------------------------------------------

DIVERGENT_SOURCE = """
.data
inval: .word 0
.text
main:
    la $t0, inval
    lw $t1, 0($t0)
    beq $t1, $zero, skip
    addi $t2, $zero, 99
skip:
    addi $t3, $zero, 7
    halt
"""


def test_divergence_falls_back_bit_identically():
    """An input that flips a recorded branch must transparently re-run on
    the reference engine with completely fresh state."""
    program = assemble(DIVERGENT_SOURCE)
    fastpath._clear_caches()
    reference = run_with_trace(program, inputs={"inval": [1]},
                               engine="reference", collect_components=True)
    fast = run_with_trace(program, inputs={"inval": [1]}, engine="fast",
                          collect_components=True)
    assert fast.engine == "fast-fallback"
    _assert_identical(reference, fast)


def test_divergent_program_goes_straight_to_reference_afterwards():
    program = assemble(DIVERGENT_SOURCE)
    fastpath._clear_caches()
    run_with_trace(program, inputs={"inval": [1]}, engine="fast")
    key = (fastpath.program_digest(program), True)
    assert key in fastpath._DIVERGENT
    # Even a run whose input matches the recorded path no longer replays:
    # the program has proven input-dependent, so replaying is unsound.
    again = run_with_trace(program, inputs={"inval": [0]}, engine="fast")
    assert again.engine == "fast-fallback"


def test_matching_input_replays_before_any_divergence():
    program = assemble(DIVERGENT_SOURCE)
    fastpath._clear_caches()
    reference = run_with_trace(program, inputs={"inval": [0]},
                               engine="reference")
    fast = run_with_trace(program, inputs={"inval": [0]}, engine="fast")
    assert fast.engine == "fast"
    _assert_identical(reference, fast)


def test_cycle_limit_parity():
    """Budgets smaller than the schedule behave exactly like the
    reference engine: CycleLimitExceeded at the same cycle and pc."""
    program = assemble("""
.text
main:
    j main
""")
    fastpath._clear_caches()
    with pytest.raises(CycleLimitExceeded) as reference:
        run_with_trace(program, engine="reference", max_cycles=500)
    with pytest.raises(CycleLimitExceeded) as fast:
        run_with_trace(program, engine="fast", max_cycles=500)
    assert fast.value.cycles == reference.value.cycles == 500
    assert fast.value.pc == reference.value.pc


def test_streaming_always_uses_reference_engine(tmp_path):
    """A divergence mid-stream could leave a torn file behind, so
    streaming runs never take the fast path."""
    from repro.harness.io import StreamingTraceWriter

    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    stream = StreamingTraceWriter(tmp_path / "trace.csv")
    try:
        run = run_with_trace(program, inputs=_des_inputs(program),
                             stream=stream, engine="fast")
    finally:
        stream.close()
    assert run.engine == "reference"


# -- engine resolution and plumbing -------------------------------------

def test_resolve_engine(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert fastpath.resolve_engine(None) == "fast"
    assert fastpath.resolve_engine("reference") == "reference"
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert fastpath.resolve_engine(None) == "reference"
    assert fastpath.resolve_engine("fast") == "fast"
    monkeypatch.setenv("REPRO_ENGINE", "warp")
    with pytest.raises(ValueError):
        fastpath.resolve_engine(None)
    with pytest.raises(ValueError):
        fastpath.resolve_engine("warp")


def test_schedule_recorded_once(monkeypatch):
    """Repeated fast runs reuse the bound schedule (memo + disk cache)."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    fastpath._clear_caches()
    calls = []
    recorded = fastpath.record_schedule

    def counting(prog, **kwargs):
        calls.append(1)
        return recorded(prog, **kwargs)

    monkeypatch.setattr(fastpath, "record_schedule", counting)
    # Force a real recording by ignoring any disk-cached schedule.
    monkeypatch.setattr(fastpath, "_schedule_cache_key",
                        lambda digest, iso: "sched-test-" + digest[:8]
                        + ("-iso" if iso else ""))
    des_run(program, KEY, PLAINTEXT, engine="fast")
    des_run(program, KEY, PLAINTEXT ^ 1, engine="fast")
    des_run(program, KEY ^ (1 << 60), PLAINTEXT, engine="fast")
    assert len(calls) <= 1


def test_run_jobs_engine_plumb():
    """Batch jobs honor the engine and record it in the result."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    batch = lambda: [SimJob(program=program, des_pair=(KEY, PLAINTEXT ^ i),
                            label=f"job[{i}]") for i in range(2)]
    reference = run_jobs(batch(), engine="reference")
    fast = run_jobs(batch(), engine="fast")
    for ref_result, fast_result in zip(reference, fast):
        assert ref_result.engine == "reference"
        assert fast_result.engine == "fast"
        assert np.array_equal(ref_result.energy, fast_result.energy)
        assert ref_result.markers == fast_result.markers
        assert ref_result.totals == fast_result.totals


def test_collect_traces_engine_parallel():
    """DPA collection is bit-identical across engine and worker count."""
    from repro.attacks.dpa import collect_traces, random_plaintexts

    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    plaintexts = random_plaintexts(4)
    reference = collect_traces(program, KEY, plaintexts,
                               engine="reference")
    fast_parallel = collect_traces(program, KEY, plaintexts,
                                   engine="fast", jobs=2)
    assert np.array_equal(reference.traces, fast_parallel.traces)


def test_final_state_is_input_dependent():
    """Replay applies *this run's* data flow, not the recorded run's:
    different plaintexts must produce different ciphertext memory."""
    program = compile_des(DesProgramSpec(rounds=1),
                          masking="none").program
    first = des_run(program, KEY, PLAINTEXT, engine="fast")
    second = des_run(program, KEY, PLAINTEXT ^ 0xFF, engine="fast")
    assert first.engine == second.engine == "fast"
    assert first.cpu.read_symbol_words("ciphertext", 64) != \
        second.cpu.read_symbol_words("ciphertext", 64)
    assert _digest(first) != _digest(second)
