"""Cycle-accurate timing: fill/drain, stalls, branch penalties, alignment."""

from repro.isa.assembler import assemble
from repro.machine.cpu import CPU, run_to_halt


def cycles_of(source, inputs=None):
    cpu = run_to_halt(assemble(source), inputs=inputs)
    return cpu.cycles, cpu.retired


def test_straightline_cpi_is_one_plus_fill():
    # N instructions through a 5-stage pipe: N + 4 cycles.
    cycles, retired = cycles_of("nop\nnop\nnop\nnop\nnop\nnop\nhalt\n")
    assert retired == 7
    assert cycles == 7 + 4


def test_load_use_costs_one_stall():
    base = """
    .data
    x: .word 5
    .text
    la $t1, x
    lw $t0, 0($t1)
    nop
    addu $t2, $t0, $t0
    halt
    """
    hazard = """
    .data
    x: .word 5
    .text
    la $t1, x
    lw $t0, 0($t1)
    addu $t2, $t0, $t0
    nop
    halt
    """
    base_cycles, _ = cycles_of(base)
    hazard_cycles, _ = cycles_of(hazard)
    # Same instruction count; the load-use order pays exactly one stall.
    assert hazard_cycles == base_cycles + 1


def test_taken_branch_costs_two_bubbles():
    not_taken = """
    li $t0, 1
    beq $t0, $zero, skip
    nop
    nop
    skip:
    halt
    """
    taken = """
    li $t0, 0
    beq $t0, $zero, skip
    nop
    nop
    skip:
    halt
    """
    nt_cycles, nt_retired = cycles_of(not_taken)
    t_cycles, t_retired = cycles_of(taken)
    # Taken: the two shadow nops are squashed (2 fewer retired) but their
    # slots still pass as bubbles, so total cycles are equal.
    assert t_retired == nt_retired - 2
    assert t_cycles == nt_cycles


def test_jump_always_pays_shadow():
    source = """
    j over
    nop
    nop
    over:
    halt
    """
    cycles, retired = cycles_of(source)
    assert retired == 2  # j + halt


def test_timing_is_data_independent():
    """The core guarantee behind differential traces: same program, any
    data, identical cycle count."""
    source = """
    .data
    x: .word 0
    out: .word 0
    .text
    lw $t0, x
    xor $t1, $t0, $t0
    sll $t2, $t0, 3
    slt $t3, $t0, $t2
    beq $t3, $zero, a
    addu $t4, $t0, $t0
    a:
    sw $t4, out
    halt
    """
    # Note: the branch outcome must not depend on data for this program to
    # be constant-time; slt(x, x<<3) is 0 for x=0 and 1 for small positive x,
    # so pick values on the same path.
    c1, _ = cycles_of(source, inputs={"x": [1]})
    c2, _ = cycles_of(source, inputs={"x": [7]})
    assert c1 == c2


def test_secure_instructions_have_identical_timing():
    plain = """
    .data
    x: .word 3
    y: .word 0
    .text
    lw $t0, x
    xor $t1, $t0, $t0
    sw $t1, y
    halt
    """
    secure = """
    .data
    x: .word 3
    y: .word 0
    .text
    slw $t0, x
    sxor $t1, $t0, $t0
    ssw $t1, y
    halt
    """
    assert cycles_of(plain) == cycles_of(secure)


def test_cpi_reported():
    cpu = run_to_halt(assemble("nop\nnop\nhalt\n"))
    assert cpu.cpi == cpu.cycles / cpu.retired


def test_markers_record_cycle_and_value():
    source = """
    li $t0, 42
    li $at, 0xFF00
    sw $t0, 0($at)
    halt
    """
    cpu = run_to_halt(assemble(source))
    assert len(cpu.pipeline.markers) == 1
    cycle, value = cpu.pipeline.markers[0]
    assert value == 42
    assert 0 < cycle < cpu.cycles


def test_marker_store_does_not_touch_memory():
    source = """
    li $t0, 42
    li $at, 0xFF00
    sw $t0, 0($at)
    halt
    """
    cpu = run_to_halt(assemble(source))
    assert cpu.memory.read_word(0xFF00) == 0
