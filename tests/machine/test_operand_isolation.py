"""The operand-isolation pipeline flag."""

import numpy as np

from repro.harness.runner import run_with_trace
from repro.isa.assembler import assemble
from repro.machine.cpu import CPU, run_to_halt


SOURCE = """
.data
secret: .word 0
pub: .word 42
out: .word 0
.text
slw $t0, secret
sxor $t1, $t0, $t0
lw $t0, pub            # reuse the secret's register
addu $t2, $t0, $t0
sw $t2, out
halt
"""


def test_results_identical_with_and_without_isolation():
    """Isolation is an energy feature; architectural results must match."""
    with_iso = run_to_halt(assemble(SOURCE))
    without = CPU(assemble(SOURCE), operand_isolation=False)
    without.run()
    assert with_iso.read_symbol_words("out", 1) == \
        without.read_symbol_words("out", 1) == [84]
    assert with_iso.cycles == without.cycles


def test_isolation_reduces_regfile_reads():
    program = assemble("""
    li $t0, 1
    addu $t1, $t0, $t0     # both sources forwarded -> gated
    addu $t2, $t1, $t1
    halt
    """)
    gated = CPU(assemble("""
    li $t0, 1
    addu $t1, $t0, $t0
    addu $t2, $t1, $t1
    halt
    """), operand_isolation=True)
    gated.run()
    ungated = CPU(program, operand_isolation=False)
    ungated.run()
    assert gated.regs.read(10) == ungated.regs.read(10) == 4


def test_stale_secret_leaks_only_without_isolation():
    def max_diff(isolation):
        traces = []
        for secret in (0x00000000, 0xFFFFFFFF):
            result = run_with_trace(assemble(SOURCE),
                                    inputs={"secret": [secret]},
                                    operand_isolation=isolation)
            traces.append(result.trace.energy)
        return float(np.abs(traces[0] - traces[1]).max())

    assert max_diff(True) == 0.0
    assert max_diff(False) > 0.0
