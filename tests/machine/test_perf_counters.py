"""Pipeline performance counters."""

from repro.isa.assembler import assemble
from repro.machine.cpu import run_to_halt


def stats_of(source, inputs=None):
    cpu = run_to_halt(assemble(source), inputs=inputs)
    return cpu.pipeline.stats


def test_straightline_counters():
    stats = stats_of("nop\nnop\nnop\nhalt\n")
    assert stats["retired"] == 4
    assert stats["stall_cycles"] == 0
    assert stats["squashed_instructions"] == 0
    assert stats["branches_executed"] == 0


def test_load_use_stall_counted():
    stats = stats_of("""
    .data
    x: .word 5
    .text
    la $t1, x
    lw $t0, 0($t1)
    addu $t2, $t0, $t0
    halt
    """)
    assert stats["stall_cycles"] == 1
    assert stats["loads_executed"] == 1


def test_branch_counters():
    stats = stats_of("""
    li $t0, 3
    loop:
    addiu $t0, $t0, -1
    bgtz $t0, loop
    halt
    """)
    assert stats["branches_executed"] == 3
    assert stats["branches_taken"] == 2


def test_squash_counts_real_instructions_only():
    stats = stats_of("""
    beq $zero, $zero, skip
    nop
    nop
    skip:
    halt
    """)
    assert stats["squashed_instructions"] == 2
    assert stats["retired"] == 2  # beq + halt


def test_memory_counters():
    stats = stats_of("""
    .data
    x: .word 1
    .text
    lw $t0, x
    sw $t0, x
    lw $t1, x
    halt
    """)
    assert stats["loads_executed"] == 2
    assert stats["stores_executed"] == 1


def test_secure_fraction_dynamic():
    stats = stats_of("""
    .data
    x: .word 1
    .text
    slw $t0, x
    sxor $t1, $t0, $t0
    nop
    nop
    halt
    """)
    assert stats["secure_retired"] == 2
    assert 0 < stats["secure_fraction_dynamic"] < 1


def test_cpi_consistency():
    stats = stats_of("nop\nhalt\n")
    assert stats["cpi"] == stats["cycles"] / stats["retired"]
