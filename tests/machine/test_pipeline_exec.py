"""Pipeline functional correctness: programs compute the right answers."""

import pytest

from repro.isa.assembler import assemble
from repro.machine.cpu import run_to_halt
from repro.machine.exceptions import CpuError


def run(source, inputs=None, max_cycles=100_000):
    return run_to_halt(assemble(source), inputs=inputs,
                       max_cycles=max_cycles)


def test_arithmetic_chain():
    cpu = run("""
    .data
    out: .word 0
    .text
    li $t0, 10
    li $t1, 3
    subu $t2, $t0, $t1      # 7
    addu $t2, $t2, $t2      # 14
    sll $t2, $t2, 2         # 56
    sw $t2, out
    halt
    """)
    assert cpu.read_symbol_words("out", 1) == [56]


def test_logic_ops():
    cpu = run("""
    .data
    out: .word 0, 0, 0, 0
    .text
    li $t0, 0xF0F0
    li $t1, 0x0FF0
    and $t2, $t0, $t1
    or  $t3, $t0, $t1
    xor $t4, $t0, $t1
    nor $t5, $t0, $t1
    la $t9, out
    sw $t2, 0($t9)
    sw $t3, 4($t9)
    sw $t4, 8($t9)
    sw $t5, 12($t9)
    halt
    """)
    assert cpu.read_symbol_words("out", 4) == [
        0x00F0, 0xFFF0, 0xFF00, 0xFFFF_000F]


def test_loop_sum_1_to_10():
    cpu = run("""
    .data
    out: .word 0
    .text
    li $t0, 0     # sum
    li $t1, 1     # i
    li $t2, 10
    loop:
    addu $t0, $t0, $t1
    addiu $t1, $t1, 1
    ble $t1, $t2, loop
    sw $t0, out
    halt
    """)
    assert cpu.read_symbol_words("out", 1) == [55]


def test_byte_loads_and_stores():
    cpu = run("""
    .data
    src: .byte 0x80, 0x7F, 0xFF, 0x01
    out: .word 0, 0, 0
    .text
    la $t9, src
    lb  $t0, 0($t9)      # sign-extended 0x80 -> 0xFFFFFF80
    lbu $t1, 0($t9)      # zero-extended -> 0x80
    lb  $t2, 1($t9)      # 0x7F
    la $t8, out
    sw $t0, 0($t8)
    sw $t1, 4($t8)
    sw $t2, 8($t8)
    sb $t1, 0($t8)       # overwrite low byte of out[0]
    halt
    """)
    words = cpu.read_symbol_words("out", 3)
    assert words[1] == 0x80
    assert words[2] == 0x7F
    assert words[0] == 0xFFFFFF80 & ~0xFF | 0x80


def test_branch_taken_and_not_taken():
    cpu = run("""
    .data
    out: .word 0
    .text
    li $t0, 5
    li $t1, 5
    beq $t0, $t1, equal
    li $t2, 111
    j store
    equal:
    li $t2, 222
    store:
    sw $t2, out
    halt
    """)
    assert cpu.read_symbol_words("out", 1) == [222]


def test_branch_shadow_squashed():
    """Instructions fetched after a taken branch must not execute."""
    cpu = run("""
    .data
    out: .word 0
    .text
    li $t2, 1
    beq $zero, $zero, skip
    li $t2, 666        # in the branch shadow: must be squashed
    li $t2, 777        # also squashed
    skip:
    sw $t2, out
    halt
    """)
    assert cpu.read_symbol_words("out", 1) == [1]


def test_jal_jr_subroutine():
    cpu = run("""
    .data
    out: .word 0
    .text
    li $a0, 20
    jal double
    sw $v0, out
    halt
    double:
    addu $v0, $a0, $a0
    jr $ra
    """)
    assert cpu.read_symbol_words("out", 1) == [40]


def test_jalr():
    cpu = run("""
    .data
    out: .word 0
    .text
    la $t0, target
    jalr $t0
    sw $v0, out
    halt
    target:
    li $v0, 99
    jr $ra
    """)
    assert cpu.read_symbol_words("out", 1) == [99]


def test_slt_family():
    cpu = run("""
    .data
    out: .word 0, 0, 0, 0
    .text
    li $t0, -1
    li $t1, 1
    slt  $t2, $t0, $t1      # signed: -1 < 1 -> 1
    sltu $t3, $t0, $t1      # unsigned: huge < 1 -> 0
    slti $t4, $t0, 0        # -1 < 0 -> 1
    sltiu $t5, $t1, 2       # 1 < 2 -> 1
    la $t9, out
    sw $t2, 0($t9)
    sw $t3, 4($t9)
    sw $t4, 8($t9)
    sw $t5, 12($t9)
    halt
    """)
    assert cpu.read_symbol_words("out", 4) == [1, 0, 1, 1]


def test_negative_branches():
    cpu = run("""
    .data
    out: .word 0
    .text
    li $t0, -5
    li $t1, 0
    bltz $t0, neg
    li $t1, 1
    neg:
    bgez $t0, store     # -5 >= 0: not taken
    addiu $t1, $t1, 10
    store:
    sw $t1, out
    halt
    """)
    assert cpu.read_symbol_words("out", 1) == [10]


def test_inputs_injected_before_run():
    cpu = run("""
    .data
    in: .word 0
    out: .word 0
    .text
    lw $t0, in
    sll $t0, $t0, 1
    sw $t0, out
    halt
    """, inputs={"in": [21]})
    assert cpu.read_symbol_words("out", 1) == [42]


def test_runaway_program_raises():
    from repro.machine.exceptions import CycleLimitExceeded

    with pytest.raises(CycleLimitExceeded) as excinfo:
        run("""
        loop: j loop
        """, max_cycles=1000)
    assert isinstance(excinfo.value, CpuError)  # old handlers still catch
    assert excinfo.value.cycles == 1000
    assert excinfo.value.max_cycles == 1000
    assert excinfo.value.pc is not None


def test_retired_instruction_count():
    cpu = run("""
    nop
    nop
    nop
    halt
    """)
    assert cpu.retired == 4


def test_xori_andi_zero_extend():
    cpu = run("""
    .data
    out: .word 0, 0
    .text
    li $t0, -1              # 0xFFFFFFFF
    xori $t1, $t0, 0xFFFF   # upper half unchanged
    andi $t2, $t0, 0xFF00
    la $t9, out
    sw $t1, 0($t9)
    sw $t2, 4($t9)
    halt
    """)
    assert cpu.read_symbol_words("out", 2) == [0xFFFF_0000, 0xFF00]
