"""Functional interpreter: semantics + differential testing vs pipeline.

The interpreter and the pipeline are two independent implementations of
the ISA; every program must produce identical architectural state on
both.  This catches semantics bugs in either executor.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.machine.cpu import run_to_halt
from repro.machine.exceptions import CpuError
from repro.machine.interpreter import run_functional


def differential(source, inputs=None, symbols=()):
    """Run on both executors; assert identical observable state."""
    program = assemble(source)
    pipe = run_to_halt(assemble(source), inputs=inputs)
    func = run_functional(program, inputs=inputs)
    # Registers (incl. $ra etc.).
    assert pipe.regs.dump() == func.regs.dump()
    # Requested memory symbols.
    for symbol, count in symbols:
        base = program.address_of(symbol)
        assert pipe.memory.read_words(base, count) == \
            func.memory.read_words(base, count), symbol
    # Retired == executed (the pipeline retires every non-squashed instr).
    assert pipe.retired == func.executed
    # Marker values in order.
    assert [v for _, v in pipe.pipeline.markers] == \
        [v for _, v in func.markers]
    return func


def test_arith_and_memory():
    differential("""
    .data
    x: .word 5
    y: .word 0
    .text
    lw $t0, x
    addiu $t1, $t0, 10
    sll $t2, $t1, 2
    sw $t2, y
    halt
    """, symbols=[("y", 1)])


def test_branches_and_loops():
    differential("""
    .data
    out: .word 0
    .text
    li $t0, 0
    li $t1, 0
    loop:
    addu $t1, $t1, $t0
    addiu $t0, $t0, 1
    blt $t0, $t1, done     # exercises slt+bne path
    slti $t2, $t0, 10
    bne $t2, $zero, loop
    done:
    sw $t1, out
    halt
    """, symbols=[("out", 1)])


def test_jal_jr():
    differential("""
    .data
    out: .word 0
    .text
    li $a0, 7
    jal f
    sw $v0, out
    halt
    f:
    addu $v0, $a0, $a0
    jr $ra
    """, symbols=[("out", 1)])


def test_bytes_and_markers():
    differential("""
    .data
    b: .byte 0x80, 0x01
    .align 2
    out: .word 0, 0
    .text
    la $t9, b
    lb $t0, 0($t9)
    lbu $t1, 1($t9)
    la $t8, out
    sw $t0, 0($t8)
    sb $t1, 4($t8)
    li $at, 0xFF00
    sw $t0, 0($at)
    halt
    """, symbols=[("out", 2)])


def test_secure_instructions_same_semantics():
    differential("""
    .data
    x: .word 0xDEADBEEF
    y: .word 0
    .text
    slw $t0, x
    sxor $t1, $t0, $t0
    ssll $t2, $t0, 4
    s.addu $t3, $t2, $t0
    ssw $t3, y
    halt
    """, symbols=[("y", 1)])


def test_runaway_detection():
    program = assemble("loop: j loop\n")
    with pytest.raises(CpuError):
        run_functional(program, max_instructions=100)


def test_pc_out_of_text():
    program = assemble("nop\nnop\n")  # no halt: runs off the end
    with pytest.raises(CpuError):
        run_functional(program)


def test_des_round1_differential(round1_masked):
    """The full compiled DES round agrees between both executors."""
    from repro.programs.workloads import key_words, plaintext_words

    inputs = {"key": key_words(0x133457799BBCDFF1),
              "plaintext": plaintext_words(0x0123456789ABCDEF)}
    pipe = run_to_halt(round1_masked.program, inputs=inputs)
    func = run_functional(round1_masked.program, inputs=inputs)
    base = round1_masked.program.address_of("ciphertext")
    assert pipe.memory.read_words(base, 64) == \
        func.memory.read_words(base, 64)
    assert pipe.retired == func.executed


def eval_tree(node):
    if node[0] == "lit":
        return node[1] & 0xFFFF_FFFF
    a, b = eval_tree(node[1]), eval_tree(node[2])
    return {"+": (a + b) & 0xFFFF_FFFF, "^": a ^ b, "&": a & b,
            "|": a | b, "-": (a - b) & 0xFFFF_FFFF}[node[0]]


def render(node):
    if node[0] == "lit":
        return str(node[1])
    return f"({render(node[1])} {node[0]} {render(node[2])})"


def trees(depth):
    literal = st.tuples(st.just("lit"),
                        st.integers(min_value=0, max_value=0xFFFF))
    if depth == 0:
        return literal
    sub = trees(depth - 1)
    return st.one_of(literal,
                     st.tuples(st.sampled_from(["+", "-", "&", "|", "^"]),
                               sub, sub))


@settings(max_examples=20, deadline=None)
@given(tree=trees(3))
def test_random_programs_differential(tree):
    from repro.lang.compiler import compile_source

    source = f"int out; out = {render(tree)};"
    program = compile_source(source, masking="none").program
    pipe = run_to_halt(compile_source(source, masking="none").program)
    func = run_functional(program)
    base = program.address_of("out")
    expected = eval_tree(tree)
    assert pipe.memory.read_word(base) == expected
    assert func.memory.read_word(base) == expected
