"""Register naming and parsing."""

import pytest

from repro.isa.registers import (NUM_REGISTERS, REGISTER_NAMES, RegisterError,
                                 parse_register, register_name)


def test_register_count():
    assert NUM_REGISTERS == 32
    assert len(REGISTER_NAMES) == 32


def test_parse_by_name():
    assert parse_register("$zero") == 0
    assert parse_register("$at") == 1
    assert parse_register("$v0") == 2
    assert parse_register("$a0") == 4
    assert parse_register("$t0") == 8
    assert parse_register("$s0") == 16
    assert parse_register("$t8") == 24
    assert parse_register("$gp") == 28
    assert parse_register("$sp") == 29
    assert parse_register("$fp") == 30
    assert parse_register("$ra") == 31


def test_parse_by_number():
    for number in range(32):
        assert parse_register(f"${number}") == number


def test_parse_without_dollar():
    assert parse_register("t0") == 8
    assert parse_register("5") == 5


def test_parse_case_insensitive():
    assert parse_register("$T0") == 8
    assert parse_register("$ZERO") == 0


def test_parse_s8_alias_for_fp():
    assert parse_register("$s8") == 30


def test_parse_unknown_raises():
    with pytest.raises(RegisterError):
        parse_register("$x9")
    with pytest.raises(RegisterError):
        parse_register("$32")
    with pytest.raises(RegisterError):
        parse_register("")


def test_register_name_roundtrip():
    for number in range(32):
        assert parse_register(register_name(number)) == number


def test_register_name_out_of_range():
    with pytest.raises(RegisterError):
        register_name(32)
    with pytest.raises(RegisterError):
        register_name(-1)


def test_every_name_is_unique():
    assert len(set(REGISTER_NAMES)) == 32
