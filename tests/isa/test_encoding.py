"""Binary encoding: known encodings, round trips, the secure bit."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import SECURE_BIT, EncodingError, decode, encode
from repro.isa.instructions import Instruction


def test_nop_encodes_to_zero():
    assert encode(Instruction("nop")) == 0


def test_addu_encoding_matches_mips():
    # addu $1, $2, $3 -> 000000 00010 00011 00001 00000 100001
    word = encode(Instruction("addu", rd=1, rs=2, rt=3))
    assert word == (2 << 21) | (3 << 16) | (1 << 11) | 0x21


def test_secure_bit_is_bit_32():
    plain = encode(Instruction("xor", rd=1, rs=2, rt=3))
    secure = encode(Instruction("xor", rd=1, rs=2, rt=3, secure=True))
    assert secure == plain | SECURE_BIT
    assert SECURE_BIT == 1 << 32


def test_lw_encoding():
    word = encode(Instruction("lw", rt=8, rs=29, imm=4))
    assert (word >> 26) == 0x23
    assert word & 0xFFFF == 4


def test_negative_offset_encodes_twos_complement():
    word = encode(Instruction("sw", rt=8, rs=29, imm=-4))
    assert word & 0xFFFF == 0xFFFC


def test_immediate_out_of_range():
    with pytest.raises(EncodingError):
        encode(Instruction("addiu", rt=1, rs=2, imm=0x12345))


def test_unresolved_target_raises():
    with pytest.raises(EncodingError):
        encode(Instruction("beq", rs=1, rt=2, target="label"))


def test_decode_unknown_opcode():
    with pytest.raises(EncodingError):
        decode(0x3F << 26)


def _roundtrip(ins: Instruction) -> Instruction:
    return decode(encode(ins))


def test_roundtrip_r3():
    ins = Instruction("subu", rd=5, rs=6, rt=7, secure=True)
    back = _roundtrip(ins)
    assert (back.op, back.rd, back.rs, back.rt, back.secure) == \
        ("subu", 5, 6, 7, True)


def test_roundtrip_shift():
    back = _roundtrip(Instruction("sll", rd=1, rt=2, shamt=31))
    assert (back.op, back.rd, back.rt, back.shamt) == ("sll", 1, 2, 31)


def test_roundtrip_branch_target():
    back = _roundtrip(Instruction("bne", rs=1, rt=2, target=0x80))
    assert back.op == "bne"
    assert back.target == 0x80


def test_roundtrip_regimm():
    back = _roundtrip(Instruction("bltz", rs=9, target=0x40))
    assert (back.op, back.rs, back.target) == ("bltz", 9, 0x40)
    back = _roundtrip(Instruction("bgez", rs=9, target=0x40))
    assert back.op == "bgez"


def test_roundtrip_jump():
    back = _roundtrip(Instruction("jal", target=0x100))
    assert (back.op, back.target) == ("jal", 0x100)


def test_roundtrip_secure_indexed_load():
    back = _roundtrip(Instruction("lwx", rt=3, rs=4, imm=0, secure=True))
    assert back.op == "lwx"
    assert back.secure
    assert back.spec.is_indexing


_R3_OPS = st.sampled_from(["add", "addu", "sub", "subu", "and", "or", "xor",
                           "nor", "slt", "sltu"])
_REG = st.integers(min_value=0, max_value=31)
_IMM = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)


@given(op=_R3_OPS, rd=_REG, rs=_REG, rt=_REG, secure=st.booleans())
def test_roundtrip_r3_property(op, rd, rs, rt, secure):
    ins = Instruction(op, rd=rd, rs=rs, rt=rt, secure=secure)
    back = _roundtrip(ins)
    assert (back.op, back.rd, back.rs, back.rt, back.secure) == \
        (op, rd, rs, rt, secure)


@given(op=st.sampled_from(["addi", "addiu", "slti", "sltiu"]),
       rt=_REG, rs=_REG, imm=_IMM, secure=st.booleans())
def test_roundtrip_signed_immediate_property(op, rt, rs, imm, secure):
    back = _roundtrip(Instruction(op, rt=rt, rs=rs, imm=imm, secure=secure))
    assert (back.op, back.rt, back.rs, back.imm, back.secure) == \
        (op, rt, rs, imm, secure)


@given(op=st.sampled_from(["andi", "ori", "xori"]), rt=_REG, rs=_REG,
       imm=st.integers(min_value=0, max_value=0xFFFF))
def test_roundtrip_unsigned_immediate_property(op, rt, rs, imm):
    back = _roundtrip(Instruction(op, rt=rt, rs=rs, imm=imm))
    assert back.imm == imm


@given(op=st.sampled_from(["lw", "sw", "lb", "lbu", "sb", "lwx"]),
       rt=_REG, rs=_REG, imm=_IMM, secure=st.booleans())
def test_roundtrip_memory_property(op, rt, rs, imm, secure):
    back = _roundtrip(Instruction(op, rt=rt, rs=rs, imm=imm, secure=secure))
    assert (back.op, back.rt, back.rs, back.imm, back.secure) == \
        (op, rt, rs, imm, secure)


@given(rt=_REG, rs=_REG, shamt=st.integers(min_value=0, max_value=31),
       op=st.sampled_from(["sll", "srl", "sra"]))
def test_roundtrip_shift_property(op, rt, rs, shamt):
    ins = Instruction(op, rd=rs, rt=rt, shamt=shamt)
    if encode(ins) == 0:
        # The all-zero word is canonically `nop` (as on real MIPS, where
        # nop IS sll $0,$0,0).
        assert _roundtrip(ins).op == "nop"
        return
    back = _roundtrip(ins)
    assert (back.op, back.rd, back.rt, back.shamt) == (op, rs, rt, shamt)
