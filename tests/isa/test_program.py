"""Program container: symbols, addressing, replace_text."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.program import Program, SymbolError


@pytest.fixture
def program():
    return assemble("""
    .data
    x: .word 1
    .text
    main:
        nop
        addu $t0, $t1, $t2
        halt
    """)


def test_len_and_iter(program):
    assert len(program) == 3
    assert [i.op for i in program] == ["nop", "addu", "halt"]


def test_address_of(program):
    assert program.address_of("main") == program.text_base
    with pytest.raises(SymbolError):
        program.address_of("missing")


def test_instruction_at(program):
    assert program.instruction_at(program.text_base + 4).op == "addu"
    with pytest.raises(IndexError):
        program.instruction_at(program.text_base + 400)


def test_address_of_index(program):
    assert program.address_of_index(2) == program.text_base + 8


def test_replace_text_preserves_layout(program):
    rewritten = program.replace_text(ins.with_secure(True)
                                     for ins in program.text)
    assert len(rewritten) == len(program)
    assert rewritten.symbols == program.symbols
    assert all(ins.secure for ins in rewritten.text)
    # Original untouched.
    assert not any(ins.secure for ins in program.text)


def test_replace_text_wrong_length_raises(program):
    with pytest.raises(ValueError):
        program.replace_text(program.text[:-1])
