"""Assembler: syntax, directives, labels, pseudo expansion, secure forms."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Instruction
from repro.isa.program import DATA_BASE


def test_empty_program():
    program = assemble(".text\n")
    assert len(program.text) == 0


def test_basic_r3():
    program = assemble("addu $t0, $t1, $t2\n")
    ins = program.text[0]
    assert (ins.op, ins.rd, ins.rs, ins.rt) == ("addu", 8, 9, 10)


def test_comments_are_stripped():
    program = assemble("""
    addu $t0, $t1, $t2   # a comment
    ; a full-line comment
    xor $t3, $t4, $t5    ; trailing
    """)
    assert [i.op for i in program.text] == ["addu", "xor"]


def test_memory_operand_offsets():
    program = assemble("""
    lw $t0, 8($sp)
    sw $t1, -4($fp)
    lw $t2, ($gp)
    """)
    assert program.text[0].imm == 8
    assert program.text[1].imm == -4
    assert program.text[2].imm == 0


def test_label_resolution_branch():
    program = assemble("""
    top:
        addiu $t0, $t0, 1
        bne $t0, $t1, top
        halt
    """)
    branch = program.text[1]
    assert branch.target == program.symbols["top"]


def test_forward_reference():
    program = assemble("""
        j end
        nop
    end:
        halt
    """)
    assert program.text[0].target == program.symbols["end"]


def test_undefined_label_raises():
    with pytest.raises(AssemblerError):
        assemble("j nowhere\n")


def test_duplicate_label_raises():
    with pytest.raises(AssemblerError):
        assemble("x: nop\nx: nop\n")


def test_data_word_directive():
    program = assemble("""
    .data
    values: .word 1, 2, 0x10, -1
    .text
    halt
    """)
    assert program.data[:4] == [1, 2, 16, 0xFFFF_FFFF]
    assert program.symbols["values"] == DATA_BASE


def test_data_space_and_align():
    program = assemble("""
    .data
    a: .byte 1
    .align 2
    b: .word 7
    c: .space 8
    d: .word 9
    .text
    halt
    """)
    assert program.symbols["b"] == DATA_BASE + 4
    assert program.symbols["c"] == DATA_BASE + 8
    assert program.symbols["d"] == DATA_BASE + 16
    assert program.data[4] == 9


def test_byte_packing_little_endian():
    program = assemble("""
    .data
    b: .byte 0x11, 0x22, 0x33, 0x44
    .text
    halt
    """)
    assert program.data[0] == 0x44332211


def test_la_expands_to_lui_addiu():
    program = assemble("""
    .data
    x: .word 0
    .text
    la $t0, x
    halt
    """)
    assert [i.op for i in program.text[:2]] == ["lui", "addiu"]
    # reconstructed address
    hi = program.text[0].imm
    lo = program.text[1].imm
    assert ((hi << 16) + lo) & 0xFFFF_FFFF == program.symbols["x"]


def test_label_load_expands():
    program = assemble("""
    .data
    x: .word 42
    .text
    lw $t0, x
    halt
    """)
    assert [i.op for i in program.text[:2]] == ["lui", "lw"]


def test_label_with_offset():
    program = assemble("""
    .data
    arr: .word 1, 2, 3
    .text
    lw $t0, arr+8
    halt
    """)
    hi = program.text[0].imm
    lo = program.text[1].imm
    assert ((hi << 16) + lo) & 0xFFFF_FFFF == program.symbols["arr"] + 8


def test_li_small_and_large():
    program = assemble("""
    li $t0, 5
    li $t1, 0x12345678
    li $t2, -3
    halt
    """)
    ops = [i.op for i in program.text]
    assert ops[0] == "ori"            # small positive
    assert ops[1:3] == ["lui", "ori"]  # 32-bit constant
    assert ops[3] == "addiu"           # small negative


def test_move_not_neg_pseudo():
    program = assemble("""
    move $t0, $t1
    not $t2, $t3
    neg $t4, $t5
    halt
    """)
    assert program.text[0].op == "addu" and program.text[0].rt == 0
    assert program.text[1].op == "nor"
    assert program.text[2].op == "subu" and program.text[2].rs == 0


def test_branch_pseudos():
    program = assemble("""
    top:
    blt $t0, $t1, top
    bgt $t0, $t1, top
    ble $t0, $t1, top
    bge $t0, $t1, top
    beqz $t0, top
    bnez $t0, top
    b top
    halt
    """)
    ops = [i.op for i in program.text]
    assert ops == ["slt", "bne", "slt", "bne", "slt", "beq", "slt", "beq",
                   "beq", "bne", "beq", "halt"]


def test_secure_mnemonics():
    program = assemble("""
    .data
    x: .word 0
    .text
    la $t1, x
    slw $t0, 0($t1)
    sxor $t2, $t0, $t0
    ssll $t3, $t0, 2
    ssllv $t4, $t0, $t2
    silw $t5, 0($t1)
    ssw $t5, 0($t1)
    halt
    """)
    secure_ops = [(i.op, i.secure) for i in program.text if i.secure]
    assert ("lw", True) in secure_ops
    assert ("xor", True) in secure_ops
    assert ("sll", True) in secure_ops
    assert ("sllv", True) in secure_ops
    assert ("lwx", True) in secure_ops
    assert ("sw", True) in secure_ops


def test_generic_secure_prefix():
    program = assemble("s.addu $t0, $t1, $t2\nhalt\n")
    assert program.text[0].op == "addu"
    assert program.text[0].secure


def test_instruction_in_data_raises():
    with pytest.raises(AssemblerError):
        assemble(".data\naddu $t0, $t1, $t2\n")


def test_unknown_mnemonic_raises():
    with pytest.raises(AssemblerError):
        assemble("blorp $t0, $t1, $t2\n")


def test_error_carries_line_number():
    with pytest.raises(AssemblerError) as info:
        assemble("nop\nblorp $t0\n")
    assert "line 2" in str(info.value)


def test_label_and_instruction_same_line():
    program = assemble("start: addu $t0, $t1, $t2\nhalt\n")
    assert program.symbols["start"] == program.text_base


def test_listing_roundtrip_reassembles():
    source = """
    .data
    x: .word 3
    .text
    main:
        lw $t0, x
        addiu $t0, $t0, 1
        slw $t1, 0($t0)
        halt
    """
    program = assemble(source)
    listing = program.listing()
    assert "slw" in listing
    assert "0x" in listing


def test_jalr_single_and_double_operand():
    program = assemble("jalr $t0\njalr $v0, $t1\nhalt\n")
    assert program.text[0].rd == 31
    assert program.text[1].rd == 2


def test_secure_fraction():
    program = assemble("slw $t0, 0($t1)\nnop\nnop\nhalt\n")
    assert program.secure_fraction() == 0.25


def test_unaligned_word_directive_rejected():
    """A label recorded before a silently-aligned .word would point at
    padding; the assembler demands explicit alignment instead."""
    with pytest.raises(AssemblerError, match="unaligned"):
        assemble("""
        .data
        b: .byte 1
        w: .word 2
        .text
        halt
        """)


def test_byte_then_align_then_word_label_correct():
    program = assemble("""
    .data
    b: .byte 1, 2
    .align 2
    w: .word 42
    .text
    lw $t0, w
    halt
    """)
    assert program.symbols["w"] == program.data_base + 4
    from repro.machine.cpu import run_to_halt
    cpu = run_to_halt(program)
    assert cpu.regs.read(8) == 42


def test_loc_directive_threads_debug_info():
    program = assemble("""
    .text
    .loc 7 0
    li $t0, 1
    .loc 9 1
    xor $t1, $t0, $t0
    li $t2, 2
    .loc 0 0
    halt
    """)
    first, second, third, last = program.text
    assert (first.source_line, first.sliced) == (7, False)
    assert (second.source_line, second.sliced) == (9, True)
    # Debug state is sticky until the next .loc.
    assert (third.source_line, third.sliced) == (9, True)
    # .loc 0 0 clears it.
    assert (last.source_line, last.sliced) == (None, False)
    assert program.source_map() == {program.text_base: (7, False),
                                    program.text_base + 4: (9, True),
                                    program.text_base + 8: (9, True),
                                    program.text_base + 12: (None, False)}
    assert program.sliced_addresses() == {program.text_base + 4,
                                          program.text_base + 8}


def test_loc_directive_does_not_change_encoding_or_equality():
    from dataclasses import replace

    with_loc = assemble(".text\n.loc 3 1\nxor $t0, $t0, $t0\nhalt\n")
    without = assemble(".text\nxor $t0, $t0, $t0\nhalt\n")
    # Debug fields are compare=False: equal once the assembly-line shift
    # introduced by the .loc directive itself is normalized away.
    assert [replace(ins, line=0) for ins in with_loc.text] \
        == [replace(ins, line=0) for ins in without.text]
    from repro.isa.encoding import encode

    assert [encode(ins) for ins in with_loc.text] \
        == [encode(ins) for ins in without.text]


def test_loc_directive_validates_operands():
    with pytest.raises(AssemblerError):
        assemble(".text\n.loc\nhalt\n")
    with pytest.raises(AssemblerError):
        assemble(".text\n.loc 1 2 3 4\nhalt\n")
