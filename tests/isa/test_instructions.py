"""Instruction metadata: dest/sources, secure aliases, formatting."""

import pytest

from repro.isa.instructions import (Format, Instruction, InstructionError,
                                    OPCODES, SECURE_ALIASES,
                                    format_instruction)


def test_unknown_opcode_raises():
    with pytest.raises(InstructionError):
        Instruction("frobnicate")


def test_r3_dest_and_sources():
    ins = Instruction("addu", rd=3, rs=4, rt=5)
    assert ins.dest == 3
    assert ins.sources == (4, 5)


def test_shift_immediate_sources():
    ins = Instruction("sll", rd=2, rt=7, shamt=4)
    assert ins.dest == 2
    assert ins.sources == (7,)


def test_variable_shift_sources():
    ins = Instruction("sllv", rd=2, rt=7, rs=9)
    assert ins.sources == (7, 9)


def test_load_dest_sources():
    ins = Instruction("lw", rt=8, rs=29, imm=4)
    assert ins.dest == 8
    assert ins.sources == (29,)
    assert ins.spec.is_load


def test_store_has_no_dest():
    ins = Instruction("sw", rt=8, rs=29, imm=4)
    assert ins.dest is None
    assert ins.sources == (29, 8)
    assert ins.spec.is_store


def test_branch_has_no_dest():
    ins = Instruction("beq", rs=1, rt=2, target="x")
    assert ins.dest is None
    assert ins.sources == (1, 2)
    assert ins.spec.is_branch


def test_branch1_sources():
    ins = Instruction("blez", rs=9, target="x")
    assert ins.sources == (9,)


def test_jal_writes_ra():
    assert Instruction("jal", target="f").dest == 31


def test_jalr_writes_rd():
    assert Instruction("jalr", rd=2, rs=9).dest == 2


def test_jr_no_dest():
    assert Instruction("jr", rs=31).dest is None


def test_lui_dest():
    ins = Instruction("lui", rt=5, imm=0x1234)
    assert ins.dest == 5
    assert ins.sources == ()


def test_halt_flags():
    ins = Instruction("halt")
    assert ins.spec.halts
    assert ins.dest is None
    assert ins.sources == ()


def test_nop_neutral():
    ins = Instruction("nop")
    assert ins.dest is None
    assert ins.sources == ()


def test_secure_aliases_map_to_known_opcodes():
    for alias, base in SECURE_ALIASES.items():
        assert base in OPCODES, alias


def test_with_secure_copies():
    ins = Instruction("xor", rd=1, rs=2, rt=3)
    secure = ins.with_secure()
    assert secure.secure and not ins.secure
    assert secure.rd == ins.rd
    assert secure.op == ins.op


def test_mnemonic_for_canonical_secure_forms():
    assert Instruction("lw", rt=1, rs=2, imm=0, secure=True).mnemonic == "slw"
    assert Instruction("sw", rt=1, rs=2, imm=0, secure=True).mnemonic == "ssw"
    assert Instruction("xor", rd=1, rs=2, rt=3, secure=True).mnemonic == "sxor"
    assert Instruction("lwx", rt=1, rs=2, imm=0, secure=True).mnemonic == "silw"


def test_mnemonic_generic_secure_prefix():
    assert Instruction("addu", rd=1, rs=2, rt=3,
                       secure=True).mnemonic == "s.addu"


def test_format_r3():
    ins = Instruction("addu", rd=2, rs=8, rt=9)
    assert format_instruction(ins) == "addu $v0,$t0,$t1"


def test_format_memory():
    ins = Instruction("lw", rt=8, rs=29, imm=-4)
    assert format_instruction(ins) == "lw $t0,-4($sp)"


def test_format_secure_memory():
    ins = Instruction("sw", rt=8, rs=29, imm=0, secure=True)
    assert format_instruction(ins) == "ssw $t0,0($sp)"


def test_indexing_flag():
    assert OPCODES["lwx"].is_indexing
    assert not OPCODES["lw"].is_indexing


def test_canonical_secure_classes():
    # The paper's four classes: assignment (load/store), xor, shift, index.
    for name in ("lw", "sw", "lb", "sb", "xor", "xori", "sll", "srl", "sra",
                 "sllv", "srlv", "srav", "lwx"):
        assert OPCODES[name].canonical_secure, name
    for name in ("addu", "subu", "and", "or", "beq", "j"):
        assert not OPCODES[name].canonical_secure, name


def test_every_format_has_consistent_spec():
    for name, spec in OPCODES.items():
        assert spec.name == name
        if spec.is_load or spec.is_store:
            assert spec.fmt in (Format.LOAD, Format.STORE)
