"""Public API hygiene: exports exist, are documented, and stay stable."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = ["repro.isa", "repro.machine", "repro.energy", "repro.des",
               "repro.aes", "repro.lang", "repro.programs", "repro.masking",
               "repro.attacks", "repro.harness"]


@pytest.mark.parametrize("module_name", ["repro"] + SUBPACKAGES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    assert exported, f"{module_name} has no __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", ["repro"] + SUBPACKAGES)
def test_all_sorted_and_unique(module_name):
    module = importlib.import_module(module_name)
    exported = list(module.__all__)
    assert len(exported) == len(set(exported)), f"{module_name}: duplicates"


@pytest.mark.parametrize("module_name", ["repro"] + SUBPACKAGES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, \
        f"{module_name}: missing docstrings on {undocumented}"


def test_module_docstrings():
    for module_name in ["repro"] + SUBPACKAGES:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"


def test_version_string():
    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts)


def test_quickstart_docstring_is_accurate():
    """The package docstring's quickstart snippet must actually run."""
    from repro import KEY_A, PT_A, ROUND1_DES, compile_des, des_run

    compiled = compile_des(ROUND1_DES, masking="selective")
    run = des_run(compiled.program, KEY_A, PT_A)
    assert run.total_uj > 0
    assert run.cycles > 0
