"""Technology parameters and the paper's fixed operating points."""

import pytest

from repro.energy.params import (DEFAULT_PARAMS, EnergyParams,
                                 single_wire_event_energy)


def test_paper_single_wire_example():
    """The paper: 1 pF at 2.5 V costs 6.25 pJ per charging event."""
    assert single_wire_event_energy(1.0, 2.5) == pytest.approx(6.25)


def test_default_voltage_is_2v5():
    assert DEFAULT_PARAMS.vdd == 2.5


def test_xor_secure_operating_point():
    """Secure XOR = 32 nodes x c x V^2 = 0.6 pJ (paper Section 4.2)."""
    constant = DEFAULT_PARAMS.width * DEFAULT_PARAMS.event_energy_xor
    assert constant == pytest.approx(0.6)


def test_xor_normal_operating_point():
    """Average normal XOR over random data: 24 events x c x V^2 = 0.3 pJ."""
    average = 24 * DEFAULT_PARAMS.event_energy_xor_static
    assert average == pytest.approx(0.3)


def test_event_energy_properties_consistent():
    params = DEFAULT_PARAMS
    v2 = params.vdd ** 2
    assert params.event_energy_data_bus == pytest.approx(
        params.c_data_bus * v2)
    assert params.event_energy_instr_bus == pytest.approx(
        params.c_instr_bus * v2)
    assert params.event_energy_latch == pytest.approx(params.c_latch_bit * v2)
    assert params.event_energy_alu == pytest.approx(params.c_alu_node * v2)
    assert params.event_energy_shift == pytest.approx(
        params.c_shift_node * v2)


def test_scaled_override():
    scaled = DEFAULT_PARAMS.scaled(c_data_bus=1.0)
    assert scaled.c_data_bus == 1.0
    assert scaled.c_latch_bit == DEFAULT_PARAMS.c_latch_bit
    # Original is frozen/unchanged.
    assert DEFAULT_PARAMS.c_data_bus != 1.0


def test_params_frozen():
    with pytest.raises(Exception):
        DEFAULT_PARAMS.vdd = 3.3


def test_all_energies_positive():
    params = EnergyParams()
    assert params.e_clock_cycle > 0
    assert params.e_regfile_port > 0
    assert params.e_memory_access > 0
    assert params.e_dummy_load > 0
    assert params.e_secure_clock > 0
