"""Component models: transition sensitivity and secure-mode constancy."""

from hypothesis import given, strategies as st

from repro.energy.models import BusModel, FunctionalUnitModel, LatchModel

U32 = st.integers(min_value=0, max_value=0xFFFF_FFFF)


class TestBusModel:
    def test_initial_transfer_counts_set_bits(self):
        bus = BusModel(event_energy=1.0)
        assert bus.transfer(0b1011, secure=False) == 3.0

    def test_no_energy_when_value_repeats(self):
        bus = BusModel(event_energy=1.0)
        bus.transfer(0xABCD, secure=False)
        assert bus.transfer(0xABCD, secure=False) == 0.0

    def test_only_rising_edges_cost(self):
        bus = BusModel(event_energy=1.0)
        bus.transfer(0b1111, secure=False)
        # All falling: no charge events.
        assert bus.transfer(0b0000, secure=False) == 0.0
        # Now all rising again.
        assert bus.transfer(0b1111, secure=False) == 4.0

    def test_secure_transfer_constant(self):
        bus = BusModel(event_energy=1.0, width=32)
        values = [0, 0xFFFF_FFFF, 0x1, 0xDEAD_BEEF, 0x8000_0000]
        energies = {bus.transfer(v, secure=True) for v in values}
        assert energies == {32.0}

    def test_secure_transfer_leaves_precharged_state(self):
        bus = BusModel(event_energy=1.0)
        bus.transfer(0xDEAD_BEEF, secure=True)
        # A following normal transfer starts from all-ones: no rising edges
        # regardless of the secure value that was transferred.
        assert bus.transfer(0x1234, secure=False) == 0.0

    def test_reset(self):
        bus = BusModel(event_energy=1.0)
        bus.transfer(0xF, secure=False)
        bus.reset()
        assert bus.transfer(0xF, secure=False) == 4.0

    @given(a=U32, b=U32)
    def test_secure_never_depends_on_data(self, a, b):
        bus1 = BusModel(event_energy=0.5)
        bus2 = BusModel(event_energy=0.5)
        assert bus1.transfer(a, secure=True) == \
            bus2.transfer(b, secure=True)

    @given(prev=U32, cur=U32)
    def test_normal_energy_is_rising_hamming(self, prev, cur):
        bus = BusModel(event_energy=1.0)
        bus.transfer(prev, secure=False)
        expected = (cur & ~prev).bit_count()
        assert bus.transfer(cur, secure=False) == float(expected)


class TestFunctionalUnitModel:
    def test_secure_constant(self):
        unit = FunctionalUnitModel(1.0, 2.0, width=32)
        e1 = unit.execute(0, 0, 0, secure=True)
        e2 = unit.execute(0xFFFF_FFFF, 0x1234, 0xFFFF_2222, secure=True)
        assert e1 == e2 == 64.0

    def test_normal_counts_all_three_ports(self):
        unit = FunctionalUnitModel(1.0, 2.0)
        energy = unit.execute(0b1, 0b11, 0b111, secure=False)
        assert energy == 1 + 2 + 3

    def test_normal_after_secure_independent_of_secret(self):
        unit1 = FunctionalUnitModel(1.0, 2.0)
        unit2 = FunctionalUnitModel(1.0, 2.0)
        unit1.execute(0xAAAA, 0x5555, 0xFFFF, secure=True)
        unit2.execute(0x1111, 0x2222, 0x3333, secure=True)
        # Same post-secure op must cost the same in both histories.
        assert unit1.execute(7, 8, 15, secure=False) == \
            unit2.execute(7, 8, 15, secure=False)

    @given(a=U32, b=U32, out=U32)
    def test_secure_property(self, a, b, out):
        unit = FunctionalUnitModel(0.3, 0.7, width=32)
        baseline = unit.secure_energy
        assert unit.execute(a, b, out, secure=True) == baseline


class TestLatchModel:
    def test_fields_counted_separately(self):
        latch = LatchModel(event_energy=1.0, fields=2)
        assert latch.latch((0b1, 0b11), secure=False) == 3.0

    def test_hold_costs_nothing(self):
        latch = LatchModel(event_energy=1.0, fields=1)
        latch.latch((0xAA,), secure=False)
        assert latch.latch((0xAA,), secure=False) == 0.0

    def test_secure_constant_per_field(self):
        latch = LatchModel(event_energy=1.0, fields=3, width=32)
        assert latch.latch((1, 2, 3), secure=True) == 3 * 32.0
        assert latch.latch((0xFFFF_FFFF, 0, 0), secure=True) == 3 * 32.0

    def test_secure_leaves_precharged(self):
        latch = LatchModel(event_energy=1.0, fields=1)
        latch.latch((0xDEAD,), secure=True)
        assert latch.latch((0x1234,), secure=False) == 0.0

    @given(values=st.tuples(U32, U32))
    def test_secure_data_independent(self, values):
        latch = LatchModel(event_energy=1.0, fields=2)
        assert latch.latch(values, secure=True) == latch.secure_energy
