"""Noise injection in the tracker (randomized-power countermeasure)."""

import numpy as np
import pytest

from repro.energy.tracker import EnergyTracker
from repro.harness.runner import run_with_trace
from repro.isa.assembler import assemble

SOURCE = """
.data
x: .word 5
.text
lw $t0, x
addiu $t0, $t0, 1
sw $t0, x
nop
nop
halt
"""


def trace_with_noise(sigma, seed):
    return run_with_trace(assemble(SOURCE), noise_sigma=sigma,
                          noise_seed=seed).trace.energy


def test_no_noise_is_deterministic():
    assert np.array_equal(trace_with_noise(0.0, 1), trace_with_noise(0.0, 2))


def test_noise_changes_trace():
    clean = trace_with_noise(0.0, 0)
    noisy = trace_with_noise(5.0, 1)
    assert not np.array_equal(clean, noisy)


def test_noise_reproducible_per_seed():
    assert np.array_equal(trace_with_noise(5.0, 7), trace_with_noise(5.0, 7))
    assert not np.array_equal(trace_with_noise(5.0, 7),
                              trace_with_noise(5.0, 8))


def test_noise_is_zero_mean():
    clean = trace_with_noise(0.0, 0)
    deltas = [trace_with_noise(3.0, seed) - clean for seed in range(30)]
    mean_offset = float(np.mean(deltas))
    assert abs(mean_offset) < 1.0  # zero-mean within sampling error


def test_noise_sigma_scales():
    clean = trace_with_noise(0.0, 0)
    small = np.std(trace_with_noise(1.0, 3) - clean)
    large = np.std(trace_with_noise(10.0, 3) - clean)
    assert large > 5 * small


def test_noise_counted_in_totals():
    """Injected noise must not desynchronize the tracker's running totals
    from the per-cycle trace (it is booked under the "noise" key)."""
    result = run_with_trace(assemble(SOURCE), noise_sigma=5.0, noise_seed=3)
    tracker = result.tracker
    assert tracker.totals["noise"] != 0.0
    assert tracker.total_energy_pj == pytest.approx(result.trace.total_pj)
    assert sum(tracker.totals.values()) == pytest.approx(
        sum(tracker.cycle_energy))
    assert result.total_uj == pytest.approx(result.trace.total_uj)


def test_noiseless_run_has_zero_noise_total():
    result = run_with_trace(assemble(SOURCE))
    assert result.tracker.totals["noise"] == 0.0


def test_noise_buffer_refills_for_long_runs():
    """Runs longer than the 4096-sample buffer must keep injecting."""
    tracker = EnergyTracker(noise_sigma=2.0, noise_seed=5)
    for _ in range(5000):
        tracker.begin_cycle()
        tracker.end_cycle()
    energy = np.asarray(tracker.cycle_energy)
    tail = energy[4096:] - tracker.params.e_clock_cycle
    assert np.std(tail) > 0.5  # still noisy after the refill
