"""Energy-composition security tests, at the assembly level.

The masking property must *compose*: a secret that passes through a secure
instruction must not modulate the energy of ANY later instruction, secure
or not.  These directed tests construct minimal assembly sequences around
each architectural channel (memory bus, XOR unit, shifter, ALU, pipeline
latches, forwarding paths) and assert bit-exact energy equality across
secret values.
"""

import numpy as np
import pytest

from repro.harness.runner import run_with_trace
from repro.isa.assembler import assemble

SECRETS = [0x00000000, 0xFFFFFFFF, 0xA5A5A5A5, 0x00000001, 0x80000000,
           0xDEADBEEF]


def energies(source, secret_symbol="secret"):
    """Per-cycle traces of the same program across secret values."""
    traces = []
    for secret in SECRETS:
        program = assemble(source)
        result = run_with_trace(program, inputs={secret_symbol: [secret]})
        traces.append(result.trace.energy)
    return traces


def assert_flat(source):
    traces = energies(source)
    reference = traces[0]
    for index, trace in enumerate(traces[1:], start=1):
        assert trace.shape == reference.shape, "timing leak"
        delta = float(np.abs(trace - reference).max())
        assert delta == 0.0, \
            f"secret {SECRETS[index]:#010x} leaks {delta} pJ"


def assert_leaks(source):
    traces = energies(source)
    assert any(float(np.abs(t - traces[0]).max()) > 0 for t in traces[1:]), \
        "expected the insecure variant to leak"


def test_secure_load_masks_bus_and_latches():
    assert_flat("""
    .data
    secret: .word 0
    .text
    slw $t0, secret
    nop
    nop
    halt
    """)


def test_insecure_load_leaks_baseline():
    assert_leaks("""
    .data
    secret: .word 0
    .text
    lw $t0, secret
    nop
    nop
    halt
    """)


def test_secure_load_then_insecure_load_composes():
    """The public load after the secure load must cost the same energy
    regardless of the secret that crossed the bus before it."""
    assert_flat("""
    .data
    secret: .word 0
    pub: .word 0x12345678
    .text
    slw $t0, secret
    lw $t1, pub
    nop
    nop
    halt
    """)


def test_secure_store_roundtrip_flat():
    assert_flat("""
    .data
    secret: .word 0
    scratch: .word 0
    .text
    slw $t0, secret
    ssw $t0, scratch
    slw $t1, scratch
    halt
    """)


def test_secure_xor_then_insecure_xor_composes():
    assert_flat("""
    .data
    secret: .word 0
    .text
    slw $t0, secret
    sxor $t1, $t0, $t0
    li $t2, 0x1234
    li $t3, 0x00FF
    xor $t4, $t2, $t3      # public xor after the unit went secure
    halt
    """)


def test_secure_shift_composes():
    assert_flat("""
    .data
    secret: .word 0
    .text
    slw $t0, secret
    ssll $t1, $t0, 3
    li $t2, 7
    sll $t3, $t2, 2        # public shift afterwards
    halt
    """)


def test_secure_alu_composes():
    assert_flat("""
    .data
    secret: .word 0
    .text
    slw $t0, secret
    s.addu $t1, $t0, $t0
    li $t2, 5
    addu $t3, $t2, $t2     # public add afterwards
    halt
    """)


def test_forwarding_of_secret_into_secure_consumer_flat():
    """EX-to-EX forwarding of a secret value into a secure consumer."""
    assert_flat("""
    .data
    secret: .word 0
    .text
    slw $t0, secret
    nop
    s.addu $t1, $t0, $t0   # forwarded from MEM/WB
    sxor $t2, $t1, $t1     # forwarded from EX/MEM
    halt
    """)


def test_stale_register_reuse_does_not_leak():
    """A register that held a secret is overwritten; the overwriting and
    subsequent public uses must not echo the old secret (operand
    isolation + regfile data-independence)."""
    assert_flat("""
    .data
    secret: .word 0
    pub: .word 42
    .text
    slw $t0, secret        # $t0 holds the secret
    sxor $t1, $t0, $t0     # consume it securely
    lw $t0, pub            # reuse $t0 for a public value
    addu $t2, $t0, $t0     # public compute on the reused register
    sw $t2, pub
    halt
    """)


def test_secret_branch_condition_would_leak():
    """Negative control: branching on the secret changes energy (and the
    compiler would have refused it) — the architecture cannot mask it."""
    source = """
    .data
    secret: .word 0
    out: .word 0
    .text
    slw $t0, secret
    beq $t0, $zero, zero_case
    li $t1, 1
    j store
    zero_case:
    li $t1, 2
    store:
    sw $t1, out
    halt
    """
    traces = energies(source)
    shapes = {t.shape for t in traces}
    deltas = [float(np.abs(t - traces[0]).max()) for t in traces[1:]
              if t.shape == traces[0].shape]
    assert len(shapes) > 1 or any(d > 0 for d in deltas)


def test_secure_indexed_load_masks_index():
    """silw at a secret-derived offset: energy independent of the index."""
    lines = ["    .data", "    secret: .word 0", "    table: .space 256",
             "    .text",
             "    slw $t0, secret",
             "    s.andi $t1, $t0, 63",
             "    ssll $t2, $t1, 2",
             "    la $t3, table",
             "    s.addu $t3, $t3, $t2",
             "    silw $t4, 0($t3)",
             "    halt"]
    assert_flat("\n".join(lines))


def test_plain_load_at_secret_index_leaks():
    """Negative control: the same lookup with plain lw leaks the index
    through the address-generation adder (why silw exists)."""
    lines = ["    .data", "    secret: .word 0", "    table: .space 256",
             "    .text",
             "    slw $t0, secret",
             "    s.andi $t1, $t0, 63",
             "    ssll $t2, $t1, 2",
             "    la $t3, table",
             "    addu $t3, $t3, $t2",   # plain address formation
             "    lw $t4, 0($t3)",       # plain load
             "    halt"]
    assert_leaks("\n".join(lines))