"""Switch-level pre-charged dual-rail XOR cell (paper Fig. 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.circuits import (PrechargedXorCell,
                                   secure_cycle_energy_is_constant)

BIT = st.integers(min_value=0, max_value=1)


def test_secure_steady_state_is_one_event_per_cycle():
    cell = PrechargedXorCell()
    cell.step(0, 0, secure=True)  # first cycle charges both nodes
    for a, b in [(0, 1), (1, 1), (1, 0), (0, 0)]:
        assert cell.step(a, b, secure=True).charging_events == 1


def test_secure_exactly_one_discharge_per_cycle():
    cell = PrechargedXorCell()
    for a, b in [(0, 0), (0, 1), (1, 0), (1, 1)]:
        assert cell.step(a, b, secure=True).discharge_events == 1


def test_secure_rails_complementary():
    cell = PrechargedXorCell()
    for a, b in [(0, 0), (0, 1), (1, 0), (1, 1)]:
        cell.step(a, b, secure=True)
        assert cell.q ^ cell.qbar == 1
        assert cell.q == (a ^ b)


def test_normal_mode_energy_depends_on_data():
    cell = PrechargedXorCell()
    cell.step(0, 0, secure=False)   # q ends low
    # Result 1: precharge (1 event), stays high.
    e_one = cell.step(0, 1, secure=False).charging_events
    # Result 1 again from high q: no precharge event needed.
    e_one_again = cell.step(1, 0, secure=False).charging_events
    assert e_one != e_one_again


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        PrechargedXorCell().step(2, 0, secure=True)


@given(st.lists(st.tuples(BIT, BIT), min_size=2, max_size=64))
def test_secure_energy_constant_property(samples):
    assert secure_cycle_energy_is_constant(samples)


@given(st.lists(st.tuples(BIT, BIT), min_size=4, max_size=64))
def test_secure_energy_equals_across_sequences(samples):
    """Two different input sequences of equal length consume identical
    total energy after the first (initialization) cycle."""
    cell_a = PrechargedXorCell()
    cell_b = PrechargedXorCell()
    inverted = [(1 - a, 1 - b) for a, b in samples]
    ea = sum(cell_a.step(a, b, secure=True).charging_events
             for a, b in samples[1:])
    eb = sum(cell_b.step(a, b, secure=True).charging_events
             for a, b in inverted[1:])
    assert ea == eb
