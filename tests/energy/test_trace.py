"""EnergyTrace: windows, markers, decimation, differentials."""

import numpy as np
import pytest

from repro.energy.trace import EnergyTrace


def make_trace(values, markers=()):
    return EnergyTrace(energy=np.asarray(values, dtype=np.float64),
                       markers=tuple(markers))


def test_len_and_totals():
    trace = make_trace([1.0, 2.0, 3.0])
    assert len(trace) == 3
    assert trace.total_pj == 6.0
    assert trace.total_uj == pytest.approx(6e-6)
    assert trace.mean_pj == 2.0


def test_empty_trace_mean():
    assert make_trace([]).mean_pj == 0.0


def test_marker_cycles():
    trace = make_trace([0] * 10, markers=[(2, 5), (7, 5), (4, 9)])
    assert trace.marker_cycles(5) == [2, 7]
    assert trace.marker_cycles(9) == [4]
    assert trace.marker_cycles(1) == []


def test_phase_bounds():
    trace = make_trace([0] * 10, markers=[(2, 1), (8, 2)])
    assert trace.phase_bounds(1, 2) == (2, 8)


def test_phase_bounds_missing_marker():
    trace = make_trace([0] * 10, markers=[(2, 1)])
    with pytest.raises(ValueError):
        trace.phase_bounds(1, 2)
    with pytest.raises(ValueError):
        trace.phase_bounds(9, 1)


def test_window_slices_and_shifts_markers():
    trace = make_trace(range(10), markers=[(3, 7), (8, 8)])
    window = trace.window(3, 8)
    assert list(window.energy) == [3, 4, 5, 6, 7]
    assert window.markers == ((0, 7),)


def test_phase_convenience():
    trace = make_trace(range(10), markers=[(2, 1), (6, 2)])
    phase = trace.phase(1, 2)
    assert list(phase.energy) == [2, 3, 4, 5]


def test_decimate_averages_blocks():
    trace = make_trace([1, 1, 3, 3, 5, 5, 9])
    decimated = trace.decimate(2)
    assert list(decimated) == [1, 3, 5]  # trailing partial block dropped


def test_decimate_short_trace():
    assert make_trace([1]).decimate(10).size == 0


def test_diff_requires_alignment():
    a = make_trace([1, 2, 3])
    b = make_trace([1, 2])
    with pytest.raises(ValueError):
        a.diff(b)


def test_diff_values():
    a = make_trace([5, 5, 5])
    b = make_trace([1, 2, 3])
    assert list(a.diff(b)) == [4, 3, 2]


def test_max_abs_diff():
    a = make_trace([5, 5, 5])
    b = make_trace([6, 1, 5])
    assert a.max_abs_diff(b) == 4.0


def test_from_tracker():
    class FakeTracker:
        cycle_energy = [1.0, 2.0]
        component_energy = [(0.5, 0.5), (1.0, 1.0)]

    trace = EnergyTrace.from_tracker(FakeTracker(), markers=[(1, 3)],
                                     label="x")
    assert len(trace) == 2
    assert trace.components.shape == (2, 2)
    assert trace.label == "x"
    assert trace.markers == ((1, 3),)


def test_window_slices_components():
    trace = EnergyTrace(energy=np.arange(4, dtype=np.float64),
                        components=np.arange(8, dtype=np.float64)
                        .reshape(4, 2))
    window = trace.window(1, 3)
    assert window.components.shape == (2, 2)
    assert window.components[0, 0] == 2
