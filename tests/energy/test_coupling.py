"""Inter-wire coupling model (the paper's Section 5 limitation)."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.coupling import (CoupledBusModel, coupling_events_normal,
                                   coupling_events_secure, interleave_rails)
from repro.energy.models import BusModel

U32 = st.integers(min_value=0, max_value=0xFFFF_FFFF)


class TestInterleave:
    def test_zero_value_all_true_rails_fall(self):
        # value 0: every d_k falls (even rail positions).
        falling = interleave_rails(0)
        assert falling == 0x5555_5555_5555_5555

    def test_all_ones_all_complement_rails_fall(self):
        falling = interleave_rails(0xFFFF_FFFF)
        assert falling == 0xAAAA_AAAA_AAAA_AAAA

    @given(value=U32)
    def test_exactly_one_rail_per_pair_falls(self, value):
        falling = interleave_rails(value)
        for k in range(32):
            pair = (falling >> (2 * k)) & 0b11
            assert pair in (0b01, 0b10)

    @given(value=U32)
    def test_total_falls_always_32(self, value):
        assert interleave_rails(value).bit_count() == 32


class TestCouplingCounts:
    def test_no_switching_no_events(self):
        assert coupling_events_normal(0, 0) == 0

    def test_single_line_switch_touches_neighbors(self):
        # Line 5 rises alone: pairs (4,5) and (5,6) each get one event.
        assert coupling_events_normal(1 << 5, 0) == 2

    def test_opposite_switch_counts_double(self):
        # Line 3 rises while line 4 falls: that pair costs 2; the outer
        # neighbors (2,3) and (4,5) cost 1 each.
        assert coupling_events_normal(1 << 3, 1 << 4) == 4

    def test_same_direction_no_event_between(self):
        # Lines 3 and 4 both rise: pair (3,4) is free; outer pairs cost 1.
        assert coupling_events_normal((1 << 3) | (1 << 4), 0) == 2

    @given(value=U32)
    def test_secure_events_data_dependent_exists(self, value):
        events = coupling_events_secure(value)
        assert 0 <= events <= 63

    def test_secure_events_differ_between_values(self):
        assert coupling_events_secure(0x0000_0000) != \
            coupling_events_secure(0x5555_5555)


class TestCoupledBusModel:
    def test_degenerates_to_plain_bus_without_coupling(self):
        coupled = CoupledBusModel(1.0, 0.0)
        plain = BusModel(1.0)
        for value in (0xDEADBEEF, 0, 0xFFFF_FFFF, 0x1234):
            assert coupled.transfer(value, secure=False) == \
                plain.transfer(value, secure=False)
        coupled.reset()
        plain.reset()
        for value in (0xABCD, 0x1111):
            assert coupled.transfer(value, secure=True) == \
                plain.transfer(value, secure=True)

    def test_secure_no_longer_constant_with_coupling(self):
        """The Section 5 limitation: dual-rail + coupling leaks."""
        bus = CoupledBusModel(1.0, 0.5)
        energies = {bus.transfer(v, secure=True)
                    for v in (0, 0xFFFF_FFFF, 0xA5A5_A5A5, 0x0F0F_0F0F)}
        assert len(energies) > 1

    def test_normal_coupling_adds_energy(self):
        with_coupling = CoupledBusModel(1.0, 0.5)
        without = CoupledBusModel(1.0, 0.0)
        v = 0x0000_0010
        assert with_coupling.transfer(v, secure=False) > \
            without.transfer(v, secure=False)

    @given(value=U32)
    def test_secure_energy_bounded(self, value):
        bus = CoupledBusModel(1.0, 0.25)
        energy = bus.transfer(value, secure=True)
        # base 32 events + at most 2 * 63 coupling events * 0.25.
        assert 32.0 <= energy <= 32.0 + 2 * 63 * 0.25
