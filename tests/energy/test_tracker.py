"""EnergyTracker accounting: totals, components, secure-mode rules."""

import pytest

from repro.energy.params import EnergyParams
from repro.energy.tracker import COMPONENTS, EnergyTracker
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction
from repro.machine.cpu import run_to_halt


def tracked_run(source, inputs=None, params=None):
    tracker = EnergyTracker(params or EnergyParams(),
                            collect_components=True)
    cpu = run_to_halt(assemble(source), tracker=tracker, inputs=inputs)
    return cpu, tracker


def test_cycle_count_matches_cpu():
    cpu, tracker = tracked_run("nop\nnop\nhalt\n")
    assert tracker.cycles == cpu.cycles


def test_every_cycle_has_clock_energy():
    params = EnergyParams()
    _, tracker = tracked_run("nop\nnop\nnop\nhalt\n", params=params)
    assert all(energy >= params.e_clock_cycle
               for energy in tracker.cycle_energy)


def test_totals_sum_to_cycle_energy():
    _, tracker = tracked_run("""
    .data
    x: .word 3
    .text
    lw $t0, x
    xor $t1, $t0, $t0
    sw $t1, x
    halt
    """)
    assert sum(tracker.totals.values()) == pytest.approx(
        sum(tracker.cycle_energy))


def test_component_matrix_rows_sum_to_total():
    _, tracker = tracked_run("""
    .data
    x: .word 3
    .text
    lw $t0, x
    sll $t0, $t0, 2
    sw $t0, x
    halt
    """)
    for row, total in zip(tracker.component_energy, tracker.cycle_energy):
        assert sum(row) == pytest.approx(total)
    assert len(tracker.component_energy[0]) == len(COMPONENTS)


def test_memory_access_energy_counted():
    params = EnergyParams()
    _, with_mem = tracked_run("""
    .data
    x: .word 3
    .text
    lw $t0, x
    halt
    """, params=params)
    _, without_mem = tracked_run("""
    li $t0, 3
    li $t1, 3
    halt
    """, params=params)
    assert with_mem.totals["memport"] > 0
    assert without_mem.totals["memport"] == 0


def test_secure_instruction_adds_dummy_load():
    params = EnergyParams()
    _, plain = tracked_run("""
    .data
    x: .word 3
    .text
    lw $t0, x
    halt
    """, params=params)
    _, secure = tracked_run("""
    .data
    x: .word 3
    .text
    slw $t0, x
    halt
    """, params=params)
    assert secure.totals["secure"] > plain.totals["secure"] == 0.0


def test_secure_costs_more_overall():
    plain_src = """
    .data
    x: .word 0xDEADBEEF
    y: .word 0
    .text
    lw $t0, x
    xor $t1, $t0, $t0
    sw $t1, y
    halt
    """
    secure_src = plain_src.replace("lw ", "slw ").replace("xor ", "sxor ") \
                          .replace("sw $t1", "ssw $t1")
    _, plain = tracked_run(plain_src)
    _, secure = tracked_run(secure_src)
    assert secure.total_energy_pj > plain.total_energy_pj


def test_average_energy():
    _, tracker = tracked_run("nop\nhalt\n")
    assert tracker.average_energy_pj == pytest.approx(
        tracker.total_energy_pj / tracker.cycles)


def test_total_uj_conversion():
    _, tracker = tracked_run("nop\nhalt\n")
    assert tracker.total_energy_uj == pytest.approx(
        tracker.total_energy_pj * 1e-6)


def test_address_calc_not_masked_for_secure_load():
    """The paper: secure loads do NOT mask the address-generation energy.

    Two secure loads at different offsets must show different funits energy,
    while two secure loads of different *data* at the same offset must not
    differ anywhere in the secured path.
    """
    def funits(offset, value):
        source = f"""
        .data
        pad: .space 64
        x: .word {value}
        .text
        la $t1, pad
        slw $t0, {offset}($t1)
        halt
        """
        _, tracker = tracked_run(source)
        return tracker.totals["funits"]

    # Different offsets -> different address-adder switching.
    assert funits(0, 1) != funits(60, 1)


def test_secure_indexed_load_masks_address_calc():
    def funits(offset):
        source = f"""
        .data
        pad: .space 64
        .text
        la $t1, pad
        silw $t0, {offset}($t1)
        halt
        """
        _, tracker = tracked_run(source)
        return tracker.totals["funits"]

    assert funits(0) == funits(60)


def test_xor_unit_separate_from_alu():
    params = EnergyParams()
    tracker = EnergyTracker(params)
    ins_xor = Instruction("xor", rd=1, rs=2, rt=3)
    tracker.begin_cycle()
    tracker.ex_stage(ins_xor, 0xFFFF, 0xFFFF, 0)
    xor_prev = tracker.xor_unit.prev_a
    assert xor_prev == 0xFFFF
    assert tracker.alu.prev_a == 0


def test_counts_track_events_per_component():
    _, tracker = tracked_run("""
    .data
    x: .word 3
    .text
    lw $t0, x
    xor $t1, $t0, $t0
    sw $t1, x
    halt
    """)
    assert tracker.counts["clock"] == tracker.cycles
    assert tracker.counts["memport"] == 2  # one load + one store
    assert tracker.counts["dbus"] == 2
    assert tracker.counts["regfile"] > 0
    assert all(isinstance(count, int) for count in tracker.counts.values())


def test_publish_metrics_counts_and_cycles():
    from repro.obs.registry import MetricsRegistry, snapshot_totals

    _, tracker = tracked_run("nop\nnop\nhalt\n")
    registry = MetricsRegistry()
    tracker.publish_metrics(registry)
    totals = snapshot_totals(registry.snapshot())
    assert totals["cycles"] == tracker.cycles
    assert totals["cycles_simulated"] == tracker.cycles
    assert totals["energy_component_events{component=clock}"] \
        == tracker.cycles
    # Counter merges add: two runs' snapshots aggregate associatively.
    other = MetricsRegistry()
    tracker.publish_metrics(other)
    registry.merge_snapshot(other.snapshot())
    merged = snapshot_totals(registry.snapshot())
    assert merged["cycles"] == 2 * tracker.cycles
    assert merged["energy_component_events{component=clock}"] \
        == 2 * tracker.cycles


def test_keep_trace_false_drops_series_not_totals():
    from repro.energy.params import EnergyParams
    from repro.energy.tracker import EnergyTracker
    from repro.isa.assembler import assemble as asm
    from repro.machine.cpu import run_to_halt as run

    kept = EnergyTracker(EnergyParams())
    run(asm("nop\nnop\nhalt\n"), tracker=kept)
    dropped = EnergyTracker(EnergyParams(), keep_trace=False)
    run(asm("nop\nnop\nhalt\n"), tracker=dropped)
    assert dropped.cycle_energy == []
    assert dropped.cycles == kept.cycles
    assert dropped.total_energy_pj == pytest.approx(kept.total_energy_pj)
    assert dropped.average_energy_pj == pytest.approx(
        kept.average_energy_pj)
