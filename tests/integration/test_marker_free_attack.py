"""End-to-end attacker realism: no program markers, SPA finds the window.

The experiments use program markers for precise trace windowing; a real
attacker has only the raw trace.  This test chains the pieces the way an
attacker would: SPA segments one scout trace, the detected repetition
start becomes the DPA/CPA window, and the key falls anyway.
"""

import pytest

from repro.attacks.cpa import cpa_attack
from repro.attacks.dpa import collect_traces, random_plaintexts
from repro.attacks.spa import analyze as spa_analyze
from repro.harness.runner import des_run
from repro.programs.des_source import DesProgramSpec
from repro.programs.workloads import compile_des

KEY = 0x133457799BBCDFF1


@pytest.mark.slow
def test_spa_window_feeds_cpa_key_recovery():
    # The attacker profiles the device once to find the round structure
    # (a 4-round variant keeps the test fast; the SPA pipeline is
    # identical)...
    full = compile_des(DesProgramSpec(rounds=4, emit_markers=False),
                       masking="none")
    scout = des_run(full.program, KEY, 0x0123456789ABCDEF)
    spa = spa_analyze(scout.trace.energy, min_period=2000, max_period=30000)
    assert spa.round_count == 4
    round1_start = spa.round_starts[0]
    window = (max(0, round1_start - 100),
              round1_start + spa.period)

    # ...then collects attack traces over just that window (uses the same
    # binary: markers were never in it).
    plaintexts = random_plaintexts(30)
    traces = collect_traces(full.program, KEY, plaintexts, window=window)
    result = cpa_attack(traces, box=0, key=KEY)
    assert result.succeeded()


def test_spa_round_starts_match_markers():
    """The SPA segmentation lines up with ground truth within a fraction
    of a round."""
    compiled = compile_des(DesProgramSpec(rounds=16), masking="none")
    run = des_run(compiled.program, KEY, 0x0123456789ABCDEF)
    spa = spa_analyze(run.trace.energy, min_period=2000, max_period=30000)
    true_starts = [c for c, v in run.trace.markers if 10 <= v < 26]
    assert len(spa.round_starts) == len(true_starts) == 16
    # Same period structure; a constant phase offset is fine.
    offset = spa.round_starts[0] - true_starts[0]
    for detected, truth in zip(spa.round_starts, true_starts):
        assert abs((detected - truth) - offset) <= spa.period * 0.05