"""End-to-end stack checks crossing all subsystems."""

import numpy as np
import pytest

from repro import (KEY_A, PT_A, MaskingPolicy, apply_policy, ciphertext_of,
                   compile_des, compile_source, des_run, encrypt_block,
                   run_to_halt)
from repro.programs.des_source import DesProgramSpec


def test_public_api_quickstart():
    """The README quickstart must work verbatim."""
    compiled = compile_des(DesProgramSpec(rounds=1), masking="selective")
    run = des_run(compiled.program, KEY_A, PT_A)
    assert run.total_uj > 0
    assert run.cycles > 0


def test_compile_source_to_execution():
    compiled = compile_source("""
    secure int key[4];
    int out;
    out = (key[0] << 3) | (key[1] << 2) | (key[2] << 1) | key[3];
    """)
    cpu = run_to_halt(compiled.program, inputs={"key": [1, 0, 0, 1]})
    assert cpu.read_symbol_words("out", 1) == [0b1001]
    assert any(ins.secure for ins in compiled.program.text)


def test_all_four_policies_same_ciphertext():
    spec = DesProgramSpec(rounds=2)
    base = compile_des(spec, masking="none")
    expected = encrypt_block(PT_A, KEY_A, rounds=2)
    programs = [
        base.program,
        compile_des(spec, masking="selective").program,
        compile_des(spec, masking="annotate-only").program,
        apply_policy(base.program, MaskingPolicy.ALL_LOADS_STORES),
        apply_policy(base.program, MaskingPolicy.ALL),
    ]
    for program in programs:
        assert ciphertext_of(des_run(program, KEY_A, PT_A).cpu) == expected


def test_policy_energy_ordering():
    """none < selective < all-loads-stores < all, on the same workload."""
    spec = DesProgramSpec(rounds=1)
    base = compile_des(spec, masking="none")
    runs = {
        "none": des_run(base.program, KEY_A, PT_A),
        "selective": des_run(compile_des(spec, masking="selective").program,
                             KEY_A, PT_A),
        "naive": des_run(apply_policy(base.program,
                                      MaskingPolicy.ALL_LOADS_STORES),
                         KEY_A, PT_A),
        "all": des_run(apply_policy(base.program, MaskingPolicy.ALL),
                       KEY_A, PT_A),
    }
    totals = {name: run.total_uj for name, run in runs.items()}
    assert totals["none"] < totals["selective"] < totals["naive"] \
        < totals["all"]
    # All cycle-aligned.
    assert len({run.cycles for run in runs.values()}) == 1


def test_annotate_only_between_none_and_selective():
    spec = DesProgramSpec(rounds=1)
    energies = {}
    for masking in ("none", "annotate-only", "selective"):
        compiled = compile_des(spec, masking=masking)
        energies[masking] = des_run(compiled.program, KEY_A, PT_A).total_uj
    assert energies["none"] < energies["annotate-only"] \
        < energies["selective"]


def test_trace_phases_cover_run(round1_unmasked):
    from repro.programs import markers as mk

    run = des_run(round1_unmasked.program, KEY_A, PT_A)
    trace = run.trace
    ip = trace.phase(mk.M_IP_START, mk.M_IP_END)
    keyperm = trace.phase(mk.M_KEYPERM_START, mk.M_KEYPERM_END)
    assert len(ip) > 100
    assert len(keyperm) > 100
    assert ip.total_pj + keyperm.total_pj < trace.total_pj


def test_energy_deterministic(round1_masked):
    a = des_run(round1_masked.program, KEY_A, PT_A)
    b = des_run(round1_masked.program, KEY_A, PT_A)
    assert np.array_equal(a.trace.energy, b.trace.energy)
