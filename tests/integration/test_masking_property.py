"""THE central theorem of the reproduction.

For the selectively-masked DES program, the per-cycle energy trace over the
entire secured region (first key use through to the final permutation) is
**identical** for any two keys — differential power analysis has literally
nothing to measure.  The unmasked program visibly leaks on the same inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.runner import des_run
from repro.programs.markers import M_FP_START, M_KEYPERM_START

PT = 0x0123456789ABCDEF
KEY = 0x133457799BBCDFF1

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def secure_region_diff(compiled, key_a, key_b, plaintext=PT):
    run_a = des_run(compiled.program, key_a, plaintext)
    run_b = des_run(compiled.program, key_b, plaintext)
    diff = run_a.trace.diff(run_b.trace)
    start = run_a.trace.marker_cycles(M_KEYPERM_START)[0]
    fp = run_a.trace.marker_cycles(M_FP_START)
    end = fp[0] if fp else len(run_a.trace)
    return diff[start:end]


def test_masked_flat_for_single_bit_key_change(round1_masked):
    window = secure_region_diff(round1_masked, KEY, KEY ^ (1 << 63))
    assert np.abs(window).max() == 0.0


def test_masked_flat_for_unrelated_keys(round1_masked):
    window = secure_region_diff(round1_masked, KEY, 0x0E329232EA6D0D73)
    assert np.abs(window).max() == 0.0


def test_masked_flat_extreme_keys(round1_masked):
    window = secure_region_diff(round1_masked, 0, 0xFFFF_FFFF_FFFF_FFFF)
    assert np.abs(window).max() == 0.0


def test_unmasked_leaks_single_key_bit(round1_unmasked):
    window = secure_region_diff(round1_unmasked, KEY, KEY ^ (1 << 63))
    assert np.abs(window).max() > 0
    assert np.count_nonzero(window) > 10


def test_unmasked_leak_grows_with_key_distance(round1_unmasked):
    small = secure_region_diff(round1_unmasked, KEY, KEY ^ (1 << 63))
    large = secure_region_diff(round1_unmasked, 0, 0xFFFF_FFFF_FFFF_FFFF)
    assert np.count_nonzero(large) > np.count_nonzero(small)


@settings(max_examples=4, deadline=None)
@given(key_a=U64, key_b=U64)
def test_masked_flat_property(round1_masked, key_a, key_b):
    """Random key pairs: the masked differential is always exactly zero."""
    window = secure_region_diff(round1_masked, key_a, key_b)
    assert np.abs(window).max() == 0.0


@settings(max_examples=3, deadline=None)
@given(pt_a=U64, pt_b=U64)
def test_masked_round_flat_for_plaintexts(round1_masked, pt_a, pt_b):
    """Plaintext changes leak only in the (deliberately insecure) initial
    permutation, never in the secured round body."""
    run_a = des_run(round1_masked.program, KEY, pt_a)
    run_b = des_run(round1_masked.program, KEY, pt_b)
    diff = run_a.trace.diff(run_b.trace)
    start = run_a.trace.marker_cycles(M_KEYPERM_START)[0]
    end = run_a.trace.marker_cycles(M_FP_START)[0]
    assert np.abs(diff[start:end]).max() == 0.0


def test_keyperm_masked_flat(keyperm_masked):
    window = secure_region_diff(keyperm_masked, KEY, ~KEY & ((1 << 64) - 1))
    assert np.abs(window).max() == 0.0


def test_keyperm_unmasked_leaks(keyperm_unmasked):
    window = secure_region_diff(keyperm_unmasked, KEY,
                                ~KEY & ((1 << 64) - 1))
    assert np.abs(window).max() > 0


def test_masked_cycles_identical_to_unmasked(round1_masked, round1_unmasked):
    """Masking changes energy, never timing."""
    masked = des_run(round1_masked.program, KEY, PT)
    unmasked = des_run(round1_unmasked.program, KEY, PT)
    assert masked.cycles == unmasked.cycles


def test_masked_costs_more_energy(round1_masked, round1_unmasked):
    masked = des_run(round1_masked.program, KEY, PT)
    unmasked = des_run(round1_unmasked.program, KEY, PT)
    assert masked.total_uj > unmasked.total_uj
    # ... but within the paper's regime (well under the 2x of full
    # dual-rail).
    assert masked.total_uj < 1.5 * unmasked.total_uj
