"""Chaos acceptance: SIGKILLed workers + SIGTERMed daemon, no lost work.

The ISSUE's acceptance scenario, against a real daemon subprocess:

* a worker process is SIGKILLed mid-request (``REPRO_FAULT_PLAN`` crash
  fault = ``os._exit(23)`` inside the pool worker) — the request retries
  and its result is **bit-identical** to the batch CLI path;
* the daemon is SIGTERMed with requests queued and in flight — the
  in-flight request finishes, queued requests end in typed ``shutdown``
  states, ``/healthz`` reports ``draining`` while it happens, and the
  exit is clean;
* every submitted request ends in **exactly one** terminal state, proven
  by replaying the durable journal;
* a restarted daemon on the same journal accounts for all of it via
  ``GET /v1/recovery``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.client import ServiceClient
from repro.service.errors import ServiceError
from repro.service.executor import execute_assessment
from repro.service.journal import replay
from repro.service.protocol import AssessRequest

from .conftest import pair_payload, population_payload

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spawn_daemon(tmp_path, fault_plan=None, extra_args=()):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan:
        env["REPRO_FAULT_PLAN"] = fault_plan
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "1", "--jobs", "2", "--retries", "2",
         "--queue-depth", "8", "--chunk-size", "4",
         "--drain-grace", "120",
         "--journal", str(tmp_path / "requests.jsonl"),
         "--manifest-out", str(tmp_path / "manifest.json"),
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, text=True, cwd=REPO_ROOT)
    listening = json.loads(process.stdout.readline())
    assert listening["event"] == "listening", listening
    client = ServiceClient(
        f"http://{listening['host']}:{listening['port']}")
    return process, client


def _terminate(process):
    if process.poll() is None:
        process.kill()
        process.wait(timeout=30)


def _poll_until(predicate, timeout_s, message):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for: {message}")


@pytest.mark.slow
def test_chaos_worker_sigkill_daemon_sigterm_accounts_for_everything(
        tmp_path):
    journal_path = tmp_path / "requests.jsonl"
    # Every request's first chunk SIGKILLs one pool worker on attempt 1
    # (os._exit deep in the worker); retries must absorb it.
    process, client = _spawn_daemon(tmp_path,
                                    fault_plan="trace[0]:1:crash")
    try:
        # -- phase A: worker SIGKILL mid-request, bit-identical result --
        result = client.assess(pair_payload(), timeout_s=300.0)
        local = execute_assessment(  # no faults here: the clean baseline
            AssessRequest.from_dict(pair_payload()))
        assert result["trace_digest"] == local["trace_digest"]
        assert result["verdict"] == local["verdict"]

        # -- phase B: SIGTERM with work queued and in flight ------------
        slow = client.submit(population_payload(n_traces=16))
        _poll_until(
            lambda: client.status(slow["id"])["state"] == "running",
            60.0, "slow request to start executing")
        queued = [client.submit(pair_payload())["id"] for _ in range(3)]
        process.send_signal(signal.SIGTERM)

        _poll_until(
            lambda: client.health()["status"] == "draining",
            30.0, "healthz to report draining")

        # While the in-flight request finishes, queued requests are
        # already terminal with typed shutdown errors — observable over
        # the still-answering HTTP API.
        for request_id in queued:
            document = client.status(request_id, wait_s=30.0)
            assert document["terminal"], document
            assert document["state"] == "shutdown"
            assert document["error"]["code"] == "shutting_down"
            assert document["error"]["retryable"]

        stdout, stderr = process.communicate(timeout=300)
        assert process.returncode == 0, stderr
        drained = json.loads(stdout.strip().splitlines()[-1])
        assert drained["event"] == "drained"
        assert drained["queued_failed_typed"] == 3
        assert drained["workers_alive"] == 0
    finally:
        _terminate(process)

    # -- invariant: every request ended in exactly one terminal state --
    report = replay(journal_path)
    assert report.interrupted == []
    assert report.completed == {"done": 2, "shutdown": 3}
    assert report.total_submitted == 5
    assert report.sessions == 1

    # The drain published the SLO manifest.
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["experiment_id"] == "service"
    assert "service_request_seconds" in manifest["metrics"]
    assert manifest["summary"]["terminal_done"] == 2
    assert manifest["summary"]["terminal_shutdown"] == 3

    # -- restart: the new daemon accounts for the previous session ----
    process, client = _spawn_daemon(tmp_path)
    try:
        recovery = client.recovery()
        assert recovery["completed"] == {"done": 2, "shutdown": 3}
        assert recovery["interrupted"] == []
        assert recovery["total_submitted"] == 5
        process.send_signal(signal.SIGTERM)
        process.communicate(timeout=120)
        assert process.returncode == 0
    finally:
        _terminate(process)


@pytest.mark.slow
def test_sigkilled_daemon_leaves_an_accountable_journal(tmp_path):
    """SIGKILL (no drain at all): the journal still accounts for every
    request — finished ones as terminal, the in-flight one as
    interrupted — and the restarted daemon reports it."""
    journal_path = tmp_path / "requests.jsonl"
    process, client = _spawn_daemon(tmp_path)
    try:
        client.assess(pair_payload(), timeout_s=300.0)
        victim = client.submit(population_payload(n_traces=16))
        _poll_until(
            lambda: client.status(victim["id"])["state"] == "running",
            60.0, "victim request to start executing")
        process.send_signal(signal.SIGKILL)
        process.communicate(timeout=60)
    finally:
        _terminate(process)

    report = replay(journal_path)
    assert report.completed == {"done": 1}
    assert report.interrupted == [victim["id"]]  # killed mid-flight
    assert report.total_submitted == 2

    process, client = _spawn_daemon(tmp_path)
    try:
        recovery = client.recovery()
        assert recovery["interrupted"] == [victim["id"]]
        # The kill did not poison the daemon: it still serves requests.
        result = client.assess(pair_payload(), timeout_s=300.0)
        assert result["n_traces"] == 2
        process.send_signal(signal.SIGTERM)
        process.communicate(timeout=120)
        assert process.returncode == 0
    finally:
        _terminate(process)


def test_client_survives_daemon_vanishing_mid_poll(tmp_path):
    """Transport failures surface as retryable typed errors, never raw
    socket tracebacks."""
    process, client = _spawn_daemon(tmp_path)
    try:
        assert client.health()["status"] == "ok"
    finally:
        process.send_signal(signal.SIGKILL)
        process.communicate(timeout=30)
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.retry_after_s is not None
