"""Durable request journal: replay accounting survives kills and rot."""

import json

from repro.service.journal import SCHEMA, RequestJournal, replay


def _journal_one_session(path, terminal_states):
    journal = RequestJournal(path)
    for index, state in enumerate(terminal_states):
        request_id = f"req-{index:06d}"
        journal.submitted(request_id, "client", "normal", "deadbeef")
        if state is not None:
            journal.terminal(request_id, state)
    journal.close()
    return journal


def test_replay_accounts_completed_and_interrupted(tmp_path):
    path = tmp_path / "requests.jsonl"
    _journal_one_session(path, ["done", "shutdown", None, "timed_out"])
    report = replay(path)
    assert report.completed == {"done": 1, "shutdown": 1, "timed_out": 1}
    assert report.interrupted == ["req-000002"]  # submitted, never ended
    assert report.total_submitted == 4
    assert report.sessions == 1
    assert report.malformed_lines == 0


def test_restart_surfaces_previous_sessions_interrupted(tmp_path):
    path = tmp_path / "requests.jsonl"
    _journal_one_session(path, ["done", None])
    second = RequestJournal(path)  # the restarted daemon
    assert second.recovery.interrupted == ["req-000001"]
    assert second.recovery.completed == {"done": 1}
    second.close()
    # The restart itself journals what it recovered, for forensics.
    lines = [json.loads(line)
             for line in path.read_text().splitlines()]
    starts = [line for line in lines if line["event"] == "session_start"]
    assert starts[-1]["recovered_interrupted"] == ["req-000001"]


def test_replay_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "requests.jsonl"
    _journal_one_session(path, ["done", "done"])
    payload = path.read_text()
    path.write_text(payload[:-15])  # SIGKILL mid-append: torn last line
    report = replay(path)
    assert report.malformed_lines == 1
    assert report.completed.get("done", 0) >= 1  # prefix still trusted


def test_replay_tolerates_corruption_and_foreign_lines(tmp_path):
    path = tmp_path / "requests.jsonl"
    _journal_one_session(path, ["done"])
    with path.open("a") as stream:
        stream.write("{not json at all\n")
        stream.write(json.dumps({"schema": "someone.else/v9",
                                 "event": "submitted", "id": "x"}) + "\n")
        stream.write(json.dumps({"schema": SCHEMA, "event": "terminal",
                                 "id": "req-x", "state": "exploded"})
                     + "\n")
    report = replay(path)
    assert report.malformed_lines == 3
    assert report.completed == {"done": 1}
    assert report.interrupted == []


def test_missing_journal_is_an_empty_report(tmp_path):
    report = replay(tmp_path / "never-written.jsonl")
    assert report.total_submitted == 0
    assert report.sessions == 0


def test_journal_on_dead_disk_degrades_without_raising(tmp_path, caplog):
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(path)
    journal._stream.close()  # simulate the disk dying under the daemon
    journal.submitted("req-1", "client", "normal", "k")  # must not raise
    journal.terminal("req-1", "done")
    journal.close()
    assert "journaling disabled" in caplog.text
