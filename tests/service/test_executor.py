"""execute_assessment: bit-identity, chunked cancellation, typed failures."""

import threading
import time

import pytest

from repro.harness.engine import CompileCache
from repro.service.errors import DeadlineExceeded, ShuttingDown
from repro.service.executor import (CRASH_ERROR_TYPES, ExecutionFailed,
                                    execute_assessment)
from repro.service.protocol import AssessRequest

from .conftest import pair_payload, population_payload


def _request(payload: dict) -> AssessRequest:
    return AssessRequest.from_dict(payload)


def test_pair_assessment_is_deterministic_and_complete(tmp_path):
    cache = CompileCache(directory=tmp_path)
    result = execute_assessment(_request(pair_payload()), cache=cache)
    again = execute_assessment(_request(pair_payload()), cache=cache)
    assert result["trace_digest"] == again["trace_digest"]
    assert result["n_traces"] == 2
    assert result["verdict"]["mode"] == "pair"
    assert "passed" in result["verdict"]
    assert result["cache_hit"] is False and again["cache_hit"] is True
    assert sum(result["engines"].values()) == 2


def test_population_assessment_partitions_and_judges(tmp_path):
    cache = CompileCache(directory=tmp_path)
    result = execute_assessment(
        _request(population_payload(n_traces=4)), cache=cache)
    assert result["n_traces"] == 4
    assert result["verdict"]["mode"] == "population"


def test_chunking_does_not_change_the_digest(tmp_path):
    """The cancellation granularity must be invisible in the results."""
    cache = CompileCache(directory=tmp_path)
    request = _request(population_payload(n_traces=4))
    whole = execute_assessment(request, cache=cache, chunk_size=16)
    seen = []
    chunked = execute_assessment(request, cache=cache, chunk_size=1,
                                 on_chunk=lambda done, total:
                                 seen.append((done, total)))
    assert chunked["trace_digest"] == whole["trace_digest"]
    assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


def test_noise_seeds_match_collect_traces_convention(tmp_path):
    """Structural bit-identity: the service builds the same jobs as the
    batch attack path (noise_seed = index + 1), so noisy requests are
    reproducible too."""
    cache = CompileCache(directory=tmp_path)
    request = _request(pair_payload(noise_sigma=0.5))
    first = execute_assessment(request, cache=cache)
    second = execute_assessment(request, cache=cache)
    assert first["trace_digest"] == second["trace_digest"]
    assert first["trace_digest"] != execute_assessment(
        _request(pair_payload()), cache=cache)["trace_digest"]


def test_expired_deadline_raises_typed_error_before_work(tmp_path):
    cache = CompileCache(directory=tmp_path)
    with pytest.raises(DeadlineExceeded, match="0/2"):
        execute_assessment(_request(pair_payload()), cache=cache,
                           deadline_monotonic=time.monotonic() - 1.0)


def test_cancel_event_raises_typed_shutdown_between_chunks(tmp_path):
    cache = CompileCache(directory=tmp_path)
    cancel = threading.Event()
    seen = []

    def cancel_after_first_chunk(done, total):
        seen.append(done)
        cancel.set()

    with pytest.raises(ShuttingDown, match="1/4"):
        execute_assessment(_request(population_payload(n_traces=4)),
                           cache=cache, chunk_size=1, cancel=cancel,
                           on_chunk=cancel_after_first_chunk)
    assert seen == [1]  # exactly one chunk ran after the cancel request


def test_job_failures_surface_as_typed_execution_failure(
        tmp_path, monkeypatch):
    from repro.harness.resilience import FAULT_PLAN_ENV

    cache = CompileCache(directory=tmp_path)
    monkeypatch.setenv(FAULT_PLAN_ENV, "trace[1]:*:raise")
    with pytest.raises(ExecutionFailed) as excinfo:
        execute_assessment(_request(pair_payload()), cache=cache,
                           retries=1)
    assert excinfo.value.http_status == 500
    (failure,) = excinfo.value.failures
    assert failure.error_type == "FaultInjected"
    assert failure.attempts == 2
    assert not excinfo.value.crashed_workers  # honest failure: no breaker


def test_crash_error_types_feed_the_breaker():
    from repro.harness.resilience import JobFailure

    crash = ExecutionFailed("boom", [JobFailure(
        label="trace[0]", index=0, error_type="WorkerCrash",
        message="pool broke", attempts=3)])
    assert crash.crashed_workers
    assert "WorkerCrash" in CRASH_ERROR_TYPES
