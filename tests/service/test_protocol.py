"""Request validation, wire form, lifecycle records, error taxonomy."""

import pytest

from repro.service.errors import (ERROR_TYPES, AdmissionRejected,
                                  DeadlineExceeded, InvalidRequest,
                                  ProgramQuarantined, ServiceError,
                                  ShuttingDown, error_from_dict)
from repro.service.protocol import (DONE, SHUTDOWN, TERMINAL_STATES,
                                    AssessRequest, RequestRecord)


# -- AssessRequest -----------------------------------------------------------


def test_request_roundtrips_through_wire_form():
    request = AssessRequest.from_dict({
        "mode": "pair", "rounds": 2, "key": "0x133457799BBCDFF1",
        "noise_sigma": 0.5, "client": "alice", "priority": "high",
        "deadline_s": 30})
    clone = AssessRequest.from_dict(request.to_dict())
    assert clone == request
    assert clone.key == 0x133457799BBCDFF1
    assert clone.deadline_s == 30.0


def test_request_program_key_is_stable_and_variant_specific():
    a = AssessRequest.from_dict({"rounds": 2})
    assert a.program_key() == AssessRequest.from_dict(
        {"rounds": 2}).program_key()
    assert a.program_key() != AssessRequest.from_dict(
        {"rounds": 3}).program_key()
    assert a.program_key() != AssessRequest.from_dict(
        {"rounds": 2, "masking": "none"}).program_key()
    # Scheduling fields are not part of the program identity.
    assert a.program_key() == AssessRequest.from_dict(
        {"rounds": 2, "client": "bob", "priority": "low"}).program_key()


@pytest.mark.parametrize("payload, match", [
    ({"mode": "differential"}, "mode"),
    ({"cipher": "aes"}, "cipher"),
    ({"masking": "all"}, "masking"),
    ({"policy": "no-such-policy"}, "policy"),
    ({"rounds": 0}, "rounds"),
    ({"rounds": 17}, "rounds"),
    ({"n_traces": 0}, "n_traces"),
    ({"n_traces": 1 << 20}, "n_traces"),
    ({"mode": "population", "n_traces": 1}, "population"),
    ({"noise_sigma": -0.1}, "noise_sigma"),
    ({"engine": "warp"}, "engine"),
    ({"key": "not hex"}, "key"),
    ({"key": 1 << 64}, "64-bit"),
    ({"key": True}, "64-bit"),
    ({"priority": "urgent"}, "priority"),
    ({"deadline_s": 0}, "deadline_s"),
    ({"deadline_s": -1}, "deadline_s"),
    ({"client": ""}, "client"),
    ({"max_cycles": 0}, "max_cycles"),
    ({"frobnicate": 1}, "unknown request fields"),
    ("just a string", "JSON object"),
])
def test_request_validation_rejects_bad_payloads(payload, match):
    with pytest.raises(InvalidRequest, match=match):
        AssessRequest.from_dict(payload)


def test_invalid_request_is_a_400_and_not_retryable():
    error = InvalidRequest("nope")
    assert error.http_status == 400
    assert not error.retryable


# -- RequestRecord lifecycle -------------------------------------------------


def test_record_finish_is_idempotent_first_writer_wins():
    record = RequestRecord(request=AssessRequest.from_dict({"rounds": 2}))
    assert not record.terminal.is_set()
    record.finish(DONE, result={"ok": True})
    record.finish(SHUTDOWN, error=ShuttingDown("late drain"))  # no-op
    assert record.state == DONE
    assert record.result == {"ok": True}
    assert record.error is None
    assert record.terminal.is_set()
    assert record.latency_s is not None and record.latency_s >= 0


def test_record_rejects_non_terminal_finish_states():
    record = RequestRecord(request=AssessRequest.from_dict({"rounds": 2}))
    with pytest.raises(AssertionError):
        record.finish("running")
    assert "running" not in TERMINAL_STATES


def test_record_wire_form_carries_error_taxonomy():
    record = RequestRecord(request=AssessRequest.from_dict({"rounds": 2}))
    record.finish("timed_out",
                  error=DeadlineExceeded("too slow", retry_after_s=2.5))
    document = record.to_dict()
    assert document["state"] == "timed_out" and document["terminal"]
    assert document["error"]["code"] == "deadline_exceeded"
    assert document["error"]["retry_after_s"] == 2.5
    assert document["request"]["rounds"] == 2
    assert "request" not in record.to_dict(include_request=False)


def test_record_ids_are_unique():
    requests = [RequestRecord(request=AssessRequest.from_dict({}))
                for _ in range(5)]
    assert len({record.id for record in requests}) == 5


# -- error taxonomy ----------------------------------------------------------


@pytest.mark.parametrize("cls", sorted(ERROR_TYPES.values(),
                                       key=lambda cls: cls.code))
def test_every_error_roundtrips_through_its_wire_form(cls):
    error = cls("something happened", retry_after_s=3.0)
    clone = error_from_dict(error.to_dict())
    assert type(clone) is cls
    assert clone.message == "something happened"
    assert clone.retry_after_s == 3.0
    assert clone.http_status == cls.http_status


def test_unknown_error_code_degrades_to_base_class():
    clone = error_from_dict({"error": {"code": "flux_capacitor",
                                       "message": "new failure mode"}})
    assert type(clone) is ServiceError
    assert clone.message == "new failure mode"


def test_retryable_statuses_match_semantics():
    assert AdmissionRejected("full").retryable
    assert ProgramQuarantined("bad").retryable
    assert ShuttingDown("bye").retryable
    assert not DeadlineExceeded("late").retryable
