"""Admission queue: bounds, priority, fairness, quotas, drain."""

import threading

import pytest

from repro.service.errors import (AdmissionRejected, QuotaExceeded,
                                  ShuttingDown)
from repro.service.protocol import AssessRequest, RequestRecord
from repro.service.queue import (MAX_TRACKED_TENANTS, AdmissionQueue,
                                 RateLimiter, TokenBucket)


def _record(client="c", priority="normal") -> RequestRecord:
    return RequestRecord(request=AssessRequest.from_dict(
        {"rounds": 2, "client": client, "priority": priority}))


def test_fifo_within_a_single_client():
    queue = AdmissionQueue(max_depth=8)
    records = [_record() for _ in range(3)]
    for record in records:
        queue.put(record)
    assert [queue.take(0) for _ in range(3)] == records
    assert queue.take(0) is None  # empty: immediate None, not a hang


def test_priority_buckets_are_strictly_ordered():
    queue = AdmissionQueue(max_depth=8)
    low = _record(priority="low")
    normal = _record(priority="normal")
    high = _record(priority="high")
    for record in (low, normal, high):
        queue.put(record)
    assert queue.take(0) is high
    assert queue.take(0) is normal
    assert queue.take(0) is low


def test_clients_are_served_round_robin_not_starved():
    """A chatty client's backlog cannot starve another client: B's one
    request waits behind at most one of A's, not all four."""
    queue = AdmissionQueue(max_depth=16)
    chatty = [_record(client="A") for _ in range(4)]
    for record in chatty:
        queue.put(record)
    lonely = _record(client="B")
    queue.put(lonely)
    order = [queue.take(0) for _ in range(5)]
    assert order[0] is chatty[0]
    assert order[1] is lonely           # B served after ONE of A's
    assert order[2:] == chatty[1:]


def test_overflow_is_a_typed_429_with_retry_hint():
    queue = AdmissionQueue(max_depth=2)
    queue.put(_record())
    queue.put(_record())
    with pytest.raises(AdmissionRejected) as excinfo:
        queue.put(_record())
    assert excinfo.value.http_status == 429
    assert excinfo.value.retryable
    assert excinfo.value.retry_after_s >= 1.0
    assert queue.depth == 2  # the rejected request was never queued


def test_retry_hint_tracks_observed_service_times():
    queue = AdmissionQueue(max_depth=1)
    assert queue.retry_after_hint() == 1.0  # floor before any data
    for _ in range(30):
        queue.observe_service_time(10.0)
    assert 5.0 < queue.retry_after_hint() <= 10.0


def test_closed_queue_rejects_puts_and_drains_remainder():
    queue = AdmissionQueue(max_depth=8)
    stranded = [_record(), _record(priority="high")]
    for record in stranded:
        queue.put(record)
    remaining = queue.drain()
    assert {record.id for record in remaining} \
        == {record.id for record in stranded}
    assert queue.depth == 0
    with pytest.raises(ShuttingDown):
        queue.put(_record())
    assert queue.take(0) is None  # closed + empty: consumers exit


def test_take_wakes_a_blocked_consumer_on_put():
    queue = AdmissionQueue(max_depth=4)
    taken = []
    consumer = threading.Thread(
        target=lambda: taken.append(queue.take(timeout=5.0)))
    consumer.start()
    record = _record()
    queue.put(record)
    consumer.join(timeout=5.0)
    assert taken == [record]


def test_close_wakes_blocked_consumers():
    queue = AdmissionQueue(max_depth=4)
    taken = []
    consumer = threading.Thread(
        target=lambda: taken.append(queue.take(timeout=30.0)))
    consumer.start()
    queue.close()
    consumer.join(timeout=5.0)
    assert not consumer.is_alive()
    assert taken == [None]


def test_invalid_depth_rejected():
    with pytest.raises(ValueError, match="max_depth"):
        AdmissionQueue(max_depth=0)


# -- per-tenant quotas ------------------------------------------------------


def test_token_bucket_refills_at_rate_and_caps_at_burst():
    bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0
    wait = bucket.try_take(0.0)          # empty: wait for 1 token @ 2/s
    assert wait == pytest.approx(0.5)
    assert bucket.try_take(0.6) == 0.0   # refilled past one token
    assert bucket.try_take(100.0) == 0.0  # long idle caps at burst,
    assert bucket.try_take(100.0) == 0.0  # not rate * elapsed
    assert bucket.try_take(100.0) > 0.0


def test_rate_limiter_isolates_tenants():
    clock = [0.0]
    limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: clock[0])
    assert limiter.admit("a") == 0.0
    assert limiter.admit("a") > 0.0      # a's budget is spent...
    assert limiter.admit("b") == 0.0     # ...b's is untouched
    clock[0] = 1.0
    assert limiter.admit("a") == 0.0     # refilled


def test_rate_limiter_bounds_tracked_tenants():
    clock = [0.0]
    limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: clock[0])
    for index in range(MAX_TRACKED_TENANTS + 10):
        limiter.admit(f"tenant-{index}")
    assert len(limiter._buckets) == MAX_TRACKED_TENANTS
    # The evicted (oldest) tenant starts over with a full bucket
    # instead of leaking memory per tenant forever.
    assert limiter.admit("tenant-0") == 0.0


def test_quota_429_is_typed_and_distinct_from_backpressure():
    clock = [0.0]
    queue = AdmissionQueue(max_depth=8, clock=lambda: clock[0],
                           quota_rps=1.0, quota_burst=1.0)
    queue.put(_record(client="greedy"))
    with pytest.raises(QuotaExceeded) as excinfo:
        queue.put(_record(client="greedy"))
    error = excinfo.value
    assert error.code == "quota_exceeded"
    assert error.http_status == 429 and error.retryable
    assert error.retry_after_s == pytest.approx(1.0)
    assert isinstance(error, AdmissionRejected)  # generic 429 handling
    assert "greedy" in error.message
    # Queue depth was untouched by the quota rejection, and another
    # tenant still gets in: the service has capacity, the tenant's
    # budget is what ran out.
    assert queue.depth == 1
    queue.put(_record(client="patient"))
    assert queue.depth == 2
    clock[0] = 1.5
    queue.put(_record(client="greedy"))  # token accrued: admitted


def test_quota_checked_before_depth_so_full_queue_reports_quota_first():
    queue = AdmissionQueue(max_depth=1, quota_rps=100.0, quota_burst=1.0)
    queue.put(_record(client="c"))
    with pytest.raises(QuotaExceeded):
        queue.put(_record(client="c"))   # quota, not queue-full
    with pytest.raises(AdmissionRejected) as excinfo:
        queue.put(_record(client="other"))
    assert excinfo.value.code == "admission_rejected"


def test_no_quota_configured_means_no_limiter():
    queue = AdmissionQueue(max_depth=4)
    assert queue.limiter is None
    for _ in range(4):
        queue.put(_record(client="burst"))
