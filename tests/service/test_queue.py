"""Admission queue: bounds, priority, per-client fairness, drain."""

import threading

import pytest

from repro.service.errors import AdmissionRejected, ShuttingDown
from repro.service.protocol import AssessRequest, RequestRecord
from repro.service.queue import AdmissionQueue


def _record(client="c", priority="normal") -> RequestRecord:
    return RequestRecord(request=AssessRequest.from_dict(
        {"rounds": 2, "client": client, "priority": priority}))


def test_fifo_within_a_single_client():
    queue = AdmissionQueue(max_depth=8)
    records = [_record() for _ in range(3)]
    for record in records:
        queue.put(record)
    assert [queue.take(0) for _ in range(3)] == records
    assert queue.take(0) is None  # empty: immediate None, not a hang


def test_priority_buckets_are_strictly_ordered():
    queue = AdmissionQueue(max_depth=8)
    low = _record(priority="low")
    normal = _record(priority="normal")
    high = _record(priority="high")
    for record in (low, normal, high):
        queue.put(record)
    assert queue.take(0) is high
    assert queue.take(0) is normal
    assert queue.take(0) is low


def test_clients_are_served_round_robin_not_starved():
    """A chatty client's backlog cannot starve another client: B's one
    request waits behind at most one of A's, not all four."""
    queue = AdmissionQueue(max_depth=16)
    chatty = [_record(client="A") for _ in range(4)]
    for record in chatty:
        queue.put(record)
    lonely = _record(client="B")
    queue.put(lonely)
    order = [queue.take(0) for _ in range(5)]
    assert order[0] is chatty[0]
    assert order[1] is lonely           # B served after ONE of A's
    assert order[2:] == chatty[1:]


def test_overflow_is_a_typed_429_with_retry_hint():
    queue = AdmissionQueue(max_depth=2)
    queue.put(_record())
    queue.put(_record())
    with pytest.raises(AdmissionRejected) as excinfo:
        queue.put(_record())
    assert excinfo.value.http_status == 429
    assert excinfo.value.retryable
    assert excinfo.value.retry_after_s >= 1.0
    assert queue.depth == 2  # the rejected request was never queued


def test_retry_hint_tracks_observed_service_times():
    queue = AdmissionQueue(max_depth=1)
    assert queue.retry_after_hint() == 1.0  # floor before any data
    for _ in range(30):
        queue.observe_service_time(10.0)
    assert 5.0 < queue.retry_after_hint() <= 10.0


def test_closed_queue_rejects_puts_and_drains_remainder():
    queue = AdmissionQueue(max_depth=8)
    stranded = [_record(), _record(priority="high")]
    for record in stranded:
        queue.put(record)
    remaining = queue.drain()
    assert {record.id for record in remaining} \
        == {record.id for record in stranded}
    assert queue.depth == 0
    with pytest.raises(ShuttingDown):
        queue.put(_record())
    assert queue.take(0) is None  # closed + empty: consumers exit


def test_take_wakes_a_blocked_consumer_on_put():
    queue = AdmissionQueue(max_depth=4)
    taken = []
    consumer = threading.Thread(
        target=lambda: taken.append(queue.take(timeout=5.0)))
    consumer.start()
    record = _record()
    queue.put(record)
    consumer.join(timeout=5.0)
    assert taken == [record]


def test_close_wakes_blocked_consumers():
    queue = AdmissionQueue(max_depth=4)
    taken = []
    consumer = threading.Thread(
        target=lambda: taken.append(queue.take(timeout=30.0)))
    consumer.start()
    queue.close()
    consumer.join(timeout=5.0)
    assert not consumer.is_alive()
    assert taken == [None]


def test_invalid_depth_rejected():
    with pytest.raises(ValueError, match="max_depth"):
        AdmissionQueue(max_depth=0)
