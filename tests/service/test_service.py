"""LeakageService core: lifecycle, admission, deadlines, drain, metrics."""

import time

import pytest

from repro.service.errors import (AdmissionRejected, RequestNotFound,
                                  ShuttingDown)
from repro.service.executor import execute_assessment
from repro.service.protocol import (DONE, SHUTDOWN, TIMED_OUT,
                                    AssessRequest)

from .conftest import pair_payload, population_payload


def _wait_running(record, timeout=10.0):
    deadline = time.monotonic() + timeout
    while record.state == "queued" and time.monotonic() < deadline:
        time.sleep(0.005)
    assert record.state != "queued"


def test_request_completes_bit_identical_to_local_execution(make_service):
    service = make_service(workers=1)
    record = service.submit(pair_payload())
    assert record.wait(60.0)
    assert record.state == DONE
    local = execute_assessment(AssessRequest.from_dict(pair_payload()))
    assert record.result["trace_digest"] == local["trace_digest"]
    assert record.result["verdict"] == local["verdict"]


def test_queue_overflow_is_typed_and_request_never_tracked(make_service):
    service = make_service(workers=1, queue_depth=1)
    blocker = service.submit(population_payload(n_traces=8))
    _wait_running(blocker)               # worker busy, queue empty
    queued = service.submit(pair_payload())
    with pytest.raises(AdmissionRejected) as excinfo:
        service.submit(pair_payload())
    assert excinfo.value.retry_after_s >= 1.0
    # The rejection itself is a terminal, queryable lifecycle record.
    rejected = [record for record in service.records()
                if record.state == "rejected"]
    assert len(rejected) == 1
    assert rejected[0].error.code == "admission_rejected"
    assert blocker.wait(60.0) and queued.wait(60.0)
    assert blocker.state == DONE and queued.state == DONE


def test_deadline_missed_while_queued_is_a_typed_timeout(make_service):
    service = make_service(workers=1)
    blocker = service.submit(population_payload(n_traces=8))
    _wait_running(blocker)
    doomed = service.submit(pair_payload(deadline_s=0.01))
    assert doomed.wait(60.0)
    assert doomed.state == TIMED_OUT
    assert doomed.error.code == "deadline_exceeded"
    assert "never executed" in doomed.error.message
    assert blocker.wait(60.0) and blocker.state == DONE


def test_unknown_request_id_raises_not_found(make_service):
    service = make_service(workers=1)
    with pytest.raises(RequestNotFound):
        service.get("req-999999")


def test_drain_finishes_inflight_and_fails_queued_typed(make_service):
    service = make_service(workers=1)
    inflight = service.submit(population_payload(n_traces=8))
    _wait_running(inflight)
    queued = [service.submit(pair_payload()) for _ in range(2)]
    summary = service.drain(grace_s=60.0)
    assert summary["drained"]
    assert summary["queued_failed_typed"] == 2
    assert summary["workers_alive"] == 0
    # The shared warm pool must drain deterministically with the
    # service: no worker process may survive the drain.
    assert summary.get("pool", {}).get("stranded_workers", 0) == 0
    assert inflight.state == DONE      # in-flight work finished
    for record in queued:
        assert record.state == SHUTDOWN
        assert record.error.code == "shutting_down"
        assert record.error.retryable
    with pytest.raises(ShuttingDown):  # drained service admits nothing
        service.submit(pair_payload())
    # Acceptance invariant: every submitted request is terminal, once.
    states = [record.state for record in service.records()]
    assert all(state in ("done", "shutdown") for state in states)
    assert service.drain() == summary  # idempotent


def test_health_and_readiness_reflect_drain(make_service):
    service = make_service(workers=2)
    ready, reason = service.ready()
    assert ready and reason == "ok"
    health = service.health()
    assert health["status"] == "ok"
    assert health["workers_alive"] == 2
    assert health["queue_capacity"] == 64
    service.drain(grace_s=30.0)
    ready, reason = service.ready()
    assert not ready and reason == "draining"
    assert service.health()["status"] == "draining"


def test_slo_metrics_published_after_requests(make_service):
    service = make_service(workers=1)
    record = service.submit(pair_payload())
    assert record.wait(60.0)
    snapshot = service.metrics_snapshot()
    for name in ("service_request_seconds", "service_queue_seconds",
                 "service_queue_depth", "service_inflight",
                 "service_goodput_traces_total", "service_breaker_open",
                 "service_terminal_total", "service_requests_total"):
        assert name in snapshot, name
    latency = snapshot["service_request_seconds"]
    assert latency["kind"] == "histogram"
    (series,) = [entry for entry in latency["series"]
                 if entry["labels"].get("outcome") == "done"]
    assert series["count"] == 1
    assert series["p50"] is not None  # the SLO quantiles are published
    assert "p95" in series and "p99" in series


def test_journal_accounts_for_the_whole_session(make_service, tmp_path):
    from repro.service.journal import replay

    journal_path = tmp_path / "requests.jsonl"
    service = make_service(workers=1, journal=journal_path)
    done = service.submit(pair_payload())
    assert done.wait(60.0)
    service.drain(grace_s=30.0)
    report = replay(journal_path)
    assert report.completed == {"done": 1}
    assert report.interrupted == []
    # A restarted service surfaces the previous session via /v1/recovery.
    second = make_service(workers=1, journal=journal_path)
    recovery = second.recovery_report()
    assert recovery["completed"] == {"done": 1}
    assert recovery["sessions"] == 1


def test_manifest_written_on_drain(make_service, tmp_path):
    import json

    manifest_path = tmp_path / "service-manifest.json"
    service = make_service(workers=1, manifest_out=manifest_path)
    record = service.submit(pair_payload())
    assert record.wait(60.0)
    summary = service.drain(grace_s=30.0)
    assert summary["manifest"] == str(manifest_path)
    manifest = json.loads(manifest_path.read_text())
    assert manifest["experiment_id"] == "service"
    assert manifest["summary"]["terminal_done"] == 1
    assert "service_request_seconds" in manifest["metrics"]


@pytest.mark.slow
def test_worker_crashes_trip_breaker_and_quarantine_program(
        make_service, monkeypatch):
    """A program variant that SIGKILLs pool workers gets quarantined
    after `threshold` crashing requests; other variants keep serving."""
    from repro.harness.resilience import FAULT_PLAN_ENV

    from repro.service.errors import ProgramQuarantined

    monkeypatch.setenv(FAULT_PLAN_ENV, "trace[0]:*:crash")
    service = make_service(workers=1, jobs=2, retries=1,
                           breaker_threshold=1, breaker_cooldown_s=300.0)
    crasher = service.submit(pair_payload())
    assert crasher.wait(120.0)
    assert crasher.state == "failed"
    assert crasher.error.code == "request_failed"
    with pytest.raises(ProgramQuarantined) as excinfo:
        service.submit(pair_payload())
    assert excinfo.value.retry_after_s is not None
    health = service.health()
    assert health["breaker_open"] == 1
    snapshot = service.metrics_snapshot()
    assert "service_worker_crashes_total" in snapshot
    assert "service_breaker_trips_total" in snapshot
    assert "service_rejections_total" in snapshot
