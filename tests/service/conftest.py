"""Shared fixtures for the service suite.

All requests here use ``rounds=2`` DES variants: small enough that one
trace simulates in well under 100 ms (warm compile cache), large enough
that a request is real work the scheduler can observe in flight.
"""

import pytest

from repro.harness.resilience import FAULT_PLAN_ENV
from repro.service.core import LeakageService, ServiceConfig


def pair_payload(**overrides) -> dict:
    """A fast, fully-deterministic pair-mode request payload."""
    payload = {"mode": "pair", "rounds": 2, "client": "test"}
    payload.update(overrides)
    return payload


def population_payload(n_traces=4, **overrides) -> dict:
    payload = {"mode": "population", "rounds": 2, "n_traces": n_traces,
               "seed": 2003, "client": "test"}
    payload.update(overrides)
    return payload


@pytest.fixture(autouse=True)
def no_fault_plan(monkeypatch):
    """Service tests must not inherit a fault plan from the environment
    (a crash fault executing in an in-thread job would kill pytest)."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


@pytest.fixture
def make_service():
    """Factory for in-process services, drained at teardown."""
    created = []

    def factory(**config_kwargs) -> LeakageService:
        service = LeakageService(ServiceConfig(**config_kwargs))
        created.append(service)
        return service

    yield factory
    for service in created:
        service.drain(grace_s=30.0)
