"""Circuit breaker: trip threshold, cool-down, half-open probe discipline.

Driven with a fake clock so every state transition is deterministic.
"""

import pytest

from repro.service.breaker import CircuitBreaker
from repro.service.errors import ProgramQuarantined


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown_s=30.0, clock=clock)


def test_closed_breaker_admits_and_success_resets_count(breaker):
    breaker.admit("prog")
    breaker.record_crash("prog")
    breaker.record_crash("prog")
    breaker.record_success("prog")  # consecutive count resets
    breaker.record_crash("prog")
    breaker.record_crash("prog")
    breaker.admit("prog")           # still only 2 consecutive: closed
    assert breaker.open_count() == 0


def test_threshold_consecutive_crashes_trip_the_breaker(breaker):
    assert not breaker.record_crash("prog")
    assert not breaker.record_crash("prog")
    assert breaker.record_crash("prog")  # third: trips
    assert breaker.open_count() == 1
    with pytest.raises(ProgramQuarantined) as excinfo:
        breaker.admit("prog")
    assert excinfo.value.http_status == 503
    assert excinfo.value.retryable
    assert excinfo.value.retry_after_s is not None
    breaker.admit("other-prog")  # quarantine is per program variant


def test_half_open_admits_exactly_one_probe(breaker, clock):
    for _ in range(3):
        breaker.record_crash("prog")
    clock.advance(31.0)
    breaker.admit("prog")  # the probe goes through
    with pytest.raises(ProgramQuarantined):
        breaker.admit("prog")  # everyone else still waits on the verdict


def test_probe_success_closes_probe_crash_reopens(breaker, clock):
    for _ in range(3):
        breaker.record_crash("prog")
    clock.advance(31.0)
    breaker.admit("prog")
    breaker.record_success("prog")
    breaker.admit("prog")  # closed again, normal service
    assert breaker.open_count() == 0

    for _ in range(3):
        breaker.record_crash("prog")
    clock.advance(31.0)
    breaker.admit("prog")
    assert breaker.record_crash("prog")  # probe crash: fresh trip
    assert breaker.open_count() == 1
    clock.advance(15.0)
    with pytest.raises(ProgramQuarantined):  # cool-down restarted
        breaker.admit("prog")


def test_snapshot_reports_state_and_remaining_cooldown(breaker, clock):
    for _ in range(3):
        breaker.record_crash("bad")
    breaker.record_crash("fine")
    clock.advance(10.0)
    snapshot = {entry.key: entry for entry in breaker.snapshot()}
    assert snapshot["bad"].state == "open"
    assert snapshot["bad"].trips == 1
    assert snapshot["bad"].retry_after_s == pytest.approx(20.0)
    assert snapshot["fine"].state == "closed"
    assert snapshot["fine"].retry_after_s is None


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError, match="threshold"):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError, match="cooldown"):
        CircuitBreaker(cooldown_s=0)
