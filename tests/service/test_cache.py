"""Verdict cache: keys, LRU, single-flight, service wiring, journal replay.

The acceptance gate mirrors the batch engine's: a cache hit must be
**bit-identical** to a cold run (same trace digest, same verdict), and a
restarted daemon's journal accounting must fold cached completions
exactly like simulated ones — one submitted + one terminal frame each,
never double-counted.
"""

import json
import threading
import time

from repro.service.cache import VerdictCache, verdict_key
from repro.service.core import LeakageService, ServiceConfig
from repro.service.protocol import DONE, AssessRequest

from .conftest import pair_payload, population_payload


def _request(**overrides) -> AssessRequest:
    return AssessRequest.from_dict(pair_payload(**overrides))


# -- key derivation ---------------------------------------------------------


def test_key_ignores_scheduling_and_observability_fields():
    base = _request()
    same = _request(client="someone-else", priority="high",
                    deadline_s=5.0, cache=False)
    assert verdict_key(base) == verdict_key(same)


def test_key_covers_trace_shaping_parameters():
    base = verdict_key(_request())
    assert verdict_key(_request(seed=999)) != base
    assert verdict_key(_request(noise_sigma=0.5)) != base
    assert verdict_key(_request(masking="none")) != base
    assert verdict_key(_request(rounds=4)) != base


def test_key_prefix_is_the_program_key_hash():
    request = _request()
    prefix = verdict_key(request).split(":")[0]
    assert verdict_key(_request(seed=999)).startswith(prefix + ":")
    assert not verdict_key(_request(masking="none")).startswith(prefix)


# -- storage / LRU ----------------------------------------------------------


def test_hit_decodes_a_fresh_object_with_age_stamp():
    cache = VerdictCache(max_bytes=1 << 16)
    cache.put("k", {"verdict": {"passed": True}})
    first = cache.get("k")
    first["verdict"]["passed"] = False  # mutating a hit must not
    second = cache.get("k")             # corrupt the stored entry
    assert second["verdict"]["passed"] is True
    assert second["verdict_cache"]["hit"] is True
    assert second["verdict_cache"]["age_s"] >= 0.0


def test_lru_eviction_respects_byte_budget():
    document = {"payload": "x" * 64}
    size = len(json.dumps(document, sort_keys=True).encode())
    cache = VerdictCache(max_bytes=3 * size)
    for name in ("a", "b", "c"):
        assert cache.put(name, document) == 0
    cache.get("a")                      # refresh: "b" is now LRU
    assert cache.put("d", document) == 1
    assert cache.get("b") is None
    assert cache.get("a") is not None
    stats = cache.stats()
    assert stats["entries"] == 3
    assert stats["evictions"] == 1
    assert stats["bytes"] <= cache.max_bytes


def test_document_larger_than_budget_is_skipped_not_truncated():
    cache = VerdictCache(max_bytes=8)
    assert cache.put("k", {"payload": "x" * 64}) == 0
    assert cache.get("k") is None
    assert cache.stats()["uncacheable"] == 1


def test_invalidate_by_program_key_prefix():
    cache = VerdictCache(max_bytes=1 << 16)
    key_a = verdict_key(_request())
    key_b = verdict_key(_request(seed=999))          # same program
    key_other = verdict_key(_request(masking="none"))  # different program
    for key in (key_a, key_b, key_other):
        cache.put(key, {"verdict": "v"})
    assert cache.invalidate(_request().program_key()) == 2
    assert cache.get(key_a) is None and cache.get(key_b) is None
    assert cache.get(key_other) is not None
    assert cache.invalidate() == 1                   # drop everything
    assert cache.stats()["entries"] == 0


# -- single-flight ----------------------------------------------------------


def test_concurrent_identical_requests_coalesce_on_one_leader():
    cache = VerdictCache(max_bytes=1 << 16)
    outcome, leader_flight = cache.begin("k")
    assert outcome == "lead"
    joined = []

    def join():
        verb, flight = cache.begin("k")
        assert verb == "join"
        joined.append(cache.wait(flight, timeout=30.0))

    threads = [threading.Thread(target=join) for _ in range(3)]
    for thread in threads:
        thread.start()
    time.sleep(0.05)  # let the joiners block on the flight
    cache.complete("k", leader_flight, {"verdict": "computed-once"})
    for thread in threads:
        thread.join(30.0)
    assert [doc["verdict"] for doc in joined] == ["computed-once"] * 3
    stats = cache.stats()
    assert stats["misses"] == 1 and stats["coalesced"] == 3
    # After completion the entry is a plain hit, no flight left.
    verb, document = cache.begin("k")
    assert verb == "hit" and document["verdict"] == "computed-once"
    assert stats["inflight"] == 0 or cache.stats()["inflight"] == 0


def test_failed_leader_wakes_joiners_empty_handed():
    cache = VerdictCache(max_bytes=1 << 16)
    _, leader_flight = cache.begin("k")
    verb, flight = cache.begin("k")
    assert verb == "join"
    cache.abandon("k", leader_flight)
    assert cache.wait(flight, timeout=5.0) is None
    assert cache.stats()["coalesced_misses"] == 1
    assert cache.get("k") is None  # errors are never cached


# -- service wiring ---------------------------------------------------------


def test_repeat_submission_hits_cache_bit_identical(make_service):
    service = make_service(workers=1)
    cold = service.submit(pair_payload())
    assert cold.wait(60.0) and cold.state == DONE
    warm = service.submit(pair_payload())
    assert warm.wait(60.0) and warm.state == DONE
    assert warm.result["trace_digest"] == cold.result["trace_digest"]
    assert warm.result["verdict"] == cold.result["verdict"]
    assert warm.result["verdict_cache"]["hit"] is True
    assert "verdict_cache" not in (cold.result or {})
    stats = service.verdict_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    snapshot = service.metrics_snapshot()
    assert "verdict_cache_hits" in snapshot
    assert "verdict_cache_entries" in snapshot
    # The cached envelope belongs to *this* request, not the cold one.
    assert warm.result["request"]["client"] == "test"
    assert "verdict_cache_hit" in [mark["event"]
                                   for mark in warm.timeline]


def test_concurrent_identical_submissions_coalesce(make_service):
    service = make_service(workers=2)
    first = service.submit(population_payload(n_traces=8))
    second = service.submit(population_payload(n_traces=8))
    assert first.wait(120.0) and second.wait(120.0)
    assert first.state == DONE and second.state == DONE
    assert first.result["trace_digest"] == second.result["trace_digest"]
    stats = service.verdict_cache_stats()
    # Exactly one simulation ran; the other request either coalesced
    # onto it or (if it finished first) hit the stored entry.
    assert stats["misses"] == 1
    assert stats["hits"] + stats["coalesced"] >= 1


def test_cache_false_and_attribution_bypass_the_cache(make_service):
    service = make_service(workers=1)
    for payload in (pair_payload(cache=False),
                    pair_payload(cache=False),
                    pair_payload(attribution=True)):
        record = service.submit(payload)
        assert record.wait(60.0) and record.state == DONE
        assert "verdict_cache" not in record.result
    stats = service.verdict_cache_stats()
    assert stats["hits"] == 0 and stats["misses"] == 0
    assert stats["entries"] == 0


def test_disabled_cache_still_serves(make_service):
    service = make_service(workers=1, verdict_cache_bytes=0)
    record = service.submit(pair_payload())
    assert record.wait(60.0) and record.state == DONE
    assert service.verdict_cache_stats() is None
    assert service.invalidate_verdict_cache() == 0


def test_invalidation_forces_a_fresh_simulation(make_service):
    service = make_service(workers=1)
    cold = service.submit(pair_payload())
    assert cold.wait(60.0)
    program_key = AssessRequest.from_dict(pair_payload()).program_key()
    assert service.invalidate_verdict_cache(program_key) == 1
    warm = service.submit(pair_payload())
    assert warm.wait(60.0) and warm.state == DONE
    assert "verdict_cache" not in warm.result
    assert warm.result["trace_digest"] == cold.result["trace_digest"]
    stats = service.verdict_cache_stats()
    assert stats["misses"] == 2 and stats["invalidations"] == 1


# -- journal replay × verdict cache (restart accounting) --------------------


def test_restarted_daemon_counts_cached_completions_once(tmp_path):
    journal_path = tmp_path / "journal.jsonl"
    service = LeakageService(ServiceConfig(workers=1,
                                           journal=journal_path))
    try:
        cold = service.submit(pair_payload())
        assert cold.wait(60.0) and cold.state == DONE
        warm = service.submit(pair_payload())
        assert warm.wait(60.0) and warm.state == DONE
        assert warm.result["verdict_cache"]["hit"] is True
    finally:
        service.drain(grace_s=30.0)

    restarted = LeakageService(ServiceConfig(workers=1,
                                             journal=journal_path))
    try:
        report = restarted.recovery_report()
        # Two submissions, two terminal frames: the cached completion is
        # a first-class "done", counted exactly once, interrupting
        # nothing.
        assert report["completed"] == {"done": 2}
        assert report["interrupted"] == []
        assert report["total_submitted"] == 2
    finally:
        restarted.drain(grace_s=30.0)

    frames = [json.loads(line)
              for line in journal_path.read_text().splitlines()]
    submitted = [frame for frame in frames
                 if frame.get("event") == "submitted"]
    terminal = [frame for frame in frames
                if frame.get("event") == "terminal"]
    assert len(submitted) == 2 and len(terminal) == 2
    # The cached replay keeps its own identifiers: distinct request and
    # trace IDs per submission, each matched by its own terminal frame.
    assert len({frame["id"] for frame in submitted}) == 2
    assert len({frame["trace_id"] for frame in submitted}) == 2
    assert {frame["id"] for frame in terminal} \
        == {frame["id"] for frame in submitted}
    assert all(frame["state"] == "done" for frame in terminal)
