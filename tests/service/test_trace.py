"""Request tracing: timelines for every terminal state, trace/report
endpoints, event-log replay, trace-ID propagation, 429 backoff."""

import random
import threading
import time

import pytest

from repro.obs.events import replay_events, timeline_from_events
from repro.service.client import ServiceClient, backoff_delay
from repro.service.core import ServiceConfig
from repro.service.errors import (AdmissionRejected, InvalidRequest,
                                  ProgramQuarantined, RequestNotFound)
from repro.service.executor import execute_assessment
from repro.service.protocol import (DONE, SHUTDOWN, TIMED_OUT,
                                    AssessRequest, make_trace_id)
from repro.service.server import ServiceServer

from .conftest import pair_payload, population_payload


def _events(record) -> list[str]:
    return [entry["event"] for entry in record.timeline]


def _wait_running(record, timeout=10.0):
    deadline = time.monotonic() + timeout
    while record.state == "queued" and time.monotonic() < deadline:
        time.sleep(0.005)
    assert record.state != "queued"


# -- lifecycle timelines (every terminal state is explainable) --------------


def test_done_request_timeline_and_spans(make_service):
    service = make_service(workers=1)
    record = service.submit(pair_payload())
    assert record.wait(60.0) and record.state == DONE
    events = _events(record)
    assert events[0] == "received"
    assert events[1] == "admitted"
    assert "started" in events and events[-1] == "terminal"
    assert "chunk" in events
    assert 0.0 <= record.timeline[0]["t_s"] < 1.0
    started = next(e for e in record.timeline if e["event"] == "started")
    assert started["queued_s"] >= 0.0
    # the span tree went through compile -> chunk -> verdict
    names = {span["name"] for span in record.spans}
    assert {"compile", "verdict"} <= names
    assert any(name.startswith("chunk[") for name in names)
    assert not record.spans_compacted


def test_rejected_429_timeline_is_queryable(make_service):
    service = make_service(workers=1, queue_depth=1)
    blocker = service.submit(population_payload(n_traces=8))
    _wait_running(blocker)
    service.submit(pair_payload())
    with pytest.raises(AdmissionRejected) as excinfo:
        service.submit(pair_payload())
    error = excinfo.value
    assert error.request_id is not None
    assert error.trace_id is not None
    rejected = service.get(error.request_id)
    assert rejected.state == "rejected"
    assert _events(rejected) == ["received", "terminal"]
    assert rejected.timeline[-1]["code"] == "admission_rejected"
    assert blocker.wait(60.0)


def test_queued_past_deadline_timeline(make_service):
    service = make_service(workers=1)
    blocker = service.submit(population_payload(n_traces=8))
    _wait_running(blocker)
    doomed = service.submit(pair_payload(deadline_s=0.01))
    assert doomed.wait(60.0) and doomed.state == TIMED_OUT
    assert _events(doomed) == ["received", "admitted", "terminal"]
    assert doomed.timeline[-1]["code"] == "deadline_exceeded"
    assert doomed.error.request_id == doomed.id
    assert blocker.wait(60.0)


def test_breaker_rejection_timeline(make_service):
    service = make_service(workers=1, breaker_threshold=1,
                           breaker_cooldown_s=300.0)
    program_key = AssessRequest.from_dict(pair_payload()).program_key()
    service.breaker.record_crash(program_key)
    with pytest.raises(ProgramQuarantined) as excinfo:
        service.submit(pair_payload())
    quarantined = service.get(excinfo.value.request_id)
    assert quarantined.terminal.is_set()
    assert _events(quarantined) == ["received", "terminal"]
    assert quarantined.timeline[-1]["code"] == "program_quarantined"


def test_drained_queued_request_timeline(make_service):
    service = make_service(workers=1)
    blocker = service.submit(population_payload(n_traces=8))
    _wait_running(blocker)
    queued = service.submit(pair_payload())
    service.drain(grace_s=60.0)
    assert queued.state == SHUTDOWN
    assert _events(queued) == ["received", "admitted", "terminal"]
    assert queued.timeline[-1]["code"] == "shutting_down"
    assert queued.error.request_id == queued.id


# -- bit-identity and partial traces ----------------------------------------


def test_traced_result_bit_identical_to_untraced_local(make_service):
    """Request tracing must never perturb the simulated energies."""
    service = make_service(workers=1)
    record = service.submit(pair_payload(attribution=True))
    assert record.wait(60.0) and record.state == DONE
    local = execute_assessment(AssessRequest.from_dict(pair_payload()))
    assert record.result["trace_digest"] == local["trace_digest"]
    assert record.result["verdict"] == local["verdict"]
    assert record.attribution_snapshot is not None


def test_tracing_disabled_still_keeps_timeline(make_service):
    service = make_service(workers=1, trace_requests=False)
    record = service.submit(pair_payload())
    assert record.wait(60.0) and record.state == DONE
    assert record.spans is None
    assert _events(record)[0] == "received"
    assert _events(record)[-1] == "terminal"


def test_span_forest_compaction_above_limit(make_service):
    service = make_service(workers=1, span_tree_limit=2)
    record = service.submit(pair_payload())
    assert record.wait(60.0) and record.state == DONE
    assert record.spans_compacted
    (aggregated,) = record.spans
    assert aggregated["count"] >= 1  # flamegraph frame tree


@pytest.mark.slow
def test_failed_request_keeps_partial_spans_and_failing_phase(
        make_service, monkeypatch):
    """A mid-chunk worker crash must leave the successful jobs' spans
    and a `chunk_failed` timeline entry behind (satellite fix)."""
    from repro.harness.resilience import FAULT_PLAN_ENV

    monkeypatch.setenv(FAULT_PLAN_ENV, "trace[0]:*:crash")
    service = make_service(workers=1, jobs=2, retries=0)
    record = service.submit(pair_payload())
    assert record.wait(120.0)
    assert record.state == "failed"
    events = _events(record)
    assert "chunk_failed" in events
    failed = next(e for e in record.timeline
                  if e["event"] == "chunk_failed")
    assert failed["failed"] >= 1 and failed["total"] == 2
    assert record.spans is not None  # partial tree, not dropped
    assert events[-1] == "terminal"


# -- event log --------------------------------------------------------------


def test_event_log_replay_matches_live_timeline(make_service, tmp_path):
    log_path = tmp_path / "events.jsonl"
    service = make_service(workers=1, event_log=log_path)
    record = service.submit(pair_payload())
    assert record.wait(60.0) and record.state == DONE
    service.drain(grace_s=30.0)
    replayed = timeline_from_events(replay_events(log_path), record.id)
    assert [entry["event"] for entry in replayed] == _events(record)
    # the replayed timeline carries the same detail payloads
    terminal = replayed[-1]
    assert terminal["state"] == DONE


# -- trace-ID minting and propagation ---------------------------------------


def test_make_trace_id_accepts_and_mints():
    assert make_trace_id("client-abc_1.2:3") == "client-abc_1.2:3"
    minted = make_trace_id(None)
    assert minted.startswith("tr-") and minted != make_trace_id(None)
    with pytest.raises(InvalidRequest):
        make_trace_id("bad id with spaces")
    with pytest.raises(InvalidRequest):
        make_trace_id("x" * 200)


def test_submit_carries_client_trace_id(make_service):
    service = make_service(workers=1)
    record = service.submit(pair_payload(), trace_id="tr-mine")
    assert record.trace_id == "tr-mine"
    assert record.wait(60.0)
    assert record.trace_document()["trace_id"] == "tr-mine"


# -- HTTP endpoints ---------------------------------------------------------


@pytest.fixture
def server():
    instance = ServiceServer(
        host="127.0.0.1", port=0,
        config=ServiceConfig(workers=1, queue_depth=8))
    thread = threading.Thread(target=instance.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    instance.service.drain(grace_s=30.0)
    thread.join(timeout=10.0)


@pytest.fixture
def client(server):
    host, port = server.address
    return ServiceClient(f"http://{host}:{port}")


def test_trace_endpoint_for_completed_request(client):
    document = client.assess_detailed(pair_payload(), timeout_s=120.0)
    trace = client.trace(document["id"])
    assert trace["id"] == document["id"]
    assert trace["trace_id"] == document["trace_id"]
    assert trace["state"] == DONE and trace["terminal"]
    assert [entry["event"] for entry in trace["timeline"]][0] == "received"
    assert "result" not in trace  # the report endpoint merges results
    assert any(span["name"] == "verdict" for span in trace["spans"])


def test_trace_endpoint_unknown_id_is_typed_404(client):
    with pytest.raises(RequestNotFound):
        client.trace("req-999999")
    with pytest.raises(RequestNotFound):
        client._call("GET", "/v1/requests/req-1/nope")


def test_report_html_for_completed_request(client):
    document = client.assess_detailed(pair_payload(), timeout_s=120.0)
    html = client.report_html(document["id"])
    assert html.lstrip().startswith("<!DOCTYPE html>")
    assert document["id"] in html
    assert document["trace_id"] in html
    assert "Lifecycle timeline" in html
    assert "Per-phase latency" in html


def test_report_html_unknown_id_is_typed_404(client):
    with pytest.raises(RequestNotFound):
        client.report_html("req-999999")


def test_attribution_endpoint_requires_opt_in(client):
    plain = client.assess_detailed(pair_payload(), timeout_s=120.0)
    with pytest.raises(RequestNotFound, match="attribution"):
        client.attribution(plain["id"])
    opted = client.assess_detailed(pair_payload(attribution=True),
                                   timeout_s=120.0)
    document = client.attribution(opted["id"])
    assert document["id"] == opted["id"]
    assert document["attribution"]


def test_trace_header_accepted_and_echoed(client, server):
    document = client.assess_detailed(pair_payload(), timeout_s=120.0,
                                      trace_id="tr-e2e-42")
    assert document["trace_id"] == "tr-e2e-42"
    host, port = server.address
    import urllib.request

    response = urllib.request.urlopen(
        f"http://{host}:{port}/v1/requests/{document['id']}/trace")
    assert response.headers["X-Repro-Trace-Id"] == "tr-e2e-42"


def test_dashboard_serves_refreshing_html(client):
    client.assess(pair_payload(), timeout_s=120.0)
    client.dashboard()  # first fetch seeds the rolling history
    html = client.dashboard()
    assert "http-equiv=\"refresh\"" in html
    assert "<svg" in html  # sparklines need two history samples


# -- client 429 backoff -----------------------------------------------------


def test_backoff_delay_honors_retry_after_and_caps():
    rng = random.Random(7)
    hinted = backoff_delay(0, retry_after_s=4.0, rng=rng)
    assert 3.0 <= hinted <= 5.0  # 4s +/- 25%
    huge = backoff_delay(20, retry_after_s=None, rng=rng)
    assert huge <= 30.0 * 1.25  # capped before jitter
    first = backoff_delay(0, retry_after_s=None,
                          rng=random.Random(1))
    assert 0.375 <= first <= 0.625  # 0.5s +/- 25%


def test_submit_retry_429_eventually_admits(client, server, monkeypatch):
    """With the queue full, retry_429 re-submits until a slot opens."""
    service = server.service
    blocker = service.submit(population_payload(n_traces=8))
    _wait_running(blocker)
    fillers = [service.submit(pair_payload()) for _ in range(8)]
    monkeypatch.setattr("repro.service.client.backoff_delay",
                        lambda attempt, hint=None, **_: 0.2)
    document = client.submit(pair_payload(), retry_429=40)
    assert document["id"].startswith("req-")
    assert blocker.wait(120.0)
    for record in fillers:
        assert record.wait(120.0)
    assert client.status(document["id"], wait_s=120.0)["state"] == DONE


def test_submit_retry_429_exhaustion_raises(client, server, monkeypatch):
    service = server.service
    blocker = service.submit(population_payload(n_traces=16))
    _wait_running(blocker)
    fillers = [service.submit(pair_payload()) for _ in range(8)]
    monkeypatch.setattr("repro.service.client.backoff_delay",
                        lambda attempt, hint=None, **_: 0.0)
    with pytest.raises(AdmissionRejected) as excinfo:
        client.submit(pair_payload(), retry_429=2)
    assert excinfo.value.request_id is not None
    assert blocker.wait(120.0)
    for record in fillers:
        assert record.wait(120.0)
