"""HTTP adapter + typed client against a real in-process server."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig
from repro.service.errors import (InvalidRequest, RequestNotFound,
                                  ServiceError)
from repro.service.server import ServiceServer

from .conftest import pair_payload, population_payload


@pytest.fixture
def server():
    instance = ServiceServer(
        host="127.0.0.1", port=0,
        config=ServiceConfig(workers=2, queue_depth=8))
    thread = threading.Thread(target=instance.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    instance.service.drain(grace_s=30.0)
    thread.join(timeout=10.0)


@pytest.fixture
def client(server):
    host, port = server.address
    return ServiceClient(f"http://{host}:{port}")


def test_health_ready_and_metrics_endpoints(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["workers_alive"] == 2
    ready, document = client.ready()
    assert ready and document["ready"]
    assert "service_queue_depth" in client.metrics()


def test_submit_with_wait_returns_the_result_document(client):
    result = client.assess(pair_payload(), timeout_s=120.0)
    assert result["n_traces"] == 2
    assert result["verdict"]["mode"] == "pair"
    assert len(result["trace_digest"]) == 64


def test_async_submit_then_poll_lifecycle(client):
    document = client.submit(population_payload(n_traces=4))
    assert document["state"] in ("queued", "running")
    assert document["id"].startswith("req-")
    final = client.status(document["id"], wait_s=120.0)
    assert final["terminal"] and final["state"] == "done"
    listing = client.requests()
    assert any(entry["id"] == document["id"] for entry in listing)


def test_invalid_request_raises_typed_400(client):
    with pytest.raises(InvalidRequest, match="rounds"):
        client.submit(pair_payload(rounds=99))


def test_unknown_request_id_raises_typed_404(client):
    with pytest.raises(RequestNotFound):
        client.status("req-999999")


def test_unknown_route_is_a_json_404(client, server):
    host, port = server.address
    status, document = client._call_raw("GET", "/v2/nope")
    assert status == 404
    assert document["error"]["code"] == "not_found"


def test_malformed_json_body_is_typed_not_a_stack_trace(server):
    host, port = server.address
    request = urllib.request.Request(
        f"http://{host}:{port}/v1/requests", data=b"{definitely not json",
        method="POST", headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            raise AssertionError(f"unexpected {response.status}")
    except urllib.error.HTTPError as error:
        assert error.code == 400
        document = json.loads(error.read())
        assert document["error"]["code"] == "invalid_request"


def test_unreachable_daemon_is_a_retryable_typed_error():
    client = ServiceClient("http://127.0.0.1:9")  # discard port: refused
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.retry_after_s is not None


def test_recovery_endpoint_without_journal(client):
    assert client.recovery() == {"journal": None}
