"""FIPS table invariants."""

from repro.des.tables import (E, FLAT_SBOXES, FP, IP, P, PC1, PC2, SBOXES,
                              SHIFTS)


def test_table_sizes():
    assert len(IP) == 64
    assert len(FP) == 64
    assert len(E) == 48
    assert len(P) == 32
    assert len(PC1) == 56
    assert len(PC2) == 48
    assert len(SHIFTS) == 16
    assert len(SBOXES) == 8


def test_ip_is_permutation():
    assert sorted(IP) == list(range(1, 65))


def test_fp_inverts_ip():
    identity = list(range(1, 65))
    after_ip = [identity[p - 1] for p in IP]
    after_fp = [after_ip[p - 1] for p in FP]
    assert after_fp == identity


def test_p_is_permutation():
    assert sorted(P) == list(range(1, 33))


def test_e_covers_all_32_bits():
    assert set(E) == set(range(1, 33))


def test_e_duplicates_edge_bits():
    # E expands 32 -> 48: exactly 16 bits appear twice.
    from collections import Counter
    counts = Counter(E)
    assert sum(1 for c in counts.values() if c == 2) == 16


def test_pc1_drops_parity_bits():
    # Parity bits are 8, 16, ..., 64 and must not appear in PC-1.
    parity = set(range(8, 65, 8))
    assert parity.isdisjoint(set(PC1))
    assert len(set(PC1)) == 56


def test_pc2_selects_48_of_56():
    assert len(set(PC2)) == 48
    assert all(1 <= p <= 56 for p in PC2)


def test_shift_total_is_28():
    # After 16 rounds the C/D registers return to their initial position.
    assert sum(SHIFTS) == 28


def test_sbox_rows_are_permutations_of_0_15():
    for box in SBOXES:
        assert len(box) == 4
        for row in box:
            assert sorted(row) == list(range(16))


def test_flat_sboxes_match_row_column_lookup():
    for box_index, box in enumerate(SBOXES):
        for value in range(64):
            row = ((value >> 4) & 0b10) | (value & 1)
            col = (value >> 1) & 0b1111
            assert FLAT_SBOXES[box_index][value] == box[row][col]


def test_flat_sboxes_balanced():
    # Each 4-bit output appears exactly 4 times per flat S-box.
    for flat in FLAT_SBOXES:
        for output in range(16):
            assert flat.count(output) == 4


def test_known_s1_values():
    # S1(000000) = 14, S1(111111) = 13 (FIPS examples).
    assert FLAT_SBOXES[0][0] == 14
    assert FLAT_SBOXES[0][63] == 13
