"""DES block modes and Triple DES."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.modes import (PaddingError, cbc_decrypt, cbc_encrypt,
                             ecb_decrypt, ecb_encrypt, pkcs7_pad,
                             pkcs7_unpad, tdes_decrypt_block,
                             tdes_encrypt_block)

KEY = 0x133457799BBCDFF1
KEY2 = 0x0E329232EA6D0D73
IV = 0x0011223344556677

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
DATA = st.binary(min_size=0, max_size=64)


class TestPadding:
    def test_pad_adds_one_to_block_size(self):
        assert pkcs7_pad(b"") == bytes([8] * 8)
        assert pkcs7_pad(b"1234567") == b"1234567\x01"
        assert pkcs7_pad(b"12345678")[-8:] == bytes([8] * 8)

    def test_unpad_roundtrip(self):
        for length in range(20):
            data = bytes(range(length))
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_unpad_rejects_bad_length(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"123")

    def test_unpad_rejects_bad_value(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"1234567\x00")
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"1234567\x09")

    def test_unpad_rejects_inconsistent_bytes(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"123456\x01\x02")


class TestEcb:
    def test_roundtrip(self):
        message = b"attack at dawn"
        assert ecb_decrypt(ecb_encrypt(message, KEY), KEY) == message

    def test_identical_blocks_leak_in_ecb(self):
        """The classic ECB weakness (why CBC exists)."""
        message = b"AAAAAAAA" * 2
        ciphertext = ecb_encrypt(message, KEY)
        assert ciphertext[:8] == ciphertext[8:16]

    def test_unaligned_ciphertext_rejected(self):
        with pytest.raises(PaddingError):
            ecb_decrypt(b"123", KEY)

    def test_wrong_key_fails_padding_or_garbage(self):
        ciphertext = ecb_encrypt(b"hello world", KEY)
        try:
            result = ecb_decrypt(ciphertext, KEY2)
        except PaddingError:
            return
        assert result != b"hello world"

    @settings(max_examples=10, deadline=None)
    @given(data=DATA, key=U64)
    def test_roundtrip_property(self, data, key):
        assert ecb_decrypt(ecb_encrypt(data, key), key) == data


class TestCbc:
    def test_roundtrip(self):
        message = b"the quick brown fox jumps"
        assert cbc_decrypt(cbc_encrypt(message, KEY, IV), KEY, IV) == message

    def test_identical_blocks_hidden_by_chaining(self):
        message = b"AAAAAAAA" * 2
        ciphertext = cbc_encrypt(message, KEY, IV)
        assert ciphertext[:8] != ciphertext[8:16]

    def test_different_iv_different_ciphertext(self):
        message = b"same message"
        assert cbc_encrypt(message, KEY, IV) != \
            cbc_encrypt(message, KEY, IV ^ 1)

    def test_iv_range_checked(self):
        with pytest.raises(ValueError):
            cbc_encrypt(b"x", KEY, 1 << 64)

    def test_wrong_iv_corrupts_first_block_only(self):
        message = b"0123456789ABCDEF"  # two exact blocks + padding block
        ciphertext = cbc_encrypt(message, KEY, IV)
        recovered = cbc_decrypt(ciphertext, KEY, IV ^ 0xFF)
        assert recovered[8:] == message[8:]
        assert recovered[:8] != message[:8]

    @settings(max_examples=10, deadline=None)
    @given(data=DATA, key=U64, iv=U64)
    def test_roundtrip_property(self, data, key, iv):
        assert cbc_decrypt(cbc_encrypt(data, key, iv), key, iv) == data


class TestTripleDes:
    def test_roundtrip_two_key(self):
        block = 0x0123456789ABCDEF
        ciphertext = tdes_encrypt_block(block, KEY, KEY2)
        assert tdes_decrypt_block(ciphertext, KEY, KEY2) == block

    def test_roundtrip_three_key(self):
        block = 0x0123456789ABCDEF
        key3 = 0x5B5A57676A56676E
        ciphertext = tdes_encrypt_block(block, KEY, KEY2, key3)
        assert tdes_decrypt_block(ciphertext, KEY, KEY2, key3) == block

    def test_degenerates_to_single_des_with_equal_keys(self):
        """EDE with k1 == k2 == k3 is plain DES (compatibility mode)."""
        from repro.des.reference import encrypt_block

        block = 0x0123456789ABCDEF
        assert tdes_encrypt_block(block, KEY, KEY, KEY) == \
            encrypt_block(block, KEY)

    @settings(max_examples=10, deadline=None)
    @given(block=U64, key1=U64, key2=U64)
    def test_roundtrip_property(self, block, key1, key2):
        ciphertext = tdes_encrypt_block(block, key1, key2)
        assert tdes_decrypt_block(ciphertext, key1, key2) == block
