"""Reference DES against published vectors and algebraic properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.reference import (decrypt_block, encrypt_block, f_function,
                                 round_states, sbox_lookup)
from repro.des.bitops import int_to_bits

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)

#: (key, plaintext, ciphertext) known-answer vectors.
KAT = [
    (0x133457799BBCDFF1, 0x0123456789ABCDEF, 0x85E813540F0AB405),
    (0x0101010101010101, 0x95F8A5E5DD31D900, 0x8000000000000000),
    (0x8001010101010101, 0x0000000000000000, 0x95A8D72813DAA94D),
    (0x10316E028C8F3B4A, 0x0000000000000000, 0x82DCBAFBDEAB6602),
    (0x0101010101010101, 0x0000000000000000, 0x8CA64DE9C1B123A7),
]


@pytest.mark.parametrize("key,plaintext,ciphertext", KAT)
def test_known_answer_encrypt(key, plaintext, ciphertext):
    assert encrypt_block(plaintext, key) == ciphertext


@pytest.mark.parametrize("key,plaintext,ciphertext", KAT)
def test_known_answer_decrypt(key, plaintext, ciphertext):
    assert decrypt_block(ciphertext, key) == plaintext


def test_rounds_argument_validated():
    with pytest.raises(ValueError):
        encrypt_block(0, 0, rounds=0)
    with pytest.raises(ValueError):
        encrypt_block(0, 0, rounds=17)


def test_sbox_lookup_bounds():
    with pytest.raises(ValueError):
        sbox_lookup(0, 64)
    assert sbox_lookup(0, 0) == 14


def test_f_function_width():
    r = int_to_bits(0x12345678, 32)
    k = int_to_bits(0x123456789ABC, 48)
    out = f_function(r, k)
    assert len(out) == 32


def test_round_states_match_full_encrypt():
    key, plaintext = KAT[0][0], KAT[0][1]
    states = round_states(plaintext, key)
    assert len(states) == 16
    # Reconstruct the ciphertext from (L16, R16).
    from repro.des.bitops import bits_to_int, permute
    from repro.des.tables import FP
    l16, r16 = states[-1]
    pre_output = int_to_bits(r16, 32) + int_to_bits(l16, 32)
    assert bits_to_int(permute(pre_output, FP)) == KAT[0][2]


@settings(max_examples=25, deadline=None)
@given(key=U64, plaintext=U64)
def test_decrypt_inverts_encrypt(key, plaintext):
    assert decrypt_block(encrypt_block(plaintext, key), key) == plaintext


@settings(max_examples=10, deadline=None)
@given(key=U64, plaintext=U64)
def test_complementation_property(key, plaintext):
    """DES(~P, ~K) == ~DES(P, K) — the classic complementation property;
    a strong whole-algorithm structural check."""
    mask = (1 << 64) - 1
    straight = encrypt_block(plaintext, key)
    complemented = encrypt_block(plaintext ^ mask, key ^ mask)
    assert complemented == straight ^ mask


@settings(max_examples=10, deadline=None)
@given(key=U64, plaintext=U64,
       rounds=st.integers(min_value=1, max_value=16))
def test_reduced_rounds_invertible(key, plaintext, rounds):
    ciphertext = encrypt_block(plaintext, key, rounds=rounds)
    assert decrypt_block(ciphertext, key, rounds=rounds) == plaintext


def test_avalanche_single_plaintext_bit():
    """Flipping one plaintext bit flips ~32 ciphertext bits."""
    key, plaintext = KAT[0][0], KAT[0][1]
    base = encrypt_block(plaintext, key)
    flipped = encrypt_block(plaintext ^ 1, key)
    assert 20 <= bin(base ^ flipped).count("1") <= 44
