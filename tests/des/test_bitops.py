"""Bit-vector helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.des.bitops import (bits_to_int, hamming_weight, int_to_bits,
                              parity_adjust_key, permute, rotate_left,
                              xor_bits)


def test_int_to_bits_msb_first():
    assert int_to_bits(0b1010, 4) == [1, 0, 1, 0]
    assert int_to_bits(1, 4) == [0, 0, 0, 1]


def test_int_to_bits_range_check():
    with pytest.raises(ValueError):
        int_to_bits(16, 4)
    with pytest.raises(ValueError):
        int_to_bits(-1, 4)


def test_bits_to_int():
    assert bits_to_int([1, 0, 1, 0]) == 0b1010


def test_bits_to_int_rejects_non_bits():
    with pytest.raises(ValueError):
        bits_to_int([0, 2, 1])


def test_permute_one_based():
    assert permute([10, 20, 30], [3, 1, 2]) == [30, 10, 20]


def test_xor_bits():
    assert xor_bits([1, 0, 1], [1, 1, 0]) == [0, 1, 1]


def test_xor_bits_length_mismatch():
    with pytest.raises(ValueError):
        xor_bits([1], [1, 0])


def test_rotate_left():
    assert rotate_left([1, 2, 3, 4], 1) == [2, 3, 4, 1]
    assert rotate_left([1, 2, 3, 4], 4) == [1, 2, 3, 4]
    assert rotate_left([1, 2, 3, 4], 6) == [3, 4, 1, 2]


def test_hamming_weight():
    assert hamming_weight(0) == 0
    assert hamming_weight(0xFF) == 8
    assert hamming_weight(0x8000_0001) == 2


def test_parity_adjust_key_produces_odd_parity():
    key64 = parity_adjust_key(0x00FFFFFFFFFFFFFF & ((1 << 56) - 1))
    for byte_index in range(8):
        byte = (key64 >> (8 * byte_index)) & 0xFF
        assert bin(byte).count("1") % 2 == 1


def test_parity_adjust_rejects_oversized():
    with pytest.raises(ValueError):
        parity_adjust_key(1 << 56)


@given(value=st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_bits_roundtrip_property(value):
    assert bits_to_int(int_to_bits(value, 64)) == value


@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=64),
       amount=st.integers(min_value=0, max_value=128))
def test_rotate_composition_property(bits, amount):
    once = rotate_left(bits, amount)
    assert rotate_left(once, len(bits) - amount % len(bits)) == list(bits)


@given(a=st.integers(min_value=0, max_value=(1 << 32) - 1),
       b=st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_xor_bits_matches_int_xor(a, b):
    result = xor_bits(int_to_bits(a, 32), int_to_bits(b, 32))
    assert bits_to_int(result) == a ^ b
