"""Key schedule: known values and structural invariants."""

from repro.des.bitops import bits_to_int
from repro.des.keyschedule import cd_sequence, key_schedule

KEY = 0x133457799BBCDFF1


def test_sixteen_subkeys_of_48_bits():
    subkeys = key_schedule(KEY)
    assert len(subkeys) == 16
    assert all(len(k) == 48 for k in subkeys)
    assert all(bit in (0, 1) for k in subkeys for bit in k)


def test_known_k1():
    """K1 for the classic FIPS walkthrough key (Stallings example)."""
    k1 = bits_to_int(key_schedule(KEY)[0])
    assert k1 == 0b000110_110000_001011_101111_111111_000111_000001_110010


def test_known_k16():
    k16 = bits_to_int(key_schedule(KEY)[15])
    assert k16 == 0b110010_110011_110110_001011_000011_100001_011111_110101


def test_cd_returns_to_start_after_16_rounds():
    pairs = cd_sequence(KEY)
    # Total rotation is 28, so C16/D16 equal C0/D0 -- which equals the
    # PC-1 output. Compare against a fresh PC-1 computation.
    from repro.des.bitops import int_to_bits, permute
    from repro.des.tables import PC1
    cd0 = permute(int_to_bits(KEY, 64), PC1)
    c16, d16 = pairs[15]
    assert c16 == cd0[:28]
    assert d16 == cd0[28:]


def test_parity_bits_ignored():
    """Flipping any parity bit (8, 16, ... 64) leaves subkeys unchanged."""
    base = key_schedule(KEY)
    for parity_position in range(8, 65, 8):
        flipped = KEY ^ (1 << (64 - parity_position))
        assert key_schedule(flipped) == base


def test_key_bit_changes_subkeys():
    """Flipping a non-parity key bit changes at least one subkey."""
    base = key_schedule(KEY)
    flipped = key_schedule(KEY ^ (1 << 63))  # bit 1 (MSB) is a key bit
    assert flipped != base


def test_all_zero_key_gives_all_zero_subkeys():
    assert all(bits_to_int(k) == 0 for k in key_schedule(0))


def test_weak_key_all_ones():
    # For the all-ones key, every subkey is all ones (a classic weak key).
    subkeys = key_schedule(0xFFFF_FFFF_FFFF_FFFF)
    assert all(bits_to_int(k) == (1 << 48) - 1 for k in subkeys)
