"""SecureC functions: parsing, semantics, execution, and taint."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.compiler import compile_source
from repro.lang.parser import ParseError, parse
from repro.lang.semantics import SemanticError, analyze
from repro.machine.cpu import run_to_halt


def run(source, masking="none", optimize=0, inputs=None, out="out"):
    compiled = compile_source(source, masking=masking, optimize=optimize)
    cpu = run_to_halt(compiled.program, inputs=inputs)
    return cpu.read_symbol_words(out, 1)


# -- parsing -----------------------------------------------------------------


def test_parse_function_definition():
    program = parse("""
    int f(int a, int b) { return a + b; }
    """)
    assert len(program.funcs) == 1
    func = program.funcs[0]
    assert func.name == "f"
    assert func.params == ["a", "b"]


def test_parse_no_params():
    program = parse("int f() { return 1; }")
    assert program.funcs[0].params == []


def test_parse_call_expression_and_statement():
    program = parse("""
    int f(int a) { return a; }
    int out;
    out = f(1) + f(2);
    f(3);
    """)
    assert len(program.body) == 2


def test_int_variable_still_parses_as_decl():
    program = parse("int x; int f(int a) { return a; } int y;")
    assert len(program.decls) == 2
    assert len(program.funcs) == 1


# -- semantics ---------------------------------------------------------------


def test_undefined_function_rejected():
    with pytest.raises(SemanticError):
        analyze(parse("int out; out = nothere(1);"))


def test_arity_checked():
    source = "int f(int a) { return a; } int out; out = f(1, 2);"
    with pytest.raises(SemanticError):
        analyze(parse(source))


def test_duplicate_function_rejected():
    source = "int f(int a) { return a; } int f(int b) { return b; }"
    with pytest.raises(SemanticError):
        analyze(parse(source))


def test_function_name_conflicts_with_variable():
    with pytest.raises(SemanticError):
        analyze(parse("int f; int f(int a) { return a; }"))


def test_duplicate_parameter_rejected():
    with pytest.raises(SemanticError):
        analyze(parse("int f(int a, int a) { return a; }"))


def test_missing_return_rejected():
    with pytest.raises(SemanticError):
        analyze(parse("int f(int a) { a = 1; }"))


def test_return_outside_function_rejected():
    with pytest.raises(SemanticError):
        analyze(parse("int x; return x;"))


def test_direct_recursion_rejected():
    source = "int f(int a) { return f(a); }"
    with pytest.raises(SemanticError, match="recursive"):
        analyze(parse(source))


def test_mutual_recursion_rejected():
    source = """
    int f(int a) { return g(a); }
    int g(int a) { return f(a); }
    """
    with pytest.raises(SemanticError, match="recursive"):
        analyze(parse(source))


def test_expression_statement_must_be_call():
    # The grammar only admits calls as expression statements.
    with pytest.raises(ParseError):
        parse("int x; x + 1;")


def test_params_scoped_to_function():
    # `a` is only visible inside f.
    with pytest.raises(SemanticError):
        analyze(parse("int f(int a) { return a; } int out; out = a;"))


def test_param_shadows_nothing_globals_visible():
    table = analyze(parse("""
    int g;
    int f(int a) { return a + g; }
    """))
    assert "f$a" in [s.name for s in table.symbols()]


# -- execution ---------------------------------------------------------------


def test_simple_call():
    assert run("""
    int f(int a, int b) { return a + b; }
    int out;
    out = f(2, 3);
    """) == [5]


def test_nested_calls():
    assert run("""
    int inc(int x) { return x + 1; }
    int out;
    out = inc(inc(inc(0)));
    """) == [3]


def test_function_calling_function():
    assert run("""
    int double(int x) { return x + x; }
    int quad(int x) { return double(double(x)); }
    int out;
    out = quad(5);
    """) == [20]


def test_call_in_complex_expression():
    """Live temps across a call must be spilled and restored."""
    assert run("""
    int f(int a) { return a + 1; }
    int out;
    out = (f(1) + f(2)) ^ (f(3) << 2);
    """) == [(2 + 3) ^ (4 << 2)]


def test_function_reads_globals():
    assert run("""
    int base = 100;
    int f(int a) { return a + base; }
    int out;
    out = f(5);
    """) == [105]


def test_function_writes_globals():
    assert run("""
    int counter;
    int bump(int amount) {
        counter = counter + amount;
        return counter;
    }
    int out;
    bump(3);
    bump(4);
    out = counter;
    """) == [7]


def test_function_with_loop():
    # Declarations are global-only (embedded style); function bodies use
    # globals as scratch.
    assert run("""
    int acc;
    int i;
    int sum_to(int n) {
        acc = 0;
        for (i = 1; i <= n; i = i + 1) { acc = acc + i; }
        return acc;
    }
    int out;
    out = sum_to(10);
    """) == [55]


def test_early_return():
    assert run("""
    int clamp(int x) {
        if (x > 10) { return 10; }
        return x;
    }
    int out;
    out = clamp(50) + clamp(3);
    """) == [13]


def test_param_assignment_local_effect():
    assert run("""
    int f(int a) {
        a = a + 1;
        return a;
    }
    int x = 5;
    int out;
    out = f(x) + x;   // x unchanged by the call
    """) == [11]


def test_call_as_statement_side_effects_only():
    assert run("""
    int g;
    int set(int v) { g = v; return v; }
    int out;
    set(9);
    out = g;
    """) == [9]


@pytest.mark.parametrize("optimize", [0, 1, 2])
def test_all_opt_levels(optimize):
    source = """
    int fma(int a, int b) { return (a << 2) + b; }
    int out;
    out = fma(fma(1, 2), 3);
    """
    assert run(source, optimize=optimize) == [((1 << 2) + 2 << 2) + 3]


@settings(max_examples=15, deadline=None)
@given(a=st.integers(min_value=0, max_value=0xFFFF),
       b=st.integers(min_value=0, max_value=0xFFFF))
def test_call_property(a, b):
    source = f"""
    int mix(int x, int y) {{ return (x ^ y) + (x & y); }}
    int out;
    out = mix({a}, {b});
    """
    assert run(source) == [((a ^ b) + (a & b)) & 0xFFFF_FFFF]


# -- taint through calls -------------------------------------------------------


def test_taint_flows_through_arguments():
    compiled = compile_source("""
    secure int k;
    int out;
    int f(int a) { return a << 1; }
    out = f(k);
    """, masking="selective")
    assert "f$a" in compiled.slice.tainted_vars
    assert "f$ret" in compiled.slice.tainted_vars
    assert "out" in compiled.slice.tainted_vars
    assert "ssll" in compiled.assembly


def test_taint_flows_through_return():
    compiled = compile_source("""
    secure int k;
    int out;
    int get_key() { return k; }
    out = get_key() ^ 1;
    """, masking="selective")
    assert "out" in compiled.slice.tainted_vars
    assert "sxor" in compiled.assembly


def test_clean_function_stays_clean():
    compiled = compile_source("""
    secure int k;
    int a; int out;
    int f(int x) { return x + 1; }
    a = k;
    out = f(7);
    """, masking="selective")
    assert "f$a" not in compiled.slice.tainted_vars
    assert "f$ret" not in compiled.slice.tainted_vars
    assert "out" not in compiled.slice.tainted_vars


def test_shared_function_joins_taint_over_call_sites():
    """Context-insensitive: one tainted call site taints the summary."""
    compiled = compile_source("""
    secure int k;
    int clean_out; int secret_out;
    int id(int x) { return x; }
    clean_out = id(3);
    secret_out = id(k);
    """, masking="selective")
    # Conservative: both results tainted because id's param joins taints.
    assert "secret_out" in compiled.slice.tainted_vars
    assert "clean_out" in compiled.slice.tainted_vars


def test_masking_property_with_functions():
    """Two secrets, same program: energy identical in masked build."""
    import numpy as np

    from repro.harness.runner import run_with_trace

    source = """
    secure int k;
    int out;
    int whiten(int x) { return (x ^ 0x5A) << 1; }
    __marker(1);
    out = whiten(k) ^ whiten(k + 1);
    __marker(2);
    """
    compiled = compile_source(source, masking="selective")
    runs = [run_with_trace(compiled.program, inputs={"k": [key]})
            for key in (0x11, 0xEE)]
    diff = runs[0].trace.diff(runs[1].trace)
    start = runs[0].trace.marker_cycles(1)[0]
    end = runs[0].trace.marker_cycles(2)[0]
    assert np.abs(diff[start:end]).max() == 0.0
