"""Statement-level compiler fuzzing.

Generates small structured SecureC programs (assignments, array writes,
if/else, bounded counting loops) as data, evaluates them with an
independent Python reference evaluator, and requires the compiled program
— at every masking mode and optimization level — to compute identical
final state on the simulator.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.compiler import compile_source
from repro.machine.cpu import run_to_halt

WORD = 0xFFFF_FFFF
SCALARS = ("v0", "v1", "v2", "v3")
ARRAY = "arr"
ARRAY_SIZE = 4

# ---------------------------------------------------------------------------
# Program representation (plain tuples) and reference evaluator
# ---------------------------------------------------------------------------


def eval_expr(node, env):
    kind = node[0]
    if kind == "lit":
        return node[1] & WORD
    if kind == "var":
        return env[node[1]]
    if kind == "arr":
        index = eval_expr(node[1], env) % ARRAY_SIZE
        return env[ARRAY][index]
    a = eval_expr(node[1], env)
    b = eval_expr(node[2], env)
    if kind == "+":
        return (a + b) & WORD
    if kind == "-":
        return (a - b) & WORD
    if kind == "^":
        return a ^ b
    if kind == "&":
        return a & b
    if kind == "|":
        return a | b
    if kind == "<":
        def signed(x):
            return x - 0x1_0000_0000 if x & 0x8000_0000 else x
        return 1 if signed(a) < signed(b) else 0
    raise AssertionError(kind)


def eval_stmt(stmt, env):
    kind = stmt[0]
    if kind == "assign":
        env[stmt[1]] = eval_expr(stmt[2], env)
    elif kind == "astore":
        index = eval_expr(stmt[1], env) % ARRAY_SIZE
        env[ARRAY][index] = eval_expr(stmt[2], env)
    elif kind == "if":
        branch = stmt[2] if eval_expr(stmt[1], env) else stmt[3]
        for child in branch:
            eval_stmt(child, env)
    elif kind == "loop":
        counter, count, body = stmt[1], stmt[2], stmt[3]
        for value in range(count):
            env[counter] = value
            for child in body:
                eval_stmt(child, env)
        env[counter] = count
    else:
        raise AssertionError(kind)


# ---------------------------------------------------------------------------
# Rendering to SecureC
# ---------------------------------------------------------------------------


def render_expr(node):
    kind = node[0]
    if kind == "lit":
        return str(node[1])
    if kind == "var":
        return node[1]
    if kind == "arr":
        return f"{ARRAY}[({render_expr(node[1])}) & 3]"
    return f"(({render_expr(node[1])}) {kind} ({render_expr(node[2])}))"


def render_stmt(stmt, indent="    "):
    kind = stmt[0]
    if kind == "assign":
        return [f"{indent}{stmt[1]} = {render_expr(stmt[2])};"]
    if kind == "astore":
        return [f"{indent}{ARRAY}[({render_expr(stmt[1])}) & 3] = "
                f"{render_expr(stmt[2])};"]
    if kind == "if":
        lines = [f"{indent}if ({render_expr(stmt[1])}) {{"]
        for child in stmt[2]:
            lines.extend(render_stmt(child, indent + "    "))
        lines.append(f"{indent}}} else {{")
        for child in stmt[3]:
            lines.extend(render_stmt(child, indent + "    "))
        lines.append(f"{indent}}}")
        return lines
    if kind == "loop":
        counter, count, body = stmt[1], stmt[2], stmt[3]
        lines = [f"{indent}for ({counter} = 0; {counter} < {count}; "
                 f"{counter} = {counter} + 1) {{"]
        for child in body:
            lines.extend(render_stmt(child, indent + "    "))
        lines.append(f"{indent}}}")
        return lines
    raise AssertionError(kind)


def render_program(statements):
    lines = [f"int {name};" for name in SCALARS]
    lines.append(f"int {ARRAY}[{ARRAY_SIZE}];")
    lines.append("int loop_i;")
    lines.append("int loop_j;")
    for stmt in statements:
        lines.extend(render_stmt(stmt, ""))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def exprs(depth):
    leaves = st.one_of(
        st.tuples(st.just("lit"), st.integers(min_value=0, max_value=0xFFF)),
        st.tuples(st.just("var"), st.sampled_from(SCALARS)))
    if depth == 0:
        return leaves
    sub = exprs(depth - 1)
    return st.one_of(
        leaves,
        st.tuples(st.just("arr"), sub),
        st.tuples(st.sampled_from(["+", "-", "^", "&", "|", "<"]), sub, sub))


def stmts(depth):
    simple = st.one_of(
        st.tuples(st.just("assign"), st.sampled_from(SCALARS), exprs(2)),
        st.tuples(st.just("astore"), exprs(1), exprs(2)))
    if depth == 0:
        return simple
    body = st.lists(stmts(depth - 1), min_size=1, max_size=3)
    return st.one_of(
        simple,
        st.tuples(st.just("if"), exprs(1), body, body),
        st.tuples(st.just("loop"),
                  st.sampled_from(["loop_i", "loop_j"]),
                  st.integers(min_value=1, max_value=3), body))


PROGRAMS = st.lists(stmts(2), min_size=1, max_size=5)


# ---------------------------------------------------------------------------
# The differential test
# ---------------------------------------------------------------------------


def _loops_safe(statements) -> bool:
    """Reject programs whose loop bodies assign their own counter."""

    def body_assigns(body, counter):
        for stmt in body:
            if stmt[0] == "assign" and stmt[1] == counter:
                return True
            if stmt[0] == "if" and (body_assigns(stmt[2], counter)
                                    or body_assigns(stmt[3], counter)):
                return True
            if stmt[0] == "loop":
                if stmt[1] == counter or body_assigns(stmt[3], counter):
                    return True
        return False

    def check(stmt):
        if stmt[0] == "loop":
            if body_assigns(stmt[3], stmt[1]):
                return False
            return all(check(s) for s in stmt[3])
        if stmt[0] == "if":
            return all(check(s) for s in stmt[2]) \
                and all(check(s) for s in stmt[3])
        return True

    return all(check(stmt) for stmt in statements)


@settings(max_examples=40, deadline=None)
@given(statements=PROGRAMS,
       masking=st.sampled_from(["none", "selective"]),
       optimize=st.sampled_from([0, 1, 2]))
def test_random_programs_match_reference(statements, masking, optimize):
    if not _loops_safe(statements):
        return  # counters written in their own loop body: skip

    env = {name: 0 for name in SCALARS}
    env.update({"loop_i": 0, "loop_j": 0, ARRAY: [0] * ARRAY_SIZE})
    for stmt in statements:
        eval_stmt(stmt, env)

    source = render_program(statements)
    compiled = compile_source(source, masking=masking, optimize=optimize)
    cpu = run_to_halt(compiled.program, max_cycles=2_000_000)

    for name in SCALARS:
        assert cpu.read_symbol_words(name, 1) == [env[name]], \
            (name, source)
    assert cpu.read_symbol_words(ARRAY, ARRAY_SIZE) == env[ARRAY], source
