"""SecureC parser: declarations, statements, expression precedence."""

import pytest

from repro.lang.ast import (Assign, Binary, For, If, IndexRef, InsecureBlock,
                            IntLiteral, Marker, Unary, VarRef, While)
from repro.lang.parser import ParseError, parse


def test_scalar_declaration():
    program = parse("int x;")
    decl = program.decls[0]
    assert decl.name == "x"
    assert decl.size is None
    assert not decl.secure and not decl.const


def test_secure_array_declaration():
    program = parse("secure int key[64];")
    decl = program.decls[0]
    assert decl.secure
    assert decl.size == 64


def test_const_initialized_array():
    program = parse("const int t[3] = {1, 2, 3};")
    decl = program.decls[0]
    assert decl.const
    assert decl.init == [1, 2, 3]


def test_const_without_init_rejected():
    with pytest.raises(ParseError):
        parse("const int t[3];")


def test_oversized_initializer_rejected():
    with pytest.raises(ParseError):
        parse("int t[2] = {1, 2, 3};")


def test_scalar_initializer():
    program = parse("int x = 5;")
    assert program.decls[0].init == [5]


def test_negative_initializer():
    program = parse("const int t[1] = {-1};")
    assert program.decls[0].init == [0xFFFF_FFFF]


def test_simple_assignment():
    program = parse("int x; x = 1;")
    stmt = program.body[0]
    assert isinstance(stmt, Assign)
    assert isinstance(stmt.target, VarRef)
    assert isinstance(stmt.value, IntLiteral)


def test_array_assignment():
    program = parse("int a[4]; int i; a[i] = i;")
    stmt = program.body[0]
    assert isinstance(stmt.target, IndexRef)


def test_precedence_shift_binds_tighter_than_or():
    program = parse("int x; x = 1 | 2 << 3;")
    value = program.body[0].value
    assert isinstance(value, Binary) and value.op == "|"
    assert value.right.op == "<<"


def test_precedence_xor_between_and_or():
    value = parse("int x; x = 1 | 2 ^ 3 & 4;").body[0].value
    assert value.op == "|"
    assert value.right.op == "^"
    assert value.right.right.op == "&"


def test_comparison_precedence():
    value = parse("int x; x = 1 + 2 < 3 + 4;").body[0].value
    assert value.op == "<"
    assert value.left.op == "+"


def test_parentheses_override():
    value = parse("int x; x = (1 | 2) << 3;").body[0].value
    assert value.op == "<<"
    assert value.left.op == "|"


def test_unary_operators():
    value = parse("int x; x = -~!1;").body[0].value
    assert isinstance(value, Unary) and value.op == "-"
    assert value.operand.op == "~"
    assert value.operand.operand.op == "!"


def test_if_else_chain():
    program = parse("""
    int x;
    if (x < 1) { x = 1; } else if (x < 2) { x = 2; } else { x = 3; }
    """)
    stmt = program.body[0]
    assert isinstance(stmt, If)
    nested = stmt.else_body[0]
    assert isinstance(nested, If)
    assert len(nested.else_body) == 1


def test_if_without_braces():
    program = parse("int x; if (x) x = 1;")
    assert len(program.body[0].then_body) == 1


def test_while_loop():
    program = parse("int i; while (i < 10) { i = i + 1; }")
    assert isinstance(program.body[0], While)


def test_for_loop_full():
    program = parse("int i; int s; for (i = 0; i < 8; i = i + 1) { s = s + i; }")
    stmt = program.body[0]
    assert isinstance(stmt, For)
    assert stmt.init is not None and stmt.cond is not None \
        and stmt.step is not None


def test_for_loop_empty_clauses():
    program = parse("int i; for (;;) { i = 1; }")
    stmt = program.body[0]
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_marker_statement():
    program = parse("__marker(7);")
    assert isinstance(program.body[0], Marker)


def test_insecure_block():
    program = parse("""
    int x;
    __insecure {
        x = 1;
        x = 2;
    }
    """)
    block = program.body[0]
    assert isinstance(block, InsecureBlock)
    assert len(block.body) == 2


def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse("int x; x = 1")


def test_error_includes_line():
    with pytest.raises(ParseError) as info:
        parse("int x;\nx = ;")
    assert "line 2" in str(info.value)


def test_decls_interleaved_with_statements():
    program = parse("int x; x = 1; int y; y = x;")
    assert len(program.decls) == 2
    assert len(program.body) == 2
