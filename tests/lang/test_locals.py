"""Local (static) declarations inside function bodies."""

import pytest

from repro.lang.compiler import compile_source
from repro.lang.parser import parse
from repro.lang.semantics import SemanticError, analyze
from repro.machine.cpu import run_to_halt


def run(source, masking="none", optimize=0, inputs=None, out="out"):
    compiled = compile_source(source, masking=masking, optimize=optimize)
    cpu = run_to_halt(compiled.program, inputs=inputs)
    return cpu.read_symbol_words(out, 1)


def test_local_scalar_with_initializer():
    assert run("""
    int f(int x) {
        int t = x + 1;
        return t << 1;
    }
    int out;
    out = f(4);
    """) == [10]


def test_initializer_runs_every_call():
    assert run("""
    int f(int x) {
        int acc = 0;         // must re-run per call (not once)
        acc = acc + x;
        return acc;
    }
    int out;
    out = f(3) + f(4);       // 3 + 4, not 3 + 7
    """) == [7]


def test_local_array():
    assert run("""
    int swap_halves(int x) {
        int buf[2];
        buf[0] = x & 0xFFFF;
        buf[1] = x >> 16;
        return (buf[0] << 16) | buf[1];
    }
    int out;
    out = swap_halves(0x12345678);
    """) == [0x56781234]


def test_locals_isolated_between_functions():
    assert run("""
    int f(int x) {
        int t = x + 1;
        return t;
    }
    int g(int x) {
        int t = x + 100;     // distinct storage from f's t
        return t;
    }
    int out;
    out = f(1) + g(1);
    """) == [2 + 101]


def test_local_shadows_global():
    assert run("""
    int t = 999;
    int f(int x) {
        int t = x;
        return t + 1;
    }
    int out;
    out = f(5) + t;          // global t untouched
    """) == [6 + 999]


def test_duplicate_local_rejected():
    with pytest.raises(SemanticError):
        analyze(parse("""
        int f(int x) {
            int t;
            int t;
            return t;
        }
        """))


def test_local_conflicting_with_param_rejected():
    with pytest.raises(SemanticError):
        analyze(parse("""
        int f(int x) {
            int x;
            return x;
        }
        """))


def test_local_array_initializer_not_allowed():
    from repro.lang.parser import ParseError

    with pytest.raises(ParseError):
        parse("int f(int x) { int a[2] = {1, 2}; return x; }")


def test_decl_statement_in_main_nested_block():
    assert run("""
    int cond = 1;
    int out;
    if (cond) {
        int t;
        t = 5;
        out = t;
    }
    """) == [5]


def test_taint_through_locals():
    compiled = compile_source("""
    secure int k;
    int out;
    int f(int x) {
        int t = x ^ 1;
        return t;
    }
    out = f(k);
    """, masking="selective")
    assert "f$t" in compiled.slice.tainted_vars
    assert "out" in compiled.slice.tainted_vars


@pytest.mark.parametrize("optimize", [0, 1, 2])
def test_locals_at_all_levels(optimize):
    source = """
    int poly(int x) {
        int squareish = (x << 1) + x;
        int result = squareish + 7;
        return result;
    }
    int out;
    out = poly(5);
    """
    assert run(source, optimize=optimize) == [5 * 3 + 7]
