"""Compile-and-run tests: SecureC semantics on the simulated machine.

Includes a property test that generates random expression trees and checks
the simulated result against direct Python evaluation — the strongest
correctness check we have on the whole compiler + pipeline stack.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.compiler import compile_source
from repro.machine.cpu import run_to_halt

WORD = 0xFFFF_FFFF


def run(source, masking="selective", inputs=None, out="out", count=1):
    compiled = compile_source(source, masking=masking)
    cpu = run_to_halt(compiled.program, inputs=inputs)
    return cpu.read_symbol_words(out, count)


def test_constant_assignment():
    assert run("int out; out = 42;") == [42]


def test_arithmetic():
    assert run("int out; out = 10 + 5 - 3;") == [12]


def test_wrapping_subtraction():
    assert run("int out; out = 0 - 1;") == [WORD]


def test_bitwise_ops():
    # & binds tighter than ^ binds tighter than | (C-style).
    assert run("int out; out = (0xF0 | 0x0F) & 0x3C ^ 0xFF;") == \
        [((0xF0 | 0x0F) & 0x3C) ^ 0xFF]
    assert run("int out; out = 0xF0 | 0x0F & 0x3C ^ 0xFF;") == \
        [0xF0 | ((0x0F & 0x3C) ^ 0xFF)]


def test_shifts():
    assert run("int out; out = 1 << 31;") == [0x8000_0000]
    assert run("int out; out = 0x80000000 >> 31;") == [1]  # logical


def test_comparisons():
    assert run("int out; out = 3 < 5;") == [1]
    assert run("int out; out = 5 <= 5;") == [1]
    assert run("int out; out = 5 > 5;") == [0]
    assert run("int out; out = 5 >= 6;") == [0]
    assert run("int out; out = 4 == 4;") == [1]
    assert run("int out; out = 4 != 4;") == [0]


def test_logical_ops():
    assert run("int out; out = 7 && 2;") == [1]
    assert run("int out; out = 0 && 2;") == [0]
    assert run("int out; out = 0 || 9;") == [1]
    assert run("int out; out = 0 || 0;") == [0]


def test_unary():
    assert run("int out; out = -5;") == [(-5) & WORD]
    assert run("int out; out = ~0;") == [WORD]
    assert run("int out; out = !3;") == [0]
    assert run("int out; out = !0;") == [1]


def test_if_else():
    source = """
    int x = 4;
    int out;
    if (x > 3) { out = 1; } else { out = 2; }
    """
    assert run(source) == [1]


def test_nested_if():
    source = """
    int x = 2;
    int out;
    if (x == 1) { out = 10; }
    else if (x == 2) { out = 20; }
    else { out = 30; }
    """
    assert run(source) == [20]


def test_while_loop():
    source = """
    int out = 0;
    int i = 0;
    while (i < 5) { out = out + i; i = i + 1; }
    """
    assert run(source) == [10]


def test_for_loop_array_sum():
    source = """
    const int values[5] = {3, 1, 4, 1, 5};
    int out = 0;
    int i;
    for (i = 0; i < 5; i = i + 1) { out = out + values[i]; }
    """
    assert run(source) == [14]


def test_array_write_then_read():
    source = """
    int buf[8];
    int out;
    int i;
    for (i = 0; i < 8; i = i + 1) { buf[i] = i << 1; }
    out = buf[5];
    """
    assert run(source) == [10]


def test_nested_index_expression():
    source = """
    const int perm[4] = {2, 0, 3, 1};
    const int data[4] = {10, 20, 30, 40};
    int out;
    out = data[perm[0]];
    """
    assert run(source) == [30]


def test_inputs_via_symbols():
    source = """
    secure int key[4];
    int out = 0;
    int i;
    for (i = 0; i < 4; i = i + 1) { out = (out << 1) | key[i]; }
    """
    assert run(source, inputs={"key": [1, 0, 1, 1]}) == [0b1011]


def test_masking_does_not_change_results():
    source = """
    secure int key[4];
    const int table[64] = {5, 6, 7, 8};
    int out;
    out = table[key[0] + key[1]] ^ key[2];
    """
    inputs = {"key": [1, 1, 1, 0]}
    results = {masking: run(source, masking=masking, inputs=inputs)
               for masking in ("none", "annotate-only", "selective")}
    assert len(set(tuple(r) for r in results.values())) == 1
    assert results["selective"] == [7 ^ 1]


def test_insecure_block_execution():
    source = """
    secure int k;
    int out;
    __insecure { out = k + 1; }
    """
    assert run(source, inputs={"k": [9]}) == [10]


def test_marker_values_in_order():
    source = """
    int i;
    __marker(1);
    for (i = 0; i < 3; i = i + 1) { __marker(10 + i); }
    __marker(2);
    """
    compiled = compile_source(source)
    cpu = run_to_halt(compiled.program)
    values = [v for _, v in cpu.pipeline.markers]
    assert values == [1, 10, 11, 12, 2]


# ---------------------------------------------------------------------------
# Property: random expressions match Python evaluation
# ---------------------------------------------------------------------------


def eval_expr(node):
    """Python reference semantics for generated expressions."""
    kind = node[0]
    if kind == "lit":
        return node[1] & WORD
    a = eval_expr(node[1])
    if kind == "neg":
        return (-a) & WORD
    if kind == "not":
        return (~a) & WORD
    b = eval_expr(node[2])
    if kind == "+":
        return (a + b) & WORD
    if kind == "-":
        return (a - b) & WORD
    if kind == "&":
        return a & b
    if kind == "|":
        return a | b
    if kind == "^":
        return a ^ b
    if kind == "<<":
        return (a << (b & 31)) & WORD
    if kind == ">>":
        return (a & WORD) >> (b & 31)
    raise AssertionError(kind)


def render(node):
    kind = node[0]
    if kind == "lit":
        return str(node[1])
    if kind == "neg":
        return f"(-{render(node[1])})"
    if kind == "not":
        return f"(~{render(node[1])})"
    return f"({render(node[1])} {kind} {render(node[2])})"


def exprs(depth):
    literal = st.tuples(st.just("lit"),
                        st.integers(min_value=0, max_value=0xFFFF))
    if depth == 0:
        return literal
    sub = exprs(depth - 1)
    shift_amount = st.tuples(st.just("lit"),
                             st.integers(min_value=0, max_value=31))
    return st.one_of(
        literal,
        st.tuples(st.sampled_from(["+", "-", "&", "|", "^"]), sub, sub),
        st.tuples(st.sampled_from(["<<", ">>"]), sub, shift_amount),
        st.tuples(st.just("neg"), sub),
        st.tuples(st.just("not"), sub),
    )


@settings(max_examples=30, deadline=None)
@given(tree=exprs(3))
def test_random_expressions_match_python(tree):
    source = f"int out; out = {render(tree)};"
    assert run(source, masking="none") == [eval_expr(tree)]


@settings(max_examples=15, deadline=None)
@given(tree=exprs(2), key=st.integers(min_value=0, max_value=0xFFFF))
def test_random_expressions_with_secure_operand(tree, key):
    """Mixing a secure variable into the expression must not change the
    computed value, only the instructions selected."""
    source = f"secure int k; int out; out = ({render(tree)}) ^ k;"
    expected = eval_expr(tree) ^ key
    assert run(source, inputs={"k": [key]}) == [expected]
