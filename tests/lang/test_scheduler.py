"""Instruction scheduler: dependency safety and stall reduction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.lang.compiler import compile_source
from repro.lang.scheduler import schedule_program
from repro.machine.cpu import run_to_halt


def run_program(program, inputs=None):
    cpu = run_to_halt(program, inputs=inputs)
    return cpu


def test_schedule_preserves_results():
    program = assemble("""
    .data
    a: .word 5
    b: .word 7
    out: .word 0, 0
    .text
    lw $t0, a
    addiu $t1, $t0, 1
    lw $t2, b
    addiu $t3, $t2, 2
    addu $t4, $t1, $t3
    la $t9, out
    sw $t4, 0($t9)
    halt
    """)
    base = run_program(program).read_symbol_words("out", 1)
    scheduled = schedule_program(program)
    assert run_program(scheduled).read_symbol_words("out", 1) == base == [15]


def test_schedule_reduces_stalls():
    program = assemble("""
    .data
    a: .word 5
    b: .word 7
    out: .word 0
    .text
    lw $t0, a
    addiu $t1, $t0, 1     # load-use on $t0
    lw $t2, b
    addiu $t3, $t2, 2     # load-use on $t2
    addu $t4, $t1, $t3
    la $t9, out
    sw $t4, 0($t9)
    halt
    """)
    base_cycles = run_program(program).cycles
    scheduled_cycles = run_program(schedule_program(program)).cycles
    assert scheduled_cycles < base_cycles


def test_store_load_order_preserved():
    """A store followed by a load of the same address must not reorder."""
    program = assemble("""
    .data
    x: .word 1
    out: .word 0
    .text
    la $t9, x
    li $t0, 42
    sw $t0, 0($t9)
    lw $t1, 0($t9)
    la $t8, out
    sw $t1, 0($t8)
    halt
    """)
    scheduled = schedule_program(program)
    assert run_program(scheduled).read_symbol_words("out", 1) == [42]


def test_load_store_order_preserved():
    """A load before a store of the same address must still read the old
    value."""
    program = assemble("""
    .data
    x: .word 11
    out: .word 0
    .text
    la $t9, x
    la $t8, out
    lw $t0, 0($t9)
    li $t1, 99
    sw $t1, 0($t9)
    sw $t0, 0($t8)
    halt
    """)
    scheduled = schedule_program(program)
    assert run_program(scheduled).read_symbol_words("out", 1) == [11]


def test_branch_stays_at_block_end():
    program = assemble("""
    .data
    out: .word 0
    .text
    li $t0, 3
    li $t1, 0
    loop:
    addiu $t1, $t1, 1
    addiu $t0, $t0, -1
    bgtz $t0, loop
    la $t9, out
    sw $t1, 0($t9)
    halt
    """)
    scheduled = schedule_program(program)
    assert run_program(scheduled).read_symbol_words("out", 1) == [3]
    # Control transfers remain block terminators.
    for index, ins in enumerate(scheduled.text[:-1]):
        if ins.spec.is_branch:
            following = scheduled.text[index + 1]
            assert not following.spec.is_branch or True  # structure intact


def test_labels_not_crossed():
    """Instruction counts per block are preserved so no address moves."""
    program = assemble("""
    .data
    out: .word 0
    .text
    li $t0, 1
    beq $t0, $zero, skip
    li $t1, 2
    li $t2, 3
    skip:
    la $t9, out
    sw $t2, 0($t9)
    halt
    """)
    scheduled = schedule_program(program)
    assert len(scheduled.text) == len(program.text)
    assert scheduled.symbols == program.symbols
    assert run_program(scheduled).read_symbol_words("out", 1) == \
        run_program(program).read_symbol_words("out", 1)


def test_markers_keep_relative_order():
    program = assemble("""
    li $t0, 1
    li $at, 0xFF00
    sw $t0, 0($at)
    li $t1, 2
    sw $t1, 0($at)
    halt
    """)
    scheduled = schedule_program(program)
    cpu = run_program(scheduled)
    values = [v for _, v in cpu.pipeline.markers]
    assert values == [1, 2]


def test_scheduled_masked_unmasked_stay_aligned():
    source = """
    secure int k;
    int out;
    int i;
    for (i = 0; i < 8; i = i + 1) { out = (out ^ k) + i; }
    """
    masked = compile_source(source, masking="selective", optimize=2)
    unmasked = compile_source(source, masking="none", optimize=2)
    cpu_m = run_to_halt(masked.program, inputs={"k": [3]})
    cpu_u = run_to_halt(unmasked.program, inputs={"k": [3]})
    assert cpu_m.cycles == cpu_u.cycles
    assert cpu_m.read_symbol_words("out", 1) == \
        cpu_u.read_symbol_words("out", 1)


@settings(max_examples=20, deadline=None)
@given(values=st.lists(st.integers(min_value=0, max_value=0xFFFF),
                       min_size=2, max_size=6),
       seed=st.integers(min_value=0, max_value=3))
def test_random_programs_equivalent_property(values, seed):
    """Random straight-line programs: schedule never changes semantics."""
    ops = ["+", "^", "&", "|", "-"]
    lines = [f"int v{i} = {v};" for i, v in enumerate(values)]
    lines.append("int out;")
    expr = f"v0"
    for i in range(1, len(values)):
        expr = f"(({expr}) {ops[(i + seed) % len(ops)]} v{i})"
    lines.append(f"out = {expr};")
    source = "\n".join(lines)
    base = compile_source(source, masking="none", optimize=1)
    scheduled = compile_source(source, masking="none", optimize=2)
    r1 = run_to_halt(base.program).read_symbol_words("out", 1)
    r2 = run_to_halt(scheduled.program).read_symbol_words("out", 1)
    assert r1 == r2
