"""Code generation: secure selection, data layout, allocation."""

import pytest

from repro.lang.codegen import CodegenOptions
from repro.lang.compiler import compile_source


def asm_of(source, masking="selective", options=None):
    return compile_source(source, masking=masking, options=options).assembly


def test_secure_load_store_selection():
    asm = asm_of("""
    secure int k;
    int x;
    x = k;
    """)
    assert "slw" in asm
    assert "ssw" in asm


def test_secure_xor_selection():
    asm = asm_of("secure int k; int x; x = k ^ 3;")
    assert "sxor" in asm


def test_secure_shift_selection():
    asm = asm_of("secure int k; int x; x = k << 2;")
    assert "ssllv" in asm


def test_secure_indexed_load_selection():
    asm = asm_of("""
    secure int k;
    const int table[64] = {7};
    int out;
    out = table[k];
    """)
    assert "silw" in asm
    assert "ssll" in asm      # index scaling masked
    assert "s.addu" in asm    # address formation masked


def test_generic_secure_alu():
    asm = asm_of("secure int k; int x; x = k + 1;")
    assert "s.addu" in asm


def test_generic_secure_alu_can_be_disabled():
    options = CodegenOptions(secure_tainted_alu=False)
    asm = asm_of("secure int k; int x; x = k + 1;", options=options)
    assert "s.addu" not in asm
    assert "slw" in asm  # loads still secured


def test_masking_none_emits_no_secure_ops():
    asm = asm_of("""
    secure int k;
    const int table[64] = {7};
    int out;
    out = table[k] ^ k;
    """, masking="none")
    for mnemonic in ("slw", "ssw", "sxor", "silw", "s."):
        assert mnemonic not in asm


def test_masking_modes_emit_same_instruction_count():
    """Policies only flip secure bits, so traces stay cycle-aligned."""
    source = """
    secure int k;
    const int table[64] = {7};
    int out;
    int i;
    for (i = 0; i < 4; i = i + 1) { out = table[k] ^ k; }
    """
    lengths = {masking: len(compile_source(source, masking=masking)
                            .program.text)
               for masking in ("none", "annotate-only", "selective")}
    assert len(set(lengths.values())) == 1


def test_aligned_array_for_secure_index():
    result = compile_source("""
    secure int k;
    const int table[64] = {1, 2, 3};
    int out;
    out = table[k];
    """)
    assert ".align 8" in result.assembly  # 64 words = 256 bytes = 2^8
    base = result.program.address_of("table")
    assert base % 256 == 0


def test_unaligned_when_index_public():
    result = compile_source("""
    const int table[64] = {1, 2, 3};
    int out;
    int i;
    out = table[i];
    """)
    assert ".align" not in result.assembly


def test_data_layout_inits_and_space():
    result = compile_source("""
    int a = 7;
    const int t[3] = {1, 2, 3};
    int buf[4];
    a = t[0];
    """, masking="none")
    program = result.program
    assert ".space 16" in result.assembly
    cpu_words = program.data
    a_index = (program.address_of("a") - program.data_base) // 4
    assert cpu_words[a_index] == 7


def test_marker_codegen():
    asm = asm_of("__marker(9);")
    assert "65280" in asm  # 0xFF00


def test_deep_expression_within_register_budget():
    # 16 nested additions: must allocate without spilling or failing.
    expr = " + ".join(str(i) for i in range(16))
    asm = asm_of(f"int x; x = {expr};", masking="none")
    assert "addu" in asm


def test_branch_and_labels_emitted():
    asm = asm_of("int i; for (i = 0; i < 4; i = i + 1) { }",
                 masking="none")
    assert "beq" in asm
    assert "$Lfor" in asm
    assert "j $Lfor" in asm


def test_halt_emitted_at_end():
    asm = asm_of("int x; x = 1;", masking="none")
    assert asm.rstrip().endswith("halt")


def test_secure_static_fraction_increases_with_masking():
    source = """
    secure int k;
    int x;
    int i;
    for (i = 0; i < 4; i = i + 1) { x = k ^ x; }
    """
    none_frac = compile_source(source, masking="none").secure_static_fraction
    sel_frac = compile_source(source,
                              masking="selective").secure_static_fraction
    assert none_frac == 0.0
    assert sel_frac > 0.0


def test_loc_directives_thread_source_lines_and_slice():
    source = """secure int k;
int out;
out = k ^ 5;
"""
    asm = asm_of(source)
    assert ".loc 3 1" in asm  # the sliced assignment on source line 3
    assert ".loc 0 0" in asm  # debug state cleared before the epilogue
    program = compile_source(source, masking="selective").program
    lines = {ins.source_line for ins in program.text
             if ins.source_line is not None}
    assert 3 in lines
    assert any(ins.sliced for ins in program.text)
    # Every sliced instruction maps to a source line, never orphaned.
    assert all(ins.source_line is not None
               for ins in program.text if ins.sliced)


def test_loc_emission_can_be_disabled():
    source = "secure int k; int out; out = k ^ 5;"
    asm = asm_of(source, options=CodegenOptions(emit_debug=False))
    assert ".loc" not in asm
    program = compile_source(
        source, masking="selective",
        options=CodegenOptions(emit_debug=False)).program
    assert all(ins.source_line is None for ins in program.text)


def test_loc_survives_the_o2_scheduler():
    source = """secure int k;
int out;
out = k ^ 5;
"""
    program = compile_source(source, masking="selective",
                             optimize=2).program
    assert any(ins.sliced and ins.source_line == 3
               for ins in program.text)
