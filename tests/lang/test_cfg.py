"""Control-flow graph construction."""

import pytest

from repro.lang.cfg import CFG
from repro.lang.lowering import lower
from repro.lang.parser import parse
from repro.lang.semantics import analyze


def build(source):
    ast = parse(source)
    table = analyze(ast)
    code = lower(ast, table)
    return code, CFG(code)


def test_straightline_single_block():
    code, cfg = build("int x; x = 1; x = 2;")
    assert len(cfg.blocks) == 1
    assert cfg.blocks[0].start == 0
    assert cfg.blocks[0].end == len(code)
    assert cfg.edge_count == 0


def test_if_produces_diamondish_shape():
    _, cfg = build("int x; if (x) { x = 1; }")
    # entry (cond+branch), then-body, join label.
    assert len(cfg.blocks) == 3
    entry = cfg.blocks[0]
    assert sorted(entry.successors) == [1, 2]


def test_if_else_shape():
    _, cfg = build("int x; if (x) { x = 1; } else { x = 2; }")
    # entry, then, else, join.
    assert len(cfg.blocks) == 4
    join = cfg.blocks[-1]
    assert len(join.predecessors) == 2


def test_loop_back_edge():
    _, cfg = build("int i; while (i) { i = 0; }")
    labels = {block.label: block.index for block in cfg.blocks
              if block.label}
    head_index = min(index for label, index in labels.items()
                     if label.startswith("$Lloop"))
    # Some block jumps back to the loop head.
    assert any(head_index in block.successors
               for block in cfg.blocks if block.index != head_index - 1)


def test_edge_count_positive_for_branches():
    _, cfg = build("int i; for (i = 0; i < 3; i = i + 1) { }")
    assert cfg.edge_count >= 3


def test_block_of():
    code, cfg = build("int x; if (x) { x = 1; }")
    block = cfg.block_of(0)
    assert block.start <= 0 < block.end
    with pytest.raises(IndexError):
        cfg.block_of(len(code) + 5)


def test_jump_to_unknown_label_raises():
    from repro.lang.ir import Jump

    with pytest.raises(ValueError):
        CFG([Jump(target="nowhere")])


def test_instructions_accessor():
    code, cfg = build("int x; x = 1;")
    assert cfg.blocks[0].instructions(code) == code
