"""SecureC tokenizer."""

import pytest

from repro.lang.lexer import LexError, Token, tokenize


def toks(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


def test_empty_source_yields_only_eof():
    tokens = list(tokenize(""))
    assert tokens == [Token("eof", "", 1)]


def test_numbers_decimal_and_hex():
    assert toks("42 0x2A") == [("number", "42"), ("number", "0x2A")]


def test_names_and_keywords():
    assert toks("int x secure const") == [
        ("keyword", "int"), ("name", "x"), ("keyword", "secure"),
        ("keyword", "const")]


def test_intrinsics_are_keywords():
    assert toks("__marker __insecure") == [
        ("keyword", "__marker"), ("keyword", "__insecure")]


def test_multichar_operators_maximal_munch():
    assert toks("a <<= b") == [("name", "a"), ("op", "<<"), ("op", "="),
                               ("name", "b")]
    assert toks("a <= b") == [("name", "a"), ("op", "<="), ("name", "b")]
    assert toks("a << b") == [("name", "a"), ("op", "<<"), ("name", "b")]


def test_line_comments_stripped():
    assert toks("a // comment\nb") == [("name", "a"), ("name", "b")]


def test_block_comments_stripped():
    assert toks("a /* multi\nline */ b") == [("name", "a"), ("name", "b")]


def test_line_numbers_tracked():
    tokens = list(tokenize("a\nb\n\nc"))
    lines = {t.text: t.line for t in tokens if t.kind == "name"}
    assert lines == {"a": 1, "b": 2, "c": 4}


def test_line_numbers_after_block_comment():
    tokens = list(tokenize("/* one\ntwo */ x"))
    assert [t.line for t in tokens if t.text == "x"] == [2]


def test_unknown_character_raises():
    with pytest.raises(LexError):
        list(tokenize("a @ b"))


def test_all_operators_recognized():
    ops = "+ - & | ^ ~ ! < > = ( ) [ ] { } ; , << >> <= >= == != && ||"
    tokens = toks(ops)
    assert all(kind == "op" for kind, _ in tokens)
    assert len(tokens) == len(ops.split())
