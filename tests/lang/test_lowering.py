"""AST -> IR lowering: shapes and operator expansion."""

from repro.lang.ir import (Bin, BinOp, BranchZero, Const, Jump, Label,
                           LoadArr, LoadVar, MarkerOp, StoreArr, StoreVar,
                           format_ir)
from repro.lang.lowering import lower
from repro.lang.parser import parse
from repro.lang.semantics import analyze


def lower_source(source):
    ast = parse(source)
    table = analyze(ast)
    return lower(ast, table)


def ops(code):
    return [type(instr).__name__ for instr in code]


def test_simple_assignment():
    code = lower_source("int x; x = 5;")
    assert ops(code) == ["Const", "StoreVar"]


def test_var_to_var_assignment():
    code = lower_source("int x; int y; y = x;")
    assert ops(code) == ["LoadVar", "StoreVar"]


def test_array_load_store():
    code = lower_source("int a[4]; int i; a[i] = a[i];")
    kinds = ops(code)
    assert kinds.count("LoadArr") == 1
    assert kinds.count("StoreArr") == 1


def test_binary_add():
    code = lower_source("int x; x = 1 + 2;")
    bins = [i for i in code if isinstance(i, Bin)]
    assert bins[0].op is BinOp.ADD


def test_comparison_lt_gt():
    code = lower_source("int x; x = 1 < 2;")
    assert [i.op for i in code if isinstance(i, Bin)] == [BinOp.SLT]
    code = lower_source("int x; x = 1 > 2;")
    assert [i.op for i in code if isinstance(i, Bin)] == [BinOp.SLT]


def test_le_ge_use_slt_xor():
    code = lower_source("int x; x = 1 <= 2;")
    assert [i.op for i in code if isinstance(i, Bin)] == [BinOp.SLT,
                                                          BinOp.XOR]


def test_eq_ne():
    code = lower_source("int x; x = 1 == 2;")
    assert [i.op for i in code if isinstance(i, Bin)] == [BinOp.XOR,
                                                          BinOp.SLTU]
    code = lower_source("int x; x = 1 != 2;")
    assert [i.op for i in code if isinstance(i, Bin)] == [BinOp.XOR,
                                                          BinOp.SLTU]


def test_unary_lowering():
    code = lower_source("int x; x = -1;")
    assert [i.op for i in code if isinstance(i, Bin)] == [BinOp.SUB]
    code = lower_source("int x; x = ~1;")
    assert [i.op for i in code if isinstance(i, Bin)] == [BinOp.NOR]
    code = lower_source("int x; x = !1;")
    assert [i.op for i in code if isinstance(i, Bin)] == [BinOp.SLTU]


def test_if_produces_branch_and_label():
    code = lower_source("int x; if (x) { x = 1; }")
    kinds = ops(code)
    assert "BranchZero" in kinds
    assert "Label" in kinds
    assert "Jump" not in kinds  # no else -> single label


def test_if_else_produces_jump():
    code = lower_source("int x; if (x) { x = 1; } else { x = 2; }")
    kinds = ops(code)
    assert kinds.count("Label") == 2
    assert kinds.count("Jump") == 1


def test_while_shape():
    code = lower_source("int i; while (i) { i = 0; }")
    kinds = ops(code)
    assert kinds.count("Label") == 2
    assert kinds.count("Jump") == 1
    assert kinds.count("BranchZero") == 1


def test_for_shape():
    code = lower_source("int i; for (i = 0; i < 4; i = i + 1) { }")
    kinds = ops(code)
    assert kinds[0] == "Const"     # init value
    assert kinds[1] == "StoreVar"  # init store
    assert "BranchZero" in kinds
    assert "Jump" in kinds


def test_marker_lowering():
    code = lower_source("__marker(3);")
    assert ops(code) == ["Const", "MarkerOp"]


def test_insecure_block_flags_instructions():
    code = lower_source("""
    int x;
    x = 1;
    __insecure { x = 2; }
    x = 3;
    """)
    flags = [instr.declassified for instr in code]
    # Exactly the middle statement's two instructions are declassified.
    assert flags == [False, False, True, True, False, False]


def test_temps_single_assignment():
    code = lower_source("int x; x = (1 + 2) + (3 + 4);")
    defined = [i.dest for i in code if isinstance(i, (Const, Bin))]
    assert len(defined) == len(set(defined))


def test_format_ir_smoke():
    code = lower_source("int a[2]; int i; if (i < 2) { a[i] = i; }")
    text = format_ir(code)
    assert "load i" in text
    assert "bz" in text
    assert "store a[" in text


def test_logical_and_or():
    code = lower_source("int x; x = 1 && 2;")
    bin_ops = [i.op for i in code if isinstance(i, Bin)]
    assert BinOp.AND in bin_ops
    assert bin_ops.count(BinOp.SLTU) == 2  # two normalizations
    code = lower_source("int x; x = 1 || 2;")
    bin_ops = [i.op for i in code if isinstance(i, Bin)]
    assert BinOp.OR in bin_ops
