"""Forward slicing: taint propagation, index taint, diagnostics."""

from repro.lang.ir import Bin, LoadArr, LoadVar, StoreArr, StoreVar
from repro.lang.lowering import lower
from repro.lang.parser import parse
from repro.lang.semantics import analyze
from repro.lang.slicing import ForwardSlicer


def run_slice(source, propagate=True):
    ast = parse(source)
    table = analyze(ast)
    code = lower(ast, table)
    result = ForwardSlicer(code, table, propagate=propagate).run()
    return code, result


def test_seed_itself_tainted():
    _, result = run_slice("secure int k; int x; x = k;")
    assert "k" in result.tainted_vars
    assert "x" in result.tainted_vars


def test_untouched_var_not_tainted():
    _, result = run_slice("secure int k; int x; int y; x = k; y = 3;")
    assert "y" not in result.tainted_vars


def test_transitive_propagation():
    _, result = run_slice("""
    secure int k;
    int a; int b; int c;
    a = k ^ 1;
    b = a + 2;
    c = b << 1;
    """)
    assert {"a", "b", "c"} <= result.tainted_vars


def test_propagation_through_array():
    _, result = run_slice("""
    secure int k;
    int buf[4];
    int out;
    buf[0] = k;
    out = buf[3];
    """)
    assert "buf" in result.tainted_vars
    assert "out" in result.tainted_vars


def test_backward_flow_requires_fixpoint():
    """A later store taints an array read earlier in program order (the
    loop makes the early read see the late write)."""
    _, result = run_slice("""
    secure int k;
    int buf[4];
    int out;
    int i;
    for (i = 0; i < 2; i = i + 1) {
        out = buf[0];
        buf[0] = k;
    }
    """)
    assert "out" in result.tainted_vars
    assert result.passes >= 2


def test_critical_instructions_classified():
    code, result = run_slice("""
    secure int k;
    int x;
    int y;
    x = k ^ 1;
    y = 5;
    """)
    critical_kinds = {type(code[i]).__name__ for i in result.critical}
    assert "LoadVar" in critical_kinds   # load of k
    assert "Bin" in critical_kinds       # the xor
    assert "StoreVar" in critical_kinds  # store of x
    # The clean statement's instructions are not critical.
    clean_stores = [i for i, instr in enumerate(code)
                    if isinstance(instr, StoreVar) and instr.var == "y"]
    assert all(i not in result.critical for i in clean_stores)


def test_secret_index_flags_secure_indexed_load():
    code, result = run_slice("""
    secure int k;
    const int table[4] = {1, 2, 3, 4};
    int out;
    out = table[k];
    """)
    assert len(result.secure_index_loads) == 1
    position = next(iter(result.secure_index_loads))
    assert isinstance(code[position], LoadArr)
    assert code[position].secure_index
    # Loaded value is tainted even though the table is public.
    assert "out" in result.tainted_vars


def test_public_index_no_secure_indexing():
    _, result = run_slice("""
    secure int k;
    const int table[4] = {1, 2, 3, 4};
    int out;
    int i;
    out = table[i];
    """)
    assert not result.secure_index_loads


def test_secret_branch_diagnostic():
    _, result = run_slice("""
    secure int k;
    int x;
    if (k) { x = 1; }
    """)
    kinds = [d.kind for d in result.diagnostics]
    assert "secret-branch" in kinds


def test_secret_store_index_diagnostic():
    _, result = run_slice("""
    secure int k;
    int buf[64];
    buf[k] = 1;
    """)
    kinds = [d.kind for d in result.diagnostics]
    assert "secret-store-index" in kinds


def test_no_diagnostics_for_clean_des_style_code():
    _, result = run_slice("""
    secure int key[8];
    int c[8];
    int i;
    for (i = 0; i < 8; i = i + 1) { c[i] = key[i]; }
    """)
    assert result.diagnostics == []


def test_annotate_only_mode_misses_indirect():
    source = """
    secure int k;
    int a; int b;
    a = k;
    b = a;
    """
    code, sliced = run_slice(source)
    code2, direct = run_slice(source, propagate=False)
    # Sliced: both stores critical. Annotate-only: only the k load.
    sliced_stores = sum(1 for i in sliced.critical
                        if isinstance(code[i], StoreVar))
    direct_stores = sum(1 for i in direct.critical
                        if isinstance(code2[i], StoreVar))
    assert sliced_stores == 2
    assert direct_stores == 0
    direct_loads = [code2[i] for i in direct.critical
                    if isinstance(code2[i], LoadVar)]
    assert [ld.var for ld in direct_loads] == ["k"]


def test_declassified_instructions_never_critical():
    code, result = run_slice("""
    secure int k;
    int out;
    __insecure { out = k; }
    """)
    assert result.critical == frozenset()
    # Taint still propagates through the declassified region.
    assert "out" in result.tainted_vars


def test_const_never_tainted():
    code, result = run_slice("secure int k; int x; x = k; x = 5;")
    from repro.lang.ir import Const
    const_positions = [i for i, instr in enumerate(code)
                       if isinstance(instr, Const)]
    assert all(i not in result.critical for i in const_positions)


def test_cfg_edges_reported():
    _, result = run_slice("""
    secure int k;
    int i; int x;
    for (i = 0; i < 4; i = i + 1) { x = k; }
    """)
    assert result.cfg_edges > 0


def test_extra_seeds():
    ast = parse("int a; int b; b = a;")
    table = analyze(ast)
    code = lower(ast, table)
    result = ForwardSlicer(code, table).run(extra_seeds=frozenset({"a"}))
    assert "b" in result.tainted_vars
