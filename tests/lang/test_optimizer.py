"""IR optimizer: folding, identities, DCE, and end-to-end equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.compiler import compile_source
from repro.lang.ir import Bin, BinOp, Const, LoadVar, StoreVar, Temp
from repro.lang.lowering import lower
from repro.lang.optimizer import (eliminate_dead_code, fold_constants,
                                  optimize)
from repro.lang.parser import parse
from repro.lang.semantics import analyze
from repro.machine.cpu import run_to_halt


def ir_of(source):
    ast = parse(source)
    table = analyze(ast)
    return lower(ast, table)


def run(source, optimize_level, inputs=None, out="out"):
    compiled = compile_source(source, masking="none",
                              optimize=optimize_level)
    cpu = run_to_halt(compiled.program, inputs=inputs)
    return cpu.read_symbol_words(out, 1)


# -- constant folding -------------------------------------------------------


def test_fold_simple_add():
    code = optimize(ir_of("int x; x = 2 + 3;"))
    consts = [i for i in code if isinstance(i, Const)]
    assert [c.value for c in consts] == [5]
    assert not any(isinstance(i, Bin) for i in code)


def test_fold_nested_expression():
    code = optimize(ir_of("int x; x = (2 + 3) << (1 | 1);"))
    consts = [i for i in code if isinstance(i, Const)]
    assert consts[-1].value == 5 << 1


def test_fold_wraps_32_bits():
    code = optimize(ir_of("int x; x = 0xFFFFFFFF + 1;"))
    consts = [i for i in code if isinstance(i, Const)]
    assert consts[-1].value == 0


def test_fold_comparison():
    code = optimize(ir_of("int x; x = 3 < 5;"))
    consts = [i for i in code if isinstance(i, Const)]
    assert consts[-1].value == 1


def test_fold_signed_comparison():
    code = optimize(ir_of("int x; x = (0 - 1) < 0;"))
    consts = [i for i in code if isinstance(i, Const)]
    assert consts[-1].value == 1  # -1 < 0 signed


def test_no_fold_through_variables():
    code = optimize(ir_of("int y; int x; x = y + 3;"))
    assert any(isinstance(i, Bin) and i.op is BinOp.ADD for i in code)


# -- identities --------------------------------------------------------------


def test_add_zero_eliminated():
    code = optimize(ir_of("int y; int x; x = y + 0;"))
    assert not any(isinstance(i, Bin) for i in code)
    # The store now references the loaded value directly.
    load = next(i for i in code if isinstance(i, LoadVar))
    store = next(i for i in code if isinstance(i, StoreVar))
    assert store.src == load.dest


def test_xor_zero_or_zero_shift_zero():
    for expr in ("y ^ 0", "y | 0", "y << 0", "y >> 0", "y - 0", "0 + y"):
        code = optimize(ir_of(f"int y; int x; x = {expr};"))
        assert not any(isinstance(i, Bin) for i in code), expr


def test_sub_from_zero_not_identity():
    code = optimize(ir_of("int y; int x; x = 0 - y;"))
    assert any(isinstance(i, Bin) and i.op is BinOp.SUB for i in code)


# -- dead code ---------------------------------------------------------------


def test_unused_load_removed():
    code = ir_of("int y; int x; x = 1;")
    code.insert(0, LoadVar(dest=Temp(999), var="y"))
    cleaned = eliminate_dead_code(code)
    assert not any(isinstance(i, LoadVar) for i in cleaned)


def test_dce_cascades():
    # t1 = 1; t2 = t1 + 1; (t2 unused) -> both removed.
    code = [Const(dest=Temp(1), value=1),
            Bin(dest=Temp(2), op=BinOp.ADD, a=Temp(1), b=Temp(1))]
    assert eliminate_dead_code(code) == []


def test_stores_never_removed():
    code = optimize(ir_of("int x; x = 7;"))
    assert any(isinstance(i, StoreVar) for i in code)


# -- codegen immediates ------------------------------------------------------


def test_immediate_forms_selected():
    compiled = compile_source("""
    int i;
    int out;
    out = (i + 1) & 255;
    """, masking="none", optimize=1)
    assert "addiu" in compiled.assembly
    assert "andi" in compiled.assembly
    assert "li " not in compiled.assembly.replace("li $v0, 65280", "")


def test_immediate_shift():
    compiled = compile_source("int i; int out; out = i << 4;",
                              masking="none", optimize=1)
    assert "sll" in compiled.assembly
    assert "sllv" not in compiled.assembly


def test_large_constant_still_materialized():
    compiled = compile_source("int i; int out; out = i + 100000;",
                              masking="none", optimize=1)
    # 100000 does not fit a 16-bit immediate: materialized via li and a
    # register-form addu.
    assert "li $t1, 100000" in compiled.assembly
    assert "addu" in compiled.assembly
    # The assembled program expands li to lui+ori.
    assert any(ins.op == "lui" for ins in compiled.program.text)


def test_constant_array_index_folds_to_offset():
    compiled = compile_source("""
    int a[8];
    int out;
    a[3] = 7;
    out = a[3];
    """, masking="none", optimize=1)
    assert "a+12" in compiled.assembly
    assert "sll $v1" not in compiled.assembly


def test_secure_immediates_used_for_tainted_data():
    compiled = compile_source("""
    secure int k;
    int out;
    out = (k ^ 255) << 2;
    """, masking="selective", optimize=1)
    assert "sxori" in compiled.assembly
    assert "ssll" in compiled.assembly


def test_sub_constant_becomes_addiu_negative():
    compiled = compile_source("int i; int out; out = i - 5;",
                              masking="none", optimize=1)
    assert "addiu" in compiled.assembly
    assert ", -5" in compiled.assembly


# -- end-to-end equivalence --------------------------------------------------


@pytest.mark.parametrize("level", [1, 2])
def test_optimized_matches_unoptimized(level):
    source = """
    const int t[8] = {3, 1, 4, 1, 5, 9, 2, 6};
    int acc;
    int i;
    int out;
    acc = 0;
    for (i = 0; i < 8; i = i + 1) {
        acc = (acc << 1) ^ t[i] + 0;
    }
    out = acc | 0;
    """
    assert run(source, level) == run(source, 0)


def eval_tree(node):
    kind = node[0]
    if kind == "lit":
        return node[1] & 0xFFFF_FFFF
    a = eval_tree(node[1])
    b = eval_tree(node[2])
    if kind == "+":
        return (a + b) & 0xFFFF_FFFF
    if kind == "-":
        return (a - b) & 0xFFFF_FFFF
    if kind == "&":
        return a & b
    if kind == "|":
        return a | b
    if kind == "^":
        return a ^ b
    if kind == "<<":
        return (a << (b & 31)) & 0xFFFF_FFFF
    return a >> (b & 31)


def render(node):
    if node[0] == "lit":
        return str(node[1])
    return f"({render(node[1])} {node[0]} {render(node[2])})"


def trees(depth):
    literal = st.tuples(st.just("lit"),
                        st.integers(min_value=0, max_value=0xFFFF))
    if depth == 0:
        return literal
    sub = trees(depth - 1)
    shift = st.tuples(st.just("lit"), st.integers(min_value=0, max_value=31))
    return st.one_of(
        literal,
        st.tuples(st.sampled_from(["+", "-", "&", "|", "^"]), sub, sub),
        st.tuples(st.sampled_from(["<<", ">>"]), sub, shift))


@settings(max_examples=25, deadline=None)
@given(tree=trees(3), level=st.sampled_from([1, 2]))
def test_random_expression_equivalence(tree, level):
    source = f"int out; out = {render(tree)};"
    assert run(source, level) == [eval_tree(tree)]


@settings(max_examples=15, deadline=None)
@given(tree=trees(2), value=st.integers(min_value=0, max_value=0xFFFF),
       level=st.sampled_from([1, 2]))
def test_random_expression_with_variable(tree, value, level):
    source = f"int v; int out; out = ({render(tree)}) ^ (v + 1);"
    expected = eval_tree(tree) ^ ((value + 1) & 0xFFFF_FFFF)
    assert run(source, level, inputs={"v": [value]}) == [expected]
