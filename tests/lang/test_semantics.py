"""Semantic analysis: name/type errors and symbol table contents."""

import pytest

from repro.lang.parser import parse
from repro.lang.semantics import SemanticError, analyze


def check(source):
    return analyze(parse(source))


def test_symbol_table_contents():
    table = check("secure int key[64]; const int t[2] = {1, 2}; int x;")
    key = table.lookup("key", 0)
    assert key.is_array and key.secure and key.size == 64
    t = table.lookup("t", 0)
    assert t.const and t.init == [1, 2]
    x = table.lookup("x", 0)
    assert not x.is_array and x.size == 1


def test_secure_seeds():
    table = check("secure int k[8]; secure int s; int x;")
    assert sorted(table.secure_seeds()) == ["k", "s"]


def test_duplicate_declaration():
    with pytest.raises(SemanticError):
        check("int x; int x;")


def test_undeclared_variable():
    with pytest.raises(SemanticError):
        check("int x; x = y;")


def test_array_used_without_index():
    with pytest.raises(SemanticError):
        check("int a[4]; int x; x = a;")


def test_scalar_indexed():
    with pytest.raises(SemanticError):
        check("int x; int y; y = x[0];")


def test_assign_whole_array():
    with pytest.raises(SemanticError):
        check("int a[4]; a = 1;")


def test_assign_to_const():
    with pytest.raises(SemanticError):
        check("const int t[1] = {5}; t[0] = 1;")


def test_assign_to_const_scalar():
    with pytest.raises(SemanticError):
        check("const int c = 5; c = 1;")


def test_literal_out_of_range():
    with pytest.raises(SemanticError):
        check("int x; x = 4294967296;")


def test_array_size_inferred_from_init():
    table = check("int t[4] = {9, 9}; ")
    assert table.lookup("t", 0).size == 4


def test_errors_in_nested_statements_found():
    with pytest.raises(SemanticError):
        check("int i; for (i = 0; i < 4; i = i + 1) { undeclared = 1; }")
    with pytest.raises(SemanticError):
        check("int x; if (x) { x = bad; }")
    with pytest.raises(SemanticError):
        check("int x; while (x) { y = 1; }")
    with pytest.raises(SemanticError):
        check("__insecure { z = 1; }")


def test_marker_expression_checked():
    with pytest.raises(SemanticError):
        check("__marker(nothere);")
