"""Miscellaneous SecureC interactions: intrinsics in functions, nesting."""

import numpy as np
import pytest

from repro.harness.runner import run_with_trace
from repro.lang.compiler import compile_source
from repro.machine.cpu import run_to_halt


def run(source, masking="selective", inputs=None, out="out"):
    compiled = compile_source(source, masking=masking)
    cpu = run_to_halt(compiled.program, inputs=inputs)
    return compiled, cpu


def test_marker_inside_function():
    compiled, cpu = run("""
    int f(int x) {
        __marker(5);
        return x + 1;
    }
    int out;
    out = f(1) + f(2);
    """)
    values = [v for _, v in cpu.pipeline.markers]
    assert values == [5, 5]  # once per call


def test_insecure_block_inside_function():
    compiled, cpu = run("""
    secure int k;
    int out;
    int reveal(int x) {
        __insecure { return x; }
    }
    out = reveal(k);
    """, inputs={"k": [7]})
    assert cpu.read_symbol_words("out", 1) == [7]
    # The declassified return path stays insecure despite tainted data...
    assert "out" in compiled.slice.tainted_vars


def test_insecure_block_inside_loop():
    compiled, cpu = run("""
    secure int k;
    int trace_out[4];
    int t;
    int i;
    for (i = 0; i < 4; i = i + 1) {
        t = k ^ i;
        __insecure { trace_out[i] = t & 1; }
    }
    """, inputs={"k": [6]})
    assert cpu.read_symbol_words("trace_out", 4) == [0, 1, 0, 1]


def test_const_table_lookup_inside_function():
    compiled, cpu = run("""
    secure int k;
    const int T[8] = {9, 8, 7, 6, 5, 4, 3, 2};
    int out;
    int lookup(int x) {
        return T[x & 7];
    }
    out = lookup(k);
    """, inputs={"k": [3]})
    assert cpu.read_symbol_words("out", 1) == [6]
    assert "silw" in compiled.assembly  # secret-derived index in a function


def test_function_called_from_if_and_loop():
    _, cpu = run("""
    int calls;
    int bump(int x) {
        calls = calls + 1;
        return x;
    }
    int out;
    int i;
    for (i = 0; i < 3; i = i + 1) {
        if (i < 2) { out = out + bump(i); }
    }
    """, masking="none")
    assert cpu.read_symbol_words("calls", 1) == [2]
    assert cpu.read_symbol_words("out", 1) == [1]


def test_nested_insecure_blocks():
    compiled, cpu = run("""
    secure int k;
    int out;
    __insecure {
        __insecure { out = k; }
        out = out + k;
    }
    """, inputs={"k": [5]})
    assert cpu.read_symbol_words("out", 1) == [10]
    # Everything in the region compiled insecure.
    assert "slw" not in compiled.assembly


def test_marker_with_computed_value():
    _, cpu = run("""
    int i;
    for (i = 0; i < 3; i = i + 1) { __marker(100 + (i << 1)); }
    """, masking="none")
    assert [v for _, v in cpu.pipeline.markers] == [100, 102, 104]


def test_function_result_feeding_array_index():
    compiled, cpu = run("""
    secure int k;
    const int T[16] = {0, 10, 20, 30, 40, 50, 60, 70,
                       80, 90, 100, 110, 120, 130, 140, 150};
    int pick(int x) { return x & 15; }
    int out;
    out = T[pick(k)];
    """, inputs={"k": [7]})
    assert cpu.read_symbol_words("out", 1) == [70]
    assert "silw" in compiled.assembly


def test_masking_flat_through_function_and_insecure_mix():
    source = """
    secure int k;
    int out;
    int white(int x) { return (x ^ 0x33) << 1; }
    __marker(1);
    out = white(k) ^ white(k ^ 0xFF);
    __marker(2);
    __insecure { out = out & 0xFF; }
    """
    compiled = compile_source(source, masking="selective")
    traces = []
    for key in (0x00, 0xC3):
        result = run_with_trace(compiled.program, inputs={"k": [key]})
        traces.append(result.trace)
    diff = traces[0].diff(traces[1])
    start = traces[0].marker_cycles(1)[0]
    end = traces[0].marker_cycles(2)[0]
    assert np.abs(diff[start:end]).max() == 0.0
