"""Phase-marker values emitted by the generated DES programs.

Markers are stores to the pipeline's MARKER_ADDR; experiments use them to
window energy traces to the exact phases the paper's figures show (the
first round, the first key permutation, ...).
"""

from __future__ import annotations

M_IP_START = 1        #: initial permutation of the plaintext begins
M_IP_END = 2
M_KEYPERM_START = 3   #: PC-1 key permutation begins (paper Fig. 12 phase)
M_KEYPERM_END = 4
M_FP_START = 5        #: output inverse permutation begins
M_FP_END = 6
#: Round r (0-based) starts at marker M_ROUND_BASE + r.
M_ROUND_BASE = 10


def round_marker(round_index: int) -> int:
    """Marker value at the start of 0-based round ``round_index``."""
    if not 0 <= round_index < 16:
        raise ValueError(f"round index out of range: {round_index}")
    return M_ROUND_BASE + round_index
