"""Generated cipher workloads: DES (the paper) and AES-128 (extension)."""

from . import markers
from .aes_source import AesProgramSpec, FULL_AES, ROUND1_AES, aes_source
from .des_source import (DesProgramSpec, FULL_DES, KEYPERM_ONLY, ROUND1_DES,
                         des_source)
from .workloads import (aes_ciphertext_of, ciphertext_from_words,
                        ciphertext_of, compile_aes, compile_des, key_words,
                        plaintext_words, run_aes, run_des)

__all__ = [
    "AesProgramSpec", "DesProgramSpec", "FULL_AES", "FULL_DES",
    "KEYPERM_ONLY", "ROUND1_AES", "ROUND1_DES", "aes_ciphertext_of",
    "aes_source", "ciphertext_from_words", "ciphertext_of", "compile_aes",
    "compile_des", "des_source", "key_words", "markers", "plaintext_words",
    "run_aes", "run_des",
]
