"""Compiled DES workloads and their input/output encodings.

The generated program stores one DES bit per 32-bit memory word; the
helpers here convert 64-bit integers to/from that layout and run the
compiled program functionally for correctness checks.
"""

from __future__ import annotations

from functools import lru_cache

from ..aes.reference import int_to_state, state_to_int
from ..des.bitops import bits_to_int, int_to_bits
from ..lang.compiler import CompileResult, compile_source
from ..machine.cpu import CPU
from .aes_source import AesProgramSpec, aes_source
from .des_source import DesProgramSpec, des_source


def key_words(key64: int) -> list[int]:
    """64-bit key -> 64 words (MSB-first bits) for the ``key`` symbol."""
    return int_to_bits(key64, 64)


def plaintext_words(plaintext64: int) -> list[int]:
    """64-bit plaintext -> 64 words for the ``plaintext`` symbol."""
    return int_to_bits(plaintext64, 64)


def ciphertext_from_words(words: list[int]) -> int:
    """64 bit-words read from ``ciphertext`` -> 64-bit integer."""
    return bits_to_int([w & 1 for w in words])


@lru_cache(maxsize=32)
def compile_des(spec: DesProgramSpec = DesProgramSpec(),
                masking: str = "selective",
                optimize: int = 0) -> CompileResult:
    """Compile (and memoize) a DES program variant.

    ``masking`` is passed to the compiler: "selective" (the paper's
    scheme), "annotate-only" (no slicing, ablation), or "none" (baseline;
    also the starting point for the assembly-level whole-program policies).
    ``optimize`` selects the -O level (0 matches the paper's Figure 4
    code style and the calibrated experiments).
    """
    return compile_source(des_source(spec), masking=masking,
                          optimize=optimize)


def run_des(compiled: CompileResult, key64: int, plaintext64: int,
            tracker=None, max_cycles: int = 50_000_000) -> CPU:
    """Execute a compiled DES program on one (key, plaintext) pair."""
    cpu = CPU(compiled.program, tracker=tracker)
    cpu.write_symbol_words("key", key_words(key64))
    cpu.write_symbol_words("plaintext", plaintext_words(plaintext64))
    cpu.run(max_cycles=max_cycles)
    return cpu


def ciphertext_of(cpu: CPU) -> int:
    """Read the ciphertext produced by a finished DES run."""
    return ciphertext_from_words(cpu.read_symbol_words("ciphertext", 64))


# ---------------------------------------------------------------------------
# AES workloads (same secure-instruction scheme, different cipher)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=16)
def compile_aes(spec: AesProgramSpec = AesProgramSpec(),
                masking: str = "selective",
                optimize: int = 0) -> CompileResult:
    """Compile (and memoize) an AES-128 program variant."""
    return compile_source(aes_source(spec), masking=masking,
                          optimize=optimize)


def run_aes(compiled: CompileResult, key128: int, plaintext128: int,
            tracker=None, max_cycles: int = 50_000_000) -> CPU:
    """Execute a compiled AES program on one (key, plaintext) pair."""
    cpu = CPU(compiled.program, tracker=tracker)
    cpu.write_symbol_words("key", int_to_state(key128))
    cpu.write_symbol_words("plaintext", int_to_state(plaintext128))
    cpu.run(max_cycles=max_cycles)
    return cpu


def aes_ciphertext_of(cpu: CPU) -> int:
    """Read the 128-bit ciphertext produced by a finished AES run."""
    return state_to_int(cpu.read_symbol_words("ciphertext", 16))
