"""SecureC source generator for the DES encryption program.

The generated program follows the paper's Figure 2 structure exactly:

* initial permutation of the plaintext — *insecure* (no key involved);
* key permutation (PC-1) — secure;
* sixteen rounds, each containing the left-side operation, the key
  generation (rotations + PC-2), and the right-side operation
  (E, XOR with K, S-boxes via secure indexing, P) — all secure;
* output inverse permutation — *intentionally insecure* (it reveals only
  the information already available from the output cipher), expressed
  with the ``__insecure`` block.

The program operates on bit arrays (one bit per 32-bit word), the style of
the paper's Figure 4 loop ``for (i=0; i<32; i++) newL[i] = oldR[i];``.

Only ``key`` is annotated ``secure``; everything else is protected by the
compiler's forward slicing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..des.tables import E, FLAT_SBOXES, FP, IP, P, PC1, PC2, SHIFTS
from . import markers as mk


def _zero_based(table) -> list[int]:
    return [entry - 1 for entry in table]


def _array_literal(name: str, values, const: bool = True) -> str:
    body = ", ".join(str(v) for v in values)
    prefix = "const int" if const else "int"
    return f"{prefix} {name}[{len(values)}] = {{{body}}};"


@dataclass(frozen=True)
class DesProgramSpec:
    """Which pieces of the DES program to generate."""

    rounds: int = 16
    include_ip: bool = True
    include_keyschedule: bool = True
    include_fp: bool = True
    #: Emit phase markers (adds a handful of insecure instructions).
    emit_markers: bool = True
    #: Generate the decryption direction: the identical Feistel structure
    #: with the subkeys applied in reverse order (the per-round C/D
    #: rotation amounts become 0, 28-s16, 28-s15, ...).
    decrypt: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.rounds <= 16:
            raise ValueError("rounds must be in 0..16")
        if self.rounds > 0 and not self.include_keyschedule:
            raise ValueError("rounds need the key schedule")
        if self.decrypt and self.rounds != 16:
            raise ValueError("decryption requires the full 16 rounds")

    @property
    def shift_table(self) -> tuple[int, ...]:
        """Left-rotation amounts per round for this direction."""
        if not self.decrypt:
            return SHIFTS
        # Decrypt round 1 uses K16, whose C/D position equals the initial
        # PC-1 output (total encryption rotation is 28 = 0 mod 28); each
        # later round rotates right by the encryption schedule in reverse,
        # expressed here as an equivalent left rotation.
        amounts = [0] + [(28 - s) % 28 for s in reversed(SHIFTS[1:])]
        return tuple(amounts)


def _flat_sbox_words() -> list[int]:
    words: list[int] = []
    for table in FLAT_SBOXES:
        words.extend(table)
    return words


def des_source(spec: DesProgramSpec = DesProgramSpec()) -> str:
    """Generate the SecureC source for one DES program variant."""
    lines: list[str] = []
    emit = lines.append

    def marker(value: int) -> None:
        if spec.emit_markers:
            emit(f"__marker({value});")

    emit("// DES encryption, generated from repro.des.tables (FIPS 46-3).")
    emit("secure int key[64];")
    emit("int plaintext[64];")
    emit("int ciphertext[64];")
    emit(_array_literal("IP0", _zero_based(IP)))
    emit(_array_literal("FP0", _zero_based(FP)))
    emit(_array_literal("E0", _zero_based(E)))
    emit(_array_literal("P0", _zero_based(P)))
    emit(_array_literal("PC10", _zero_based(PC1)))
    emit(_array_literal("PC20", _zero_based(PC2)))
    emit(_array_literal("SHIFTS_T", spec.shift_table))
    emit(_array_literal("SBOX_T", _flat_sbox_words()))
    for name, size in (("L", 32), ("R", 32), ("C", 28), ("D", 28),
                       ("CT", 28), ("DT", 28), ("K", 48), ("ER", 48),
                       ("SOUT", 32), ("FOUT", 32)):
        emit(f"int {name}[{size}];")
    for scalar in ("i", "j", "p", "n", "r", "t", "v", "b", "base", "obase",
                   "s"):
        emit(f"int {scalar};")
    emit("")

    if spec.include_ip:
        emit("// ---- initial permutation (no key: stays insecure) ----")
        marker(mk.M_IP_START)
        emit("for (i = 0; i < 32; i = i + 1) { L[i] = plaintext[IP0[i]]; }")
        emit("for (i = 0; i < 32; i = i + 1) "
             "{ R[i] = plaintext[IP0[32 + i]]; }")
        marker(mk.M_IP_END)
        emit("")

    if spec.include_keyschedule:
        emit("// ---- key permutation PC-1 (secure) ----")
        marker(mk.M_KEYPERM_START)
        emit("for (i = 0; i < 28; i = i + 1) { C[i] = key[PC10[i]]; }")
        emit("for (i = 0; i < 28; i = i + 1) { D[i] = key[PC10[28 + i]]; }")
        marker(mk.M_KEYPERM_END)
        emit("")

    if spec.rounds > 0:
        emit("// ---- the rounds (every operation secure, paper Fig. 2b) ----")
        emit(f"for (r = 0; r < {spec.rounds}; r = r + 1) {{")
        if spec.emit_markers:
            emit(f"    __marker({mk.M_ROUND_BASE} + r);")
        emit("""
    // key generation: rotate C and D left by SHIFTS_T[r]
    n = SHIFTS_T[r];
    for (i = 0; i < 28; i = i + 1) { CT[i] = C[i]; DT[i] = D[i]; }
    for (i = 0; i < 28; i = i + 1) {
        j = i + n;
        if (j >= 28) { j = j - 28; }
        C[i] = CT[j];
        D[i] = DT[j];
    }
    // subkey selection PC-2: K = PC2(C || D)
    for (i = 0; i < 48; i = i + 1) {
        p = PC20[i];
        if (p < 28) { K[i] = C[p]; } else { K[i] = D[p - 28]; }
    }

    // right side: f(R, K) = P(S(E(R) (+) K))
    for (i = 0; i < 48; i = i + 1) { ER[i] = R[E0[i]] ^ K[i]; }
    base = 0;
    obase = 0;
    for (b = 0; b < 8; b = b + 1) {
        v = (ER[base] << 5) | (ER[base + 1] << 4) | (ER[base + 2] << 3)
          | (ER[base + 3] << 2) | (ER[base + 4] << 1) | ER[base + 5];
        s = SBOX_T[(b << 6) | v];
        SOUT[obase] = (s >> 3) & 1;
        SOUT[obase + 1] = (s >> 2) & 1;
        SOUT[obase + 2] = (s >> 1) & 1;
        SOUT[obase + 3] = s & 1;
        base = base + 6;
        obase = obase + 4;
    }
    for (i = 0; i < 32; i = i + 1) { FOUT[i] = SOUT[P0[i]]; }

    // left side Lm = Rm-1 and new right side Rm = Lm-1 (+) f
    for (i = 0; i < 32; i = i + 1) {
        t = R[i];
        R[i] = L[i] ^ FOUT[i];
        L[i] = t;
    }
}""")
        emit("")

    if spec.include_fp:
        emit("// ---- output inverse permutation: ciphertext = FP(R || L) ----")
        emit("// Intentionally insecure: it reveals only the output cipher.")
        marker(mk.M_FP_START)
        emit("""__insecure {
    for (i = 0; i < 64; i = i + 1) {
        p = FP0[i];
        if (p < 32) { ciphertext[i] = R[p]; } else { ciphertext[i] = L[p - 32]; }
    }
}""")
        marker(mk.M_FP_END)
    return "\n".join(lines) + "\n"


#: Spec for the paper's primary workload.
FULL_DES = DesProgramSpec()
#: Spec for the first-round differential figures (Figs. 7-11).
ROUND1_DES = DesProgramSpec(rounds=1)
#: Spec for the Fig. 12 overhead window (key permutation only).
KEYPERM_ONLY = DesProgramSpec(rounds=0, include_ip=False, include_fp=False)
