"""SecureC source generator for AES-128 encryption.

The paper notes its approach "is general and can be extended to other
algorithms"; the authors' follow-up work applies it to AES.  This program
demonstrates exactly that: the only annotation is ``secure int key[16]``
and the compiler's forward slicing masks the whole cipher.

Design notes for a maskable AES:

* **MixColumns via an XTIME table.**  The textbook xtime implementation
  branches on the top bit of a secret byte — secret-dependent control flow
  that no instruction-level masking can hide (the slicer would reject it
  with a ``secret-branch`` diagnostic).  Tabulating {02}·x turns it into a
  secure indexed load, the same mechanism as the S-box.
* **SubBytes + ShiftRows fused** through a public permutation table, so
  state bytes are only ever addressed at public indices.
* **The final AddRoundKey stays secure** (unlike DES's output permutation,
  its operands — S-box outputs and the last round key — are individually
  secret; only their XOR is public).  Only the ciphertext store is
  declassified.

State layout: one byte per 32-bit word, FIPS column-major order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..aes.tables import (INV_SBOX, INV_SHIFT_ROWS, RCON, SBOX, SHIFT_ROWS,
                          XTIME)
from . import markers as mk


def _array_literal(name: str, values) -> str:
    body = ", ".join(str(v) for v in values)
    return f"const int {name}[{len(values)}] = {{{body}}};"


@dataclass(frozen=True)
class AesProgramSpec:
    """Which pieces of the AES-128 program to generate."""

    rounds: int = 10
    #: Emit phase markers.
    emit_markers: bool = True
    #: Include the declassified ciphertext store.
    include_output: bool = True
    #: Generate the inverse cipher (InvSubBytes/InvShiftRows/InvMixColumns,
    #: round keys in reverse).  InvMixColumns multiplies by 9/11/13/14,
    #: decomposed into XTIME-table chains so it stays branch-free.
    decrypt: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.rounds <= 10:
            raise ValueError("rounds must be in 1..10")
        if self.decrypt and self.rounds != 10:
            raise ValueError("decryption requires the full 10 rounds")


def aes_source(spec: AesProgramSpec = AesProgramSpec()) -> str:
    """Generate the SecureC source for AES-128 encryption."""
    lines: list[str] = []
    emit = lines.append

    def marker(value: int) -> None:
        if spec.emit_markers:
            emit(f"__marker({value});")

    direction = "decryption" if spec.decrypt else "encryption"
    emit(f"// AES-128 {direction}, generated from repro.aes.tables "
         "(FIPS-197).")
    emit("secure int key[16];")
    emit("int plaintext[16];")
    emit("int ciphertext[16];")
    emit(_array_literal("SBOX_T", SBOX))
    emit(_array_literal("XTIME_T", XTIME))
    emit(_array_literal("RCON_T", RCON))
    emit(_array_literal("SR_T", SHIFT_ROWS))
    if spec.decrypt:
        emit(_array_literal("ISBOX_T", INV_SBOX))
        emit(_array_literal("ISR_T", INV_SHIFT_ROWS))
    emit("int rk[176];")
    emit("int state[16];")
    emit("int tmp16[16];")
    if spec.decrypt:
        for name in ("XT1", "XT2", "XT3"):
            emit(f"int {name}[4];")
    for scalar in ("i", "wi", "r", "base", "dest", "rnd", "c", "b",
                   "rkbase", "w0", "w1", "w2", "w3", "t0", "t1", "t2", "t3",
                   "s0", "s1", "s2", "s3", "x0", "x1", "x2", "x3"):
        emit(f"int {scalar};")
    emit("")

    emit("// ---- key expansion (all key-derived: fully masked) ----")
    marker(mk.M_KEYPERM_START)
    emit("""
for (i = 0; i < 16; i = i + 1) { rk[i] = key[i]; }
for (wi = 4; wi < 44; wi = wi + 1) {
    base = (wi - 1) << 2;
    w0 = rk[base];
    w1 = rk[base + 1];
    w2 = rk[base + 2];
    w3 = rk[base + 3];
    r = wi & 3;
    if (r == 0) {
        // RotWord + SubWord (secure indexed loads) + Rcon
        t0 = SBOX_T[w1] ^ RCON_T[(wi >> 2) - 1];
        t1 = SBOX_T[w2];
        t2 = SBOX_T[w3];
        t3 = SBOX_T[w0];
        w0 = t0; w1 = t1; w2 = t2; w3 = t3;
    }
    base = (wi - 4) << 2;
    dest = wi << 2;
    rk[dest] = rk[base] ^ w0;
    rk[dest + 1] = rk[base + 1] ^ w1;
    rk[dest + 2] = rk[base + 2] ^ w2;
    rk[dest + 3] = rk[base + 3] ^ w3;
}""")
    marker(mk.M_KEYPERM_END)
    emit("")

    if spec.decrypt:
        _emit_inverse_cipher(emit, marker, spec)
        if spec.include_output:
            emit("// ---- plaintext store: public by definition ----")
            marker(mk.M_FP_START)
            emit("""__insecure {
    for (i = 0; i < 16; i = i + 1) { ciphertext[i] = state[i]; }
}""")
            marker(mk.M_FP_END)
        return "\n".join(lines) + "\n"

    emit("// ---- initial AddRoundKey ----")
    marker(mk.M_ROUND_BASE)
    emit("for (i = 0; i < 16; i = i + 1) "
         "{ state[i] = plaintext[i] ^ rk[i]; }")
    emit("")

    emit("// ---- main rounds: SubBytes+ShiftRows fused, MixColumns via "
         "XTIME, AddRoundKey ----")
    emit(f"for (rnd = 1; rnd < {spec.rounds}; rnd = rnd + 1) {{")
    if spec.emit_markers:
        emit(f"    __marker({mk.M_ROUND_BASE} + rnd);")
    emit("""
    for (i = 0; i < 16; i = i + 1) { tmp16[i] = SBOX_T[state[SR_T[i]]]; }
    rkbase = rnd << 4;
    for (c = 0; c < 4; c = c + 1) {
        b = c << 2;
        s0 = tmp16[b];
        s1 = tmp16[b + 1];
        s2 = tmp16[b + 2];
        s3 = tmp16[b + 3];
        x0 = XTIME_T[s0];
        x1 = XTIME_T[s1];
        x2 = XTIME_T[s2];
        x3 = XTIME_T[s3];
        state[b] = x0 ^ x1 ^ s1 ^ s2 ^ s3 ^ rk[rkbase + b];
        state[b + 1] = s0 ^ x1 ^ x2 ^ s2 ^ s3 ^ rk[rkbase + b + 1];
        state[b + 2] = s0 ^ s1 ^ x2 ^ x3 ^ s3 ^ rk[rkbase + b + 2];
        state[b + 3] = x0 ^ s0 ^ s1 ^ s2 ^ x3 ^ rk[rkbase + b + 3];
    }
}""")
    emit("")

    emit("// ---- final round (no MixColumns); AddRoundKey stays secure ----")
    if spec.emit_markers:
        emit(f"__marker({mk.M_ROUND_BASE} + {spec.rounds});")
    emit(f"""
for (i = 0; i < 16; i = i + 1) {{ tmp16[i] = SBOX_T[state[SR_T[i]]]; }}
rkbase = {spec.rounds} << 4;
for (i = 0; i < 16; i = i + 1) {{ state[i] = tmp16[i] ^ rk[rkbase + i]; }}""")
    emit("")

    if spec.include_output:
        emit("// ---- ciphertext store: public by definition ----")
        marker(mk.M_FP_START)
        emit("""__insecure {
    for (i = 0; i < 16; i = i + 1) { ciphertext[i] = state[i]; }
}""")
        marker(mk.M_FP_END)
    return "\n".join(lines) + "\n"


def _emit_inverse_cipher(emit, marker, spec: AesProgramSpec) -> None:
    """Body of the AES-128 inverse cipher (input arrives in ``plaintext``,
    output lands in ``state``; the caller emits the declassified store).

    InvMixColumns decomposes the GF(2^8) multiplications through XTIME
    chains: 9x = x·8^x, 11x = x·8^x·2^x, 13x = x·8^x·4^x,
    14x = x·8^x·4^x·2 — all via secure indexed loads, no secret branches.
    """
    emit("// ---- initial AddRoundKey with the last round key ----")
    marker(mk.M_ROUND_BASE + 10)
    emit("for (i = 0; i < 16; i = i + 1) "
         "{ state[i] = plaintext[i] ^ rk[160 + i]; }")
    emit("")
    emit("// ---- inverse rounds 9..1: InvShiftRows+InvSubBytes fused, "
         "AddRoundKey, InvMixColumns ----")
    emit("for (rnd = 9; rnd > 0; rnd = rnd - 1) {")
    if spec.emit_markers:
        emit(f"    __marker({mk.M_ROUND_BASE} + rnd);")
    emit("""
    for (i = 0; i < 16; i = i + 1) { tmp16[i] = ISBOX_T[state[ISR_T[i]]]; }
    rkbase = rnd << 4;
    for (c = 0; c < 4; c = c + 1) {
        b = c << 2;
        s0 = tmp16[b] ^ rk[rkbase + b];
        s1 = tmp16[b + 1] ^ rk[rkbase + b + 1];
        s2 = tmp16[b + 2] ^ rk[rkbase + b + 2];
        s3 = tmp16[b + 3] ^ rk[rkbase + b + 3];
        XT1[0] = XTIME_T[s0];
        XT2[0] = XTIME_T[XT1[0]];
        XT3[0] = XTIME_T[XT2[0]];
        XT1[1] = XTIME_T[s1];
        XT2[1] = XTIME_T[XT1[1]];
        XT3[1] = XTIME_T[XT2[1]];
        XT1[2] = XTIME_T[s2];
        XT2[2] = XTIME_T[XT1[2]];
        XT3[2] = XTIME_T[XT2[2]];
        XT1[3] = XTIME_T[s3];
        XT2[3] = XTIME_T[XT1[3]];
        XT3[3] = XTIME_T[XT2[3]];
        state[b] = XT3[0] ^ XT2[0] ^ XT1[0]
                 ^ XT3[1] ^ XT1[1] ^ s1
                 ^ XT3[2] ^ XT2[2] ^ s2
                 ^ XT3[3] ^ s3;
        state[b + 1] = XT3[0] ^ s0
                     ^ XT3[1] ^ XT2[1] ^ XT1[1]
                     ^ XT3[2] ^ XT1[2] ^ s2
                     ^ XT3[3] ^ XT2[3] ^ s3;
        state[b + 2] = XT3[0] ^ XT2[0] ^ s0
                     ^ XT3[1] ^ s1
                     ^ XT3[2] ^ XT2[2] ^ XT1[2]
                     ^ XT3[3] ^ XT1[3] ^ s3;
        state[b + 3] = XT3[0] ^ XT1[0] ^ s0
                     ^ XT3[1] ^ XT2[1] ^ s1
                     ^ XT3[2] ^ s2
                     ^ XT3[3] ^ XT2[3] ^ XT1[3];
    }
}""")
    emit("")
    emit("// ---- final inverse round (no InvMixColumns) + ARK(rk0) ----")
    if spec.emit_markers:
        emit(f"__marker({mk.M_ROUND_BASE});")
    emit("""
for (i = 0; i < 16; i = i + 1) { tmp16[i] = ISBOX_T[state[ISR_T[i]]]; }
for (i = 0; i < 16; i = i + 1) { state[i] = tmp16[i] ^ rk[i]; }""")
    emit("")


#: Full AES-128 (the standard 10 rounds).
FULL_AES = AesProgramSpec()
#: First-round variant for differential-trace experiments.
ROUND1_AES = AesProgramSpec(rounds=1)
