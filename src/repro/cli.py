"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE.sc``   — compile SecureC to secure-tagged assembly
* ``asm FILE.s``        — assemble and print the program listing
* ``run FILE``          — run a .s or .sc file on the energy simulator
* ``experiment ID``     — run one registered paper experiment
  (``--manifest``/``--metrics-out`` enable the observability sink and
  write the run manifest / metrics snapshot; ``--attribution`` books
  every picojoule to its (pc, unit, class) cell and saves the snapshot;
  ``--report-html`` writes the self-contained HTML leakage report)
* ``experiments``       — list the experiment registry
* ``serve``             — long-lived leakage-assessment daemon (HTTP
  JSON API, bounded admission, deadlines, circuit breaker, graceful
  drain — see ``docs/SERVICE.md``)
* ``submit``            — submit one assessment request to a daemon
  (or ``--local`` to run it in-process on the batch engine)
* ``obs summarize``     — render, aggregate, and diff run manifests
* ``obs attribution``   — ASCII energy-attribution tables from a
  snapshot or manifest
* ``obs report``        — HTML leakage report from a manifest
* ``obs flamegraph``    — standalone interactive flamegraph HTML from a
  manifest's span tree
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path


def _read(path: str) -> str:
    return Path(path).read_text()


def _parse_inputs(pairs: list[str]) -> dict[str, list[int]]:
    """``sym=1,2,3`` pairs -> {symbol: [words]}."""
    inputs: dict[str, list[int]] = {}
    for pair in pairs:
        symbol, _, values = pair.partition("=")
        if not values:
            raise SystemExit(f"bad --input {pair!r}; expected sym=v1,v2,...")
        inputs[symbol] = [int(v, 0) for v in values.split(",")]
    return inputs


def cmd_compile(arguments: argparse.Namespace) -> int:
    from .lang.compiler import compile_source

    result = compile_source(_read(arguments.file),
                            masking=arguments.masking,
                            optimize=arguments.optimize)
    output = arguments.output
    if output:
        Path(output).write_text(result.assembly)
        print(f"wrote {output}")
    else:
        print(result.assembly, end="")
    print(f"# {len(result.program.text)} instructions, "
          f"{result.secure_static_fraction:.1%} secure",
          file=sys.stderr)
    for diagnostic in result.diagnostics:
        print(f"# diagnostic: {diagnostic.message}", file=sys.stderr)
    return 0


def cmd_asm(arguments: argparse.Namespace) -> int:
    from .isa.assembler import assemble

    program = assemble(_read(arguments.file))
    print(program.listing())
    print(f"# {len(program.text)} instructions, "
          f"{len(program.data)} data words", file=sys.stderr)
    return 0


def cmd_run(arguments: argparse.Namespace) -> int:
    from .harness.runner import run_with_trace
    from .isa.assembler import assemble
    from .lang.compiler import compile_source
    from .machine.interpreter import run_functional

    source = _read(arguments.file)
    if arguments.file.endswith(".sc"):
        program = compile_source(source, masking=arguments.masking,
                                 optimize=arguments.optimize).program
    else:
        program = assemble(source)
    inputs = _parse_inputs(arguments.input or [])

    if arguments.fast:
        interpreter = run_functional(program, inputs=inputs,
                                     max_instructions=arguments.max_cycles)
        print(f"instructions:      {interpreter.executed} "
              "(functional mode: no timing/energy)")
        if arguments.dump:
            for symbol_count in arguments.dump:
                symbol, _, count = symbol_count.partition(":")
                base = program.address_of(symbol)
                words = interpreter.memory.read_words(
                    base, int(count) if count else 1)
                print(f"{symbol} = {words}")
        return 0

    stream = None
    if arguments.trace_out:
        from .harness.io import StreamingTraceWriter

        stream = StreamingTraceWriter(arguments.trace_out)
    try:
        result = run_with_trace(program, inputs=inputs,
                                max_cycles=arguments.max_cycles,
                                stream=stream, engine=arguments.engine)
        if stream is not None:
            stream.write_markers(result.trace.markers)
    finally:
        if stream is not None:
            stream.close()
    if stream is not None:
        print(f"streamed {stream.cycles_written} cycles "
              f"to {arguments.trace_out} ({stream.fmt})")
    print(f"engine:            {result.engine}")
    print(f"cycles:            {result.cycles}")
    print(f"total energy:      {result.total_uj:.3f} uJ")
    print(f"average power:     {result.average_pj:.1f} pJ/cycle")
    for key, value in result.cpu.pipeline.stats.items():
        if key in ("cycles",):
            continue
        formatted = f"{value:.3f}" if isinstance(value, float) else value
        print(f"{key + ':':<18} {formatted}")
    if arguments.dump:
        for symbol_count in arguments.dump:
            symbol, _, count = symbol_count.partition(":")
            words = result.cpu.read_symbol_words(symbol,
                                                 int(count) if count else 1)
            print(f"{symbol} = {words}")
    return 0


def cmd_experiment(arguments: argparse.Namespace) -> int:
    import contextlib
    import inspect
    import os

    from .harness.experiments import EXPERIMENTS, run_experiment
    from .machine.engines import resolve as resolve_engine

    @contextlib.contextmanager
    def env_scope(name: str, value):
        """Export an env var for the duration of the command only.

        The experiment's own runs and any pool workers it forks/spawns
        read the variable, but the mutation must not leak into later
        library calls in the same process (tests, REPLs, embedding apps).
        ``None`` leaves the environment untouched.
        """
        if value is None:
            yield
            return
        previous = os.environ.get(name)
        os.environ[name] = value
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = previous

    engine_effective = resolve_engine(arguments.engine)
    arguments.engine_effective = engine_effective
    observing = bool(arguments.manifest or arguments.metrics_out
                     or arguments.report_html)
    kwargs = {}
    jobs_effective = 1
    function = EXPERIMENTS.get(arguments.id)
    signature = inspect.signature(function) if function is not None else None
    if signature is not None and "jobs" in signature.parameters:
        kwargs["jobs"] = arguments.jobs
        jobs_effective = arguments.jobs
    elif function is not None and arguments.jobs != 1:
        print(f"note: experiment {arguments.id!r} runs serially "
              f"(--jobs not applicable; requested {arguments.jobs}, "
              "effective jobs=1)", file=sys.stderr)
    # Fault-tolerance trio plus the streaming toggle: forwarded to
    # experiments whose batches are engine-backed (see
    # repro.harness.resilience / repro.harness.engine.run_stream); a
    # no-op elsewhere.
    for option, default in (("retries", 0), ("job_timeout", None),
                            ("checkpoint", None), ("streaming", False)):
        value = getattr(arguments, option)
        if signature is not None and option in signature.parameters:
            kwargs[option] = value
        elif function is not None and value != default:
            flag = "--" + option.replace("_", "-")
            print(f"note: experiment {arguments.id!r} does not take "
                  f"{flag} (requested {value}; ignored)", file=sys.stderr)
    if observing:
        from . import obs

        obs.enable()
    if arguments.attribution:
        from . import obs

        obs.enable_attribution()
    with env_scope("REPRO_ENGINE", engine_effective), \
            env_scope("REPRO_PROGRESS", arguments.progress), \
            env_scope("REPRO_PROGRESS_INTERVAL",
                      str(arguments.progress_interval)
                      if arguments.progress_interval is not None else None):
        result = run_experiment(arguments.id, **kwargs)
    print(f"[{result.experiment_id}] {result.title}")
    for key, value in result.summary.items():
        formatted = f"{value:,.3f}" if isinstance(value, float) else value
        print(f"  {key:<40} {formatted}")
    if result.notes:
        print(f"  note: {result.notes}")
    if arguments.json:
        from .harness.io import save_experiment_json

        save_experiment_json(result, arguments.json,
                             include_series=not arguments.no_series)
        print(f"saved {arguments.json}")
    if arguments.attribution:
        import json as json_module

        from . import obs

        snapshot = obs.attribution().snapshot()
        Path(arguments.attribution).write_text(
            json_module.dumps(snapshot, indent=2, sort_keys=True))
        print(f"saved attribution {arguments.attribution} "
              f"({len(snapshot['cells'])} cells, "
              f"{snapshot['total_pj']:,.1f} pJ)")
    if observing or arguments.attribution:
        _write_observability(arguments, result, signature, jobs_effective)
    return 0


def _write_observability(arguments: argparse.Namespace, result,
                         signature, jobs_effective: int) -> None:
    """Build and persist the run manifest / metrics snapshot."""
    import inspect
    import json
    from dataclasses import asdict

    from . import obs
    from .energy.params import DEFAULT_PARAMS

    config: dict = {
        "experiment": arguments.id,
        #: --jobs is recorded even when an experiment ignores it, so a
        #: manifest always attributes its numbers to the worker count
        #: that actually produced them.
        "jobs_requested": arguments.jobs,
        "jobs_effective": jobs_effective,
        "retries": arguments.retries,
        "job_timeout": arguments.job_timeout,
        "checkpoint": arguments.checkpoint,
        "streaming": arguments.streaming,
        "progress": arguments.progress,
        #: Effective execution engine ("fast", "vector" or "reference")
        #: after resolving --engine against $REPRO_ENGINE and the default.
        "engine": getattr(arguments, "engine_effective", "reference"),
        "energy_params": asdict(DEFAULT_PARAMS),
    }
    if signature is not None:
        # Seeds, trace counts, rounds, ... — the experiment's resolved
        # defaults are part of what produced the numbers.
        config["experiment_defaults"] = {
            name: parameter.default
            for name, parameter in signature.parameters.items()
            if parameter.default is not inspect.Parameter.empty
            and name not in ("params", "jobs", "retries", "job_timeout",
                             "checkpoint", "streaming")}
    manifest = obs.build_manifest(
        experiment_id=result.experiment_id, config=config,
        summary=result.summary,
        leakage=result.leakage.to_dict() if result.leakage is not None
        else None)
    if arguments.manifest:
        path = obs.write_manifest(manifest, arguments.manifest)
        print(f"saved manifest {path}")
    if arguments.metrics_out:
        Path(arguments.metrics_out).write_text(
            json.dumps(manifest["metrics"], indent=2, sort_keys=True))
        print(f"saved metrics {arguments.metrics_out}")
    if arguments.report_html:
        from .harness.io import experiment_to_dict
        from .obs.report import report_from_manifest, write_report

        path = write_report(
            report_from_manifest(manifest, experiment_to_dict(result)),
            arguments.report_html)
        print(f"saved report {path}")


def cmd_obs_summarize(arguments: argparse.Namespace) -> int:
    """Render one manifest; aggregate and diff when given several."""
    from . import obs
    from .obs.registry import snapshot_totals

    manifests = [obs.load_manifest(path) for path in arguments.manifests]
    if getattr(arguments, "format", "text") == "prom":
        from .obs.prom import render_prometheus

        snapshot = obs.aggregate_manifests(manifests)["metrics"] \
            if len(manifests) >= 2 else manifests[0].get("metrics") or {}
        print(render_prometheus(snapshot), end="")
        return 0
    for manifest in manifests:
        print(obs.summarize_manifest(manifest))
        print()
    if len(manifests) >= 2:
        aggregate = obs.aggregate_manifests(manifests)
        print(f"aggregate of {aggregate['manifests']} manifests "
              f"({', '.join(aggregate['experiment_ids'])}):")
        for name, value in snapshot_totals(aggregate["metrics"]).items():
            formatted = f"{value:,.3f}" if isinstance(value, float) \
                and not float(value).is_integer() else f"{int(value):,}"
            print(f"  {name:<56} {formatted}")
    if len(manifests) == 2:
        print()
        print("diff (first -> second):")
        for name, before, after in obs.diff_totals(*manifests):
            if before == after:
                continue
            print(f"  {name:<56} {before:,.3f} -> {after:,.3f} "
                  f"({after - before:+,.3f})")
    return 0


def cmd_obs_attribution(arguments: argparse.Namespace) -> int:
    """ASCII attribution tables from a snapshot JSON or a run manifest."""
    import json

    from .obs.attribution import SCHEMA as ATTRIBUTION_SCHEMA
    from .obs.attribution import render_attribution
    from .obs.manifest import COMPATIBLE_SCHEMAS

    document = json.loads(Path(arguments.file).read_text())
    schema = document.get("schema")
    if schema == ATTRIBUTION_SCHEMA:
        snapshot = document
    elif schema in COMPATIBLE_SCHEMAS:
        snapshot = document.get("attribution")
        if not snapshot:
            raise SystemExit(f"{arguments.file}: manifest carries no "
                             "attribution section (run the experiment "
                             "with --attribution)")
    else:
        raise SystemExit(f"{arguments.file}: neither an attribution "
                         f"snapshot nor a run manifest (schema={schema!r})")
    print(render_attribution(snapshot, top=arguments.top))
    return 0


def cmd_obs_report(arguments: argparse.Namespace) -> int:
    """Self-contained HTML leakage report from a run manifest."""
    import json

    from . import obs
    from .obs.report import report_from_manifest, write_report

    manifest = obs.load_manifest(arguments.manifest)
    result = json.loads(Path(arguments.json).read_text()) \
        if arguments.json else None
    path = write_report(report_from_manifest(manifest, result),
                        arguments.output)
    print(f"saved report {path}")
    return 0


def cmd_obs_flamegraph(arguments: argparse.Namespace) -> int:
    """Standalone interactive flamegraph HTML from a manifest's spans."""
    from . import obs
    from .obs.flamegraph import flamegraph_html

    manifest = obs.load_manifest(arguments.manifest)
    spans = manifest.get("spans") or []
    if not spans:
        print(f"note: {arguments.manifest} carries no spans (run the "
              "experiment with --manifest so the tracer is enabled); "
              "rendering an empty graph", file=sys.stderr)
    meta = {"experiment": manifest.get("experiment_id", "?"),
            "created": manifest.get("created", "?"),
            "spans": len(spans)}
    title = arguments.title or (
        f"{manifest.get('experiment_id', 'run')} — span flamegraph")
    Path(arguments.output).write_text(
        flamegraph_html(spans, title=title, meta=meta))
    print(f"saved flamegraph {arguments.output} ({len(spans)} root spans)")
    return 0


def cmd_serve(arguments: argparse.Namespace) -> int:
    """Run the leakage-assessment daemon until SIGTERM/SIGINT."""
    import json

    from .service.core import ServiceConfig
    from .service.server import serve

    config = ServiceConfig(
        workers=arguments.workers, jobs=arguments.jobs,
        queue_depth=arguments.queue_depth, retries=arguments.retries,
        job_timeout=arguments.job_timeout,
        chunk_size=arguments.chunk_size,
        default_deadline_s=arguments.default_deadline,
        breaker_threshold=arguments.breaker_threshold,
        breaker_cooldown_s=arguments.breaker_cooldown,
        drain_grace_s=arguments.drain_grace,
        journal=arguments.journal, manifest_out=arguments.manifest_out,
        event_log=arguments.event_log,
        event_log_max_bytes=arguments.event_log_max_bytes,
        trace_requests=not arguments.no_request_tracing,
        verdict_cache_bytes=(0 if arguments.no_verdict_cache
                             else arguments.verdict_cache_bytes),
        quota_rps=arguments.quota_rps,
        quota_burst=arguments.quota_burst)

    def announce(event: dict) -> None:
        print(json.dumps(event, sort_keys=True), flush=True)

    serve(host=arguments.host, port=arguments.port, config=config,
          announce=announce)
    return 0


def cmd_submit(arguments: argparse.Namespace) -> int:
    """Submit one assessment request (to a daemon, or run it locally)."""
    import json

    from .service.errors import ServiceError
    from .service.protocol import AssessRequest

    payload = {
        "mode": arguments.mode, "masking": arguments.masking,
        "rounds": arguments.rounds, "n_traces": arguments.n_traces,
        "noise_sigma": arguments.noise_sigma, "seed": arguments.seed,
        "client": arguments.client, "priority": arguments.priority,
    }
    if arguments.policy:
        payload["policy"] = arguments.policy
    if arguments.key:
        payload["key"] = arguments.key
    if arguments.key_b:
        payload["key_b"] = arguments.key_b
    if arguments.engine:
        payload["engine"] = arguments.engine
    if arguments.deadline is not None:
        payload["deadline_s"] = arguments.deadline
    if arguments.attribution:
        payload["attribution"] = True
    if arguments.no_cache:
        payload["cache"] = False
    trace_id = arguments.trace_id or os.environ.get("REPRO_TRACE_ID") \
        or None
    request_id = None
    try:
        if arguments.local:
            from .service.executor import execute_assessment

            result = execute_assessment(AssessRequest.from_dict(payload),
                                        jobs=arguments.jobs)
        else:
            from .service.client import ServiceClient

            client = ServiceClient(arguments.url)
            document = client.assess_detailed(
                payload, timeout_s=arguments.timeout, trace_id=trace_id,
                retry_429=arguments.retry_429)
            request_id = document.get("id")
            trace_id = document.get("trace_id", trace_id)
            result = document["result"]
    except ServiceError as error:
        detail = {"code": error.code, "message": error.message}
        if error.retry_after_s is not None:
            detail["retry_after_s"] = error.retry_after_s
        # Even rejected/failed requests are remembered by the daemon:
        # surface the IDs so /v1/requests/<id>/trace stays reachable.
        if error.request_id is not None:
            detail["request_id"] = error.request_id
        if error.trace_id is not None:
            detail["trace_id"] = error.trace_id
        print(json.dumps({"error": detail}, sort_keys=True),
              file=sys.stderr)
        return 1
    if arguments.json:
        Path(arguments.json).write_text(
            json.dumps(result, indent=2, sort_keys=True))
        print(f"saved {arguments.json}")
    if request_id is not None:
        print(f"request id:    {request_id}")
        print(f"trace id:      {trace_id}")
    verdict = result["verdict"]
    print(f"verdict:       {'PASS' if verdict['passed'] else 'FAIL'} "
          f"({verdict['mode']})")
    print(f"traces:        {result['n_traces']} "
          f"({'/'.join(str(c) for c in result['cycles'])} cycles)")
    print(f"total energy:  {result['total_pj'] / 1e6:.3f} uJ")
    print(f"trace digest:  {result['trace_digest']}")
    print(f"engines:       {result['engines']} "
          f"(cache {'hit' if result['cache_hit'] else 'miss'})")
    verdict_cache = result.get("verdict_cache") or {}
    if verdict_cache.get("hit"):
        print(f"verdict cache: hit "
              f"(age {verdict_cache.get('age_s', 0.0):.3f} s)")
    print(f"wall time:     {result['wall_s']:.3f} s")
    return 0


def cmd_experiments(arguments: argparse.Namespace) -> int:
    from .harness.experiments import EXPERIMENTS

    for experiment_id, function in sorted(EXPERIMENTS.items()):
        first_line = (function.__doc__ or "").strip().splitlines()[0] \
            if function.__doc__ else ""
        print(f"{experiment_id:<22} {first_line}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure-instruction DES/AES energy-masking simulator "
                    "(DATE 2003 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_compile = subparsers.add_parser(
        "compile", help="compile SecureC to assembly")
    p_compile.add_argument("file")
    p_compile.add_argument("--masking", default="selective",
                           choices=["selective", "annotate-only", "none"])
    p_compile.add_argument("-O", "--optimize", type=int, default=0,
                           choices=[0, 1, 2])
    p_compile.add_argument("-o", "--output")
    p_compile.set_defaults(func=cmd_compile)

    p_asm = subparsers.add_parser("asm", help="assemble and list a program")
    p_asm.add_argument("file")
    p_asm.set_defaults(func=cmd_asm)

    p_run = subparsers.add_parser(
        "run", help="simulate a .s or .sc file with energy tracking")
    p_run.add_argument("file")
    p_run.add_argument("--masking", default="selective",
                       choices=["selective", "annotate-only", "none"])
    p_run.add_argument("-O", "--optimize", type=int, default=0,
                       choices=[0, 1, 2])
    p_run.add_argument("--input", action="append", metavar="SYM=V1,V2,...",
                       help="write words into a data symbol before running")
    p_run.add_argument("--dump", action="append", metavar="SYM[:COUNT]",
                       help="print a data symbol after the run")
    p_run.add_argument("--max-cycles", type=int, default=50_000_000)
    p_run.add_argument("--fast", action="store_true",
                       help="functional interpreter (no timing/energy)")
    p_run.add_argument("--trace-out", metavar="PATH", dest="trace_out",
                       help="stream the per-cycle trace to PATH while "
                            "running (.csv -> CSV, else NDJSON; memory "
                            "use stays bounded regardless of length)")
    p_run.add_argument("--engine", default=None,
                       choices=["reference", "fast", "vector"],
                       help="execution engine: 'fast' replays the "
                            "recorded cycle schedule (bit-identical, "
                            "~3x faster), 'vector' replays it with "
                            "NumPy batch arithmetic (bit-identical, "
                            "fastest on trace batches), 'reference' "
                            "steps the pipeline cycle by cycle "
                            "(default: $REPRO_ENGINE, else fast)")
    p_run.set_defaults(func=cmd_run)

    p_exp = subparsers.add_parser("experiment",
                                  help="run one paper experiment")
    p_exp.add_argument("id")
    p_exp.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes for batch simulations "
                            "(default 1 = serial; results are identical)")
    p_exp.add_argument("--retries", type=int, default=0,
                       help="re-run a crashed or timed-out batch job up "
                            "to N times (default 0 = fail fast; retried "
                            "jobs are bit-identical)")
    p_exp.add_argument("--job-timeout", type=float, default=None,
                       dest="job_timeout", metavar="SECONDS",
                       help="wall-clock budget per batch job; a runaway "
                            "simulation is killed and counts as a failure")
    p_exp.add_argument("--checkpoint", metavar="PATH",
                       help="journal completed batch jobs to PATH so an "
                            "interrupted experiment resumes by recomputing "
                            "only unfinished jobs")
    p_exp.add_argument("--engine", default=None,
                       choices=["reference", "fast", "vector"],
                       help="execution engine for every simulation in the "
                            "experiment (exported as $REPRO_ENGINE for "
                            "the duration of the command so worker "
                            "processes inherit it; default: ambient "
                            "$REPRO_ENGINE, else fast)")
    p_exp.add_argument("--streaming", action="store_true",
                       help="use the bounded-memory streaming campaign "
                            "path where the experiment supports it "
                            "(O(1) trace memory, adds traces-to-"
                            "disclosure fields; statistics match the "
                            "batch path)")
    p_exp.add_argument("--progress", metavar="TARGET",
                       help="emit JSON-lines progress heartbeats (jobs "
                            "done/failed, traces/sec, ETA, stat "
                            "watermarks) to TARGET: '-' or 'stderr' for "
                            "stderr, else an append-mode file path "
                            "(exported as $REPRO_PROGRESS for the "
                            "duration of the command)")
    p_exp.add_argument("--progress-interval", type=float, default=None,
                       dest="progress_interval", metavar="SECONDS",
                       help="minimum seconds between heartbeats "
                            "(default 1.0)")
    p_exp.add_argument("--json", help="save the full result as JSON")
    p_exp.add_argument("--no-series", action="store_true",
                       help="omit per-cycle series from the JSON")
    p_exp.add_argument("--manifest",
                       help="enable the observability sink and write the "
                            "run manifest (config, metrics, span tree) "
                            "to this path")
    p_exp.add_argument("--metrics-out",
                       help="enable the observability sink and write the "
                            "metrics snapshot JSON to this path")
    p_exp.add_argument("--attribution", metavar="PATH",
                       help="enable per-PC energy attribution and write "
                            "the full (pc, unit, class) snapshot JSON "
                            "to this path")
    p_exp.add_argument("--report-html", metavar="PATH", dest="report_html",
                       help="enable the observability sink and write a "
                            "self-contained HTML leakage report "
                            "(charts, verdicts, hotspots) to this path")
    p_exp.set_defaults(func=cmd_experiment)

    p_list = subparsers.add_parser("experiments",
                                   help="list registered experiments")
    p_list.set_defaults(func=cmd_experiments)

    p_serve = subparsers.add_parser(
        "serve", help="run the leakage-assessment daemon (HTTP JSON API)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8734,
                         help="TCP port (0 = ephemeral; the bound port is "
                              "announced as a JSON line on stdout)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="executor threads serving requests "
                              "concurrently (default 2)")
    p_serve.add_argument("-j", "--jobs", type=int, default=1,
                         help="worker processes per request for trace "
                              "collection (default 1 = in-thread)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         dest="queue_depth",
                         help="admission queue bound; beyond it submissions "
                              "get a typed 429 with Retry-After (default 64)")
    p_serve.add_argument("--retries", type=int, default=2,
                         help="per-job retries for crashed/timed-out batch "
                              "jobs inside a request (default 2)")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         dest="job_timeout", metavar="SECONDS",
                         help="wall-clock budget per batch job (pools only)")
    p_serve.add_argument("--chunk-size", type=int, default=16,
                         dest="chunk_size",
                         help="traces per scheduling chunk; deadlines and "
                              "drain are enforced at chunk boundaries "
                              "(default 16)")
    p_serve.add_argument("--default-deadline", type=float, default=None,
                         dest="default_deadline", metavar="SECONDS",
                         help="deadline applied to requests that do not "
                              "carry their own deadline_s")
    p_serve.add_argument("--breaker-threshold", type=int, default=3,
                         dest="breaker_threshold",
                         help="consecutive worker crashes before a program "
                              "is quarantined (default 3)")
    p_serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                         dest="breaker_cooldown", metavar="SECONDS",
                         help="quarantine duration before a half-open "
                              "probe is admitted (default 30)")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         dest="drain_grace", metavar="SECONDS",
                         help="seconds to let in-flight requests finish on "
                              "SIGTERM before cancelling (default 30)")
    p_serve.add_argument("--journal", metavar="PATH",
                         help="durable JSON-lines request journal; on "
                              "restart GET /v1/recovery accounts for every "
                              "request the previous daemon accepted")
    p_serve.add_argument("--manifest-out", metavar="PATH",
                         dest="manifest_out",
                         help="write the SLO metrics manifest here during "
                              "graceful drain")
    p_serve.add_argument("--event-log", metavar="PATH",
                         dest="event_log", default=None,
                         help="structured JSONL event log; one fsync'd "
                              "line per request lifecycle transition "
                              "(replayable with repro.obs.events)")
    p_serve.add_argument("--event-log-max-bytes", type=int,
                         dest="event_log_max_bytes",
                         default=4 * 1024 * 1024,
                         help="rotate the event log to PATH.1 past this "
                              "size (default 4 MiB)")
    p_serve.add_argument("--no-request-tracing", action="store_true",
                         dest="no_request_tracing",
                         help="disable per-request span trees and "
                              "timelines (trace endpoints answer with "
                              "empty documents)")
    p_serve.add_argument("--verdict-cache-bytes", type=int,
                         dest="verdict_cache_bytes",
                         default=32 * 1024 * 1024,
                         help="LRU byte budget of the content-addressed "
                              "verdict cache (default 32 MiB); repeat "
                              "submissions of an identical request "
                              "answer from memory, bit-identical")
    p_serve.add_argument("--no-verdict-cache", action="store_true",
                         dest="no_verdict_cache",
                         help="disable the verdict cache (every request "
                              "simulates, even exact repeats)")
    p_serve.add_argument("--quota-rps", type=float, dest="quota_rps",
                         default=None,
                         help="per-tenant admission quota in requests/s "
                              "(token bucket; default: no quota). "
                              "Exceeding tenants get typed 429s with "
                              "code quota_exceeded")
    p_serve.add_argument("--quota-burst", type=float, dest="quota_burst",
                         default=None,
                         help="token-bucket burst capacity per tenant "
                              "(default: 2x the quota rate)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = subparsers.add_parser(
        "submit", help="submit one assessment request to a daemon")
    p_submit.add_argument("--url", default="http://127.0.0.1:8734",
                          help="daemon base URL (default "
                               "http://127.0.0.1:8734)")
    p_submit.add_argument("--local", action="store_true",
                          help="skip the daemon and run the request "
                               "in-process on the batch engine (results "
                               "are bit-identical to the service)")
    p_submit.add_argument("--mode", default="pair",
                          choices=["pair", "population"])
    p_submit.add_argument("--masking", default="selective",
                          choices=["selective", "annotate-only", "none"])
    p_submit.add_argument("--policy", default=None,
                          help="masking policy name (service default "
                               "applies when omitted)")
    p_submit.add_argument("--rounds", type=int, default=16)
    p_submit.add_argument("--n-traces", type=int, default=2,
                          dest="n_traces",
                          help="traces to collect (pair mode uses 2)")
    p_submit.add_argument("--key", help="DES key as a hex word64")
    p_submit.add_argument("--key-b", dest="key_b",
                          help="second key for pair mode (hex word64)")
    p_submit.add_argument("--noise-sigma", type=float, default=0.0,
                          dest="noise_sigma")
    p_submit.add_argument("--seed", type=int, default=1234)
    p_submit.add_argument("--engine", default=None,
                          choices=["reference", "fast", "vector"])
    p_submit.add_argument("--client", default="cli",
                          help="client identity for fair scheduling")
    p_submit.add_argument("--priority", default="normal",
                          choices=["high", "normal", "low"])
    p_submit.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="per-request deadline; a miss returns a "
                               "typed deadline_exceeded error")
    p_submit.add_argument("-j", "--jobs", type=int, default=1,
                          help="worker processes when running --local")
    p_submit.add_argument("--timeout", type=float, default=300.0,
                          help="client-side wait budget in seconds "
                               "(default 300)")
    p_submit.add_argument("--json", metavar="PATH",
                          help="save the full result document as JSON")
    p_submit.add_argument("--trace-id", dest="trace_id", default=None,
                          help="trace ID to stamp on the request "
                               "(default: $REPRO_TRACE_ID when set, else "
                               "the daemon mints one)")
    p_submit.add_argument("--retry-429", type=int, default=0,
                          dest="retry_429", metavar="N",
                          help="re-submit up to N times on 429s (queue "
                               "full or tenant quota) with capped "
                               "jittered backoff honoring Retry-After "
                               "(default 0)")
    p_submit.add_argument("--no-cache", action="store_true",
                          dest="no_cache",
                          help="bypass the daemon's verdict cache and "
                               "force a fresh simulation")
    p_submit.add_argument("--attribution", action="store_true",
                          help="collect per-PC energy attribution; "
                               "retrievable afterwards via "
                               "/v1/requests/<id>/attribution")
    p_submit.set_defaults(func=cmd_submit)

    p_obs = subparsers.add_parser(
        "obs", help="inspect observability artifacts (run manifests)")
    obs_subparsers = p_obs.add_subparsers(dest="obs_command", required=True)
    p_summarize = obs_subparsers.add_parser(
        "summarize",
        help="render manifests; with several, aggregate (and diff a pair)")
    p_summarize.add_argument("manifests", nargs="+",
                             metavar="MANIFEST.json")
    p_summarize.add_argument("--format", choices=["text", "prom"],
                             default="text",
                             help="output format: human-readable text "
                                  "(default) or Prometheus exposition of "
                                  "the metrics snapshot")
    p_summarize.set_defaults(func=cmd_obs_summarize)
    p_attr = obs_subparsers.add_parser(
        "attribution",
        help="render energy-attribution tables from a snapshot or "
             "manifest")
    p_attr.add_argument("file", metavar="SNAPSHOT_OR_MANIFEST.json")
    p_attr.add_argument("--top", type=int, default=20,
                        help="hotspot rows to show (default 20)")
    p_attr.set_defaults(func=cmd_obs_attribution)
    p_report = obs_subparsers.add_parser(
        "report",
        help="write the self-contained HTML leakage report for a "
             "manifest")
    p_report.add_argument("manifest", metavar="MANIFEST.json")
    p_report.add_argument("--json", metavar="RESULT.json",
                          help="saved experiment result (adds the "
                               "per-cycle charts)")
    p_report.add_argument("-o", "--output", default="report.html",
                          help="output path (default report.html)")
    p_report.set_defaults(func=cmd_obs_report)
    p_flame = obs_subparsers.add_parser(
        "flamegraph",
        help="write a standalone interactive flamegraph HTML from a "
             "manifest's span tree")
    p_flame.add_argument("manifest", metavar="MANIFEST.json")
    p_flame.add_argument("-o", "--output", default="flamegraph.html",
                         help="output path (default flamegraph.html)")
    p_flame.add_argument("--title", help="page title (default: derived "
                                         "from the experiment id)")
    p_flame.set_defaults(func=cmd_obs_flamegraph)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    from .harness.resilience import BatchInterrupted

    try:
        return arguments.func(arguments)
    except BatchInterrupted as interrupted:
        # Graceful operator stop: checkpointed work is on disk; the
        # conventional 128+SIGINT exit code tells scripts what happened.
        print(f"repro: {interrupted}", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
