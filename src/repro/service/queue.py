"""Bounded admission queue with priority and per-client fairness.

The queue is where the daemon stays *available under overload*: depth is
bounded, so a flood of submissions turns into fast typed 429s
(:class:`~repro.service.errors.AdmissionRejected` with a ``Retry-After``
estimate) instead of unbounded memory growth and minute-long latency
tails.  Scheduling is two-level:

* **priority** — ``high`` > ``normal`` > ``low``; a higher bucket is
  always served first (an interactive design-loop query never waits
  behind a bulk sweep);
* **fairness** — within a bucket, clients are served round-robin: each
  client owns a FIFO sub-queue and the scheduler rotates over clients,
  so one chatty client queueing 50 requests cannot starve another's
  single request (it waits behind at most one request per other client,
  not fifty).

On top of backpressure, admission enforces **per-tenant quotas**: each
client owns a token bucket (``quota_rps`` refill, ``quota_burst``
capacity) consulted *before* a queue slot is considered, so one tenant
burning its budget raises a typed :class:`~repro.service.errors.\
QuotaExceeded` — a 429 whose ``code`` distinguishes "your budget is
spent" (``quota_exceeded``, Retry-After = time to the next token) from
"the service is saturated" (``admission_rejected``).

Everything is thread-safe behind one lock + condition; ``close()`` flips
the queue into drain mode, where ``put`` raises
:class:`~repro.service.errors.ShuttingDown` and ``drain()`` hands back
whatever was still queued so the daemon can fail it *typed*, never
silently.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Callable, Optional

from .errors import AdmissionRejected, QuotaExceeded, ShuttingDown
from .protocol import PRIORITIES, RequestRecord

#: Distinct tenants tracked by the rate limiter before LRU eviction
#: (an evicted tenant simply starts over with a full bucket).
MAX_TRACKED_TENANTS = 4096


class TokenBucket:
    """One tenant's admission budget: ``rate`` tokens/s, ``burst`` cap.

    Clock-injectable and lock-free — the owning :class:`RateLimiter`
    serializes access.  Buckets start full, so a tenant's first burst
    is always admitted.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def try_take(self, now: float) -> float:
        """Take one token; 0.0 on success, else seconds until one
        accrues (the typed Retry-After)."""
        elapsed = max(now - self.updated, 0.0)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets with bounded tenant tracking."""

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError(f"quota rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = max(1.0, float(burst) if burst is not None
                         else max(1.0, 2.0 * rate))
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def admit(self, client: str) -> float:
        """One admission attempt; 0.0 when allowed, else the wait in
        seconds until this tenant's next token."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
                while len(self._buckets) > MAX_TRACKED_TENANTS:
                    self._buckets.popitem(last=False)
            self._buckets.move_to_end(client)
            return bucket.try_take(now)


class AdmissionQueue:
    """Bounded, priority-bucketed, client-fair request queue."""

    def __init__(self, max_depth: int = 64,
                 clock: Callable[[], float] = time.monotonic,
                 quota_rps: Optional[float] = None,
                 quota_burst: Optional[float] = None):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.limiter = RateLimiter(quota_rps, quota_burst, clock) \
            if quota_rps else None
        self._clock = clock
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        #: One bucket per priority rank; each maps client -> FIFO.  The
        #: OrderedDict order *is* the round-robin order.
        self._buckets: list[OrderedDict[str, deque]] = [
            OrderedDict() for _ in PRIORITIES]
        self._depth = 0
        self._closed = False
        #: Recent service-time estimate feeding the Retry-After hint.
        self._mean_service_s = 1.0

    # -- producer side --------------------------------------------------

    def put(self, record: RequestRecord) -> int:
        """Admit one request; returns the queue depth after admission.

        Raises :class:`AdmissionRejected` (with a ``retry_after_s``
        estimate of when a slot should free up) when full, and
        :class:`ShuttingDown` once the queue is closed.
        """
        with self._available:
            if self._closed:
                raise ShuttingDown("service is draining; request not "
                                   "admitted")
            if self.limiter is not None:
                wait_s = self.limiter.admit(record.request.client)
                if wait_s > 0:
                    raise QuotaExceeded(
                        f"client {record.request.client!r} exceeded its "
                        f"rate quota of {self.limiter.rate:g} "
                        "requests/s; the service has capacity, but this "
                        "tenant's budget is spent",
                        retry_after_s=max(wait_s, 0.05))
            if self._depth >= self.max_depth:
                raise AdmissionRejected(
                    f"admission queue is full "
                    f"({self._depth}/{self.max_depth} queued)",
                    retry_after_s=self.retry_after_hint())
            bucket = self._buckets[record.request.priority_rank()]
            client_queue = bucket.get(record.request.client)
            if client_queue is None:
                client_queue = bucket[record.request.client] = deque()
            client_queue.append(record)
            self._depth += 1
            self._available.notify()
            return self._depth

    def retry_after_hint(self) -> float:
        """Seconds until a queue slot plausibly frees up.

        A full queue drains one slot per completed request, so the hint
        is one recent mean service time, floored at a second to keep
        eager clients from hammering the daemon.
        """
        return max(1.0, self._mean_service_s)

    def observe_service_time(self, seconds: float) -> None:
        """Feed one completed request's wall time into the hint (EWMA)."""
        with self._lock:
            self._mean_service_s = (0.8 * self._mean_service_s
                                    + 0.2 * max(float(seconds), 0.0))

    # -- consumer side --------------------------------------------------

    def take(self, timeout: Optional[float] = None) \
            -> Optional[RequestRecord]:
        """Pop the next request by (priority, client round-robin) order.

        Blocks up to ``timeout`` seconds; returns ``None`` on timeout or
        once the queue is closed *and* empty.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._available:
            while True:
                record = self._pop_locked()
                if record is not None:
                    return record
                if self._closed:
                    return None
                remaining = None if deadline is None \
                    else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    return None
                self._available.wait(remaining)

    def _pop_locked(self) -> Optional[RequestRecord]:
        for bucket in self._buckets:
            while bucket:
                client, client_queue = next(iter(bucket.items()))
                if not client_queue:
                    del bucket[client]  # client drained; drop its slot
                    continue
                record = client_queue.popleft()
                # Rotate: the served client goes to the back of the
                # round-robin, keeping its remaining requests queued.
                bucket.move_to_end(client)
                if not client_queue:
                    del bucket[client]
                self._depth -= 1
                return record
        return None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Stop admitting; wake every blocked consumer."""
        with self._available:
            self._closed = True
            self._available.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def drain(self) -> list[RequestRecord]:
        """Close and return every still-queued request (service order).

        The caller owns failing them with a typed shutdown error —
        nothing queued is ever silently dropped.
        """
        self.close()
        remaining = []
        with self._lock:
            while True:
                record = self._pop_locked()
                if record is None:
                    break
                remaining.append(record)
        return remaining

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def clients(self) -> list[str]:
        """Distinct clients currently queued (diagnostics)."""
        with self._lock:
            seen: dict[str, None] = {}
            for bucket in self._buckets:
                for client, client_queue in bucket.items():
                    if client_queue:
                        seen.setdefault(client, None)
            return list(seen)
