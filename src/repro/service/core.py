"""The long-lived leakage-assessment service (transport-agnostic core).

:class:`LeakageService` owns the whole request lifecycle and none of the
sockets — the HTTP layer (:mod:`repro.service.server`) is a thin adapter
over it, and tests drive it in-process.  The invariant it maintains is
the one the chaos suite asserts: **every submitted request ends in
exactly one terminal state** — a result, a typed admission rejection, a
typed timeout, a typed failure, or a typed shutdown error — and each
transition is journaled durably.

Request flow::

    submit() ── validation ──> InvalidRequest (400)
           ├── breaker gate ──> ProgramQuarantined (503 + Retry-After)
           ├── drain gate ────> ShuttingDown (503)
           ├── bounded queue ─> AdmissionRejected (429 + Retry-After)
           └── queued ── executor thread ── running ──> done / failed /
                                                        timed_out
    drain() ── queued requests ──> shutdown (typed, nothing lost)
            └─ in-flight ───────> allowed to finish (cancel event only
                                   fires when drain_grace_s expires)

Executor threads run requests on the shared batch engine
(:func:`repro.service.executor.execute_assessment`) with one **warm
process-wide** :class:`~repro.harness.engine.CompileCache`, so the
compile cost of a design-iteration loop is paid once, not per request.

SLO metrics (queue depth, p50/p95/p99 latency, goodput, rejections,
breaker state) live in a service-owned
:class:`~repro.obs.registry.MetricsRegistry` — deliberately *not* the
global obs context, so serving requests never toggles the global sink
and trace energies stay bit-identical to the batch CLI.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from .. import obs
from ..harness import pool as harness_pool
from ..harness.engine import CompileCache, default_cache
from ..obs import events as obs_events
from ..obs.flamegraph import aggregate_spans
from ..obs.registry import MetricsRegistry
from ..obs.spans import count_spans
from . import protocol
from .breaker import CircuitBreaker
from .cache import DEFAULT_MAX_BYTES, VerdictCache, verdict_key
from .errors import (RequestNotFound, ServiceError, ShuttingDown)
from .executor import ExecutionFailed, execute_assessment
from .journal import RequestJournal
from .protocol import AssessRequest, RequestRecord, make_trace_id
from .queue import AdmissionQueue

logger = logging.getLogger("repro.service")


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance (all have safe defaults)."""

    #: Executor threads (concurrent requests in flight).
    workers: int = 2
    #: Pool worker processes per request batch (1 = in-thread serial).
    jobs: int = 1
    #: Bounded admission-queue depth.
    queue_depth: int = 64
    #: Per-trace retry budget against worker crashes.
    retries: int = 2
    #: Wall-clock bound per trace under a worker pool (None = unbounded).
    job_timeout: Optional[float] = None
    #: Traces per engine call — the cancellation granularity.
    chunk_size: int = 16
    #: Deadline applied when a request does not carry its own.
    default_deadline_s: Optional[float] = None
    #: Consecutive worker-crashing requests that trip the breaker.
    breaker_threshold: int = 3
    #: Quarantine period before a half-open probe.
    breaker_cooldown_s: float = 30.0
    #: Seconds drain() waits for in-flight work before cancelling it.
    drain_grace_s: float = 30.0
    #: Durable request journal path (None = not journaled).
    journal: Optional[Union[str, Path]] = None
    #: Run-manifest path written on drain (None = not written).
    manifest_out: Optional[Union[str, Path]] = None
    #: Completed records kept for status queries.
    history_limit: int = 1024
    #: Record a per-request span tree + timeline (request tracing).
    #: Off, requests still get IDs and timelines, but no span trees.
    trace_requests: bool = True
    #: Structured JSONL event-log path (None = no event log).
    event_log: Optional[Union[str, Path]] = None
    #: Event-log rotation threshold in bytes.
    event_log_max_bytes: int = obs_events.DEFAULT_MAX_BYTES
    #: Span-forest node ceiling per request; larger forests are
    #: compacted into an aggregated frame tree to bound history memory.
    span_tree_limit: int = 2048
    #: Verdict-cache byte budget; 0 disables the cache entirely.
    verdict_cache_bytes: int = DEFAULT_MAX_BYTES
    #: Per-tenant admission quota in requests/second (None = no quota).
    quota_rps: Optional[float] = None
    #: Token-bucket burst capacity (None = 2 × ``quota_rps``, min 1).
    quota_burst: Optional[float] = None


class LeakageService:
    """Transport-agnostic daemon core; see the module docstring."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 cache: Optional[CompileCache] = None):
        self.config = config or ServiceConfig()
        self.cache = cache if cache is not None else default_cache()
        self.verdict_cache = VerdictCache(self.config.verdict_cache_bytes) \
            if self.config.verdict_cache_bytes > 0 else None
        self.queue = AdmissionQueue(max_depth=self.config.queue_depth,
                                    quota_rps=self.config.quota_rps,
                                    quota_burst=self.config.quota_burst)
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s)
        self.journal = RequestJournal(self.config.journal) \
            if self.config.journal else None
        self.events = obs_events.EventLog(
            self.config.event_log,
            max_bytes=self.config.event_log_max_bytes) \
            if self.config.event_log else None
        self.registry = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._records_lock = threading.Lock()
        self._records: dict[str, RequestRecord] = {}
        self._order: list[str] = []
        self._draining = threading.Event()
        self._cancel = threading.Event()
        self._drain_lock = threading.Lock()
        self._drain_summary: Optional[dict] = None
        self._started = time.monotonic()
        self._inflight = 0
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"assess-worker-{index}", daemon=True)
            for index in range(max(1, self.config.workers))]
        for thread in self._threads:
            thread.start()

    # -- metrics (service-owned registry; one lock, many threads) -------

    def _count(self, name: str, help_text: str = "", value: float = 1,
               **labels) -> None:
        with self._metrics_lock:
            self.registry.counter(name, help_text).inc(value, **labels)

    def _observe(self, name: str, value: float, help_text: str = "",
                 **labels) -> None:
        with self._metrics_lock:
            self.registry.histogram(name, help_text).observe(value,
                                                             **labels)

    def _set_gauges(self) -> None:
        with self._metrics_lock:
            self.registry.gauge(
                "service_queue_depth",
                "admitted requests waiting for an executor") \
                .set(self.queue.depth)
            self.registry.gauge(
                "service_inflight",
                "requests currently executing").set(self._inflight)
            self.registry.gauge(
                "service_breaker_open",
                "program variants currently quarantined") \
                .set(self.breaker.open_count())
            if self.verdict_cache is not None:
                stats = self.verdict_cache.stats()
                self.registry.gauge(
                    "verdict_cache_entries",
                    "result documents held by the verdict cache") \
                    .set(stats["entries"])
                self.registry.gauge(
                    "verdict_cache_bytes",
                    "bytes held by the verdict cache") \
                    .set(stats["bytes"])

    # -- observability helpers ------------------------------------------

    def _event(self, event: str, record: RequestRecord, **detail) -> None:
        """One fsync'd event-log line for a lifecycle transition."""
        if self.events is not None:
            detail.setdefault("state", record.state)
            self.events.emit(event, id=record.id,
                             trace_id=record.trace_id, **detail)

    def _transition(self, event: str, record: RequestRecord,
                    **detail) -> None:
        """Record a lifecycle transition on both the in-memory timeline
        and the durable event log."""
        record.mark(event, **detail)
        self._event(event, record, **detail)

    def _tag_error(self, record: RequestRecord,
                   error: Optional[ServiceError]) -> None:
        """Stamp the request/trace IDs onto an outgoing typed error so
        the client can fetch ``/v1/requests/<id>/trace`` afterwards."""
        if error is None:
            return
        if error.request_id is None:
            error.request_id = record.id
        if error.trace_id is None:
            error.trace_id = record.trace_id

    # -- submission -----------------------------------------------------

    def submit(self, payload: Union[dict, AssessRequest],
               trace_id: Optional[str] = None) -> RequestRecord:
        """Admit one request; returns its record (state ``queued``).

        Raises the typed taxonomy otherwise — and journals rejected
        submissions too, so the restart accounting covers them.
        ``trace_id`` is the client-supplied trace identifier
        (``X-Repro-Trace-Id``); one is minted when absent.
        """
        request = payload if isinstance(payload, AssessRequest) \
            else AssessRequest.from_dict(payload)
        record = RequestRecord(request=request,
                               trace_id=make_trace_id(trace_id))
        self._transition("received", record, client=request.client,
                         priority=request.priority)
        program_key = request.program_key()
        if self.journal is not None:
            self.journal.submitted(record.id, request.client,
                                   request.priority, program_key,
                                   trace_id=record.trace_id)
        try:
            if self._draining.is_set():
                raise ShuttingDown("service is draining; request not "
                                   "admitted")
            self.breaker.admit(program_key)
            self.queue.put(record)
        except ServiceError as error:
            self._tag_error(record, error)
            record.finish(protocol.REJECTED
                          if error.code == "admission_rejected"
                          else protocol.SHUTDOWN
                          if error.code == "shutting_down"
                          else protocol.REJECTED, error=error)
            self._transition("terminal", record, state=record.state,
                             code=error.code)
            self._remember(record)
            self._journal_terminal(record)
            self._count("service_rejections_total",
                        "submissions rejected before execution",
                        reason=error.code)
            self._set_gauges()
            raise
        self._transition("admitted", record,
                         queue_depth=self.queue.depth)
        self._remember(record)
        self._count("service_requests_total",
                    "requests accepted into the queue",
                    client=request.client, priority=request.priority)
        self._set_gauges()
        return record

    def _remember(self, record: RequestRecord) -> None:
        with self._records_lock:
            self._records[record.id] = record
            self._order.append(record.id)
            while len(self._order) > self.config.history_limit:
                stale_id = self._order.pop(0)
                stale = self._records.get(stale_id)
                # Never evict a request that has not reached its
                # terminal state: accounting beats memory here.
                if stale is not None and stale.terminal.is_set():
                    del self._records[stale_id]
                else:
                    self._order.insert(0, stale_id)
                    break

    def get(self, request_id: str) -> RequestRecord:
        with self._records_lock:
            record = self._records.get(request_id)
        if record is None:
            raise RequestNotFound(f"no request {request_id!r}")
        return record

    def records(self) -> list[RequestRecord]:
        with self._records_lock:
            return [self._records[request_id]
                    for request_id in self._order]

    # -- execution ------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            record = self.queue.take(timeout=0.5)
            if record is None:
                if self.queue.closed:
                    return
                continue
            with self._records_lock:
                self._inflight += 1
            try:
                self._run_one(record)
            finally:
                with self._records_lock:
                    self._inflight -= 1
                self._set_gauges()

    def _run_one(self, record: RequestRecord) -> None:
        request = record.request
        program_key = request.program_key()
        deadline = record.deadline_monotonic
        if deadline is None and self.config.default_deadline_s:
            deadline = record.submitted_monotonic \
                + self.config.default_deadline_s
        if deadline is not None and time.monotonic() > deadline:
            self._finish(record, protocol.TIMED_OUT,
                         error=_queued_past_deadline(record))
            return
        record.start()
        self._set_gauges()
        queued_s = record.started_monotonic - record.submitted_monotonic
        self._transition("started", record, queued_s=round(queued_s, 6))
        self._observe("service_queue_seconds", queued_s,
                      "time from admission to execution start")
        try:
            result = self._execute_cached(record, deadline)
        except ShuttingDown as error:
            self._finish(record, protocol.SHUTDOWN, error=error)
        except ServiceError as error:  # DeadlineExceeded, ExecutionFailed

            state = protocol.TIMED_OUT \
                if error.code == "deadline_exceeded" else protocol.FAILED
            if isinstance(error, ExecutionFailed):
                if error.crashed_workers:
                    tripped = self.breaker.record_crash(program_key)
                    self._count("service_worker_crashes_total",
                                "requests that crashed pool workers")
                    if tripped:
                        self._count("service_breaker_trips_total",
                                    "circuit-breaker quarantine trips")
                else:
                    self.breaker.record_success(program_key)
            self._finish(record, state, error=error)
        except Exception as error:  # defensive: daemon must survive
            logger.exception("request %s failed unexpectedly", record.id)
            self._finish(record, protocol.FAILED,
                         error=ServiceError(
                             f"{type(error).__name__}: {error}"))
        else:
            self.breaker.record_success(program_key)
            self._finish(record, protocol.DONE, result=result)

    def _execute_cached(self, record: RequestRecord,
                        deadline: Optional[float]) -> dict:
        """Serve from / fill the verdict cache around :meth:`_execute`.

        Bypass conditions: cache disabled, ``"cache": false`` on the
        request, or attribution requested (the snapshot is per-run
        observability, not part of the cacheable result).  Concurrent
        identical requests coalesce single-flight: one leader computes,
        joiners block on the flight (still honoring their own deadline
        and the drain cancel event) and re-stamp the leader's document.
        A failed leader wakes joiners empty-handed and each computes
        independently — errors are never cached or propagated sideways.
        """
        request = record.request
        cache = self.verdict_cache
        if cache is None or not request.cache or request.attribution:
            return self._execute(record, deadline)
        key = verdict_key(request)
        outcome, token = cache.begin(key)
        if outcome == "hit":
            self._transition("verdict_cache_hit", record)
            self._count("verdict_cache_hits",
                        "requests served from the verdict cache",
                        source="direct")
            return self._stamp_cached(record, token)
        if outcome == "join":
            document = self._await_flight(record, token, deadline)
            if document is not None:
                self._transition("verdict_cache_hit", record,
                                 coalesced=True)
                self._count("verdict_cache_hits",
                            "requests served from the verdict cache",
                            source="coalesced")
                return self._stamp_cached(record, document)
            self._transition("verdict_cache_miss", record,
                             leader_failed=True)
            self._count("verdict_cache_misses",
                        "requests that had to simulate")
            return self._execute(record, deadline)
        self._transition("verdict_cache_miss", record)
        self._count("verdict_cache_misses",
                    "requests that had to simulate")
        try:
            result = self._execute(record, deadline)
        except BaseException:
            cache.abandon(key, token)
            raise
        evicted = cache.complete(key, token, result)
        self._transition("verdict_cache_store", record)
        if evicted:
            self._count("verdict_cache_evictions",
                        "entries evicted past the LRU byte budget",
                        value=evicted)
        return result

    def _await_flight(self, record: RequestRecord, flight,
                      deadline: Optional[float]) -> Optional[dict]:
        """Wait on a coalesced flight without outliving the request."""
        self._transition("verdict_cache_wait", record)
        while True:
            if self._cancel.is_set():
                raise ShuttingDown(
                    "request cancelled while coalesced on an identical "
                    "computation (service draining)")
            remaining = None if deadline is None \
                else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                from .errors import DeadlineExceeded

                raise DeadlineExceeded(
                    "deadline exceeded while coalesced on an identical "
                    "in-flight computation")
            window = 0.25 if remaining is None else min(0.25, remaining)
            if flight.event.wait(window):
                return self.verdict_cache.wait(flight, timeout=0)
            # flight still running; loop re-checks deadline/cancel

    def _stamp_cached(self, record: RequestRecord, document: dict) -> dict:
        """Per-request fields on a cached document: the stored result is
        bit-identical (digest, verdict, totals); only the envelope —
        requester identity, wall time — belongs to this request."""
        info = document.setdefault("verdict_cache", {"hit": True})
        info["hit"] = True
        document["request"] = record.request.to_dict()
        started = record.started_monotonic or time.monotonic()
        document["wall_s"] = round(time.monotonic() - started, 6)
        return document

    def _execute(self, record: RequestRecord,
                 deadline: Optional[float]) -> dict:
        """Run one request's assessment, with request-scoped tracing.

        The scope is **forced** for this thread only (see
        :func:`repro.obs.scope`): the global sink stays off, sibling
        executor threads trace their own requests independently, and the
        span tree is captured in a ``finally`` — a request that fails or
        times out mid-chunk keeps the partial tree the finished jobs
        already grafted, instead of dropping it with the chunk.
        """
        request = record.request

        def on_event(event: str, **detail) -> None:
            self._transition(event, record, **detail)

        kwargs = dict(cache=self.cache, jobs=self.config.jobs,
                      retries=self.config.retries,
                      job_timeout=self.config.job_timeout,
                      chunk_size=self.config.chunk_size,
                      deadline_monotonic=deadline, cancel=self._cancel,
                      on_event=on_event)
        if not self.config.trace_requests:
            return execute_assessment(request, **kwargs)
        attribute = request.attribution
        with obs.scope(force=True, attribution=attribute) as scoped:
            try:
                return execute_assessment(request, observe=True,
                                          attribute=attribute, **kwargs)
            finally:
                self._capture_trace(record, scoped, attribute)

    def _capture_trace(self, record: RequestRecord, scoped,
                       attribute: bool) -> None:
        tree = scoped.tracer.tree()
        if count_spans(tree) > max(self.config.span_tree_limit, 1):
            record.spans = [aggregate_spans(tree).to_dict()]
            record.spans_compacted = True
        else:
            record.spans = tree
        if attribute:
            record.attribution_snapshot = scoped.attribution.snapshot()

    def _finish(self, record: RequestRecord, state: str,
                result: Optional[dict] = None,
                error: Optional[ServiceError] = None) -> None:
        self._tag_error(record, error)
        record.finish(state, result=result, error=error)
        self._transition("terminal", record, state=record.state,
                         **({"code": error.code} if error else {}))
        self._journal_terminal(record)
        latency = record.latency_s or 0.0
        self.queue.observe_service_time(latency)
        self._observe("service_request_seconds", latency,
                      "submission-to-terminal latency", outcome=state)
        self._count("service_terminal_total",
                    "requests by terminal state", state=state)
        if state == protocol.DONE:
            self._count("service_goodput_traces_total",
                        "traces delivered inside successful results",
                        value=result["n_traces"] if result else 0)

    def _journal_terminal(self, record: RequestRecord) -> None:
        if self.journal is None:
            return
        detail = record.error.code if record.error is not None else None
        self.journal.terminal(record.id, record.state, detail=detail)

    # -- health / introspection ----------------------------------------

    def health(self) -> dict:
        with self._records_lock:
            inflight = self._inflight
        terminal = {}
        for record in self.records():
            if record.terminal.is_set():
                terminal[record.state] = terminal.get(record.state, 0) + 1
        health = {
            "status": "draining" if self._draining.is_set() else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.max_depth,
            "inflight": inflight,
            "workers": len(self._threads),
            "workers_alive": sum(1 for thread in self._threads
                                 if thread.is_alive()),
            "terminal": dict(sorted(terminal.items())),
            "breaker_open": self.breaker.open_count(),
        }
        if self.verdict_cache is not None:
            health["verdict_cache"] = self.verdict_cache.stats()
        pool_stats = harness_pool.pool_stats()
        if pool_stats is not None:
            health["pool"] = pool_stats
        return health

    def ready(self) -> tuple[bool, str]:
        """Readiness: accepting new work, with live executor threads."""
        if self._draining.is_set():
            return False, "draining"
        if not any(thread.is_alive() for thread in self._threads):
            return False, "no live executor threads"
        return True, "ok"

    def metrics_snapshot(self) -> dict:
        self._set_gauges()
        with self._metrics_lock:
            return self.registry.snapshot()

    def recovery_report(self) -> Optional[dict]:
        if self.journal is None:
            return None
        return self.journal.recovery.to_dict()

    # -- verdict cache --------------------------------------------------

    def verdict_cache_stats(self) -> Optional[dict]:
        """Verdict-cache accounting, or ``None`` when disabled."""
        if self.verdict_cache is None:
            return None
        return self.verdict_cache.stats()

    def invalidate_verdict_cache(
            self, program_key: Optional[str] = None) -> int:
        """Drop cached verdicts (all, or one program variant's)."""
        if self.verdict_cache is None:
            return 0
        dropped = self.verdict_cache.invalidate(program_key)
        if dropped:
            self._count("verdict_cache_invalidations",
                        "entries dropped by explicit invalidation",
                        value=dropped)
        return dropped

    # -- drain ----------------------------------------------------------

    def drain(self, grace_s: Optional[float] = None) -> dict:
        """Graceful shutdown: finish in-flight, fail queued *typed*.

        Returns a summary of what happened to outstanding work.  Runs
        once: concurrent or repeated calls block on the first drain and
        return its summary.
        """
        with self._drain_lock:
            if self._drain_summary is not None:
                return self._drain_summary
            summary = self._drain(grace_s)
            self._drain_summary = summary
            return summary

    def _drain(self, grace_s: Optional[float]) -> dict:
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        self._draining.set()
        abandoned = self.queue.drain()
        for record in abandoned:
            error = ShuttingDown(
                "service shut down before this request started; "
                "resubmit to a live instance")
            self._tag_error(record, error)
            record.finish(protocol.SHUTDOWN, error=error)
            self._transition("terminal", record, state=protocol.SHUTDOWN,
                             code=error.code)
            self._journal_terminal(record)
            self._count("service_terminal_total", state=protocol.SHUTDOWN)
        deadline = time.monotonic() + max(grace, 0.0)
        for thread in self._threads:
            thread.join(max(deadline - time.monotonic(), 0.0))
        if any(thread.is_alive() for thread in self._threads):
            # Grace expired: cancel in-flight chunked work; give the
            # threads one more short window to observe the event.
            self._cancel.set()
            for thread in self._threads:
                thread.join(5.0)
        self._set_gauges()
        # Executor threads are parked (or cancelled); every pool lease
        # is released, so the shared pool drains deterministically —
        # stranded_workers must be 0 in the summary and the manifest.
        pool_summary = harness_pool.shutdown_shared_pool(
            grace_s=max(grace, 0.0) if grace else 5.0)
        harness_pool.reset_shared_pool()
        summary = {
            "drained": True,
            "queued_failed_typed": len(abandoned),
            "inflight_finished": sum(
                1 for record in self.records()
                if record.state == protocol.DONE),
            "workers_alive": sum(1 for thread in self._threads
                                 if thread.is_alive()),
        }
        if pool_summary is not None:
            summary["pool"] = pool_summary
        if self.verdict_cache is not None:
            summary["verdict_cache"] = self.verdict_cache.stats()
        if self.config.manifest_out:
            summary["manifest"] = str(self._write_manifest(pool_summary))
        if self.journal is not None:
            self.journal.close()
        if self.events is not None:
            self.events.close()
        return summary

    def _write_manifest(
            self, pool_summary: Optional[dict] = None) -> Path:
        """Publish the session's SLO metrics as a standard run manifest.

        ``pool_summary`` is the shared pool's final (post-shutdown)
        accounting — recorded so a drain manifest proves zero stranded
        workers and how much pool reuse the session got.
        """
        health = self.health()
        summary = {"uptime_s": health["uptime_s"],
                   **{f"terminal_{state}": count
                      for state, count in health["terminal"].items()}}
        if pool_summary is not None:
            summary.update({
                "pool_stranded_workers":
                    pool_summary.get("stranded_workers", 0),
                "pool_leases": pool_summary.get("leases", 0),
                "pool_warm_acquires":
                    pool_summary.get("warm_acquires", 0),
                "pool_rebuilds": pool_summary.get("rebuilds", 0),
            })
        if self.verdict_cache is not None:
            stats = self.verdict_cache.stats()
            summary.update({
                "verdict_cache_hits": stats["hits"],
                "verdict_cache_misses": stats["misses"],
                "verdict_cache_coalesced": stats["coalesced"],
                "verdict_cache_evictions": stats["evictions"],
            })
        manifest = obs.build_manifest(
            experiment_id="service",
            config={"workers": self.config.workers,
                    "jobs": self.config.jobs,
                    "queue_depth": self.config.queue_depth,
                    "retries": self.config.retries,
                    "chunk_size": self.config.chunk_size,
                    "breaker_threshold": self.config.breaker_threshold,
                    "verdict_cache_bytes":
                        self.config.verdict_cache_bytes,
                    "quota_rps": self.config.quota_rps},
            summary=summary,
            metrics=self.metrics_snapshot(), spans=[])
        return obs.write_manifest(manifest, self.config.manifest_out)


def _queued_past_deadline(record: RequestRecord):
    from .errors import DeadlineExceeded

    waited = time.monotonic() - record.submitted_monotonic
    return DeadlineExceeded(
        f"request spent {waited:.1f}s queued, past its "
        f"{record.request.deadline_s}s deadline; never executed")
