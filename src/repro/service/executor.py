"""Request execution: one :class:`AssessRequest` -> one result document.

:func:`execute_assessment` is the *only* place a request's jobs are
built, so the daemon's executor threads and the batch CLI
(``repro submit --local``) run literally the same code — the service's
bit-identity guarantee is structural, not tested-into-existence.  The
job batch is shaped exactly like :func:`repro.attacks.dpa.collect_traces`
builds it (per-trace ``noise_seed = index + 1``, ``trace[i]`` labels),
and the result carries a SHA-256 digest of the stacked energy matrix as
the identity anchor.

Execution is **chunked** so long requests stay cancellable: between
chunks the executor consults the deadline and the cancel event and
raises the matching typed error
(:class:`~repro.service.errors.DeadlineExceeded` /
:class:`~repro.service.errors.ShuttingDown`).  A chunk in flight is
bounded by the request's ``max_cycles`` budget (and, under a worker
pool, by ``job_timeout``), so cancellation latency is one chunk, not one
request.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Callable, Optional

import numpy as np

from .. import obs
from ..harness.engine import CompileCache, SimJob, default_cache, run_jobs
from ..harness.resilience import JobFailure
from .errors import DeadlineExceeded, RequestFailed, ShuttingDown
from .protocol import SCHEMA, AssessRequest

#: Traces per run_jobs call — the cancellation granularity.
DEFAULT_CHUNK_SIZE = 16

#: Failure types that indicate the *pool* was abused rather than the
#: assessment honestly failing — these feed the circuit breaker.
CRASH_ERROR_TYPES = ("WorkerCrash", "BrokenProcessPool", "GarbageResult")


class ExecutionFailed(RequestFailed):
    """Typed execution failure carrying the batch's failure records."""

    def __init__(self, message: str, failures: list[JobFailure]):
        super().__init__(message)
        self.failures = failures

    @property
    def crashed_workers(self) -> bool:
        return any(f.error_type in CRASH_ERROR_TYPES
                   for f in self.failures)


def _build_jobs(request: AssessRequest, program, *,
                observe: bool = False,
                attribute: bool = False) -> list[SimJob]:
    """The request's job batch — collect_traces-shaped for bit-identity.

    ``observe``/``attribute`` ride on the jobs themselves so pool
    workers (fresh processes, blind to the submitter's thread-local
    forced scope) still record and ship their span trees home.
    """
    from ..attacks.dpa import random_plaintexts

    if request.mode == "pair":
        pairs = [(request.key, request.plaintext),
                 (request.key_b, request.plaintext)]
    else:
        pairs = [(request.key, plaintext) for plaintext in
                 random_plaintexts(request.n_traces, seed=request.seed)]
    return [SimJob(program=program, des_pair=pair,
                   noise_sigma=request.noise_sigma, noise_seed=index + 1,
                   label=f"trace[{index}]", max_cycles=request.max_cycles,
                   engine=request.engine, observe=observe,
                   attribute=attribute)
            for index, pair in enumerate(pairs)]


def _verdict(request: AssessRequest, results,
             plaintexts: list[int]) -> dict:
    """Leakage verdict over the collected traces, per the request mode.

    ``pair`` is the paper's differential form (max |Δ| per region vs the
    picojoule budget); ``population`` partitions by plaintext LSB — a
    public, uniformly split selection bit — and judges the peak Welch-t.
    """
    from ..obs.leakage import assess_pair, assess_population

    if request.mode == "pair":
        report = assess_pair(results[0].trace, results[1].trace,
                             budget_pj=request.budget_pj,
                             label=f"pair:{request.masking}")
    else:
        matrix = np.vstack([result.energy for result in results])
        partition = np.array([plaintext & 1 for plaintext in plaintexts],
                             dtype=np.int64)
        report = assess_population(matrix, partition,
                                   results[0].markers,
                                   budget_t=request.budget_t,
                                   budget_pj=request.budget_pj,
                                   label=f"tvla:{request.masking}")
    document = report.to_dict()
    document["mode"] = request.mode
    return document


def trace_digest(results) -> str:
    """SHA-256 over the stacked energy rows — the bit-identity anchor."""
    digest = hashlib.sha256()
    for result in results:
        digest.update(np.ascontiguousarray(
            result.energy, dtype=np.float64).tobytes())
    return digest.hexdigest()


def execute_assessment(
        request: AssessRequest, *,
        cache: Optional[CompileCache] = None,
        jobs: int = 1,
        retries: int = 2,
        job_timeout: Optional[float] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        deadline_monotonic: Optional[float] = None,
        cancel: Optional[threading.Event] = None,
        on_chunk: Optional[Callable[[int, int], None]] = None,
        observe: bool = False,
        attribute: bool = False,
        on_event: Optional[Callable[..., None]] = None) -> dict:
    """Run one assessment request to completion in the current thread.

    Raises :class:`DeadlineExceeded` / :class:`ShuttingDown` at chunk
    boundaries, and :class:`ExecutionFailed` when traces still fail
    after the retry budget.  Returns the result document (JSON-ready).

    ``observe``/``attribute`` turn on per-job tracing for the batch (the
    caller is expected to hold an :func:`repro.obs.scope` so the spans
    land somewhere); ``on_event(name, **detail)`` receives lifecycle
    marks — ``deadline_check``, ``chunk``, ``chunk_failed`` — that the
    daemon folds into the request timeline.  Neither affects the energy
    result: traces are bit-identical with tracing on or off.
    """

    def emit(event: str, **detail) -> None:
        if on_event is not None:
            on_event(event, **detail)

    start = time.perf_counter()
    cache = cache if cache is not None else default_cache()
    compile_request = request.compile_request()
    with obs.span("compile", cipher=request.cipher,
                  masking=request.masking):
        hits_before = cache.stats.hits
        program = cache.program_for(compile_request)
        cache_hit = cache.stats.hits > hits_before
    batch = _build_jobs(request, program, observe=observe,
                        attribute=attribute)
    plaintexts = [job.des_pair[1] for job in batch]

    results: list = []
    engines: dict[str, int] = {}
    for number, offset in enumerate(
            range(0, len(batch), max(chunk_size, 1))):
        if cancel is not None and cancel.is_set():
            emit("cancelled", done=len(results), total=len(batch))
            raise ShuttingDown(
                f"request cancelled after {len(results)}/{len(batch)} "
                "traces (service draining)")
        if deadline_monotonic is not None:
            remaining = deadline_monotonic - time.monotonic()
            emit("deadline_check", remaining_s=round(remaining, 6))
            if remaining < 0:
                raise DeadlineExceeded(
                    f"deadline exceeded after {len(results)}/{len(batch)} "
                    "traces")
        chunk = batch[offset:offset + max(chunk_size, 1)]
        # Always the "retry" policy (retries=0 just means one attempt):
        # failures come back as typed JobFailure records, so a worker
        # crash feeds the circuit breaker instead of surfacing as a raw
        # BrokenProcessPool.
        with obs.span(f"chunk[{number}]", traces=len(chunk)):
            chunk_results = run_jobs(
                chunk, jobs=jobs, failure_policy="retry",
                retries=retries, job_timeout=job_timeout)
        failures = [r for r in chunk_results if isinstance(r, JobFailure)]
        if failures:
            # Spans from the chunk's *successful* jobs were already
            # grafted by run_jobs before this raise, so a mid-chunk
            # failure still leaves a partial span tree behind.
            emit("chunk_failed", done=len(results), total=len(batch),
                 failed=len(failures),
                 error_type=failures[0].error_type)
            raise ExecutionFailed(
                f"{len(failures)} trace(s) failed after "
                f"{retries + 1} attempt(s): "
                f"{failures[0].error_type}: {failures[0].message}",
                failures)
        for result in chunk_results:
            engines[result.engine] = engines.get(result.engine, 0) + 1
            results.append(result)
        emit("chunk", done=len(results), total=len(batch))
        if on_chunk is not None:
            on_chunk(len(results), len(batch))

    cycles = {result.cycles for result in results}
    with obs.span("verdict", mode=request.mode):
        verdict = _verdict(request, results, plaintexts)
    return {
        "schema": SCHEMA,
        "request": request.to_dict(),
        "n_traces": len(results),
        "cycles": sorted(cycles),
        "trace_digest": trace_digest(results),
        "total_pj": round(float(sum(r.total_pj for r in results)), 6),
        "engines": dict(sorted(engines.items())),
        "cache_hit": cache_hit,
        "verdict": verdict,
        "wall_s": round(time.perf_counter() - start, 6),
    }
