"""Circuit breaker: quarantine programs that repeatedly crash workers.

A single malformed or adversarial program variant that hard-crashes pool
workers (``os._exit`` deep in native code, OOM kills) would otherwise
burn the daemon's whole retry budget on every submission, rebuilding
process pools in a loop while honest requests queue behind it.  The
breaker gives each program variant (keyed by its compile-cache key, so
identical requests share a breaker) the classic three-state lifecycle:

* **closed** — healthy; crashes increment a consecutive-failure count.
* **open** — ``threshold`` consecutive crash-failures trip the breaker:
  submissions are rejected at admission with a typed
  :class:`~repro.service.errors.ProgramQuarantined` (503 + Retry-After)
  until ``cooldown_s`` elapses.
* **half-open** — after the cool-down, exactly **one** probe request is
  admitted; success closes the breaker, another crash re-opens it for a
  fresh cool-down.

Only *worker-crash* failures count — an assessment that fails cleanly
(cycle-limit exceeded, validation) is the program's honest result, not
pool abuse, and must not quarantine it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from .errors import ProgramQuarantined

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class _Breaker:
    state: str = CLOSED
    consecutive_crashes: int = 0
    opened_at: float = 0.0
    #: A probe is in flight (half-open admits exactly one).
    probing: bool = False
    trips: int = 0


@dataclass
class BreakerSnapshot:
    """Point-in-time view of one program's breaker (diagnostics/metrics)."""

    key: str
    state: str
    consecutive_crashes: int
    trips: int
    retry_after_s: Optional[float] = None


class CircuitBreaker:
    """Per-program-variant crash breaker shared by the whole daemon."""

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, _Breaker] = {}

    def _get(self, key: str) -> _Breaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = _Breaker()
        return breaker

    # -- admission-time gate -------------------------------------------

    def admit(self, key: str) -> None:
        """Allow the request through, or raise :class:`ProgramQuarantined`.

        In the half-open window the first caller becomes the probe; until
        its success/crash verdict lands, everyone else keeps getting the
        typed rejection (one probe at a time bounds the blast radius).
        """
        with self._lock:
            breaker = self._get(key)
            if breaker.state == CLOSED:
                return
            now = self._clock()
            elapsed = now - breaker.opened_at
            if breaker.state == OPEN and elapsed >= self.cooldown_s:
                breaker.state = HALF_OPEN
                breaker.probing = False
            if breaker.state == HALF_OPEN and not breaker.probing:
                breaker.probing = True  # this request is the probe
                return
            retry_after = max(self.cooldown_s - elapsed, 1.0) \
                if breaker.state == OPEN else self.cooldown_s
            raise ProgramQuarantined(
                f"program {key[:12]}… is quarantined after "
                f"{breaker.consecutive_crashes} worker-crashing "
                f"request(s); probe in {retry_after:.0f}s",
                retry_after_s=retry_after)

    # -- execution verdicts --------------------------------------------

    def record_success(self, key: str) -> None:
        with self._lock:
            breaker = self._get(key)
            breaker.state = CLOSED
            breaker.consecutive_crashes = 0
            breaker.probing = False

    def record_crash(self, key: str) -> bool:
        """Count one worker-crashing request; True when this trips it."""
        with self._lock:
            breaker = self._get(key)
            breaker.consecutive_crashes += 1
            tripped = False
            if breaker.state == HALF_OPEN \
                    or breaker.consecutive_crashes >= self.threshold:
                if breaker.state != OPEN:
                    breaker.trips += 1
                    tripped = True
                breaker.state = OPEN
                breaker.opened_at = self._clock()
                breaker.probing = False
            return tripped

    # -- introspection --------------------------------------------------

    def snapshot(self) -> list[BreakerSnapshot]:
        with self._lock:
            now = self._clock()
            out = []
            for key, breaker in sorted(self._breakers.items()):
                retry_after = None
                if breaker.state == OPEN:
                    retry_after = max(
                        self.cooldown_s - (now - breaker.opened_at), 0.0)
                out.append(BreakerSnapshot(
                    key=key, state=breaker.state,
                    consecutive_crashes=breaker.consecutive_crashes,
                    trips=breaker.trips, retry_after_s=retry_after))
            return out

    def open_count(self) -> int:
        with self._lock:
            return sum(1 for breaker in self._breakers.values()
                       if breaker.state == OPEN)
