"""Threaded HTTP JSON API over :class:`~repro.service.core.LeakageService`.

Stdlib-only (``http.server``); one thread per connection on top of the
service's own executor threads.  Endpoints:

========================  ==================================================
``POST /v1/requests``     submit; ``?wait=SECONDS`` blocks for the result.
                          Terminal states map to typed statuses (200 done,
                          429 queue full + ``Retry-After``, 503 quarantined/
                          draining, 504 deadline, 500 failed); a request
                          still running when ``wait`` expires answers 202.
                          ``X-Repro-Trace-Id`` on the request names the
                          trace; the response echoes it (or the minted one).
``GET /v1/requests``      recent request summaries (lifecycle audit).
``GET /v1/requests/<id>`` one request; ``?wait=SECONDS`` to block.
``GET /v1/requests/<id>/trace``        span tree + lifecycle timeline JSON.
``GET /v1/requests/<id>/report.html``  self-contained HTML request report.
``GET /v1/requests/<id>/attribution``  per-PC attribution snapshot (typed
                          404 unless submitted with ``attribution: true``).
``GET /healthz``          liveness + drain state; always 200 while the
                          process can answer at all.
``GET /readyz``           admission readiness: 200, or 503 while draining
                          or with no live executor threads.
``GET /metrics``          SLO metrics snapshot (p50/p95/p99 latency, queue
                          depth, goodput, rejections, breaker state);
                          ``?format=prometheus`` for text exposition.
``GET /dashboard``        self-contained auto-refreshing HTML SLO page.
``GET /v1/recovery``      restart journal accounting (what a previous,
                          killed daemon left behind).
``GET /v1/cache``         verdict-cache stats (hits, misses, coalesces,
                          evictions, live entry/byte gauges).
``POST /v1/cache/invalidate``  drop cached verdicts; an optional JSON
                          body ``{"program_key": ...}`` restricts the
                          drop to one program variant.
========================  ==================================================

``serve()`` installs SIGTERM/SIGINT handlers that run the graceful
drain: stop admitting (``readyz`` flips first), let in-flight requests
finish, fail queued ones with typed shutdown errors, write the SLO
manifest, close the journal, exit 0.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from ..obs import prom
from ..obs.report import (dashboard_html, latency_quantiles,
                          request_report_html)
from .core import LeakageService, ServiceConfig
from .errors import RequestNotFound, ServiceError
from .protocol import DONE, SCHEMA, RequestRecord

#: Trace-ID propagation header (request and response).
TRACE_HEADER = "X-Repro-Trace-Id"

#: Dashboard rolling-history samples kept for the sparklines.
DASHBOARD_HISTORY = 120

logger = logging.getLogger("repro.service.server")

#: Longest single ``?wait=`` a client may ask for (long-polling bound).
MAX_WAIT_S = 600.0
#: Submission bodies larger than this are rejected unread.
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Maps the service core onto HTTP; all state lives in the service."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> LeakageService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send_json(self, status: int, document: dict,
                   headers: Optional[dict] = None) -> None:
        body = json.dumps(document, sort_keys=True).encode()
        self._send_body(status, body, "application/json", headers)

    def _send_text(self, status: int, text: str, content_type: str,
                   headers: Optional[dict] = None) -> None:
        self._send_body(status, text.encode("utf-8"), content_type,
                        headers)

    def _send_body(self, status: int, body: bytes, content_type: str,
                   headers: Optional[dict] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_typed(self, error: ServiceError) -> None:
        headers = {}
        if error.retry_after_s is not None:
            headers["Retry-After"] = str(max(1, round(error.retry_after_s)))
        if error.trace_id is not None:
            headers[TRACE_HEADER] = error.trace_id
        self._send_json(error.http_status, error.to_dict(), headers)

    def _wait_seconds(self, query: dict) -> Optional[float]:
        raw = (query.get("wait") or [None])[0]
        if raw is None:
            return None
        try:
            return min(max(float(raw), 0.0), MAX_WAIT_S)
        except ValueError:
            return None

    def _record_response(self, record: RequestRecord) -> None:
        """Answer with the record's current lifecycle view."""
        trace_header = {TRACE_HEADER: record.trace_id}
        if not record.terminal.is_set():
            self._send_json(202, record.to_dict(), trace_header)
        elif record.state == DONE:
            self._send_json(200, record.to_dict(), trace_header)
        else:
            error = record.error or ServiceError("request ended without "
                                                 "result or error")
            document = record.to_dict()
            headers = dict(trace_header)
            if error.retry_after_s is not None:
                headers["Retry-After"] = str(
                    max(1, round(error.retry_after_s)))
            self._send_json(error.http_status, document, headers)

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        try:
            if parsed.path == "/healthz":
                self._send_json(200, self.service.health())
            elif parsed.path == "/readyz":
                ready, reason = self.service.ready()
                self._send_json(200 if ready else 503,
                                {"ready": ready, "reason": reason})
            elif parsed.path == "/metrics":
                format_name = (query.get("format") or ["json"])[0]
                snapshot = self.service.metrics_snapshot()
                if format_name == "prometheus":
                    self._send_text(200, prom.render_prometheus(snapshot),
                                    prom.CONTENT_TYPE)
                else:
                    self._send_json(200, snapshot)
            elif parsed.path == "/dashboard":
                self._send_text(200, self._dashboard(),
                                "text/html; charset=utf-8")
            elif parsed.path == "/v1/recovery":
                report = self.service.recovery_report()
                if report is None:
                    self._send_json(200, {"journal": None})
                else:
                    self._send_json(200, report)
            elif parsed.path == "/v1/cache":
                self._send_json(200, {
                    "stats": self.service.verdict_cache_stats()})
            elif parsed.path == "/v1/requests":
                self._send_json(200, {"requests": [
                    record.to_dict(include_request=False)
                    for record in self.service.records()]})
            elif parsed.path.startswith("/v1/requests/"):
                self._request_subresource(parsed.path, query)
            else:
                self._send_json(404, {"error": {
                    "code": "not_found",
                    "message": f"no route {parsed.path}"}})
        except ServiceError as error:
            self._send_error_typed(error)

    def _request_subresource(self, path: str, query: dict) -> None:
        parts = [part for part in
                 path[len("/v1/requests/"):].split("/") if part]
        if not parts or len(parts) > 2:
            raise RequestNotFound(f"no route {path}")
        record = self.service.get(parts[0])
        trace_header = {TRACE_HEADER: record.trace_id}
        sub = parts[1] if len(parts) == 2 else None
        if sub is None:
            wait = self._wait_seconds(query)
            if wait:
                record.wait(wait)
            self._record_response(record)
        elif sub == "trace":
            self._send_json(200, record.trace_document(), trace_header)
        elif sub == "report.html":
            document = record.trace_document()
            if record.result is not None:
                document["result"] = record.result
            self._send_text(200, request_report_html(document),
                            "text/html; charset=utf-8", trace_header)
        elif sub == "attribution":
            if record.attribution_snapshot is None:
                raise RequestNotFound(
                    f"no attribution recorded for {record.id!r}; submit "
                    'with "attribution": true to collect it')
            self._send_json(200, {"schema": SCHEMA, "id": record.id,
                                  "trace_id": record.trace_id,
                                  "attribution":
                                      record.attribution_snapshot},
                            trace_header)
        else:
            raise RequestNotFound(f"no route {path}")

    def _dashboard(self) -> str:
        health = self.service.health()
        snapshot = self.service.metrics_snapshot()
        goodput = sum(
            series.get("value", 0.0) for series in
            snapshot.get("service_goodput_traces_total",
                         {}).get("series", []))
        sample = {"queue_depth": health.get("queue_depth", 0),
                  "inflight": health.get("inflight", 0),
                  "p95_s": latency_quantiles(snapshot).get("p95", 0.0),
                  "goodput": goodput}
        history = self.server.record_dashboard_sample(sample)  # type: ignore[attr-defined]
        return dashboard_html(health, snapshot, history)

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length > MAX_BODY_BYTES:
                raise ServiceError("request body too large")
            try:
                payload = json.loads(self.rfile.read(length) or b"{}")
            except json.JSONDecodeError as error:
                from .errors import InvalidRequest

                raise InvalidRequest(f"body is not valid JSON: {error}")
            if parsed.path == "/v1/cache/invalidate":
                program_key = payload.get("program_key") \
                    if isinstance(payload, dict) else None
                dropped = self.service.invalidate_verdict_cache(
                    program_key)
                self._send_json(200, {"invalidated": dropped})
                return
            if parsed.path != "/v1/requests":
                self._send_json(404, {"error": {
                    "code": "not_found",
                    "message": f"no route POST {parsed.path}"}})
                return
            record = self.service.submit(
                payload, trace_id=self.headers.get(TRACE_HEADER))
        except ServiceError as error:
            self._send_error_typed(error)
            return
        wait = self._wait_seconds(query)
        if wait:
            record.wait(wait)
        self._record_response(record)


class ServiceServer(ThreadingHTTPServer):
    """HTTP front end owning a :class:`LeakageService`."""

    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 config: Optional[ServiceConfig] = None,
                 service: Optional[LeakageService] = None):
        self.service = service or LeakageService(config)
        self._dashboard_lock = threading.Lock()
        self._dashboard_history: deque = deque(maxlen=DASHBOARD_HISTORY)
        super().__init__((host, port), _Handler)

    def record_dashboard_sample(self, sample: dict) -> list[dict]:
        """Append one SLO sample; returns the rolling history window."""
        with self._dashboard_lock:
            self._dashboard_history.append(sample)
            return list(self._dashboard_history)

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]


def serve(host: str = "127.0.0.1", port: int = 0,
          config: Optional[ServiceConfig] = None,
          announce=None, install_signal_handlers: bool = True) -> dict:
    """Run the daemon until SIGTERM/SIGINT, then drain gracefully.

    ``announce(event_dict)`` is called once with the bound address (the
    CLI prints it as a JSON line so scripts can discover an ephemeral
    port).  Returns the drain summary.
    """
    server = ServiceServer(host=host, port=port, config=config)
    stop = threading.Event()

    def _drain_then_stop():
        # Drain while the HTTP server still answers: /healthz reports
        # "draining", and clients polling queued/in-flight requests
        # receive their typed terminal states instead of a dead socket.
        # Only then stop the listener.
        server.service.drain()
        server.shutdown()

    def _trigger_shutdown(signum=None, frame=None):
        if stop.is_set():
            return
        stop.set()
        # serve_forever() must be stopped from another thread; the
        # signal handler runs on the main thread mid-poll.
        threading.Thread(target=_drain_then_stop, daemon=True).start()

    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, _trigger_shutdown)
    bound_host, bound_port = server.address
    if announce is not None:
        announce({"event": "listening", "host": bound_host,
                  "port": bound_port, "pid": os.getpid()})
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        # Idempotent: the signal path already drained; an external
        # shutdown() call reaches a fresh drain here.
        summary = server.service.drain()
        server.server_close()
    if announce is not None:
        announce({"event": "drained", **summary})
    return summary
