"""Typed error taxonomy of the leakage-assessment service.

Every way a request can fail to produce a result is a distinct
:class:`ServiceError` subclass carrying a stable machine-readable
``code`` and the HTTP status the server maps it to.  The same classes
are raised by the in-process service (:mod:`repro.service.core`), the
HTTP layer (:mod:`repro.service.server`) and re-raised by the client
(:mod:`repro.service.client`) after decoding the wire form, so a caller
catches ``AdmissionRejected`` identically whether it talked to a local
object or a remote daemon.

The taxonomy mirrors the batch engine's (typed
:class:`~repro.harness.resilience.JobFailure` / ``JobTimeout`` records
instead of opaque tracebacks): an overloaded daemon answers with a
retryable 429, a missed deadline with a 504, a draining daemon with a
503 — never a hung socket or a stack trace.
"""

from __future__ import annotations

from typing import Optional


class ServiceError(RuntimeError):
    """Base class: a request ended without a result, for a typed reason."""

    #: Stable machine-readable identifier (wire field ``error.code``).
    code = "service_error"
    #: HTTP status the server answers with.
    http_status = 500
    #: Whether retrying the identical request later can succeed.
    retryable = False

    def __init__(self, message: str,
                 retry_after_s: Optional[float] = None,
                 request_id: Optional[str] = None,
                 trace_id: Optional[str] = None):
        super().__init__(message)
        self.message = message
        self.retry_after_s = retry_after_s
        #: Request/trace identifiers, when the failure happened after an
        #: ID was minted — even a 429'd request is remembered, so the
        #: client can fetch ``/v1/requests/<id>/trace`` for its timeline.
        self.request_id = request_id
        self.trace_id = trace_id

    def to_dict(self) -> dict:
        """Wire form: ``{"error": {...}}`` body of a non-2xx response."""
        payload: dict = {"code": self.code, "message": self.message,
                         "retryable": self.retryable}
        if self.retry_after_s is not None:
            payload["retry_after_s"] = round(float(self.retry_after_s), 3)
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        return {"error": payload}


class InvalidRequest(ServiceError):
    """The request payload failed validation (never admitted)."""

    code = "invalid_request"
    http_status = 400


class RequestNotFound(ServiceError):
    """No request with that id (expired, or never submitted here)."""

    code = "not_found"
    http_status = 404


class AdmissionRejected(ServiceError):
    """The bounded admission queue is full; retry after ``retry_after_s``."""

    code = "admission_rejected"
    http_status = 429
    retryable = True


class QuotaExceeded(AdmissionRejected):
    """This tenant exhausted its rate quota (token bucket empty).

    A subclass of :class:`AdmissionRejected` so generic 429 handling
    (client ``--retry-429`` backoff honoring ``Retry-After``) applies
    unchanged, while the distinct ``code`` tells a tenant the *service*
    has capacity — only their own budget is spent.
    """

    code = "quota_exceeded"
    http_status = 429
    retryable = True


class ProgramQuarantined(ServiceError):
    """The circuit breaker is open for this program variant.

    Raised at admission when the requested program repeatedly crashed
    workers; clears after the breaker's cool-down probe succeeds.
    """

    code = "program_quarantined"
    http_status = 503
    retryable = True


class DeadlineExceeded(ServiceError):
    """The request missed its deadline (queued or mid-execution)."""

    code = "deadline_exceeded"
    http_status = 504


class ShuttingDown(ServiceError):
    """The daemon is draining: queued work is returned, not dropped."""

    code = "shutting_down"
    http_status = 503
    retryable = True


class RequestFailed(ServiceError):
    """Execution failed after the retry budget (typed detail inside)."""

    code = "request_failed"
    http_status = 500


#: ``code`` -> class, for decoding wire errors back into exceptions.
ERROR_TYPES: dict[str, type] = {
    cls.code: cls
    for cls in (ServiceError, InvalidRequest, RequestNotFound,
                AdmissionRejected, QuotaExceeded, ProgramQuarantined,
                DeadlineExceeded, ShuttingDown, RequestFailed)
}


def error_from_dict(document: dict) -> ServiceError:
    """Rebuild the typed exception from its wire form.

    Unknown codes degrade to the base :class:`ServiceError` so a newer
    daemon never crashes an older client.
    """
    payload = document.get("error", document)
    cls = ERROR_TYPES.get(payload.get("code", ""), ServiceError)
    error = cls(payload.get("message", "unknown service error"),
                retry_after_s=payload.get("retry_after_s"),
                request_id=payload.get("request_id"),
                trace_id=payload.get("trace_id"))
    return error
