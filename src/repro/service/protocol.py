"""Request/response protocol of the leakage-assessment service.

An :class:`AssessRequest` is the unit of work a client submits: "compile
this program variant, collect N traces under this noise/engine policy,
and return the leakage verdict plus trace digest".  The dataclass is the
single source of truth for validation and for the JSON wire form, and it
maps 1:1 onto the batch stack (:class:`~repro.harness.engine.CompileRequest`
plus a :func:`~repro.attacks.dpa.collect_traces`-shaped job batch), so a
request executed by the daemon is **bit-identical** to the same request
executed locally by ``repro submit --local``.

:class:`RequestRecord` is the server-side lifecycle wrapper: every
admitted request moves through ``queued -> running -> <terminal>`` where
the terminal states are exactly one of ``done``, ``failed``,
``timed_out``, ``rejected``, or ``shutdown`` — there is no state in
which a submitted request silently disappears.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional

from .errors import InvalidRequest, ServiceError

#: Wire schema identifier carried on results and journal frames.
SCHEMA = "repro.service/v1"

#: Assessment modes (what verdict the request asks for).
MODES = ("pair", "population")

#: Priority names in descending service order.
PRIORITIES = ("high", "normal", "low")

#: Ceiling on traces per request: admission control protects the worker
#: pool from a single request monopolizing it for hours.
MAX_TRACES = 4096

#: Ceiling on the per-simulation cycle budget a request may ask for.
MAX_CYCLES_CEILING = 50_000_000

_DEF_KEY_A = 0x133457799BBCDFF1
_DEF_KEY_B = 0x0E329232EA6D0D73
_DEF_PLAINTEXT = 0x0123456789ABCDEF


def _parse_word64(value, name: str) -> int:
    """Accept ints or (hex) strings; reject anything outside 64 bits."""
    if isinstance(value, bool):
        raise InvalidRequest(f"{name} must be a 64-bit integer")
    if isinstance(value, str):
        try:
            value = int(value, 0)
        except ValueError:
            raise InvalidRequest(
                f"{name} must be an integer or hex string, got {value!r}")
    if not isinstance(value, int):
        raise InvalidRequest(f"{name} must be a 64-bit integer")
    if not 0 <= value < (1 << 64):
        raise InvalidRequest(f"{name} out of 64-bit range")
    return value


@dataclass(frozen=True)
class AssessRequest:
    """One leakage-assessment work item, fully validated.

    ``mode="pair"`` runs the paper's differential form — the same
    plaintext under ``key``/``key_b`` — and judges the per-region
    max |Δ| against ``budget_pj`` (Figs. 7–9).  ``mode="population"``
    collects ``n_traces`` acquisitions of ``key`` over seeded random
    plaintexts, partitions them by plaintext LSB, and judges the peak
    Welch-t against ``budget_t`` (TVLA-style).
    """

    mode: str = "population"
    cipher: str = "des"
    masking: str = "selective"
    policy: Optional[str] = None
    rounds: int = 16
    n_traces: int = 16
    key: int = _DEF_KEY_A
    key_b: int = _DEF_KEY_B
    plaintext: int = _DEF_PLAINTEXT
    seed: int = 2003
    noise_sigma: float = 0.0
    engine: Optional[str] = None
    budget_pj: float = 0.0
    budget_t: float = 4.5
    max_cycles: int = 2_000_000
    #: Fairness/scheduling fields (not part of the result identity).
    client: str = "anonymous"
    priority: str = "normal"
    deadline_s: Optional[float] = None
    #: Collect per-PC energy attribution for this request (observability
    #: only — the energy result stays bit-identical either way).
    attribution: bool = False
    #: Allow the verdict cache to serve/store this request.  ``False``
    #: forces a fresh simulation (and never stores the result).  Not
    #: part of the result identity.
    cache: bool = True

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise InvalidRequest(
                f"mode must be one of {MODES}, got {self.mode!r}")
        if self.cipher != "des":
            raise InvalidRequest(
                f"cipher must be 'des' (got {self.cipher!r}); AES "
                "assessment lands once its spec grows a rounds knob")
        if self.masking not in ("selective", "annotate-only", "none"):
            raise InvalidRequest(f"unknown masking {self.masking!r}")
        if self.policy is not None:
            from ..masking.policy import MaskingPolicy

            try:
                MaskingPolicy(self.policy)
            except ValueError:
                raise InvalidRequest(f"unknown policy {self.policy!r}")
        if not 1 <= self.rounds <= 16:
            raise InvalidRequest("rounds must be in 1..16")
        if not 1 <= self.n_traces <= MAX_TRACES:
            raise InvalidRequest(
                f"n_traces must be in 1..{MAX_TRACES} "
                f"(admission control), got {self.n_traces}")
        if self.mode == "population" and self.n_traces < 2:
            raise InvalidRequest("population mode needs n_traces >= 2")
        if self.noise_sigma < 0:
            raise InvalidRequest("noise_sigma must be >= 0")
        if self.engine is not None:
            from ..machine.engines import resolve

            try:
                resolve(self.engine)
            except ValueError as error:
                raise InvalidRequest(str(error))
        if not 1 <= self.max_cycles <= MAX_CYCLES_CEILING:
            raise InvalidRequest(
                f"max_cycles must be in 1..{MAX_CYCLES_CEILING}")
        if self.priority not in PRIORITIES:
            raise InvalidRequest(
                f"priority must be one of {PRIORITIES}, "
                f"got {self.priority!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise InvalidRequest("deadline_s must be > 0")
        if not self.client or not isinstance(self.client, str):
            raise InvalidRequest("client must be a non-empty string")
        if not isinstance(self.attribution, bool):
            raise InvalidRequest("attribution must be a boolean")
        if not isinstance(self.cache, bool):
            raise InvalidRequest("cache must be a boolean")

    # -- wire form ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "mode": self.mode, "cipher": self.cipher,
            "masking": self.masking, "policy": self.policy,
            "rounds": self.rounds, "n_traces": self.n_traces,
            "key": f"0x{self.key:016X}", "key_b": f"0x{self.key_b:016X}",
            "plaintext": f"0x{self.plaintext:016X}", "seed": self.seed,
            "noise_sigma": self.noise_sigma, "engine": self.engine,
            "budget_pj": self.budget_pj, "budget_t": self.budget_t,
            "max_cycles": self.max_cycles, "client": self.client,
            "priority": self.priority, "deadline_s": self.deadline_s,
            "attribution": self.attribution, "cache": self.cache,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AssessRequest":
        if not isinstance(payload, dict):
            raise InvalidRequest("request body must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidRequest(f"unknown request fields: {unknown}")
        values = dict(payload)
        for word in ("key", "key_b", "plaintext"):
            if word in values:
                values[word] = _parse_word64(values[word], word)
        for number, kind in (("rounds", int), ("n_traces", int),
                             ("seed", int), ("max_cycles", int),
                             ("noise_sigma", float), ("budget_pj", float),
                             ("budget_t", float)):
            if number in values and values[number] is not None:
                try:
                    values[number] = kind(values[number])
                except (TypeError, ValueError):
                    raise InvalidRequest(
                        f"{number} must be a {kind.__name__}")
        if values.get("deadline_s") is not None:
            try:
                values["deadline_s"] = float(values["deadline_s"])
            except (TypeError, ValueError):
                raise InvalidRequest("deadline_s must be a number")
        try:
            return cls(**values)
        except TypeError as error:
            raise InvalidRequest(str(error))

    def priority_rank(self) -> int:
        """Numeric service order: lower ranks are served first."""
        return PRIORITIES.index(self.priority)

    def program_key(self) -> str:
        """Cache key of the program variant — the circuit breaker's key."""
        return self.compile_request().cache_key()

    def compile_request(self):
        from ..harness.engine import CompileRequest
        from ..masking.policy import MaskingPolicy
        from ..programs.des_source import DesProgramSpec

        policy = MaskingPolicy(self.policy) if self.policy else None
        return CompileRequest(cipher=self.cipher,
                              spec=DesProgramSpec(rounds=self.rounds),
                              masking=self.masking, policy=policy)


# -- lifecycle --------------------------------------------------------------

#: Non-terminal states.
QUEUED = "queued"
RUNNING = "running"
#: Terminal states — exactly one per submitted request.
DONE = "done"
FAILED = "failed"
TIMED_OUT = "timed_out"
REJECTED = "rejected"
SHUTDOWN = "shutdown"

TERMINAL_STATES = (DONE, FAILED, TIMED_OUT, REJECTED, SHUTDOWN)

_request_counter = itertools.count(1)


def next_request_id(prefix: str = "req") -> str:
    return f"{prefix}-{next(_request_counter):06d}"


#: Charset/length contract for client-supplied trace IDs
#: (``X-Repro-Trace-Id`` header, ``--trace-id`` flag, ``REPRO_TRACE_ID``).
TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")


def make_trace_id(candidate: Optional[str] = None) -> str:
    """Validate a client-supplied trace ID or mint a fresh one.

    Invalid candidates raise :class:`InvalidRequest` rather than being
    silently replaced — a client that sends a trace ID wants to find the
    request by it later.
    """
    if candidate is None or candidate == "":
        return f"tr-{uuid.uuid4().hex[:20]}"
    if not isinstance(candidate, str) or not TRACE_ID_RE.match(candidate):
        raise InvalidRequest(
            "trace id must match [A-Za-z0-9._:-]{1,128}")
    return candidate


@dataclass
class RequestRecord:
    """Server-side lifecycle of one admitted (or rejected) request.

    Beyond the state machine, the record carries the request's
    observability: the trace ID (client-supplied or minted), a
    **timeline** of lifecycle marks (:meth:`mark` — received, admitted,
    started, chunks, deadline checks, terminal), and — when request
    tracing is on — the grafted span tree and attribution snapshot the
    executor captured.  :meth:`trace_document` is the JSON the
    ``GET /v1/requests/<id>/trace`` endpoint serves.
    """

    request: AssessRequest
    id: str = field(default_factory=next_request_id)
    state: str = QUEUED
    result: Optional[dict] = None
    error: Optional[ServiceError] = None
    submitted_monotonic: float = field(default_factory=time.monotonic)
    started_monotonic: Optional[float] = None
    finished_monotonic: Optional[float] = None
    terminal: threading.Event = field(default_factory=threading.Event,
                                      repr=False, compare=False)
    trace_id: str = field(default_factory=make_trace_id)
    #: Lifecycle marks: ``{"event", "t_s" (relative to submission),
    #: "ts" (wall clock), **detail}`` in occurrence order.
    timeline: list = field(default_factory=list, compare=False)
    #: Request-scoped span forest (request tracing enabled only).
    spans: Optional[list] = field(default=None, compare=False)
    #: Whether the span forest was compacted into an aggregated frame
    #: tree to bound history memory (see ``ServiceConfig.span_tree_limit``).
    spans_compacted: bool = False
    #: Per-PC attribution snapshot (``request.attribution`` only).
    attribution_snapshot: Optional[dict] = field(default=None,
                                                 compare=False)

    @property
    def deadline_monotonic(self) -> Optional[float]:
        if self.request.deadline_s is None:
            return None
        return self.submitted_monotonic + self.request.deadline_s

    def start(self) -> None:
        self.state = RUNNING
        self.started_monotonic = time.monotonic()

    def finish(self, state: str, result: Optional[dict] = None,
               error: Optional[ServiceError] = None) -> None:
        """Move to a terminal state exactly once (later calls are no-ops,
        so a drain racing a normal completion cannot double-count)."""
        if self.terminal.is_set():
            return
        assert state in TERMINAL_STATES, state
        self.state = state
        self.result = result
        self.error = error
        self.finished_monotonic = time.monotonic()
        self.terminal.set()

    @property
    def latency_s(self) -> Optional[float]:
        if self.finished_monotonic is None:
            return None
        return self.finished_monotonic - self.submitted_monotonic

    @property
    def queued_s(self) -> Optional[float]:
        """Queue wait: submission to execution start (None if never
        started — rejected at admission, or drained while queued)."""
        if self.started_monotonic is None:
            return None
        return self.started_monotonic - self.submitted_monotonic

    def mark(self, event: str, **detail) -> None:
        """Record one lifecycle transition on the timeline."""
        entry = {"event": event,
                 "t_s": round(time.monotonic()
                              - self.submitted_monotonic, 6),
                 "ts": round(time.time(), 6)}
        entry.update(detail)
        self.timeline.append(entry)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until terminal (or timeout); True when terminal."""
        return self.terminal.wait(timeout)

    def to_dict(self, include_request: bool = True) -> dict:
        document: dict = {"schema": SCHEMA, "id": self.id,
                          "trace_id": self.trace_id,
                          "state": self.state,
                          "terminal": self.terminal.is_set()}
        if include_request:
            document["request"] = self.request.to_dict()
        if self.latency_s is not None:
            document["latency_s"] = round(self.latency_s, 6)
        if self.result is not None:
            document["result"] = self.result
        if self.error is not None:
            document.update(self.error.to_dict())
        return document

    def trace_document(self) -> dict:
        """Span tree + timeline JSON for ``GET /v1/requests/<id>/trace``."""
        document: dict = {"schema": SCHEMA, "id": self.id,
                          "trace_id": self.trace_id,
                          "state": self.state,
                          "terminal": self.terminal.is_set(),
                          "request": self.request.to_dict(),
                          "timeline": list(self.timeline)}
        if self.queued_s is not None:
            document["queued_s"] = round(self.queued_s, 6)
        if self.latency_s is not None:
            document["latency_s"] = round(self.latency_s, 6)
        if self.spans is not None:
            document["spans"] = self.spans
            document["spans_compacted"] = self.spans_compacted
        if self.attribution_snapshot is not None:
            document["attribution"] = self.attribution_snapshot
        if self.error is not None:
            document.update(self.error.to_dict())
        return document
