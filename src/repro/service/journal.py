"""Durable request journal: what a killed daemon can still account for.

Every admitted (or rejected) request writes two JSON-lines frames to an
append-only file — one at submission, one at its terminal state — each
flushed and fsync'd, so after a SIGKILL the journal tail is at worst a
truncated final line (ignored on load), never silent loss.  On restart
the daemon replays the journal and produces a :class:`RecoveryReport`:
requests with both frames are *accounted*, requests with only the
submission frame were *interrupted* by the kill — the daemon reports
them (``/v1/recovery``) instead of pretending they never happened.

Frames are self-describing JSON objects (no pickle: the journal is a
forensic artifact an operator reads with ``jq``), versioned by the
``schema`` field.  A journal written by a different schema version is
preserved but not replayed — recovery is best-effort forensics, never a
correctness dependency of new requests.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from .protocol import TERMINAL_STATES

logger = logging.getLogger("repro.service.journal")

SCHEMA = "repro.service.journal/v1"


@dataclass
class RecoveryReport:
    """What a replayed journal says about the previous daemon's life."""

    path: str = ""
    #: Requests that reached a terminal state, by state name.
    completed: dict[str, int] = field(default_factory=dict)
    #: Requests submitted but never finished (killed mid-flight/queued).
    interrupted: list[str] = field(default_factory=list)
    #: Journal lines that failed to parse (truncated tail, corruption).
    malformed_lines: int = 0
    sessions: int = 0

    @property
    def total_submitted(self) -> int:
        return sum(self.completed.values()) + len(self.interrupted)

    def to_dict(self) -> dict:
        return {"schema": SCHEMA, "path": self.path,
                "completed": dict(sorted(self.completed.items())),
                "interrupted": list(self.interrupted),
                "malformed_lines": self.malformed_lines,
                "sessions": self.sessions,
                "total_submitted": self.total_submitted}


class RequestJournal:
    """Append-only, fsync'd JSON-lines lifecycle journal."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._stream = None
        self.recovery = replay(self.path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream = self.path.open("a", encoding="utf-8")
        self._write({"event": "session_start",
                     "pid": os.getpid(),
                     "recovered_interrupted":
                         list(self.recovery.interrupted)})

    def _write(self, record: dict) -> None:
        """Append one frame; best-effort durable (fsync), never raises
        into the request path — a journal on a dead disk degrades to
        logging, it does not take the daemon down with it."""
        record = {"schema": SCHEMA, "ts": round(time.time(), 3), **record}
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._stream is None:
                return
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
                os.fsync(self._stream.fileno())
            except (OSError, ValueError) as error:
                logger.warning("request journal %s: append failed (%s); "
                               "journaling disabled", self.path, error)
                try:
                    self._stream.close()
                except OSError:
                    pass
                self._stream = None

    # -- lifecycle frames ----------------------------------------------

    def submitted(self, request_id: str, client: str, priority: str,
                  program_key: str,
                  trace_id: Optional[str] = None) -> None:
        record = {"event": "submitted", "id": request_id,
                  "client": client, "priority": priority,
                  "program": program_key[:12]}
        if trace_id:
            record["trace_id"] = trace_id
        self._write(record)

    def terminal(self, request_id: str, state: str,
                 detail: Optional[str] = None) -> None:
        assert state in TERMINAL_STATES, state
        record = {"event": "terminal", "id": request_id, "state": state}
        if detail:
            record["detail"] = detail
        self._write(record)

    def close(self) -> None:
        self._write({"event": "session_end"})
        with self._lock:
            if self._stream is not None:
                try:
                    self._stream.close()
                except OSError:
                    pass
                self._stream = None


def replay(path: Union[str, Path]) -> RecoveryReport:
    """Fold an existing journal into a :class:`RecoveryReport`.

    Tolerates a truncated or corrupt tail (the SIGKILL case) by counting
    malformed lines instead of raising; unknown schemas and events are
    skipped, so old daemons' journals never wedge a new one.
    """
    path = Path(path)
    report = RecoveryReport(path=str(path))
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return report
    submitted: dict[str, None] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            report.malformed_lines += 1
            continue
        if not isinstance(record, dict) \
                or record.get("schema") != SCHEMA:
            report.malformed_lines += 1
            continue
        event = record.get("event")
        if event == "session_start":
            report.sessions += 1
        elif event == "submitted" and isinstance(record.get("id"), str):
            submitted.setdefault(record["id"], None)
        elif event == "terminal" and isinstance(record.get("id"), str):
            state = record.get("state")
            if state in TERMINAL_STATES:
                submitted.pop(record["id"], None)
                report.completed[state] = \
                    report.completed.get(state, 0) + 1
            else:
                report.malformed_lines += 1
    report.interrupted = list(submitted)
    return report
