"""Content-addressed verdict cache: identical requests, one simulation.

A leakage verdict is a pure function of the program variant and the
acquisition parameters — the whole stack is deterministic by
construction (seeded noise, seeded plaintexts, versioned toolchain).
:class:`VerdictCache` exploits that: the service keys each **successful**
result document by a SHA-256 over the request's *identity* —
``program_key()`` (which already embeds the toolchain fingerprint,
cipher, rounds, masking, and policy), the effective engine, and every
parameter that shapes the traces — and serves repeat submissions from
memory, bit-identical to a cold run, without touching the worker pool.

Identity deliberately **excludes** scheduling/observability fields
(``client``, ``priority``, ``deadline_s``, ``attribution``, ``cache``):
two tenants asking the same question share one answer.

Properties:

* **Single-flight coalescing** — concurrent identical requests elect a
  leader (:meth:`begin` → ``"lead"``); joiners block on the flight and
  receive the leader's document.  A failing leader wakes its joiners
  empty-handed and they compute independently — errors are never
  cached, and one leader's failure is not propagated to a neighbor.
* **LRU byte budget** — entries are stored as canonical JSON bytes
  (every hit decodes a fresh object, so callers can stamp per-request
  fields without corrupting the cache); inserting past ``max_bytes``
  evicts least-recently-used entries.
* **Explicit invalidation** — :meth:`invalidate` drops everything or
  one ``program_key``'s entries (the key embeds the program key
  prefix precisely so this is possible).
* **First-class stats** — hits/misses/coalesces/evictions/
  invalidations plus live entry/byte gauges, consumed by the service
  registry, ``/metrics`` and the dashboard.

Thread-safe behind one lock; the blocking join path waits *outside*
the lock on a per-flight event.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from typing import Callable, Optional

from ..machine.engines import resolve as resolve_engine
from .protocol import AssessRequest

#: Bump when the key derivation or stored-document shape changes.
CACHE_SCHEMA = "repro.service.cache/v1"

#: Default LRU byte budget (canonical JSON result documents are ~1 KiB,
#: so the default holds thousands of distinct verdicts).
DEFAULT_MAX_BYTES = 32 * 1024 * 1024


def verdict_key(request: AssessRequest) -> str:
    """``<program-key-hash>:<identity-hash>`` for one request.

    The first segment is a digest of ``program_key()`` alone so
    per-program invalidation can match on the prefix; the second covers
    every trace-shaping parameter.  The *effective* engine is resolved
    now (explicit request field, else ``$REPRO_ENGINE``, else the
    default) because the environment may change between requests.
    """
    program_key = request.program_key()
    identity = {
        "schema": CACHE_SCHEMA,
        "program_key": program_key,
        "engine": resolve_engine(request.engine),
        "mode": request.mode,
        "n_traces": request.n_traces,
        "key": request.key,
        "key_b": request.key_b,
        "plaintext": request.plaintext,
        "seed": request.seed,
        "noise_sigma": request.noise_sigma,
        "budget_pj": request.budget_pj,
        "budget_t": request.budget_t,
        "max_cycles": request.max_cycles,
    }
    blob = json.dumps(identity, sort_keys=True).encode()
    program_hash = hashlib.sha256(program_key.encode()).hexdigest()[:16]
    return f"{program_hash}:{hashlib.sha256(blob).hexdigest()}"


class _Flight:
    """One in-progress computation other requests may coalesce onto."""

    __slots__ = ("event", "document", "joiners")

    def __init__(self):
        self.event = threading.Event()
        self.document: Optional[dict] = None
        self.joiners = 0


class VerdictCache:
    """LRU, byte-budgeted, single-flight verdict/result cache."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES,
                 clock: Callable[[], float] = time.monotonic):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (canonical JSON bytes, stored_monotonic); insertion
        #: order doubles as recency order (move_to_end on hit).
        self._entries: OrderedDict[str, tuple[bytes, float]] = \
            OrderedDict()
        self._bytes = 0
        self._flights: dict[str, _Flight] = {}
        self._stats = {"hits": 0, "misses": 0, "coalesced": 0,
                       "coalesced_misses": 0, "stores": 0, "evictions": 0,
                       "invalidations": 0, "uncacheable": 0}

    # -- lookup / single-flight -----------------------------------------

    def begin(self, key: str):
        """Start one request's cache interaction.

        Returns ``("hit", document)`` on a cache hit,
        ``("join", flight)`` when an identical computation is already in
        flight, or ``("lead", flight)`` when the caller must compute
        and then :meth:`complete` (or :meth:`abandon`) the flight.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._stats["hits"] += 1
                return "hit", self._decode(entry)
            flight = self._flights.get(key)
            if flight is not None:
                flight.joiners += 1
                self._stats["coalesced"] += 1
                return "join", flight
            flight = _Flight()
            self._flights[key] = flight
            self._stats["misses"] += 1
            return "lead", flight

    def wait(self, flight: _Flight,
             timeout: Optional[float] = None) -> Optional[dict]:
        """Block on a joined flight; the leader's document, or ``None``
        when the leader failed/abandoned (the joiner computes itself)
        or the timeout elapsed."""
        if not flight.event.wait(timeout):
            return None
        if flight.document is None:
            with self._lock:
                self._stats["coalesced_misses"] += 1
            return None
        return json.loads(json.dumps(flight.document))

    def complete(self, key: str, flight: _Flight, document: dict) -> int:
        """Leader succeeded: store the document, wake the joiners.
        Returns the number of LRU entries evicted by the store."""
        evicted = self.put(key, document)
        flight.document = document
        with self._lock:
            self._flights.pop(key, None)
        flight.event.set()
        return evicted

    def abandon(self, key: str, flight: _Flight) -> None:
        """Leader failed: wake joiners empty-handed, cache nothing."""
        with self._lock:
            self._flights.pop(key, None)
        flight.event.set()

    # -- storage --------------------------------------------------------

    def put(self, key: str, document: dict) -> int:
        """Insert one result document (canonical JSON), evicting LRU
        entries past the byte budget; returns how many entries were
        evicted.  A document too large for the whole budget is counted
        and skipped, never stored truncated."""
        blob = json.dumps(document, sort_keys=True).encode()
        with self._lock:
            if len(blob) > self.max_bytes:
                self._stats["uncacheable"] += 1
                return 0
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old[0])
            self._entries[key] = (blob, self._clock())
            self._bytes += len(blob)
            self._stats["stores"] += 1
            evicted = 0
            while self._bytes > self.max_bytes and self._entries:
                _, (blob_evicted, _) = self._entries.popitem(last=False)
                self._bytes -= len(blob_evicted)
                self._stats["evictions"] += 1
                evicted += 1
            return evicted

    def get(self, key: str) -> Optional[dict]:
        """Plain lookup (no flight bookkeeping; stats still counted)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats["misses"] += 1
                return None
            self._entries.move_to_end(key)
            self._stats["hits"] += 1
            return self._decode(entry)

    def _decode(self, entry: tuple[bytes, float]) -> dict:
        blob, stored = entry
        document = json.loads(blob)
        document["verdict_cache"] = {
            "hit": True,
            "age_s": round(max(self._clock() - stored, 0.0), 6),
        }
        return document

    # -- invalidation ---------------------------------------------------

    def invalidate(self, program_key: Optional[str] = None) -> int:
        """Drop every entry, or only one program variant's entries.

        Returns the number of entries removed.  In-flight computations
        are unaffected (their eventual store repopulates the cache with
        a result that was correct when computed).
        """
        with self._lock:
            if program_key is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._bytes = 0
            else:
                prefix = hashlib.sha256(
                    program_key.encode()).hexdigest()[:16] + ":"
                doomed = [key for key in self._entries
                          if key.startswith(prefix)]
                for key in doomed:
                    blob, _ = self._entries.pop(key)
                    self._bytes -= len(blob)
                dropped = len(doomed)
            self._stats["invalidations"] += dropped
            return dropped

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return dict(self._stats, entries=len(self._entries),
                        bytes=self._bytes, max_bytes=self.max_bytes,
                        inflight=len(self._flights))
