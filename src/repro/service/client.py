"""Stdlib HTTP client for the leakage-assessment daemon.

:class:`ServiceClient` speaks the :mod:`repro.service.server` API with
``urllib`` only, and decodes non-2xx answers back into the *same* typed
exceptions the in-process service raises
(:mod:`repro.service.errors`), so calling code is transport-agnostic::

    client = ServiceClient("http://127.0.0.1:8734")
    try:
        result = client.assess({"mode": "pair", "masking": "selective"})
    except AdmissionRejected as busy:
        time.sleep(busy.retry_after_s or 1.0)

Used by ``repro submit`` and by the smoke/chaos suites.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional, Union

from .errors import ServiceError, error_from_dict
from .protocol import AssessRequest

DEFAULT_TIMEOUT_S = 30.0


class ServiceClient:
    """Thin typed wrapper over the daemon's JSON API."""

    def __init__(self, base_url: str,
                 timeout_s: float = DEFAULT_TIMEOUT_S):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport ------------------------------------------------------

    def _call_raw(self, method: str, path: str,
                  payload: Optional[dict] = None,
                  timeout_s: Optional[float] = None) -> tuple[int, dict]:
        """One HTTP round trip; non-2xx answers return, never raise —
        only transport-level failures raise (as retryable
        :class:`ServiceError`)."""
        body = json.dumps(payload).encode() if payload is not None \
            else None
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"})
        timeout = self.timeout_s if timeout_s is None else timeout_s
        try:
            with urllib.request.urlopen(request,
                                        timeout=timeout) as response:
                return response.status, json.loads(response.read()
                                                   or b"{}")
        except urllib.error.HTTPError as http_error:
            try:
                document = json.loads(http_error.read() or b"{}")
            except json.JSONDecodeError:
                document = {"error": {
                    "code": "service_error",
                    "message": f"HTTP {http_error.code} from {path} "
                               "without a JSON body"}}
            return http_error.code, document
        except urllib.error.URLError as network_error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: "
                f"{getattr(network_error, 'reason', network_error)}",
                retry_after_s=1.0)

    def _call(self, method: str, path: str,
              payload: Optional[dict] = None,
              timeout_s: Optional[float] = None) -> dict:
        """Round trip that raises the typed error on failure statuses.

        A terminal lifecycle document (it carries ``state``) is returned
        even on a failure status — the caller inspects it; pure error
        bodies (submission rejections) raise.
        """
        status, document = self._call_raw(method, path, payload,
                                          timeout_s)
        if status >= 400 and "state" not in document:
            raise error_from_dict(document)
        return document

    # -- API ------------------------------------------------------------

    def submit(self, request: Union[dict, AssessRequest],
               wait_s: Optional[float] = None) -> dict:
        """Submit; returns the lifecycle document (maybe non-terminal).

        Typed submission rejections (400/429/503) raise; terminal
        failure states reached while waiting are returned as documents
        (see :meth:`assess` for the raising form).
        """
        payload = request.to_dict() \
            if isinstance(request, AssessRequest) else dict(request)
        path = "/v1/requests"
        if wait_s is not None:
            path += f"?wait={float(wait_s)}"
        timeout = None if wait_s is None else wait_s + self.timeout_s
        return self._call("POST", path, payload, timeout_s=timeout)

    def assess(self, request: Union[dict, AssessRequest],
               timeout_s: float = 300.0,
               poll_s: float = 0.25) -> dict:
        """Submit and block until the result document; typed errors raise.

        Long-polls the daemon until the request is terminal or
        ``timeout_s`` elapses client-side.
        """
        document = self.submit(request, wait_s=min(timeout_s, 30.0))
        deadline = time.monotonic() + timeout_s
        while not document.get("terminal"):
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"request {document.get('id')} still "
                    f"{document.get('state')} after {timeout_s}s "
                    "(client-side wait budget)")
            time.sleep(poll_s)
            document = self.status(
                document["id"],
                wait_s=min(30.0, max(deadline - time.monotonic(), 0.0)))
        if document.get("state") != "done":
            raise error_from_dict(document)
        return document["result"]

    def status(self, request_id: str,
               wait_s: Optional[float] = None) -> dict:
        """Lifecycle document of one request, whatever its state.

        Raises only for transport failures and unknown ids — terminal
        failure states come back as documents (their ``error`` field
        carries the typed detail), so accounting loops can fold every
        outcome without exception plumbing.
        """
        path = f"/v1/requests/{request_id}"
        if wait_s is not None:
            path += f"?wait={max(float(wait_s), 0.0)}"
        timeout = None if wait_s is None else wait_s + self.timeout_s
        return self._call("GET", path, timeout_s=timeout)

    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def ready(self) -> tuple[bool, dict]:
        """``(ready, document)`` — a 503 is an answer, not an error."""
        status, document = self._call_raw("GET", "/readyz")
        return status == 200, document

    def metrics(self) -> dict:
        return self._call("GET", "/metrics")

    def recovery(self) -> dict:
        return self._call("GET", "/v1/recovery")

    def requests(self) -> list[dict]:
        return self._call("GET", "/v1/requests")["requests"]
