"""Stdlib HTTP client for the leakage-assessment daemon.

:class:`ServiceClient` speaks the :mod:`repro.service.server` API over
**one persistent keep-alive connection** (``http.client``), and decodes
non-2xx answers back into the *same* typed exceptions the in-process
service raises (:mod:`repro.service.errors`), so calling code is
transport-agnostic::

    client = ServiceClient("http://127.0.0.1:8734")
    try:
        result = client.assess({"mode": "pair", "masking": "selective"})
    except AdmissionRejected as busy:
        time.sleep(busy.retry_after_s or 1.0)

The connection is lazily opened, reused across every call (poll loops
no longer pay a TCP handshake per status check), and transparently
re-opened **once** when a reused socket turns out to be stale (the
server idled it out between polls) — a failure on a *fresh* connection
raises immediately as a retryable :class:`ServiceError`.
``connections_opened`` counts dials, so tests can assert reuse.

Used by ``repro submit`` and by the smoke/chaos suites.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from typing import Optional, Union
from urllib.parse import urlsplit

from .errors import AdmissionRejected, ServiceError, error_from_dict
from .protocol import AssessRequest

DEFAULT_TIMEOUT_S = 30.0

#: Trace-ID propagation header (mirrors the server's).
TRACE_HEADER = "X-Repro-Trace-Id"

#: Capped backoff bounds for ``retry_429`` (seconds).
RETRY_BASE_S = 0.5
RETRY_CAP_S = 30.0


def backoff_delay(attempt: int, retry_after_s: Optional[float] = None,
                  base_s: float = RETRY_BASE_S,
                  cap_s: float = RETRY_CAP_S,
                  rng: Optional[random.Random] = None) -> float:
    """Capped, jittered retry delay honoring a server ``Retry-After``.

    The server hint (when present) seeds the delay; otherwise
    exponential from ``base_s``.  Either way the delay is capped at
    ``cap_s`` and jittered ±25% so a herd of rejected clients does not
    re-arrive in lockstep.
    """
    if retry_after_s is not None and retry_after_s > 0:
        delay = float(retry_after_s)
    else:
        delay = base_s * (2 ** attempt)
    delay = min(delay, cap_s)
    roll = (rng or random).uniform(0.75, 1.25)
    return delay * roll


class ServiceClient:
    """Thin typed wrapper over the daemon's JSON API."""

    def __init__(self, base_url: str,
                 timeout_s: float = DEFAULT_TIMEOUT_S):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        split = urlsplit(self.base_url)
        self._scheme = split.scheme or "http"
        self._netloc = split.netloc or split.path
        self._path_prefix = split.path.rstrip("/") if split.netloc else ""
        #: Keep-alive connection, opened lazily, guarded by a lock so a
        #: client instance is safe to share across threads (requests
        #: serialize on the single socket).
        self._conn: Optional[http.client.HTTPConnection] = None
        self._conn_lock = threading.Lock()
        #: Dial count — 1 after any number of calls means keep-alive
        #: reuse is working.
        self.connections_opened = 0

    def close(self) -> None:
        """Drop the persistent connection (idempotent)."""
        with self._conn_lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport ------------------------------------------------------

    def _connect_locked(self) -> http.client.HTTPConnection:
        conn_cls = http.client.HTTPSConnection \
            if self._scheme == "https" else http.client.HTTPConnection
        self._conn = conn_cls(self._netloc, timeout=self.timeout_s)
        self.connections_opened += 1
        return self._conn

    def _call_raw(self, method: str, path: str,
                  payload: Optional[dict] = None,
                  timeout_s: Optional[float] = None,
                  headers: Optional[dict] = None) -> tuple[int, dict]:
        """One HTTP round trip; non-2xx answers return, never raise —
        only transport-level failures raise (as retryable
        :class:`ServiceError`)."""
        status, text = self._call_text(method, path, payload=payload,
                                       timeout_s=timeout_s,
                                       headers=headers)
        try:
            return status, json.loads(text or "{}")
        except json.JSONDecodeError:
            return status, {"error": {
                "code": "service_error",
                "message": f"HTTP {status} from {path} "
                           "without a JSON body"}}

    def _call_text(self, method: str, path: str,
                   payload: Optional[dict] = None,
                   timeout_s: Optional[float] = None,
                   headers: Optional[dict] = None) -> tuple[int, str]:
        """Round trip returning the raw body (HTML reports, Prometheus
        text); non-2xx answers return, transport failures raise.

        Runs over the persistent connection.  A connection-level failure
        on a *reused* socket (the server idled out the keep-alive
        between polls) reconnects and retries exactly once; a timeout or
        a failure on a freshly-dialed socket raises immediately — the
        request may already be executing server-side, and blind
        re-submission would double it.
        """
        body = json.dumps(payload).encode() if payload is not None \
            else None
        request_headers = {"Content-Type": "application/json"}
        request_headers.update(headers or {})
        timeout = self.timeout_s if timeout_s is None else timeout_s
        with self._conn_lock:
            for attempt in (0, 1):
                reused = self._conn is not None
                conn = self._conn or self._connect_locked()
                conn.timeout = timeout
                if conn.sock is not None:
                    conn.sock.settimeout(timeout)
                try:
                    conn.request(method, self._path_prefix + path,
                                 body=body, headers=request_headers)
                    response = conn.getresponse()
                    text = (response.read() or b"").decode("utf-8")
                    if response.will_close:
                        conn.close()
                        self._conn = None
                    return response.status, text
                except (http.client.HTTPException, ConnectionError,
                        OSError) as error:
                    conn.close()
                    self._conn = None
                    stale_keepalive = (reused and attempt == 0
                                       and not isinstance(error,
                                                          TimeoutError))
                    if stale_keepalive:
                        continue
                    raise ServiceError(
                        f"cannot reach service at {self.base_url}: "
                        f"{error}", retry_after_s=1.0)
        raise AssertionError("unreachable")  # pragma: no cover

    def _call(self, method: str, path: str,
              payload: Optional[dict] = None,
              timeout_s: Optional[float] = None,
              headers: Optional[dict] = None) -> dict:
        """Round trip that raises the typed error on failure statuses.

        A terminal lifecycle document (it carries ``state``) is returned
        even on a failure status — the caller inspects it; pure error
        bodies (submission rejections) raise.
        """
        status, document = self._call_raw(method, path, payload,
                                          timeout_s, headers=headers)
        if status >= 400 and "state" not in document:
            raise error_from_dict(document)
        return document

    # -- API ------------------------------------------------------------

    def submit(self, request: Union[dict, AssessRequest],
               wait_s: Optional[float] = None,
               trace_id: Optional[str] = None,
               retry_429: int = 0) -> dict:
        """Submit; returns the lifecycle document (maybe non-terminal).

        Typed submission rejections (400/429/503) raise; terminal
        failure states reached while waiting are returned as documents
        (see :meth:`assess` for the raising form).  ``trace_id`` rides
        the ``X-Repro-Trace-Id`` header; ``retry_429`` re-submits up to
        N times on queue-full rejections with capped jittered backoff
        honoring the server's ``Retry-After`` hint.
        """
        payload = request.to_dict() \
            if isinstance(request, AssessRequest) else dict(request)
        path = "/v1/requests"
        if wait_s is not None:
            path += f"?wait={float(wait_s)}"
        timeout = None if wait_s is None else wait_s + self.timeout_s
        headers = {TRACE_HEADER: trace_id} if trace_id else None
        attempt = 0
        while True:
            try:
                return self._call("POST", path, payload,
                                  timeout_s=timeout, headers=headers)
            except AdmissionRejected as busy:
                if attempt >= max(retry_429, 0):
                    raise
                time.sleep(backoff_delay(attempt, busy.retry_after_s))
                attempt += 1

    def assess(self, request: Union[dict, AssessRequest],
               timeout_s: float = 300.0, poll_s: float = 0.25,
               trace_id: Optional[str] = None,
               retry_429: int = 0) -> dict:
        """Submit and block until the result document; typed errors raise.

        Long-polls the daemon until the request is terminal or
        ``timeout_s`` elapses client-side.
        """
        return self.assess_detailed(request, timeout_s=timeout_s,
                                    poll_s=poll_s, trace_id=trace_id,
                                    retry_429=retry_429)["result"]

    def assess_detailed(self, request: Union[dict, AssessRequest],
                        timeout_s: float = 300.0, poll_s: float = 0.25,
                        trace_id: Optional[str] = None,
                        retry_429: int = 0) -> dict:
        """Like :meth:`assess` but returns the full terminal lifecycle
        document (``id``, ``trace_id``, ``latency_s``, ``result``) so
        callers can fetch the trace/report afterwards."""
        document = self.submit(request, wait_s=min(timeout_s, 30.0),
                               trace_id=trace_id, retry_429=retry_429)
        deadline = time.monotonic() + timeout_s
        while not document.get("terminal"):
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"request {document.get('id')} still "
                    f"{document.get('state')} after {timeout_s}s "
                    "(client-side wait budget)",
                    request_id=document.get("id"),
                    trace_id=document.get("trace_id"))
            time.sleep(poll_s)
            document = self.status(
                document["id"],
                wait_s=min(30.0, max(deadline - time.monotonic(), 0.0)))
        if document.get("state") != "done":
            raise error_from_dict(document)
        return document

    def status(self, request_id: str,
               wait_s: Optional[float] = None) -> dict:
        """Lifecycle document of one request, whatever its state.

        Raises only for transport failures and unknown ids — terminal
        failure states come back as documents (their ``error`` field
        carries the typed detail), so accounting loops can fold every
        outcome without exception plumbing.
        """
        path = f"/v1/requests/{request_id}"
        if wait_s is not None:
            path += f"?wait={max(float(wait_s), 0.0)}"
        timeout = None if wait_s is None else wait_s + self.timeout_s
        return self._call("GET", path, timeout_s=timeout)

    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def ready(self) -> tuple[bool, dict]:
        """``(ready, document)`` — a 503 is an answer, not an error."""
        status, document = self._call_raw("GET", "/readyz")
        return status == 200, document

    def metrics(self) -> dict:
        return self._call("GET", "/metrics")

    def metrics_text(self) -> str:
        """Prometheus text exposition of the daemon's SLO registry."""
        status, text = self._call_text("GET",
                                       "/metrics?format=prometheus")
        if status >= 400:
            raise ServiceError(f"HTTP {status} from /metrics")
        return text

    def trace(self, request_id: str) -> dict:
        """Span tree + lifecycle timeline of one request."""
        return self._call("GET", f"/v1/requests/{request_id}/trace")

    def attribution(self, request_id: str) -> dict:
        """Per-PC attribution snapshot (typed 404 unless collected)."""
        return self._call("GET",
                          f"/v1/requests/{request_id}/attribution")

    def report_html(self, request_id: str) -> str:
        """Self-contained HTML report of one request."""
        status, text = self._call_text(
            "GET", f"/v1/requests/{request_id}/report.html")
        if status >= 400:
            try:
                raise error_from_dict(json.loads(text or "{}"))
            except json.JSONDecodeError:
                raise ServiceError(f"HTTP {status} from report.html")
        return text

    def dashboard(self) -> str:
        """The auto-refreshing HTML SLO dashboard page."""
        status, text = self._call_text("GET", "/dashboard")
        if status >= 400:
            raise ServiceError(f"HTTP {status} from /dashboard")
        return text

    def recovery(self) -> dict:
        return self._call("GET", "/v1/recovery")

    def cache_stats(self) -> dict:
        """Verdict-cache counters and gauges (``/v1/cache``)."""
        return self._call("GET", "/v1/cache")["stats"]

    def invalidate_cache(self,
                         program_key: Optional[str] = None) -> int:
        """Drop cached verdicts; a ``program_key`` restricts the drop to
        one program variant.  Returns how many entries were removed."""
        payload = {"program_key": program_key} \
            if program_key is not None else {}
        return self._call("POST", "/v1/cache/invalidate",
                          payload)["invalidated"]

    def requests(self) -> list[dict]:
        return self._call("GET", "/v1/requests")["requests"]
