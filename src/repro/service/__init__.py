"""repro.service — the long-lived leakage-assessment daemon.

Secure-design flows iterate (compile → assess → adjust masking →
repeat); this package turns the batch harness into a daemon that serves
those assessment queries over a threaded HTTP JSON API with warm compile
caches shared across requests — and, more importantly, a **robust
request lifecycle**: bounded admission with typed 429s, per-client
fairness + priority scheduling, per-request deadlines, a circuit
breaker quarantining worker-crashing programs, graceful SIGTERM drain,
``/healthz``/``/readyz``, SLO metrics, and a durable request journal
that accounts for every request across a kill.  See ``docs/SERVICE.md``.

Layering (each importable alone)::

    errors      typed failure taxonomy (shared across transports)
    protocol    AssessRequest / RequestRecord lifecycle
    queue       bounded, priority + client-fair admission queue with
                per-tenant token-bucket quotas
    cache       content-addressed, single-flight verdict/result cache
    breaker     per-program circuit breaker
    journal     durable JSON-lines request journal + restart replay
    executor    request -> result on the batch engine (bit-identical
                to ``repro submit --local``)
    core        LeakageService: lifecycle orchestration, SLO metrics
    server      stdlib threaded HTTP JSON API + graceful drain
    client      stdlib HTTP client raising the same typed errors
"""

from .breaker import CircuitBreaker
from .cache import VerdictCache, verdict_key
from .client import ServiceClient
from .core import LeakageService, ServiceConfig
from .errors import (AdmissionRejected, DeadlineExceeded, InvalidRequest,
                     ProgramQuarantined, QuotaExceeded, RequestFailed,
                     RequestNotFound, ServiceError, ShuttingDown,
                     error_from_dict)
from .executor import execute_assessment
from .journal import RecoveryReport, RequestJournal
from .protocol import (AssessRequest, RequestRecord, TERMINAL_STATES)
from .queue import AdmissionQueue, RateLimiter, TokenBucket
from .server import ServiceServer, serve

__all__ = [
    "AdmissionQueue", "AdmissionRejected", "AssessRequest",
    "CircuitBreaker", "DeadlineExceeded", "InvalidRequest",
    "LeakageService", "ProgramQuarantined", "QuotaExceeded",
    "RateLimiter", "RecoveryReport", "RequestFailed", "RequestJournal",
    "RequestNotFound", "RequestRecord", "ServiceClient",
    "ServiceConfig", "ServiceError", "ServiceServer", "ShuttingDown",
    "TERMINAL_STATES", "TokenBucket", "VerdictCache", "error_from_dict",
    "execute_assessment", "serve", "verdict_key",
]
