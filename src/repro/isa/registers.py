"""Register file naming for the target 32-bit embedded core.

The paper's target is a five-stage pipelined 32-bit embedded processor
implementing the integer subset of the SimpleScalar ISA, which follows MIPS
register conventions.  We adopt the standard 32-register MIPS naming so that
the assembly in the paper's Figure 4 (``lw $2,i`` / ``la $4,newL`` / ...)
assembles unchanged.
"""

from __future__ import annotations

NUM_REGISTERS = 32

#: Conventional MIPS register names, indexed by register number.
REGISTER_NAMES: tuple[str, ...] = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

#: Map from every accepted register spelling (without the ``$``) to its number.
_NAME_TO_NUMBER: dict[str, int] = {}
for _num, _name in enumerate(REGISTER_NAMES):
    _NAME_TO_NUMBER[_name] = _num
    _NAME_TO_NUMBER[str(_num)] = _num
# Common aliases.
_NAME_TO_NUMBER["s8"] = 30  # $fp is also called $s8

ZERO, AT, V0, V1 = 0, 1, 2, 3
A0, A1, A2, A3 = 4, 5, 6, 7
T0, T1, T2, T3, T4, T5, T6, T7 = 8, 9, 10, 11, 12, 13, 14, 15
S0, S1, S2, S3, S4, S5, S6, S7 = 16, 17, 18, 19, 20, 21, 22, 23
T8, T9, K0, K1, GP, SP, FP, RA = 24, 25, 26, 27, 28, 29, 30, 31


class RegisterError(ValueError):
    """Raised for an unrecognized register spelling or number."""


def parse_register(token: str) -> int:
    """Parse a register operand such as ``$t0``, ``$8`` or ``t0``.

    Returns the register number (0..31).
    """
    name = token.strip()
    if name.startswith("$"):
        name = name[1:]
    number = _NAME_TO_NUMBER.get(name.lower())
    if number is None:
        raise RegisterError(f"unknown register {token!r}")
    return number


def register_name(number: int) -> str:
    """Return the canonical ``$name`` spelling for a register number."""
    if not 0 <= number < NUM_REGISTERS:
        raise RegisterError(f"register number out of range: {number}")
    return "$" + REGISTER_NAMES[number]
