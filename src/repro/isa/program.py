"""Linked program image: text, data, and symbols.

Memory layout (matching a small embedded part, all addresses byte-granular):

* text at :data:`TEXT_BASE`
* data at :data:`DATA_BASE`
* stack grows down from :data:`STACK_TOP`
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .instructions import Instruction

TEXT_BASE = 0x0000_0000
DATA_BASE = 0x0001_0000
STACK_TOP = 0x0007_FFFC


class SymbolError(KeyError):
    """Raised when a symbol is missing or redefined."""


@dataclass
class Program:
    """An assembled and linked program image."""

    text: list[Instruction] = field(default_factory=list)
    #: Initialized data image as a list of 32-bit words starting at data_base.
    data: list[int] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    entry: int = TEXT_BASE
    #: Original source, kept for diagnostics.
    source: Optional[str] = None

    def __len__(self) -> int:
        return len(self.text)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.text)

    def address_of(self, symbol: str) -> int:
        try:
            return self.symbols[symbol]
        except KeyError:
            raise SymbolError(f"undefined symbol {symbol!r}") from None

    def instruction_at(self, address: int) -> Instruction:
        index = (address - self.text_base) >> 2
        if not 0 <= index < len(self.text):
            raise IndexError(f"no instruction at 0x{address:08x}")
        return self.text[index]

    def address_of_index(self, index: int) -> int:
        return self.text_base + (index << 2)

    def secure_fraction(self) -> float:
        """Static fraction of instructions carrying the secure bit."""
        if not self.text:
            return 0.0
        return sum(1 for ins in self.text if ins.secure) / len(self.text)

    def source_map(self) -> dict[int, tuple[Optional[int], bool]]:
        """Debug info per text address: ``{pc: (source_line, sliced)}``.

        The pairs come from ``.loc`` directives (see
        :mod:`repro.isa.assembler`); addresses of instructions without
        debug info map to ``(None, False)``.  Energy attribution uses
        this to roll per-PC totals up to source lines and the secured
        program slice.
        """
        return {self.address_of_index(index): (ins.source_line,
                                               bool(ins.sliced))
                for index, ins in enumerate(self.text)}

    def sliced_addresses(self) -> set[int]:
        """Text addresses inside the masked program slice."""
        return {self.address_of_index(index)
                for index, ins in enumerate(self.text) if ins.sliced}

    def listing(self) -> str:
        """Human-readable disassembly listing with addresses."""
        lines = []
        addr_to_label: dict[int, list[str]] = {}
        for name, addr in self.symbols.items():
            addr_to_label.setdefault(addr, []).append(name)
        for index, ins in enumerate(self.text):
            addr = self.address_of_index(index)
            for label in addr_to_label.get(addr, ()):
                lines.append(f"{label}:")
            lines.append(f"  0x{addr:08x}  {ins}")
        return "\n".join(lines)

    def replace_text(self, new_text: Iterable[Instruction]) -> "Program":
        """Return a copy of this program with different text (same layout).

        Used by assembly-level masking policies, which rewrite instructions
        in place without changing addresses.
        """
        new_list = list(new_text)
        if len(new_list) != len(self.text):
            raise ValueError(
                "replace_text must preserve instruction count "
                f"({len(new_list)} != {len(self.text)})")
        return Program(text=new_list, data=list(self.data),
                       symbols=dict(self.symbols), text_base=self.text_base,
                       data_base=self.data_base, entry=self.entry,
                       source=self.source)
