"""Binary encoding of instructions, including the secure bit.

The paper considers two encodings for secure instructions: reusing unassigned
opcodes, or "augmenting the original opcodes with an additional secure bit"
(their implementation, chosen to minimize decode-logic impact).  We model the
same choice: a classic 32-bit MIPS-style word carrying the base opcode plus
one extra *secure* bit, giving a 33-bit instruction word.  The fetched word is
what drives the instruction-bus energy model, so the encoding is part of the
observable architecture, not a serialization detail.

Encoding layout (bit 32 = secure bit, bits 31..0 = MIPS-like word):

* R-type:  ``000000 rs rt rd shamt funct``
* I-type:  ``opcode rs rt imm16``
* J-type:  ``opcode target26``
"""

from __future__ import annotations

from .instructions import Format, Instruction, InstructionError, OPCODES

SECURE_BIT = 1 << 32

_R_FUNCT = {
    "sll": 0x00, "srl": 0x02, "sra": 0x03,
    "sllv": 0x04, "srlv": 0x06, "srav": 0x07,
    "jr": 0x08, "jalr": 0x09,
    "add": 0x20, "addu": 0x21, "sub": 0x22, "subu": 0x23,
    "and": 0x24, "or": 0x25, "xor": 0x26, "nor": 0x27,
    "slt": 0x2A, "sltu": 0x2B,
    "halt": 0x3F,  # reserved funct used for simulator halt
}

_I_OPCODE = {
    "beq": 0x04, "bne": 0x05, "blez": 0x06, "bgtz": 0x07,
    "addi": 0x08, "addiu": 0x09, "slti": 0x0A, "sltiu": 0x0B,
    "andi": 0x0C, "ori": 0x0D, "xori": 0x0E, "lui": 0x0F,
    "lb": 0x20, "lw": 0x23, "lbu": 0x24,
    "sb": 0x28, "sw": 0x2B,
    "lwx": 0x33,  # unassigned opcode slot used for the secure-indexed load
    "bltz": 0x01, "bgez": 0x01,  # REGIMM, distinguished by rt field
}

_J_OPCODE = {"j": 0x02, "jal": 0x03}

_REGIMM_RT = {"bltz": 0x00, "bgez": 0x01}

_FUNCT_TO_R = {v: k for k, v in _R_FUNCT.items()}
_OP_TO_I = {v: k for k, v in _I_OPCODE.items() if k not in ("bltz", "bgez")}
_OP_TO_J = {v: k for k, v in _J_OPCODE.items()}


class EncodingError(InstructionError):
    """Raised when an instruction cannot be encoded or decoded."""


def _u16(value: int) -> int:
    if not -(1 << 15) <= value < (1 << 16):
        raise EncodingError(f"immediate out of 16-bit range: {value}")
    return value & 0xFFFF


def encode(ins: Instruction) -> int:
    """Encode an instruction to its 33-bit instruction word."""
    spec = ins.spec
    word: int
    if ins.op in _R_FUNCT:
        funct = _R_FUNCT[ins.op]
        rs = ins.rs or 0
        rt = ins.rt or 0
        rd = ins.rd or 0
        shamt = ins.shamt or 0
        if spec.fmt == Format.SHIFT and not 0 <= shamt < 32:
            raise EncodingError(f"shift amount out of range: {shamt}")
        word = (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
    elif ins.op == "nop":
        word = 0
    elif ins.op in _J_OPCODE:
        target = ins.target
        if not isinstance(target, int):
            raise EncodingError(f"unresolved jump target {target!r}")
        word = (_J_OPCODE[ins.op] << 26) | ((target >> 2) & 0x03FF_FFFF)
    elif ins.op in _I_OPCODE:
        opcode = _I_OPCODE[ins.op]
        rs = ins.rs or 0
        if ins.op in _REGIMM_RT:
            rt = _REGIMM_RT[ins.op]
        else:
            rt = ins.rt or 0
        if spec.is_branch:
            if not isinstance(ins.target, int):
                raise EncodingError(f"unresolved branch target {ins.target!r}")
            imm = _u16(ins.target >> 2)
        elif spec.fmt == Format.LUI:
            imm = ins.imm & 0xFFFF
        else:
            imm = _u16(ins.imm if ins.imm is not None else 0)
        word = (opcode << 26) | (rs << 21) | (rt << 16) | imm
    else:  # pragma: no cover - all opcodes are covered above
        raise EncodingError(f"no encoding for opcode {ins.op!r}")
    if ins.secure:
        word |= SECURE_BIT
    return word


def _sext16(value: int) -> int:
    return value - 0x10000 if value & 0x8000 else value


def decode(word: int) -> Instruction:
    """Decode a 33-bit instruction word back to an :class:`Instruction`.

    Branch/jump targets decode to absolute word addresses assuming the same
    absolute-target convention used by :func:`encode` (the assembler resolves
    labels to absolute addresses before encoding).
    """
    secure = bool(word & SECURE_BIT)
    word &= 0xFFFF_FFFF
    opcode = (word >> 26) & 0x3F
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    imm = word & 0xFFFF

    if opcode == 0:
        if word == 0:
            return Instruction("nop", secure=secure)
        name = _FUNCT_TO_R.get(funct)
        if name is None:
            raise EncodingError(f"unknown R-type funct 0x{funct:02x}")
        spec = OPCODES[name]
        if spec.fmt == Format.SHIFT:
            return Instruction(name, rd=rd, rt=rt, shamt=shamt, secure=secure)
        if spec.fmt == Format.SHIFT_V:
            return Instruction(name, rd=rd, rt=rt, rs=rs, secure=secure)
        if name == "jr":
            return Instruction(name, rs=rs, secure=secure)
        if name == "jalr":
            return Instruction(name, rd=rd, rs=rs, secure=secure)
        if name == "halt":
            return Instruction(name, secure=secure)
        return Instruction(name, rd=rd, rs=rs, rt=rt, secure=secure)
    if opcode in _OP_TO_J:
        return Instruction(_OP_TO_J[opcode],
                           target=(word & 0x03FF_FFFF) << 2, secure=secure)
    if opcode == 0x01:  # REGIMM
        name = "bgez" if rt == _REGIMM_RT["bgez"] else "bltz"
        return Instruction(name, rs=rs, target=imm << 2, secure=secure)
    name = _OP_TO_I.get(opcode)
    if name is None:
        raise EncodingError(f"unknown opcode 0x{opcode:02x}")
    spec = OPCODES[name]
    if spec.is_branch:
        if spec.fmt == Format.BRANCH2:
            return Instruction(name, rs=rs, rt=rt, target=imm << 2,
                               secure=secure)
        return Instruction(name, rs=rs, target=imm << 2, secure=secure)
    if spec.fmt == Format.LUI:
        return Instruction(name, rt=rt, imm=imm, secure=secure)
    if spec.unsigned_imm:
        return Instruction(name, rt=rt, rs=rs, imm=imm, secure=secure)
    return Instruction(name, rt=rt, rs=rs, imm=_sext16(imm), secure=secure)
