"""Two-pass assembler for the secure-augmented MIPS-like ISA.

Accepted syntax (a superset of the paper's Figure 4 listing style):

* comments start with ``#`` or ``;``
* labels: ``name:`` (may share a line with an instruction)
* directives: ``.text``, ``.data``, ``.word v, ...``, ``.byte v, ...``,
  ``.space n``, ``.align n``, ``.globl name`` (accepted, ignored), and the
  DWARF-style debug directive ``.loc line [sliced]``: subsequent text
  instructions carry ``source_line=line`` (the high-level source line) and
  ``sliced`` (slice membership) until the next ``.loc``; ``.loc 0 0``
  clears the state
* memory operands: ``off($reg)``, ``($reg)``, ``label``, ``label+off``
* secure mnemonics: ``slw/ssw/sxor/ssll/.../silw`` and the generic ``s.<op>``

Pass 1 expands pseudo-instructions and lays out text and data; pass 2
resolves label references (branch/jump targets and ``%hi``/``%lo`` address
halves) against the symbol table.
"""

from __future__ import annotations

import re
from typing import Optional, Union

from .instructions import (Format, Instruction, InstructionError, OPCODES,
                           SECURE_ALIASES)
from .program import DATA_BASE, Program, TEXT_BASE
from .pseudo import HiRef, LoRef, PSEUDO_SHAPES, expand, expand_load_label, is_pseudo
from .registers import RegisterError, parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_$.][\w$.]*)\s*:\s*(.*)$")
_MEM_RE = re.compile(r"^(-?\w*)\s*\(\s*(\$\w+)\s*\)$")
_LABEL_OFF_RE = re.compile(r"^([A-Za-z_$.][\w$.]*)\s*([+-]\s*\d+)?$")


class AssemblerError(ValueError):
    """Raised with source line information when assembly fails."""

    def __init__(self, message: str, line_no: Optional[int] = None,
                 line: Optional[str] = None):
        self.line_no = line_no
        self.line = line
        location = f" (line {line_no}: {line!r})" if line_no is not None else ""
        super().__init__(message + location)


def _parse_int(token: str) -> int:
    token = token.strip().replace("_", "")
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"invalid integer {token!r}") from None


def _split_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _is_register(token: str) -> bool:
    return token.startswith("$")


class _DataSegment:
    """Accumulates the .data image byte-by-byte, emitting 32-bit words."""

    def __init__(self, base: int):
        self.base = base
        self._bytes = bytearray()

    @property
    def cursor(self) -> int:
        return self.base + len(self._bytes)

    def align(self, alignment: int) -> None:
        while len(self._bytes) % alignment:
            self._bytes.append(0)

    def add_word(self, value: int) -> None:
        if len(self._bytes) % 4:
            # Silently aligning here would leave any label recorded just
            # before this directive pointing at the padding, not the word.
            raise AssemblerError(
                ".word at unaligned offset; insert .align 2 after .byte "
                "data")
        value &= 0xFFFF_FFFF
        self._bytes.extend(value.to_bytes(4, "little"))

    def add_byte(self, value: int) -> None:
        self._bytes.append(value & 0xFF)

    def add_space(self, count: int) -> None:
        self._bytes.extend(b"\x00" * count)

    def words(self) -> list[int]:
        self.align(4)
        return [int.from_bytes(self._bytes[i:i + 4], "little")
                for i in range(0, len(self._bytes), 4)]


class Assembler:
    """Two-pass assembler producing a linked :class:`Program`."""

    def __init__(self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, source: str) -> Program:
        text, data, symbols = self._pass1(source)
        self._pass2(text, symbols)
        return Program(text=text, data=data.words(), symbols=symbols,
                       text_base=self.text_base, data_base=self.data_base,
                       entry=self.text_base, source=source)

    # ------------------------------------------------------------------
    # Pass 1: layout + pseudo expansion
    # ------------------------------------------------------------------

    def _pass1(self, source: str):
        text: list[Instruction] = []
        data = _DataSegment(self.data_base)
        symbols: dict[str, int] = {}
        in_text = True
        #: Pending (source_line, sliced) debug state set by ``.loc``.
        loc: Optional[tuple[int, bool]] = None

        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            while line:
                match = _LABEL_RE.match(line)
                if match and not self._looks_like_mem_operand(line):
                    label, line = match.group(1), match.group(2).strip()
                    address = (self.text_base + 4 * len(text)) if in_text \
                        else data.cursor
                    if label in symbols:
                        raise AssemblerError(f"duplicate label {label!r}",
                                             line_no, raw)
                    symbols[label] = address
                    continue
                break
            if not line:
                continue
            if line.startswith("."):
                if line.split(None, 1)[0].lower() == ".loc":
                    loc = self._parse_loc(line, line_no, raw)
                    continue
                in_text = self._directive(line, data, in_text, line_no, raw)
                continue
            if not in_text:
                raise AssemblerError("instruction in .data segment",
                                     line_no, raw)
            for ins in self._parse_instruction(line, line_no, raw):
                ins.line = line_no
                if loc is not None:
                    ins.source_line, ins.sliced = loc
                text.append(ins)
        return text, data, symbols

    @staticmethod
    def _parse_loc(line: str, line_no: int,
                   raw: str) -> Optional[tuple[int, bool]]:
        """Parse ``.loc line [sliced]``; line 0 clears the debug state."""
        tokens = line.split()
        if len(tokens) not in (2, 3):
            raise AssemblerError(".loc expects 'line [sliced]'",
                                 line_no, raw)
        source_line = _parse_int(tokens[1])
        sliced = bool(_parse_int(tokens[2])) if len(tokens) == 3 else False
        if source_line <= 0:
            return None
        return (source_line, sliced)

    @staticmethod
    def _looks_like_mem_operand(line: str) -> bool:
        # Avoid treating "lw $t0, tbl:..." oddities; labels never contain
        # spaces before ':' here, and instruction lines always contain a
        # space between mnemonic and operands before any ':' can appear.
        head = line.split(":", 1)[0]
        return " " in head or "\t" in head

    def _directive(self, line: str, data: _DataSegment, in_text: bool,
                   line_no: int, raw: str) -> bool:
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            return True
        if name == ".data":
            return False
        if name == ".globl" or name == ".global":
            return in_text
        if in_text:
            raise AssemblerError(f"directive {name} outside .data",
                                 line_no, raw)
        if name == ".word":
            for token in _split_operands(rest):
                data.add_word(_parse_int(token))
        elif name == ".byte":
            for token in _split_operands(rest):
                data.add_byte(_parse_int(token))
        elif name == ".space":
            data.add_space(_parse_int(rest))
        elif name == ".align":
            data.align(1 << _parse_int(rest))
        else:
            raise AssemblerError(f"unknown directive {name}", line_no, raw)
        return in_text

    # ------------------------------------------------------------------
    # Instruction parsing
    # ------------------------------------------------------------------

    def _parse_instruction(self, line: str, line_no: int,
                           raw: str) -> list[Instruction]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(rest)

        secure = False
        if mnemonic in SECURE_ALIASES:
            mnemonic = SECURE_ALIASES[mnemonic]
            secure = True
        elif mnemonic.startswith("s.") and mnemonic[2:] in OPCODES:
            mnemonic = mnemonic[2:]
            secure = True
        elif mnemonic.startswith("s.") and is_pseudo(mnemonic[2:]):
            mnemonic = mnemonic[2:]
            secure = True

        try:
            if is_pseudo(mnemonic) or mnemonic == "smove":
                return self._parse_pseudo(mnemonic, operands, secure)
            return self._parse_real(mnemonic, operands, secure)
        except (InstructionError, RegisterError, AssemblerError, ValueError) as exc:
            raise AssemblerError(str(exc), line_no, raw) from exc

    def _parse_pseudo(self, name: str, operands: list[str],
                      secure: bool) -> list[Instruction]:
        shape = PSEUDO_SHAPES.get("move" if name == "smove" else name)
        parsed: list[Union[int, str, tuple]] = []
        if shape == "rr":
            parsed = [parse_register(operands[0]), parse_register(operands[1])]
        elif shape == "ri":
            parsed = [parse_register(operands[0]), _parse_int(operands[1])]
        elif shape == "rl":
            parsed = [parse_register(operands[0]),
                      self._parse_label_ref(operands[1])]
        elif shape == "l":
            parsed = [operands[0]]
        elif shape == "rl2":
            parsed = [parse_register(operands[0]), operands[1]]
        elif shape == "rrl":
            parsed = [parse_register(operands[0]), parse_register(operands[1]),
                      operands[2]]
        return expand(name, parsed, secure=secure)

    @staticmethod
    def _parse_label_ref(token: str):
        match = _LABEL_OFF_RE.match(token.strip())
        if not match:
            raise AssemblerError(f"invalid label reference {token!r}")
        label = match.group(1)
        offset = int(match.group(2).replace(" ", "")) if match.group(2) else 0
        return (label, offset) if offset else label

    def _parse_real(self, name: str, operands: list[str],
                    secure: bool) -> list[Instruction]:
        spec = OPCODES.get(name)
        if spec is None:
            raise AssemblerError(f"unknown mnemonic {name!r}")
        fmt = spec.fmt
        if fmt == Format.R3:
            rd, rs, rt = (parse_register(op) for op in operands)
            return [Instruction(name, rd=rd, rs=rs, rt=rt, secure=secure)]
        if fmt == Format.SHIFT:
            rd = parse_register(operands[0])
            rt = parse_register(operands[1])
            shamt = _parse_int(operands[2])
            return [Instruction(name, rd=rd, rt=rt, shamt=shamt,
                                secure=secure)]
        if fmt == Format.SHIFT_V:
            rd = parse_register(operands[0])
            rt = parse_register(operands[1])
            rs = parse_register(operands[2])
            return [Instruction(name, rd=rd, rt=rt, rs=rs, secure=secure)]
        if fmt == Format.ARITH_I:
            rt = parse_register(operands[0])
            rs = parse_register(operands[1])
            imm = _parse_int(operands[2])
            return [Instruction(name, rt=rt, rs=rs, imm=imm, secure=secure)]
        if fmt in (Format.LOAD, Format.STORE):
            rt = parse_register(operands[0])
            return self._parse_memory(name, rt, operands[1], secure)
        if fmt == Format.BRANCH2:
            rs = parse_register(operands[0])
            rt = parse_register(operands[1])
            return [Instruction(name, rs=rs, rt=rt, target=operands[2],
                                secure=secure)]
        if fmt == Format.BRANCH1:
            rs = parse_register(operands[0])
            return [Instruction(name, rs=rs, target=operands[1],
                                secure=secure)]
        if fmt == Format.JUMP:
            return [Instruction(name, target=operands[0], secure=secure)]
        if fmt == Format.JR:
            return [Instruction(name, rs=parse_register(operands[0]),
                                secure=secure)]
        if fmt == Format.JALR:
            if len(operands) == 1:
                rd, rs = 31, parse_register(operands[0])
            else:
                rd = parse_register(operands[0])
                rs = parse_register(operands[1])
            return [Instruction(name, rd=rd, rs=rs, secure=secure)]
        if fmt == Format.LUI:
            rt = parse_register(operands[0])
            return [Instruction(name, rt=rt, imm=_parse_int(operands[1]),
                                secure=secure)]
        return [Instruction(name, secure=secure)]

    def _parse_memory(self, name: str, rt: int, operand: str,
                      secure: bool) -> list[Instruction]:
        operand = operand.strip()
        match = _MEM_RE.match(operand)
        if match:
            offset_token, reg_token = match.groups()
            offset = _parse_int(offset_token) if offset_token else 0
            rs = parse_register(reg_token)
            return [Instruction(name, rt=rt, rs=rs, imm=offset,
                                secure=secure)]
        ref = self._parse_label_ref(operand)
        label, offset = ref if isinstance(ref, tuple) else (ref, 0)
        return expand_load_label(name, rt, label, offset, secure=secure)

    # ------------------------------------------------------------------
    # Pass 2: symbol resolution
    # ------------------------------------------------------------------

    def _pass2(self, text: list[Instruction],
               symbols: dict[str, int]) -> None:
        def resolve(label: str) -> int:
            if label not in symbols:
                raise AssemblerError(f"undefined label {label!r}")
            return symbols[label]

        for ins in text:
            if isinstance(ins.target, str):
                ins.target = resolve(ins.target)
            if isinstance(ins.imm, HiRef):
                address = resolve(ins.imm.label) + ins.imm.offset
                # GNU-style adjusted %hi: the paired %lo is sign-extended.
                ins.imm = ((address + 0x8000) >> 16) & 0xFFFF
            elif isinstance(ins.imm, LoRef):
                address = resolve(ins.imm.label) + ins.imm.offset
                low = address & 0xFFFF
                ins.imm = low - 0x10000 if low >= 0x8000 else low


def assemble(source: str, text_base: int = TEXT_BASE,
             data_base: int = DATA_BASE) -> Program:
    """Assemble ``source`` into a linked :class:`Program`."""
    return Assembler(text_base=text_base, data_base=data_base).assemble(source)
