"""ISA layer: instruction set, secure-bit encoding, and assembler."""

from .assembler import Assembler, AssemblerError, assemble
from .encoding import SECURE_BIT, decode, encode
from .instructions import (AluOp, Format, Instruction, InstructionError,
                           OPCODES, OpSpec, SECURE_ALIASES,
                           format_instruction)
from .program import DATA_BASE, Program, STACK_TOP, SymbolError, TEXT_BASE
from .registers import (NUM_REGISTERS, REGISTER_NAMES, RegisterError,
                        parse_register, register_name)

__all__ = [
    "AluOp", "Assembler", "AssemblerError", "DATA_BASE", "Format",
    "Instruction", "InstructionError", "NUM_REGISTERS", "OPCODES", "OpSpec",
    "Program", "REGISTER_NAMES", "RegisterError", "SECURE_ALIASES",
    "SECURE_BIT", "STACK_TOP", "SymbolError", "TEXT_BASE", "assemble",
    "decode", "encode", "format_instruction", "parse_register",
    "register_name",
]
