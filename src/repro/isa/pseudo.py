"""Pseudo-instruction expansion.

The assembler accepts the usual MIPS convenience mnemonics and lowers them to
real instructions before layout.  Expansions that need a scratch register use
``$at`` (register 1), as MIPS assemblers conventionally do.

Pseudo-ops that reference a data label (``la``, and the label forms of
``lw``/``sw``) expand to a ``lui``/``ori`` pair so the generated code is
independent of where the data segment lands.
"""

from __future__ import annotations

from typing import Callable, Union

from .instructions import Instruction
from .registers import AT, ZERO

#: Sentinel operand classes used by the expander: parsed operands arrive as
#: ints (registers/immediates) or strings (labels).
Operand = Union[int, str]


class PseudoError(ValueError):
    """Raised for a malformed pseudo-instruction."""


class HiRef:
    """Placeholder immediate: upper 16 bits of a label's address."""

    def __init__(self, label: str, offset: int = 0):
        self.label = label
        self.offset = offset

    def __repr__(self) -> str:
        return f"%hi({self.label}+{self.offset})"


class LoRef:
    """Placeholder immediate: lower 16 bits of a label's address."""

    def __init__(self, label: str, offset: int = 0):
        self.label = label
        self.offset = offset

    def __repr__(self) -> str:
        return f"%lo({self.label}+{self.offset})"


def expand_la(rd: int, label: str, offset: int = 0,
              secure: bool = False) -> list[Instruction]:
    """``la rd, label`` -> ``lui $at, %hi; addiu rd, $at, %lo``.

    Uses the GNU-style adjusted ``%hi`` so the signed ``%lo`` half always
    reconstructs the full address.
    """
    return [
        Instruction("lui", rt=AT, imm=HiRef(label, offset), secure=secure),
        Instruction("addiu", rt=rd, rs=AT, imm=LoRef(label, offset),
                    secure=secure),
    ]


def expand_li(rd: int, value: int, secure: bool = False) -> list[Instruction]:
    """``li rd, imm`` -> one or two instructions depending on range."""
    value &= 0xFFFF_FFFF
    if value < 0x8000:
        return [Instruction("ori", rt=rd, rs=ZERO, imm=value, secure=secure)]
    if value >= 0xFFFF_8000:  # small negative constant
        return [Instruction("addiu", rt=rd, rs=ZERO,
                            imm=value - 0x1_0000_0000, secure=secure)]
    hi = (value >> 16) & 0xFFFF
    lo = value & 0xFFFF
    out = [Instruction("lui", rt=rd, imm=hi, secure=secure)]
    if lo:
        out.append(Instruction("ori", rt=rd, rs=rd, imm=lo, secure=secure))
    return out


def expand_load_label(op: str, rt: int, label: str, offset: int = 0,
                      secure: bool = False) -> list[Instruction]:
    """``lw rt, label`` -> ``lui $at, %hi; lw rt, %lo($at)`` (same for sw/lb...)."""
    return [
        Instruction("lui", rt=AT, imm=HiRef(label, offset)),
        Instruction(op, rt=rt, rs=AT, imm=LoRef(label, offset), secure=secure),
    ]


def _move(rd: int, rs: int, secure: bool) -> list[Instruction]:
    return [Instruction("addu", rd=rd, rs=rs, rt=ZERO, secure=secure)]


def _not(rd: int, rs: int, secure: bool) -> list[Instruction]:
    return [Instruction("nor", rd=rd, rs=rs, rt=ZERO, secure=secure)]


def _neg(rd: int, rs: int, secure: bool) -> list[Instruction]:
    return [Instruction("subu", rd=rd, rs=ZERO, rt=rs, secure=secure)]


def _branch_pair(cmp_op: str, swap: bool, branch: str):
    """Build blt/bgt/ble/bge style expanders via slt + beq/bne on $at."""

    def expand(rs: int, rt: int, label: str, secure: bool) -> list[Instruction]:
        a, b = (rt, rs) if swap else (rs, rt)
        return [
            Instruction(cmp_op, rd=AT, rs=a, rt=b, secure=secure),
            Instruction(branch, rs=AT, rt=ZERO, target=label, secure=secure),
        ]

    return expand


_BLT = _branch_pair("slt", swap=False, branch="bne")
_BGT = _branch_pair("slt", swap=True, branch="bne")
_BGE = _branch_pair("slt", swap=False, branch="beq")
_BLE = _branch_pair("slt", swap=True, branch="beq")
_BLTU = _branch_pair("sltu", swap=False, branch="bne")
_BGTU = _branch_pair("sltu", swap=True, branch="bne")
_BGEU = _branch_pair("sltu", swap=False, branch="beq")
_BLEU = _branch_pair("sltu", swap=True, branch="beq")

#: Names handled by :func:`is_pseudo` / :func:`expand`, with arity hints used
#: by the assembler's operand parser: 'rr' = two registers, 'ri' = register +
#: immediate, 'rl' = register + label, 'rrl' = two registers + label,
#: 'l' = label only.
PSEUDO_SHAPES: dict[str, str] = {
    "move": "rr", "smove": "rr",
    "not": "rr", "neg": "rr",
    "li": "ri",
    "la": "rl",
    "b": "l",
    "beqz": "rl2", "bnez": "rl2",
    "blt": "rrl", "bgt": "rrl", "ble": "rrl", "bge": "rrl",
    "bltu": "rrl", "bgtu": "rrl", "bleu": "rrl", "bgeu": "rrl",
}


def is_pseudo(name: str) -> bool:
    return name in PSEUDO_SHAPES


def expand(name: str, operands: list[Operand],
           secure: bool = False) -> list[Instruction]:
    """Expand one pseudo-instruction into real instructions."""
    if name == "smove":
        name, secure = "move", True
    shape = PSEUDO_SHAPES[name]
    if shape == "rr":
        rd, rs = operands
        if name == "move":
            return _move(rd, rs, secure)
        if name == "not":
            return _not(rd, rs, secure)
        return _neg(rd, rs, secure)
    if name == "li":
        rd, value = operands
        if not isinstance(value, int):
            raise PseudoError("li requires an integer immediate")
        return expand_li(rd, value, secure)
    if name == "la":
        rd, label = operands
        if isinstance(label, tuple):
            label, offset = label
        else:
            offset = 0
        return expand_la(rd, label, offset, secure)
    if name == "b":
        (label,) = operands
        return [Instruction("beq", rs=ZERO, rt=ZERO, target=label,
                            secure=secure)]
    if name in ("beqz", "bnez"):
        rs, label = operands
        op = "beq" if name == "beqz" else "bne"
        return [Instruction(op, rs=rs, rt=ZERO, target=label, secure=secure)]
    expander: Callable = {
        "blt": _BLT, "bgt": _BGT, "ble": _BLE, "bge": _BGE,
        "bltu": _BLTU, "bgtu": _BGTU, "bleu": _BLEU, "bgeu": _BGEU,
    }[name]
    rs, rt, label = operands
    return expander(rs, rt, label, secure)
