"""Instruction set definition for the secure-augmented embedded core.

The base ISA is the integer subset of a MIPS-like/SimpleScalar instruction
set.  Following the paper (Section 4.2), every instruction additionally
carries a *secure bit*: when set, the datapath activates the complementary
rails and pre-charged buses so the instruction's switching energy becomes
data-independent.  The paper names four canonical secure instruction classes
(secure load/store for assignment, secure XOR, secure shift, secure table
indexing); the architecture itself allows the secure bit on any opcode, which
is what the whole-program dual-rail baseline ("all instructions secure")
exercises.

Mnemonics accepted by the assembler:

* the paper's named forms: ``slw``, ``ssw``, ``sxor``, ``ssll`` ... and the
  secure-indexed load ``silw`` (S-box lookup with aligned table base and
  inverted-index propagation);
* the generic prefix form ``s.<op>`` (e.g. ``s.addu``) that sets the secure
  bit on any instruction — used by the naive whole-program policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from .registers import register_name


class Format(enum.Enum):
    """Operand/encoding format of an opcode."""

    R3 = "r3"            # op rd, rs, rt
    SHIFT = "shift"      # op rd, rt, shamt
    SHIFT_V = "shiftv"   # op rd, rt, rs   (variable shift)
    ARITH_I = "arith_i"  # op rt, rs, imm
    LOAD = "load"        # op rt, off(rs)
    STORE = "store"      # op rt, off(rs)
    BRANCH2 = "branch2"  # op rs, rt, label
    BRANCH1 = "branch1"  # op rs, label
    JUMP = "jump"        # op label
    JR = "jr"            # op rs
    JALR = "jalr"        # op rd, rs
    LUI = "lui"          # op rt, imm
    NONE = "none"        # nop / halt


class AluOp(enum.Enum):
    """Operation performed in the EX stage."""

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"
    SLTU = "sltu"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    LUI = "lui"
    PASS_A = "pass_a"
    NONE = "none"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    name: str
    fmt: Format
    alu: AluOp = AluOp.NONE
    #: True if the instruction reads memory (MEM stage load).
    is_load: bool = False
    #: True if the instruction writes memory (MEM stage store).
    is_store: bool = False
    #: Number of bytes transferred for loads/stores.
    width: int = 4
    #: True for loads that sign-extend sub-word data.
    signed_load: bool = False
    is_branch: bool = False
    is_jump: bool = False
    #: True if the instruction belongs to one of the paper's four canonical
    #: secure classes (assignment load/store, XOR, shift, indexing).
    canonical_secure: bool = False
    #: True for the secure-indexed load used for S-box lookups.
    is_indexing: bool = False
    #: True if the immediate is treated as unsigned (zero-extended).
    unsigned_imm: bool = False
    halts: bool = False

    @property
    def writes_register(self) -> bool:
        if self.halts or self.fmt in (Format.NONE, Format.STORE, Format.BRANCH1,
                                      Format.BRANCH2, Format.JR, Format.JUMP):
            # `jal` is Format.JUMP but writes $ra; handled via name check.
            return self.name in ("jal",)
        return True


def _specs() -> dict[str, OpSpec]:
    table: dict[str, OpSpec] = {}

    def add(spec: OpSpec) -> None:
        if spec.name in table:
            raise ValueError(f"duplicate opcode {spec.name}")
        table[spec.name] = spec

    # Three-register arithmetic / logic.
    for name, alu in (
        ("add", AluOp.ADD), ("addu", AluOp.ADD),
        ("sub", AluOp.SUB), ("subu", AluOp.SUB),
        ("and", AluOp.AND), ("or", AluOp.OR),
        ("nor", AluOp.NOR),
        ("slt", AluOp.SLT), ("sltu", AluOp.SLTU),
    ):
        add(OpSpec(name, Format.R3, alu))
    add(OpSpec("xor", Format.R3, AluOp.XOR, canonical_secure=True))

    # Shifts (canonical secure class).
    add(OpSpec("sll", Format.SHIFT, AluOp.SLL, canonical_secure=True))
    add(OpSpec("srl", Format.SHIFT, AluOp.SRL, canonical_secure=True))
    add(OpSpec("sra", Format.SHIFT, AluOp.SRA, canonical_secure=True))
    add(OpSpec("sllv", Format.SHIFT_V, AluOp.SLL, canonical_secure=True))
    add(OpSpec("srlv", Format.SHIFT_V, AluOp.SRL, canonical_secure=True))
    add(OpSpec("srav", Format.SHIFT_V, AluOp.SRA, canonical_secure=True))

    # Immediate arithmetic / logic.
    add(OpSpec("addi", Format.ARITH_I, AluOp.ADD))
    add(OpSpec("addiu", Format.ARITH_I, AluOp.ADD))
    add(OpSpec("andi", Format.ARITH_I, AluOp.AND, unsigned_imm=True))
    add(OpSpec("ori", Format.ARITH_I, AluOp.OR, unsigned_imm=True))
    add(OpSpec("xori", Format.ARITH_I, AluOp.XOR, unsigned_imm=True,
               canonical_secure=True))
    add(OpSpec("slti", Format.ARITH_I, AluOp.SLT))
    add(OpSpec("sltiu", Format.ARITH_I, AluOp.SLTU))
    add(OpSpec("lui", Format.LUI, AluOp.LUI))

    # Memory (assignment = load + store is a canonical secure class).
    add(OpSpec("lw", Format.LOAD, AluOp.ADD, is_load=True, width=4,
               canonical_secure=True))
    add(OpSpec("lb", Format.LOAD, AluOp.ADD, is_load=True, width=1,
               signed_load=True, canonical_secure=True))
    add(OpSpec("lbu", Format.LOAD, AluOp.ADD, is_load=True, width=1,
               canonical_secure=True))
    add(OpSpec("sw", Format.STORE, AluOp.ADD, is_store=True, width=4,
               canonical_secure=True))
    add(OpSpec("sb", Format.STORE, AluOp.ADD, is_store=True, width=1,
               canonical_secure=True))
    # Secure-indexed load: behaves like lw but additionally masks the
    # offset/index-dependent address-generation energy (aligned table base,
    # inverted index propagated alongside).  Only meaningful with the secure
    # bit set; the assembler's `silw` sets it automatically.
    add(OpSpec("lwx", Format.LOAD, AluOp.ADD, is_load=True, width=4,
               canonical_secure=True, is_indexing=True))

    # Branches (resolved in EX).
    add(OpSpec("beq", Format.BRANCH2, AluOp.SUB, is_branch=True))
    add(OpSpec("bne", Format.BRANCH2, AluOp.SUB, is_branch=True))
    add(OpSpec("blez", Format.BRANCH1, AluOp.PASS_A, is_branch=True))
    add(OpSpec("bgtz", Format.BRANCH1, AluOp.PASS_A, is_branch=True))
    add(OpSpec("bltz", Format.BRANCH1, AluOp.PASS_A, is_branch=True))
    add(OpSpec("bgez", Format.BRANCH1, AluOp.PASS_A, is_branch=True))

    # Jumps.
    add(OpSpec("j", Format.JUMP, is_jump=True))
    add(OpSpec("jal", Format.JUMP, is_jump=True))
    add(OpSpec("jr", Format.JR, AluOp.PASS_A, is_jump=True))
    add(OpSpec("jalr", Format.JALR, AluOp.PASS_A, is_jump=True))

    # Specials.
    add(OpSpec("nop", Format.NONE))
    add(OpSpec("halt", Format.NONE, halts=True))
    return table


#: All opcodes, keyed by base mnemonic (secure forms are not separate opcodes;
#: they are the same opcode with the secure bit set).
OPCODES: dict[str, OpSpec] = _specs()

#: Paper-named secure mnemonics -> (base opcode, secure bit implied).
SECURE_ALIASES: dict[str, str] = {
    "slw": "lw",
    "ssw": "sw",
    "slb": "lb",
    "slbu": "lbu",
    "ssb": "sb",
    "sxor": "xor",
    "sxori": "xori",
    "ssll": "sll",
    "ssrl": "srl",
    "ssra": "sra",
    "ssllv": "sllv",
    "ssrlv": "srlv",
    "ssrav": "srav",
    "silw": "lwx",
}

#: Reverse map for disassembly of secure instructions.
_SECURE_NAMES: dict[str, str] = {base: alias for alias, base in SECURE_ALIASES.items()}


class InstructionError(ValueError):
    """Raised when an instruction is malformed."""


@dataclass
class Instruction:
    """One machine instruction.

    ``rd``/``rs``/``rt`` follow MIPS field conventions.  ``target`` holds a
    label name until link time, after which it is an absolute word address
    (branches/jumps) resolved by the assembler.
    """

    op: str
    rd: Optional[int] = None
    rs: Optional[int] = None
    rt: Optional[int] = None
    imm: Optional[int] = None
    shamt: Optional[int] = None
    target: Optional[Union[str, int]] = None
    secure: bool = False
    #: Source line the instruction came from (for diagnostics/traces).
    line: Optional[int] = None
    #: Optional free-form provenance tag (e.g. the IR op that generated it).
    tag: Optional[str] = None
    #: High-level *source* line (DWARF-style ``.loc`` debug info threaded
    #: by the compiler through the assembler), distinct from ``line``,
    #: which is the assembly line.  None when no debug info was emitted.
    source_line: Optional[int] = field(default=None, compare=False)
    #: True if the instruction belongs to the program slice the masking
    #: pass secured (slice membership, not the per-instruction secure bit).
    sliced: bool = field(default=False, compare=False)
    spec: OpSpec = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        spec = OPCODES.get(self.op)
        if spec is None:
            raise InstructionError(f"unknown opcode {self.op!r}")
        self.spec = spec
        # dest/sources are consulted every pipeline cycle; cache them.
        self._dest = self._compute_dest()
        self._sources = self._compute_sources()

    def with_secure(self, secure: bool = True) -> "Instruction":
        """Return a copy of this instruction with the secure bit set/cleared."""
        clone = replace(self)
        clone.secure = secure
        return clone

    @property
    def dest(self) -> Optional[int]:
        """Destination register written in WB, or None."""
        return self._dest

    @property
    def sources(self) -> tuple[int, ...]:
        """Register numbers read by this instruction."""
        return self._sources

    def _compute_dest(self) -> Optional[int]:
        spec = self.spec
        if spec.halts or spec.is_store or spec.is_branch:
            return None
        if self.op == "jal":
            return 31
        if self.op == "jalr":
            return self.rd
        if self.op in ("j", "jr"):
            return None
        if spec.fmt in (Format.R3, Format.SHIFT, Format.SHIFT_V, Format.JALR):
            return self.rd
        if spec.fmt in (Format.ARITH_I, Format.LOAD, Format.LUI):
            return self.rt
        return None

    def _compute_sources(self) -> tuple[int, ...]:
        spec = self.spec
        fmt = spec.fmt
        if fmt == Format.R3:
            return (self.rs, self.rt)
        if fmt == Format.SHIFT:
            return (self.rt,)
        if fmt == Format.SHIFT_V:
            return (self.rt, self.rs)
        if fmt in (Format.ARITH_I, Format.LOAD, Format.LUI):
            return (self.rs,) if self.rs is not None else ()
        if fmt == Format.STORE:
            return (self.rs, self.rt)
        if fmt == Format.BRANCH2:
            return (self.rs, self.rt)
        if fmt == Format.BRANCH1:
            return (self.rs,)
        if fmt in (Format.JR, Format.JALR):
            return (self.rs,)
        return ()

    @property
    def mnemonic(self) -> str:
        """Assembler spelling, including the secure prefix when set."""
        if not self.secure:
            return self.op
        return _SECURE_NAMES.get(self.op, "s." + self.op)

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return format_instruction(self)


def format_instruction(ins: Instruction) -> str:
    """Render an instruction back to assembler syntax."""
    spec = ins.spec
    name = ins.mnemonic
    fmt = spec.fmt
    r = register_name
    if fmt == Format.R3:
        return f"{name} {r(ins.rd)},{r(ins.rs)},{r(ins.rt)}"
    if fmt == Format.SHIFT:
        return f"{name} {r(ins.rd)},{r(ins.rt)},{ins.shamt}"
    if fmt == Format.SHIFT_V:
        return f"{name} {r(ins.rd)},{r(ins.rt)},{r(ins.rs)}"
    if fmt == Format.ARITH_I:
        return f"{name} {r(ins.rt)},{r(ins.rs)},{ins.imm}"
    if fmt in (Format.LOAD, Format.STORE):
        return f"{name} {r(ins.rt)},{ins.imm}({r(ins.rs)})"
    if fmt == Format.BRANCH2:
        return f"{name} {r(ins.rs)},{r(ins.rt)},{ins.target}"
    if fmt == Format.BRANCH1:
        return f"{name} {r(ins.rs)},{ins.target}"
    if fmt == Format.JUMP:
        return f"{name} {ins.target}"
    if fmt == Format.JR:
        return f"{name} {r(ins.rs)}"
    if fmt == Format.JALR:
        return f"{name} {r(ins.rd)},{r(ins.rs)}"
    if fmt == Format.LUI:
        return f"{name} {r(ins.rt)},{ins.imm}"
    return name
