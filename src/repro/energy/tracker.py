"""Cycle-accurate energy accounting, SimplePower-style.

The pipeline drives one :class:`EnergyTracker` through a fixed sequence of
hook calls each cycle (fetch, regfile, EX, MEM, latches, WB); the tracker
maps the reported values onto transition-sensitive component models and
records the per-cycle energy in picojoules.

Component breakdown keys: ``clock``, ``ibus``, ``regfile``, ``funits``,
``dbus``, ``memport``, ``latches``, ``secure``.

Besides the energy totals the tracker keeps per-component **event counts**
(:attr:`EnergyTracker.counts`) so rates (pJ/event, events/cycle) are
computable, and supports two opt-in sinks:

* ``attribution`` — an :class:`~repro.obs.attribution.AttributionSink`
  that books every increment to its (pc, unit, instruction class,
  secure-mode) provenance key;
* ``stream`` — a bounded-memory per-cycle trace writer
  (:class:`~repro.harness.io.StreamingTraceWriter`) fed from
  :meth:`end_cycle`; combined with ``keep_trace=False`` a million-cycle
  run never holds its trace in RAM.

Both sinks are off by default and, when off, the energy math executes the
exact same arithmetic as before they existed — traces stay bit-identical.
"""

from __future__ import annotations

from ..isa.instructions import AluOp, Instruction
from .models import BusModel, FunctionalUnitModel, LatchModel
from .params import DEFAULT_PARAMS, EnergyParams

#: Stable ordering of the component breakdown.
COMPONENTS = ("clock", "ibus", "regfile", "funits", "dbus", "memport",
              "latches", "secure")

_SHIFT_OPS = (AluOp.SLL, AluOp.SRL, AluOp.SRA)


class EnergyTracker:
    """Accumulates per-cycle energy from pipeline activity reports.

    ``noise_sigma``/``noise_seed`` model the randomized-power countermeasure
    the paper's Section 1 discusses (dummy modules activated at random
    intervals skewing the power profile): zero-mean Gaussian energy added
    per cycle.  The paper's point — and the DPA experiments here confirm
    it — is that averaging over traces filters such noise out, whereas
    masking removes the signal itself.

    Accounting invariant: injected noise is booked under its own
    ``"noise"`` key in :attr:`totals`, so ``sum(totals.values())`` — and
    therefore :attr:`total_energy_pj` — always equals
    ``sum(cycle_energy)``, with or without noise.  The per-cycle
    ``component_energy`` matrix covers only the physical
    :data:`COMPONENTS`; the noise term is not a datapath component and
    appears only in the per-cycle total and the ``"noise"`` running total.

    The hook signatures accept optional trailing ``ins``/``pc`` context
    (supplied by the pipeline) that feeds only the attribution sink; the
    energy models never see it, so an attribution-enabled run produces the
    same trace as a plain one.
    """

    def __init__(self, params: EnergyParams = DEFAULT_PARAMS,
                 collect_components: bool = False,
                 noise_sigma: float = 0.0, noise_seed: int = 0,
                 attribution=None, stream=None, keep_trace: bool = True):
        self.params = params
        self.collect_components = collect_components
        self.noise_sigma = noise_sigma
        self._noise_rng = None
        self._noise_buffer = None
        self._noise_index = 0
        if noise_sigma > 0:
            import numpy as np

            self._noise_rng = np.random.default_rng(noise_seed)
            self._noise_buffer = self._noise_rng.normal(
                0.0, noise_sigma, size=4096)

        #: Optional provenance sink; every energy increment is mirrored to
        #: :meth:`AttributionSink.book_ins`/``book_overhead`` when set.
        self.attribution = attribution
        #: Optional per-cycle trace sink (write_cycle(index, total, comps)).
        self.stream = stream
        #: Keep the in-memory per-cycle list (disable for streamed runs).
        self.keep_trace = keep_trace

        self.ibus = BusModel(params.event_energy_instr_bus, params.width)
        if params.c_coupling > 0:
            from .coupling import CoupledBusModel

            self.dbus = CoupledBusModel(params.event_energy_data_bus,
                                        params.event_energy_coupling,
                                        params.width)
        else:
            self.dbus = BusModel(params.event_energy_data_bus, params.width)
        self.alu = FunctionalUnitModel(params.event_energy_alu,
                                       1.5 * params.event_energy_alu,
                                       params.width)
        self.xor_unit = FunctionalUnitModel(params.event_energy_xor_static,
                                            params.event_energy_xor,
                                            params.width)
        self.shifter = FunctionalUnitModel(params.event_energy_shift,
                                           1.5 * params.event_energy_shift,
                                           params.width)
        # Field counts follow the pipeline's latch() calls: IF/ID carries the
        # instruction word; ID/EX the two operands plus store data; EX/MEM
        # result + store data; MEM/WB the write-back value.
        self.latches = (
            LatchModel(params.event_energy_latch, 1, params.width),
            LatchModel(params.event_energy_latch, 3, params.width),
            LatchModel(params.event_energy_latch, 2, params.width),
            LatchModel(params.event_energy_latch, 1, params.width),
        )

        #: Per-cycle total energy (pJ); empty when ``keep_trace=False``.
        self.cycle_energy: list[float] = []
        #: Per-cycle per-component energy; filled when collect_components.
        self.component_energy: list[tuple[float, ...]] = []
        #: Running totals per component, plus the injected "noise" term.
        self.totals: dict[str, float] = {name: 0.0 for name in COMPONENTS}
        self.totals["noise"] = 0.0
        #: Per-component **event counts** (accesses/operations, not pJ):
        #: clock ticks, active fetches, regfile port uses, functional-unit
        #: operations, data-bus/memory-port accesses, latch commits,
        #: secure-mode events, and injected noise samples.
        self.counts: dict[str, int] = {name: 0 for name in COMPONENTS}
        self.counts["noise"] = 0

        self._cur = dict.fromkeys(COMPONENTS, 0.0)
        self._cycle_count = 0

    # -- pipeline hook interface ----------------------------------------

    def begin_cycle(self) -> None:
        cur = self._cur
        for name in COMPONENTS:
            cur[name] = 0.0
        cur["clock"] = self.params.e_clock_cycle
        self.counts["clock"] += 1
        if self.attribution is not None:
            self.attribution.book_overhead("clock", self.params.e_clock_cycle)

    def fetch(self, iword: int, active: bool, ins: Instruction = None,
              pc: int = -1) -> None:
        if active:
            energy = self.ibus.transfer(iword & 0xFFFF_FFFF, secure=False)
            self._cur["ibus"] += energy
            self.counts["ibus"] += 1
            if self.attribution is not None and ins is not None:
                self.attribution.book_ins(pc, "ibus", ins, energy)

    def regfile_access(self, reads: int, writes: int,
                       read_ins: Instruction = None, read_pc: int = -1,
                       write_ins: Instruction = None,
                       write_pc: int = -1) -> None:
        port = self.params.e_regfile_port
        self._cur["regfile"] += (reads + writes) * port
        self.counts["regfile"] += reads + writes
        if self.attribution is not None:
            if reads and read_ins is not None:
                self.attribution.book_ins(read_pc, "regfile", read_ins,
                                          reads * port)
            if writes and write_ins is not None:
                self.attribution.book_ins(write_pc, "regfile", write_ins,
                                          writes * port)

    def ex_stage(self, ins: Instruction, a: int, b: int, out: int,
                 pc: int = -1) -> None:
        spec = ins.spec
        alu_op = spec.alu
        if alu_op is AluOp.NONE:
            return
        # Secure loads/stores do NOT mask the address calculation (the paper:
        # "revealing the address of data is not considered a problem" and
        # "our current secure load operation does not mask the energy
        # difference due to differences in the offset") — except for the
        # secure-indexed load, whose whole point is masking the S-box index.
        if spec.is_load or spec.is_store:
            secure = ins.secure and spec.is_indexing
            energy = self.alu.execute(a, b, out, secure)
        elif alu_op is AluOp.XOR:
            energy = self.xor_unit.execute(a, b, out, ins.secure)
        elif alu_op in _SHIFT_OPS:
            energy = self.shifter.execute(a, b, out, ins.secure)
        else:
            energy = self.alu.execute(a, b, out, ins.secure)
        self._cur["funits"] += energy
        self.counts["funits"] += 1
        if self.attribution is not None:
            self.attribution.book_ins(pc, "funits", ins, energy)

    def mem_stage(self, ins: Instruction, bus_value: int,
                  active: bool, pc: int = -1) -> None:
        if not active:
            return
        port_energy = self.params.e_memory_access
        bus_energy = self.dbus.transfer(bus_value, ins.secure)
        self._cur["memport"] += port_energy
        self._cur["dbus"] += bus_energy
        self.counts["memport"] += 1
        self.counts["dbus"] += 1
        if self.attribution is not None:
            self.attribution.book_ins(pc, "memport", ins, port_energy)
            self.attribution.book_ins(pc, "dbus", ins, bus_energy)

    def latch(self, stage: int, values: tuple[int, ...],
              secure: bool, ins: Instruction = None, pc: int = -1) -> None:
        # The IF/ID latch holds the instruction word, which is code-dependent
        # but never operand-dependent; it has no dual-rail mode.
        if stage == 0:
            secure = False
        energy = self.latches[stage].latch(values, secure)
        self._cur["latches"] += energy
        self.counts["latches"] += 1
        attribution = self.attribution
        if attribution is not None and ins is not None:
            attribution.book_ins(pc, "latches", ins, energy)
        if secure:
            self._cur["secure"] += self.params.e_secure_clock
            self.counts["secure"] += 1
            if attribution is not None and ins is not None:
                attribution.book_ins(pc, "secure", ins,
                                     self.params.e_secure_clock)

    def wb_stage(self, ins: Instruction, value: int, pc: int = -1) -> None:
        if ins.secure:
            # Complementary rails terminate into the dummy capacitive load.
            self._cur["secure"] += self.params.e_dummy_load
            self.counts["secure"] += 1
            if self.attribution is not None:
                self.attribution.book_ins(pc, "secure", ins,
                                          self.params.e_dummy_load)

    def end_cycle(self) -> None:
        cur = self._cur
        total = 0.0
        for name in COMPONENTS:
            value = cur[name]
            total += value
            self.totals[name] += value
        if self._noise_buffer is not None:
            noise = self._next_noise()
            total += noise
            self.totals["noise"] += noise
            self.counts["noise"] += 1
            if self.attribution is not None:
                self.attribution.book_overhead("noise", noise)
        index = self._cycle_count
        self._cycle_count = index + 1
        if self.keep_trace:
            self.cycle_energy.append(total)
        if self.collect_components:
            self.component_energy.append(tuple(cur[name]
                                               for name in COMPONENTS))
        if self.stream is not None:
            self.stream.write_cycle(
                index, total,
                self.component_energy[-1] if self.collect_components
                else None)

    def _next_noise(self) -> float:
        """Next Gaussian noise draw; the buffered stream depends only on
        ``noise_seed`` and draw order, never on who consumes it."""
        buffer = self._noise_buffer
        if self._noise_index >= buffer.shape[0]:
            buffer = self._noise_rng.normal(0.0, self.noise_sigma,
                                            size=4096)
            self._noise_buffer = buffer
            self._noise_index = 0
        noise = float(buffer[self._noise_index])
        self._noise_index += 1
        return noise

    # -- schedule-replay fast path ----------------------------------------

    def commit_fastpath(self, cycle_energy: list[float],
                        component_energy: list[tuple[float, ...]],
                        totals: dict[str, float], counts: dict[str, int],
                        cycles: int) -> None:
        """Adopt the results of a schedule-replay run in one shot.

        The replay loop (:mod:`repro.machine.fastpath`) performs the same
        floating-point accumulations as the per-cycle hooks, in the same
        order, against this tracker's own component models — this method
        only installs the finished vectors and running sums.  Attribution
        and streaming runs never come through here; they replay through
        the standard hook sequence instead.
        """
        if self.keep_trace:
            self.cycle_energy = cycle_energy
        if self.collect_components:
            self.component_energy = component_energy
        for name, value in totals.items():
            self.totals[name] += value
        for name, value in counts.items():
            self.counts[name] += value
        self._cycle_count += cycles

    # -- results ----------------------------------------------------------

    def publish_metrics(self, registry) -> None:
        """Publish per-component totals into an observability registry.

        Gauges ``energy_component_pj{component=...}`` (including the
        injected ``noise`` term when active) plus ``energy_total_pj`` and
        ``cycles_simulated``, and counters
        ``energy_component_events{component=...}`` / ``cycles`` so rates
        stay computable after aggregation (counter merges add, keeping the
        snapshot merge associative); called by the harness runner once per
        run when the observability sink is enabled, never from the
        per-cycle path.
        """
        component_gauge = registry.gauge(
            "energy_component_pj",
            "per-component energy total of the run (pJ)")
        event_counter = registry.counter(
            "energy_component_events",
            "per-component event count of the run (accesses/operations)")
        for name in COMPONENTS:
            component_gauge.add(self.totals[name], component=name)
            event_counter.inc(self.counts[name], component=name)
        if self.totals.get("noise"):
            component_gauge.add(self.totals["noise"], component="noise")
            event_counter.inc(self.counts["noise"], component="noise")
        registry.gauge("energy_total_pj",
                       "total energy of the run (pJ)") \
            .add(self.total_energy_pj)
        registry.gauge("cycles_simulated",
                       "simulated cycles").add(self.cycles)
        registry.counter("cycles", "simulated cycles (summable)") \
            .inc(self.cycles)

    @property
    def total_energy_pj(self) -> float:
        return sum(self.totals.values())

    @property
    def total_energy_uj(self) -> float:
        return self.total_energy_pj * 1e-6

    @property
    def cycles(self) -> int:
        return self._cycle_count

    @property
    def average_energy_pj(self) -> float:
        if not self._cycle_count:
            return 0.0
        return self.total_energy_pj / self._cycle_count
