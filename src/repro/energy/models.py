"""Transition-sensitive component energy models.

These mirror SimplePower's modeling style: each datapath component remembers
its previous electrical state and charges energy per 0->1 (charging) event,
E = C · V² per event (the paper's single-wire example fixes this convention:
1 pF at 2.5 V = 6.25 pJ per event).

Secure-mode semantics (Section 4.2 of the paper):

* **Pre-charged dual-rail bus** — the 32-bit bus becomes 64 lines carrying
  value and complement.  All lines pre-charge to one each cycle; evaluation
  discharges exactly 32 of them, so each secure cycle costs a constant
  ``width`` charging events *and leaves the bus pre-charged* (all ones).
  The all-ones resting state is what prevents a secure value from modulating
  the energy of a following normal-mode transfer.
* **Pre-charged complementary functional unit** (Fig. 5) — per output bit,
  the true and complementary nodes are both pre-charged; evaluation
  discharges exactly one of the two.  Constant ``width`` events per cycle.
* **Dual-rail pipeline latches** — secure operands propagate with their
  complements to write-back with return-to-precharge clocking; constant
  ``width`` events per latched field, with a dummy capacitive load
  terminating the complementary rails at WB.
"""

from __future__ import annotations

_WORD_MASK = 0xFFFF_FFFF


class BusModel:
    """A bus that is dual-rail pre-charged when driven by a secure op."""

    __slots__ = ("event_energy", "width", "prev", "secure_energy")

    def __init__(self, event_energy: float, width: int = 32):
        self.event_energy = event_energy
        self.width = width
        self.prev = 0
        # Exactly `width` of the 2*width rails recharge per secure cycle.
        self.secure_energy = width * event_energy

    def transfer(self, value: int, secure: bool) -> float:
        """Drive ``value`` onto the bus; returns pJ consumed."""
        if secure:
            # Pre-charged: constant energy, rails left at logic one.
            self.prev = _WORD_MASK
            return self.secure_energy
        rising = (value & ~self.prev & _WORD_MASK).bit_count()
        self.prev = value
        return rising * self.event_energy

    def reset(self) -> None:
        self.prev = 0


class FunctionalUnitModel:
    """ALU / XOR unit / shifter with static and pre-charged modes.

    Normal mode charges per rising event on the two input operand nodes and
    the output nodes (``static_event_energy`` each).  Secure mode is the
    pre-charged complementary circuit: a constant ``width`` events at
    ``precharge_event_energy``, independent of the operands.
    """

    __slots__ = ("static_event_energy", "precharge_event_energy", "width",
                 "prev_a", "prev_b", "prev_out", "secure_energy")

    def __init__(self, static_event_energy: float,
                 precharge_event_energy: float, width: int = 32):
        self.static_event_energy = static_event_energy
        self.precharge_event_energy = precharge_event_energy
        self.width = width
        self.prev_a = 0
        self.prev_b = 0
        self.prev_out = 0
        self.secure_energy = width * precharge_event_energy

    def execute(self, a: int, b: int, out: int, secure: bool) -> float:
        if secure:
            # Evaluation discharges one of each complementary node pair;
            # pre-charge restores them.  Inputs are latched dual-rail too.
            self.prev_a = _WORD_MASK
            self.prev_b = _WORD_MASK
            self.prev_out = _WORD_MASK
            return self.secure_energy
        rising = ((a & ~self.prev_a & _WORD_MASK).bit_count()
                  + (b & ~self.prev_b & _WORD_MASK).bit_count()
                  + (out & ~self.prev_out & _WORD_MASK).bit_count())
        self.prev_a = a
        self.prev_b = b
        self.prev_out = out
        return rising * self.static_event_energy

    def reset(self) -> None:
        self.prev_a = self.prev_b = self.prev_out = 0


class LatchModel:
    """One pipeline register holding a fixed number of 32-bit fields."""

    __slots__ = ("event_energy", "fields", "width", "prev", "secure_energy")

    def __init__(self, event_energy: float, fields: int, width: int = 32):
        self.event_energy = event_energy
        self.fields = fields
        self.width = width
        self.prev = [0] * fields
        self.secure_energy = fields * width * event_energy

    def latch(self, values: tuple[int, ...], secure: bool) -> float:
        prev = self.prev
        if secure:
            for i in range(self.fields):
                prev[i] = _WORD_MASK
            return self.secure_energy
        energy_events = 0
        for i, value in enumerate(values):
            energy_events += (value & ~prev[i] & _WORD_MASK).bit_count()
            prev[i] = value
        return energy_events * self.event_energy

    def reset(self) -> None:
        self.prev = [0] * self.fields
