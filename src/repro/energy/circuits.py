"""Switch-level model of the pre-charged complementary XOR cell (Fig. 5).

The paper's Figure 5 shows one bit-slice of the secure XOR unit: a dynamic
(pre-charged) XOR gate plus its complementary twin, clocked by ``v``.  During
the pre-charge phase (v = 0) both output nodes are pulled to one; during
evaluation (v = 1) exactly one of the two pull-down networks conducts, so
exactly one node discharges — for *any* input combination.  Energy per cycle
is therefore one node recharge regardless of the data, which is the
data-independence property the architectural model assumes.

In normal (insecure) mode, the complementary half is clock-gated
(``secure · v``): only the true gate evaluates, the output follows the data,
and switching energy depends on the input values — averaging half the secure
constant over random data.

This module exists to *validate* those two claims at the switch level; the
pipeline-facing model in :mod:`repro.energy.models` uses the resulting
per-cycle event counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CycleEnergy:
    """Charge events for one clock cycle of one bit-slice."""

    precharge_events: int
    discharge_events: int

    @property
    def charging_events(self) -> int:
        """Events that draw energy from the supply (node recharges)."""
        return self.precharge_events


class PrechargedXorCell:
    """One dual-rail pre-charged XOR bit-slice.

    State is the pair of dynamic output nodes ``(q, qbar)``.  ``step`` runs
    one full pre-charge/evaluate clock cycle and returns the charge-event
    counts.  When ``secure`` is false, the complementary half is gated: its
    node neither pre-charges nor evaluates (it floats at its last value,
    modeled as holding zero once discharged by the dummy load).
    """

    def __init__(self) -> None:
        self.q = 0
        self.qbar = 0

    def step(self, a: int, b: int, secure: bool) -> CycleEnergy:
        if a not in (0, 1) or b not in (0, 1):
            raise ValueError("inputs must be single bits")
        result = a ^ b
        precharge = 0
        discharge = 0
        if secure:
            # Pre-charge phase: both nodes pulled to 1 (energy per node that
            # was low).
            if not self.q:
                precharge += 1
            if not self.qbar:
                precharge += 1
            self.q = 1
            self.qbar = 1
            # Evaluate: exactly one pull-down network conducts.
            if result:
                self.qbar = 0
            else:
                self.q = 0
            discharge += 1
        else:
            # Normal mode: only the true gate is clocked.
            if not self.q:
                precharge += 1
            self.q = 1
            if not result:
                self.q = 0
                discharge += 1
            # Complementary node is gated off; it stays wherever it is and
            # neither charges nor discharges.
        return CycleEnergy(precharge_events=precharge,
                           discharge_events=discharge)


def secure_cycle_energy_is_constant(samples: list[tuple[int, int]]) -> bool:
    """Check the masking property over an input sequence.

    Returns True iff, after the first cycle, every secure cycle consumes the
    same number of charging events regardless of the input pair sequence.
    """
    cell = PrechargedXorCell()
    energies = [cell.step(a, b, secure=True).charging_events
                for a, b in samples]
    steady = energies[1:]
    return len(set(steady)) <= 1
