"""Energy-trace container and the paper's trace manipulations.

An :class:`EnergyTrace` wraps a numpy vector of per-cycle energies (pJ) plus
the phase markers the program emitted.  It provides the operations the
paper's figures are built from: differential traces (Figs. 7-11), windowing
to a phase such as "round 1" or "the first key permutation" (Figs. 7-9, 12),
and the every-N-cycles decimation used for plotting (Fig. 6 plots every 10
cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass
class EnergyTrace:
    """Per-cycle energy (pJ) with program phase markers."""

    energy: np.ndarray
    #: (cycle, value) phase markers emitted by the program.
    markers: tuple[tuple[int, int], ...] = ()
    #: Optional per-cycle per-component matrix (cycles x components).
    components: Optional[np.ndarray] = None
    label: str = ""

    @classmethod
    def from_tracker(cls, tracker, markers: Sequence[tuple[int, int]] = (),
                     label: str = "") -> "EnergyTrace":
        components = None
        if tracker.component_energy:
            components = np.asarray(tracker.component_energy, dtype=np.float64)
        return cls(energy=np.asarray(tracker.cycle_energy, dtype=np.float64),
                   markers=tuple(markers), components=components, label=label)

    def __len__(self) -> int:
        return int(self.energy.shape[0])

    @property
    def total_pj(self) -> float:
        return float(self.energy.sum())

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    @property
    def mean_pj(self) -> float:
        return float(self.energy.mean()) if len(self) else 0.0

    # -- phase navigation -------------------------------------------------

    def marker_cycles(self, value: int) -> list[int]:
        """Cycles at which the program emitted marker ``value``."""
        return [cycle for cycle, marker in self.markers if marker == value]

    def phase_bounds(self, start_value: int,
                     end_value: int) -> tuple[int, int]:
        """Cycle span between the first ``start_value`` marker and the first
        ``end_value`` marker after it."""
        starts = self.marker_cycles(start_value)
        if not starts:
            raise ValueError(f"no marker with value {start_value}")
        start = starts[0]
        ends = [c for c in self.marker_cycles(end_value) if c > start]
        if not ends:
            raise ValueError(f"no marker {end_value} after cycle {start}")
        return start, ends[0]

    def window(self, start: int, end: int) -> "EnergyTrace":
        """Slice of the trace covering cycles [start, end)."""
        shifted = tuple((cycle - start, value) for cycle, value in self.markers
                        if start <= cycle < end)
        components = None
        if self.components is not None:
            components = self.components[start:end]
        return EnergyTrace(energy=self.energy[start:end], markers=shifted,
                           components=components, label=self.label)

    def phase(self, start_value: int, end_value: int) -> "EnergyTrace":
        """Window covering one marked program phase."""
        start, end = self.phase_bounds(start_value, end_value)
        return self.window(start, end)

    # -- the paper's trace operations --------------------------------------

    def decimate(self, stride: int = 10) -> np.ndarray:
        """Average consecutive ``stride``-cycle blocks (Fig. 6 plots the
        trace "every 10 cycles")."""
        n = (len(self) // stride) * stride
        if n == 0:
            return np.empty(0)
        return self.energy[:n].reshape(-1, stride).mean(axis=1)

    def diff(self, other: "EnergyTrace") -> np.ndarray:
        """Cycle-aligned differential trace (self - other), the quantity the
        paper plots in Figs. 7-11.  Requires equal length: the pipeline's
        data-independent timing guarantees this for same-program runs."""
        if len(self) != len(other):
            raise ValueError(
                f"traces are not cycle-aligned ({len(self)} vs {len(other)} "
                "cycles); differential traces require identical control flow")
        return self.energy - other.energy

    def max_abs_diff(self, other: "EnergyTrace") -> float:
        delta = self.diff(other)
        return float(np.abs(delta).max()) if delta.size else 0.0
