"""Inter-wire coupling bus model — the paper's Section 5 limitation.

The paper closes with: *"The use of complementary values and dual rail
logic alone will not be sufficient in the future.  This is because power
consumption differences will also arise due to signal transitions on
adjacent lines of on-chip buses [Sotiriadis/Chandrakasan].  Current
dual-rail encoding schemes do not mask the key leakage arising due to
these differences."*

This module models exactly that effect so the limitation can be
demonstrated (experiment ``ext-coupling``).  Each adjacent wire pair
carries a coupling capacitance C_c; switching activity on the pair costs:

* 0 coupling events when both lines switch the same way (the coupling cap
  sees no voltage change),
* 1 event when exactly one line switches,
* 2 events when they switch in opposite directions (Miller doubling).

On the *dual-rail pre-charged* secure bus the rails are interleaved
``d0, ~d0, d1, ~d1, ...``.  Within a pair exactly one rail discharges per
cycle — data-independent.  But across pair boundaries, whether ``~d_k``
and ``d_{k+1}`` switch together depends on the data, so with C_c > 0 the
"secure" bus leaks again, exactly as the paper warns.
"""

from __future__ import annotations

_WORD = 0xFFFF_FFFF


def _spread_bits_32_to_64(value: int) -> int:
    """Place bit k of a 32-bit value at bit 2k of a 64-bit word."""
    value &= _WORD
    value = (value | (value << 16)) & 0x0000FFFF0000FFFF
    value = (value | (value << 8)) & 0x00FF00FF00FF00FF
    value = (value | (value << 4)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value << 2)) & 0x3333333333333333
    value = (value | (value << 1)) & 0x5555555555555555
    return value


def interleave_rails(value: int) -> int:
    """64-bit dual-rail falling mask for the evaluate phase.

    Rail layout d0, ~d0, d1, ~d1, ... with bit k of the value on rails
    (2k, 2k+1).  Starting from all-pre-charged (all ones), rail ``d_k``
    falls iff bit k is 0 and rail ``~d_k`` falls iff bit k is 1.
    """
    return _spread_bits_32_to_64(~value) | (_spread_bits_32_to_64(value) << 1)


def coupling_events_normal(rising: int, falling: int,
                           width: int = 32) -> int:
    """Coupling events between adjacent lines of a single-rail bus."""
    mask = (1 << (width - 1)) - 1
    switching = rising | falling
    exactly_one = (switching ^ (switching >> 1)) & mask
    # Both switch, opposite directions: one rises while its neighbor falls.
    opposite = ((rising & (falling >> 1)) | (falling & (rising >> 1))) & mask
    return exactly_one.bit_count() + 2 * opposite.bit_count()


def coupling_events_secure(value: int, width: int = 32) -> int:
    """Coupling events on the interleaved dual-rail bus, per phase.

    During evaluation every transition is a fall, so pairs where exactly
    one rail switches contribute one event; the pre-charge phase restores
    them symmetrically (the caller doubles this count).
    """
    mask = (1 << (2 * width - 1)) - 1
    falling = interleave_rails(value)
    exactly_one = (falling ^ (falling >> 1)) & mask
    return exactly_one.bit_count()


class CoupledBusModel:
    """Bus with self capacitance plus adjacent-line coupling.

    With ``coupling_event_energy == 0`` this degenerates exactly to
    :class:`repro.energy.models.BusModel` (same totals, same state).
    """

    __slots__ = ("event_energy", "coupling_event_energy", "width", "prev",
                 "base_secure_energy")

    def __init__(self, event_energy: float, coupling_event_energy: float,
                 width: int = 32):
        self.event_energy = event_energy
        self.coupling_event_energy = coupling_event_energy
        self.width = width
        self.prev = 0
        self.base_secure_energy = width * event_energy

    def transfer(self, value: int, secure: bool) -> float:
        if secure:
            energy = self.base_secure_energy
            if self.coupling_event_energy:
                # Evaluate discharges + pre-charge restores: two phases of
                # identical coupling activity — and both depend on the data.
                events = coupling_events_secure(value, self.width)
                energy += 2 * events * self.coupling_event_energy
            self.prev = _WORD
            return energy
        rising = value & ~self.prev & _WORD
        energy = rising.bit_count() * self.event_energy
        if self.coupling_event_energy:
            falling = ~value & self.prev & _WORD
            events = coupling_events_normal(rising, falling, self.width)
            energy += events * self.coupling_event_energy
        self.prev = value
        return energy

    def reset(self) -> None:
        self.prev = 0
