"""Technology and capacitance parameters for the energy models.

The paper models a 0.25 µm process at 2.5 V supply.  The reference example it
gives — "for an internal wire of 1 pF and a supply voltage of 2.5 V, the
[0->1 transition] consumes 6.25 pJ more energy" — fixes the energy-per-charge
convention used throughout: **E = C · V² per rising (charging) event**.

All capacitances below are effective switched capacitances per node.  They
are calibrated so that the simulated DES program reproduces the paper's
reported operating points:

* XOR functional unit: ~0.3 pJ average in normal mode, 0.6 pJ constant in
  secure mode (Section 4.2);
* whole-program average ~165 pJ/cycle for unmasked DES (Section 4.3);
* masking overhead ~45 pJ/cycle in fully-secured regions (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class EnergyParams:
    """Effective switched capacitances (pF) and fixed energies (pJ)."""

    #: Supply voltage (V).
    vdd: float = 2.5

    # -- wires / buses (pF per line) -----------------------------------
    #: Memory data bus between the memory and the pipeline.  This is the
    #: paper's canonical leaky wire (their example uses 1 pF; a 32-bit bus
    #: of such wires would dwarf the core, so we use a smaller effective
    #: per-line capacitance and keep the 1 pF figure for the single-wire
    #: example, see :func:`single_wire_event_energy`).
    c_data_bus: float = 0.80
    #: Instruction bus from instruction memory to IF.
    c_instr_bus: float = 0.16
    #: Inter-wire coupling capacitance between adjacent data-bus lines
    #: (pF per adjacent pair).  0 by default: the paper's main evaluation
    #: ignores coupling; its Section 5 notes that with coupling, dual-rail
    #: masking leaks again — set this nonzero to reproduce that limitation
    #: (see repro.energy.coupling and the ext-coupling experiment).
    c_coupling: float = 0.0

    # -- pipeline latches (pF per bit) ----------------------------------
    c_latch_bit: float = 0.058

    # -- functional units ------------------------------------------------
    #: XOR unit, pre-charged complementary node (secure mode): each of the
    #: 32 output bit-slices contributes exactly one discharge/recharge event
    #: per cycle, so secure-mode energy is the constant 32 · c · V² = 0.6 pJ.
    c_xor_node: float = 0.003
    #: XOR unit, static node (normal mode): energy follows input/output
    #: toggles; with random operands this averages 24 rising events,
    #: 24 · c · V² = 0.3 pJ — half the secure constant, as in the paper.
    c_xor_static: float = 0.002
    #: Main adder/logic ALU, per output node toggled.
    c_alu_node: float = 0.10
    #: Barrel shifter, per output node toggled.
    c_shift_node: float = 0.032

    # -- data-independent fixed energies (pJ per event) -------------------
    #: Register file, per port access (differential array read/write).
    e_regfile_port: float = 2.0
    #: Memory array, per access (the array itself is data-independent; the
    #: data-dependence lives on the bus).
    e_memory_access: float = 8.0
    #: Clock tree + control logic, per cycle.
    e_clock_cycle: float = 148.0
    #: Dummy capacitive load terminating the complementary rails of a secure
    #: instruction at write-back (Section 4.2, Fig. 3).
    e_dummy_load: float = 7.0
    #: Extra clock/control energy for driving the complementary rails of one
    #: secure instruction for one cycle (the gated clock `secure · v`).
    e_secure_clock: float = 2.5

    #: Bit width of the datapath.
    width: int = 32

    @property
    def event_energy_data_bus(self) -> float:
        """pJ per rising event on one data-bus line."""
        return self.c_data_bus * self.vdd * self.vdd

    @property
    def event_energy_instr_bus(self) -> float:
        return self.c_instr_bus * self.vdd * self.vdd

    @property
    def event_energy_coupling(self) -> float:
        return self.c_coupling * self.vdd * self.vdd

    @property
    def event_energy_latch(self) -> float:
        return self.c_latch_bit * self.vdd * self.vdd

    @property
    def event_energy_xor(self) -> float:
        return self.c_xor_node * self.vdd * self.vdd

    @property
    def event_energy_xor_static(self) -> float:
        return self.c_xor_static * self.vdd * self.vdd

    @property
    def event_energy_alu(self) -> float:
        return self.c_alu_node * self.vdd * self.vdd

    @property
    def event_energy_shift(self) -> float:
        return self.c_shift_node * self.vdd * self.vdd

    def scaled(self, **overrides: float) -> "EnergyParams":
        """Return a copy with some fields replaced (for sweeps/ablations)."""
        return replace(self, **overrides)


def single_wire_event_energy(capacitance_pf: float = 1.0,
                             vdd: float = 2.5) -> float:
    """The paper's reference example: E = C · V² per 0->1 event.

    ``single_wire_event_energy(1.0, 2.5) == 6.25`` pJ.
    """
    return capacitance_pf * vdd * vdd


#: Default calibrated parameter set.
DEFAULT_PARAMS = EnergyParams()
