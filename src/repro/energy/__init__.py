"""Transition-sensitive energy modeling (SimplePower-style)."""

from .circuits import CycleEnergy, PrechargedXorCell
from .models import BusModel, FunctionalUnitModel, LatchModel
from .params import DEFAULT_PARAMS, EnergyParams, single_wire_event_energy
from .trace import EnergyTrace
from .tracker import COMPONENTS, EnergyTracker

__all__ = [
    "BusModel", "COMPONENTS", "CycleEnergy", "DEFAULT_PARAMS", "EnergyParams",
    "EnergyTrace", "EnergyTracker", "FunctionalUnitModel", "LatchModel",
    "PrechargedXorCell", "single_wire_event_energy",
]
