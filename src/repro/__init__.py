"""repro — reproduction of "Masking the Energy Behavior of DES Encryption"
(Saputra et al., DATE 2003).

The package implements the paper's full stack from scratch:

* :mod:`repro.isa` — a MIPS-like embedded integer ISA augmented with a
  per-instruction *secure bit* and the paper's secure mnemonics
  (``slw``/``ssw``/``sxor``/``ssllv``/``silw``), plus a two-pass assembler;
* :mod:`repro.machine` — a cycle-accurate five-stage in-order pipeline
  (forwarding, load-use interlock, EX-resolved branches);
* :mod:`repro.energy` — SimplePower-style transition-sensitive energy
  models with pre-charged dual-rail semantics for secure instructions;
* :mod:`repro.des` — FIPS 46-3 DES reference implementation and tables;
* :mod:`repro.lang` — the SecureC compiler: ``secure``-annotated mini-C,
  forward slicing, and secure-instruction selection;
* :mod:`repro.programs` — the DES workload generated in SecureC;
* :mod:`repro.masking` — the four masking policies of the paper's Sec. 4.3;
* :mod:`repro.attacks` — SPA and DPA mounted against simulated traces;
* :mod:`repro.harness` — one registered experiment per paper table/figure.

Quickstart::

    from repro import compile_des, des_run, KEY_A, PT_A
    compiled = compile_des(masking="selective")
    run = des_run(compiled.program, KEY_A, PT_A)
    print(run.total_uj, "uJ over", run.cycles, "cycles")
"""

from .attacks import (collect_traces, cpa_attack, dpa_attack,
                      dpa_attack_multibit, random_plaintexts)
from .attacks.spa import analyze as spa_analyze
from .aes import decrypt_block as aes_decrypt_block
from .aes import encrypt_block as aes_encrypt_block
from .des import decrypt_block, encrypt_block
from .energy import (DEFAULT_PARAMS, EnergyParams, EnergyTrace,
                     EnergyTracker)
from .harness import (EXPERIMENTS, ExperimentResult, KEY_A, KEY_B_BIT1,
                      KEY_C, PT_A, PT_B, RunResult, des_run, run_experiment,
                      run_with_trace)
from .isa import Instruction, Program, assemble
from .lang import CompileResult, compile_source
from .machine import CPU, Memory, Pipeline, run_to_halt
from .masking import MaskingPolicy, apply_policy
from .programs import (AesProgramSpec, DesProgramSpec, FULL_AES, FULL_DES,
                       KEYPERM_ONLY, ROUND1_AES, ROUND1_DES,
                       aes_ciphertext_of, ciphertext_of, compile_aes,
                       compile_des, des_source, run_aes, run_des)

__version__ = "1.0.0"

__all__ = [
    "AesProgramSpec", "CPU", "CompileResult", "DEFAULT_PARAMS",
    "DesProgramSpec", "FULL_AES", "ROUND1_AES", "aes_ciphertext_of",
    "aes_decrypt_block", "aes_encrypt_block", "compile_aes", "cpa_attack",
    "run_aes",
    "EXPERIMENTS", "EnergyParams", "EnergyTrace", "EnergyTracker",
    "ExperimentResult", "FULL_DES", "Instruction", "KEYPERM_ONLY", "KEY_A",
    "KEY_B_BIT1", "KEY_C", "MaskingPolicy", "Memory", "PT_A", "PT_B",
    "Pipeline", "Program", "ROUND1_DES", "RunResult", "apply_policy",
    "assemble", "ciphertext_of", "collect_traces", "compile_des",
    "compile_source", "decrypt_block", "des_run", "des_source",
    "dpa_attack", "dpa_attack_multibit", "encrypt_block",
    "random_plaintexts", "run_des", "run_experiment", "run_to_halt",
    "run_with_trace", "spa_analyze",
]
