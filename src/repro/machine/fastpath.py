"""Schedule-replay fast path: record the cycle schedule once, replay it.

The pipeline's timing is *data-independent by construction*: stalls,
squashes, forwarding selections, and regfile port gating depend only on
register **numbers** and opcodes, never on operand values (that is what
makes Figs. 7-11 cycle-aligned).  So for a given program the per-cycle
control schedule — which instruction occupies each stage, which forwarding
path feeds each EX operand, how many regfile ports fire, which latches run
dual-rail — is the same for every input.  Only *branch outcomes* are data
in principle; in the paper's straight-line crypto kernels they are loop
counters and therefore input-independent too.

This module exploits that:

* :func:`record_schedule` runs the reference :class:`~.pipeline.Pipeline`
  once (on the program's initial data image, no inputs) and records a
  compact :class:`CycleSchedule`: one interned control record per cycle
  holding stage occupancy, forwarding selectors, decode read/gate lists,
  memory-op kind, pre-computed instruction-bus and IF/ID-latch transition
  counts (the instruction stream is static), and the secure-bit layout of
  the four pipeline latches.
* :class:`ReplayPipeline` replays the schedule for each subsequent trace,
  executing only the data path: operand evaluation through pre-resolved
  per-record handler tuples, transition-sensitive energy accumulated in
  flat per-component floats, committed to the tracker once at the end
  (:meth:`~repro.energy.tracker.EnergyTracker.commit_fastpath`).  With an
  attribution sink attached it instead drives the standard tracker hooks
  in the reference call order, so attribution snapshots are identical.
* Every recorded branch/indirect-jump outcome is checked during replay;
  a mismatch raises :class:`ScheduleDivergence` and the harness runner
  transparently re-runs the trace on the reference engine, so correctness
  never depends on the data-independence heuristic.

The contract is **bit identity** with the reference engine: the replay
performs the exact same floating-point accumulations in the exact same
order (see the differential suite in ``tests/machine/test_fastpath.py``).

Schedules are persisted through the harness :class:`CompileCache` keyed by
a digest of the program text/data plus a fingerprint of the simulator
sources, so a DPA batch pays schedule construction once across a process
pool.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional

from ..isa.instructions import AluOp, Format, Instruction
from ..isa.program import Program
from .cpu import CPU
from .exceptions import SimulationError
from .memory import Memory
from .pipeline import BUBBLE, MARKER_ADDR, Pipeline

_WORD_MASK = 0xFFFF_FFFF

#: Bump when the record layout or replay semantics change; part of the
#: on-disk cache key, so stale schedules can only miss, never replay wrong.
SCHEDULE_VERSION = 1

#: Engine names accepted by ``--engine`` / ``REPRO_ENGINE``.  Re-exported
#: from the engine registry for backwards compatibility.
from .engines import ENGINES  # noqa: E402  (historical import site)

#: Cycle budget for the one-time recording run when the caller does not
#: bound it tighter.
_RECORD_MAX_CYCLES = 50_000_000


class ScheduleFallback(SimulationError):
    """Base: the fast engine cannot (or can no longer) serve this run."""


class ScheduleUnavailable(ScheduleFallback):
    """No usable schedule (recording failed, over budget, or divergent)."""


class ScheduleDivergence(ScheduleFallback):
    """A replayed control decision disagreed with the recorded schedule.

    Raised *before* the diverging cycle commits any state, so the caller
    can re-run the trace from scratch on the reference engine.
    """

    def __init__(self, cycle: int):
        super().__init__(f"recorded control path diverged at cycle {cycle}; "
                         "falling back to the reference engine")
        self.cycle = cycle


def resolve_engine(engine: Optional[str] = None) -> str:
    """Effective engine name: explicit argument, else ``$REPRO_ENGINE``,
    else ``"fast"``.  Unknown names raise :class:`ValueError`.

    Thin shim over :func:`repro.machine.engines.resolve`, kept so existing
    callers (and pickled references) keep working.
    """
    from . import engines

    return engines.resolve(engine)


# ---------------------------------------------------------------------------
# Program digest + schedule cache keys
# ---------------------------------------------------------------------------

_SIM_FINGERPRINT: Optional[str] = None


def _simulator_fingerprint() -> str:
    """Digest of the simulator sources (sizes + mtimes), computed once.

    The compile cache's toolchain fingerprint covers the compiler side;
    schedules additionally depend on the machine model and the energy
    bookkeeping they pre-compute (ibus/latch transition counts), so those
    directories are fingerprinted here.
    """
    global _SIM_FINGERPRINT
    if _SIM_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for subpackage in ("machine", "energy", "isa"):
            directory = package_root / subpackage
            try:
                entries = sorted(directory.glob("*.py"))
            except OSError:  # pragma: no cover - unreadable install
                continue
            for entry in entries:
                try:
                    stat = entry.stat()
                except OSError:  # pragma: no cover
                    continue
                digest.update(f"{entry.name}:{stat.st_size}:"
                              f"{stat.st_mtime_ns};".encode())
        _SIM_FINGERPRINT = digest.hexdigest()[:16]
    return _SIM_FINGERPRINT


def program_digest(program: Program) -> str:
    """Stable digest of everything the cycle schedule depends on.

    Covers the executed text (operands and secure bits included), the
    initial data image, and the memory layout; deliberately excludes
    debug-only fields (``source_line``/``sliced``) which cannot affect
    execution.  Cached on the program instance.
    """
    cached = getattr(program, "_fastpath_digest", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(f"{program.text_base}:{program.data_base}:"
                  f"{program.entry};".encode())
    for ins in program.text:
        digest.update(f"{ins.op}|{ins.rd}|{ins.rs}|{ins.rt}|{ins.imm}|"
                      f"{ins.shamt}|{ins.target}|{int(ins.secure)};"
                      .encode())
    digest.update(("d:" + ",".join(str(word) for word in program.data))
                  .encode())
    value = digest.hexdigest()[:32]
    try:
        program._fastpath_digest = value
    except AttributeError:  # pragma: no cover - exotic program subclass
        pass
    return value


def _schedule_cache_key(digest: str, operand_isolation: bool) -> str:
    text = "|".join(("schedule", str(SCHEDULE_VERSION),
                     _simulator_fingerprint(), digest,
                     "iso" if operand_isolation else "noiso"))
    return "sched-" + hashlib.sha256(text.encode()).hexdigest()[:32]


# ---------------------------------------------------------------------------
# Cycle schedule recording
# ---------------------------------------------------------------------------

class CycleSchedule:
    """The recorded control schedule of one program.

    ``records`` holds the unique per-cycle control tuples (interned — a
    16-round DES run is ~250k cycles but only a few hundred distinct
    records); ``steps[i]`` indexes the record replayed at cycle ``i``.
    ``stats``/``mix``/``counts`` are the end-of-run performance counters,
    opcode mix, and per-component event counts, all input-independent and
    therefore recordable once.
    """

    __slots__ = ("version", "operand_isolation", "cycles", "steps",
                 "records", "final_pc", "stats", "mix", "counts")

    def __init__(self, version: int, operand_isolation: bool, cycles: int,
                 steps: list[int], records: list[tuple], final_pc: int,
                 stats: dict, mix: dict, counts: dict):
        self.version = version
        self.operand_isolation = operand_isolation
        self.cycles = cycles
        self.steps = steps
        self.records = records
        self.final_pc = final_pc
        self.stats = stats
        self.mix = mix
        self.counts = counts

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name in self.__slots__:
            setattr(self, name, state[name])


_MEM_NONE, _MEM_LW, _MEM_LBU, _MEM_LB, _MEM_SW, _MEM_SB = range(6)
_UNIT_NONE, _UNIT_ALU, _UNIT_XOR, _UNIT_SHIFT = range(4)
_SHIFT_OPS = (AluOp.SLL, AluOp.SRL, AluOp.SRA)


def _mem_kind(ins: Instruction) -> int:
    spec = ins.spec
    if spec.is_load:
        if spec.width == 4:
            return _MEM_LW
        return _MEM_LB if spec.signed_load else _MEM_LBU
    if spec.is_store:
        return _MEM_SW if spec.width == 4 else _MEM_SB
    return _MEM_NONE


def _unit_for(ins: Instruction) -> tuple[int, bool]:
    """Functional-unit index + effective secure flag, as the tracker's
    :meth:`~repro.energy.tracker.EnergyTracker.ex_stage` resolves them."""
    spec = ins.spec
    alu_op = spec.alu
    if alu_op is AluOp.NONE:
        return _UNIT_NONE, False
    if spec.is_load or spec.is_store:
        return _UNIT_ALU, ins.secure and spec.is_indexing
    if alu_op is AluOp.XOR:
        return _UNIT_XOR, ins.secure
    if alu_op in _SHIFT_OPS:
        return _UNIT_SHIFT, ins.secure
    return _UNIT_ALU, ins.secure


def _decode_plan(ins: Instruction, ex_dest, mem_dest,
                 isolate: bool) -> tuple[int, int, int, int, int, int]:
    """Replicate ``Pipeline._decode``'s register reads and operand-isolation
    gating as ``(a_reg, a_const, b_reg, b_const, st_reg, reads)``.

    ``*_reg == -1`` means the operand is the paired constant; a gated read
    (its producer sits in EX or MEM, so forwarding will supply it) latches
    a constant zero without a port access — exactly the reference gating,
    which depends only on register numbers.
    """
    spec = ins.spec
    fmt = spec.fmt
    reads = 0
    a_reg = b_reg = st_reg = -1
    a_const = b_const = 0

    def plan(number: int) -> int:
        nonlocal reads
        if isolate and number and (number == ex_dest or number == mem_dest):
            return -1  # forwarded at EX; regfile port gated off, zero latched
        reads += 1
        return number

    if fmt == Format.R3:
        a_reg = plan(ins.rs)
        b_reg = plan(ins.rt)
    elif fmt == Format.SHIFT:
        a_reg = plan(ins.rt)
        b_const = ins.shamt
    elif fmt == Format.SHIFT_V:
        a_reg = plan(ins.rt)
        b_reg = plan(ins.rs)
    elif fmt == Format.ARITH_I:
        a_reg = plan(ins.rs)
        imm = ins.imm if ins.imm is not None else 0
        b_const = imm & 0xFFFF if spec.unsigned_imm else imm & _WORD_MASK
    elif fmt == Format.LOAD:
        a_reg = plan(ins.rs)
        b_const = (ins.imm or 0) & _WORD_MASK
    elif fmt == Format.STORE:
        a_reg = plan(ins.rs)
        b_const = (ins.imm or 0) & _WORD_MASK
        st_reg = plan(ins.rt)
    elif fmt == Format.BRANCH2:
        a_reg = plan(ins.rs)
        b_reg = plan(ins.rt)
    elif fmt == Format.BRANCH1:
        a_reg = plan(ins.rs)
    elif fmt in (Format.JR, Format.JALR):
        a_reg = plan(ins.rs)
    elif fmt == Format.LUI:
        b_const = ins.imm & 0xFFFF
    return a_reg, a_const, b_reg, b_const, st_reg, reads


def _forward_selector(src, fwd_mem_dest, fwd_wb_dest) -> int:
    """0 = latched value, 1 = EX/MEM forward, 2 = MEM/WB forward."""
    if src is not None and src != 0:
        if src == fwd_mem_dest:
            return 1
        if src == fwd_wb_dest:
            return 2
    return 0


def record_schedule(program: Program, operand_isolation: bool = True,
                    max_cycles: int = _RECORD_MAX_CYCLES) -> CycleSchedule:
    """Run the reference pipeline once and record its control schedule.

    The recording run executes on the program's initial data image (no
    inputs written); if the program's control flow depends on inputs the
    replay detects it per-trace and falls back.  Raises
    :class:`ScheduleUnavailable` if the recording run itself cannot finish
    (cycle budget, simulation fault).
    """
    pipe = Pipeline(program, Memory(), tracker=None,
                    operand_isolation=operand_isolation, collect_mix=True)
    text = program.text
    text_base = program.text_base
    iwords = pipe._iwords
    text_len = len(text)

    steps: list[int] = []
    records: list[tuple] = []
    index_of: dict[tuple, int] = {}
    prev_ibus = 0
    prev_l0 = 0
    # Input-independent per-component event counts, accumulated alongside.
    n_ibus = n_regfile = n_funits = n_mem = n_secure = 0

    def ins_index(ins: Instruction, pc: int) -> int:
        if ins is BUBBLE or pc < 0:
            return -1
        return (pc - text_base) >> 2

    try:
        while not pipe.halted:
            if pipe.cycle >= max_cycles:
                raise ScheduleUnavailable(
                    f"recording exceeded max_cycles={max_cycles} "
                    f"(pc=0x{pipe.pc:08x})")
            # -- pre-step state --------------------------------------
            if_id, id_ex = pipe.if_id, pipe.id_ex
            ex_mem, mem_wb = pipe.ex_mem, pipe.mem_wb
            id_ins, id_pc = if_id.ins, if_id.pc
            ex_ins, ex_pc = id_ex.ins, id_ex.pc
            mem_ins, mem_pc = ex_mem.ins, ex_mem.pc
            wb_ins, wb_pc = mem_wb.ins, mem_wb.pc
            pc_before = pipe.pc
            halt_in_flight = pipe._halt_in_flight
            stalls_before = pipe.stall_cycles
            taken_before = pipe.branches_taken

            pipe.step()

            # -- control outcomes ------------------------------------
            stall = pipe.stall_cycles > stalls_before
            ex_spec = ex_ins.spec
            redirect = False
            ctl = None
            if ex_spec.is_branch:
                taken = pipe.branches_taken > taken_before
                ctl = ("b", ex_ins.op, taken)
                redirect = taken
            elif ex_spec.is_jump:
                redirect = True
                if ex_ins.op in ("jr", "jalr"):
                    ctl = ("j", pipe.pc)  # target came from a register
            ex_link = -1
            if ex_ins.op in ("jal", "jalr"):
                ex_link = (ex_pc + 4) & _WORD_MASK

            # -- forwarding selectors (reference EX logic) -----------
            fwd_mem_dest = mem_ins.dest if not mem_ins.spec.is_load else None
            fwd_wb_dest = wb_ins.dest
            a_sel = _forward_selector(id_ex.a_src, fwd_mem_dest, fwd_wb_dest)
            b_sel = _forward_selector(id_ex.b_src, fwd_mem_dest, fwd_wb_dest)
            st_sel = _forward_selector(id_ex.store_src, fwd_mem_dest,
                                       fwd_wb_dest)

            # -- decode plan (reference ID logic incl. isolation) ----
            if stall:
                dec = (-1, 0, -1, 0, -1, 0)
            else:
                dec = _decode_plan(id_ins, ex_ins.dest, mem_ins.dest,
                                   operand_isolation)
            a_reg, a_const, b_reg, b_const, st_reg, reads = dec
            dec_live = not stall and not redirect
            writes = 1 if wb_ins.dest is not None else 0

            # -- fetch (reference IF logic, pre-squash hook args) ----
            fetch_active = False
            fetch_iword = 0
            if stall:
                fetch_idx = ins_index(id_ins, id_pc)
            elif halt_in_flight:
                fetch_idx = -1
            else:
                index = (pc_before - text_base) >> 2
                if 0 <= index < text_len:
                    fetch_idx = index
                    fetch_iword = iwords[index]
                    fetch_active = True
                else:
                    fetch_idx = -1
            ibus_ev = 0
            if fetch_active:
                ibus_ev = (fetch_iword & ~prev_ibus & _WORD_MASK).bit_count()
                prev_ibus = fetch_iword

            # -- post-step latch contents ----------------------------
            l0_iword = pipe.if_id.iword
            l0_idx = ins_index(pipe.if_id.ins, pipe.if_id.pc)
            l0_ev = (l0_iword & ~prev_l0 & _WORD_MASK).bit_count()
            prev_l0 = l0_iword
            l1_idx = ins_index(pipe.id_ex.ins, pipe.id_ex.pc)
            s1 = pipe.id_ex.ins.secure
            s2 = ex_ins.secure
            s3 = mem_ins.secure

            unit_i, ex_sec = _unit_for(ex_ins)
            alu_name = None if ex_spec.alu is AluOp.NONE \
                else ex_spec.alu.value
            mem_kind = _mem_kind(mem_ins)
            wb_dest = wb_ins.dest if wb_ins.dest is not None else -1

            record = (
                ins_index(wb_ins, wb_pc), wb_dest, wb_ins.secure,
                ins_index(mem_ins, mem_pc), mem_kind, mem_ins.secure,
                ins_index(ex_ins, ex_pc), alu_name, unit_i, ex_sec,
                a_sel, b_sel, st_sel, ex_link, ctl,
                ins_index(id_ins, id_pc), dec_live,
                a_reg, a_const, b_reg, b_const, st_reg, reads, writes,
                fetch_idx, fetch_active, fetch_iword, ibus_ev,
                l0_idx, l0_iword, l0_ev, l1_idx, s1, s2, s3,
            )
            slot = index_of.get(record)
            if slot is None:
                slot = len(records)
                records.append(record)
                index_of[record] = slot
            steps.append(slot)

            n_ibus += 1 if fetch_active else 0
            n_regfile += reads + writes
            n_funits += 1 if unit_i != _UNIT_NONE else 0
            n_mem += 1 if mem_kind != _MEM_NONE else 0
            n_secure += ((1 if wb_ins.secure else 0) + (1 if s1 else 0)
                         + (1 if s2 else 0) + (1 if s3 else 0))
    except ScheduleFallback:
        raise
    except SimulationError as error:
        # e.g. an input-dependent address faulted on the zero data image.
        raise ScheduleUnavailable(
            f"recording run failed: {error}") from error

    cycles = pipe.cycle
    counts = {"clock": cycles, "ibus": n_ibus, "regfile": n_regfile,
              "funits": n_funits, "dbus": n_mem, "memport": n_mem,
              "latches": 4 * cycles, "secure": n_secure}
    return CycleSchedule(version=SCHEDULE_VERSION,
                         operand_isolation=operand_isolation,
                         cycles=cycles, steps=steps, records=records,
                         final_pc=pipe.pc, stats=dict(pipe.stats),
                         mix=pipe.opcode_mix, counts=counts)


# ---------------------------------------------------------------------------
# Binding: schedule records -> replay handler tuples
# ---------------------------------------------------------------------------

def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


# Pre-resolved per-op ALU handlers; must compute exactly what
# machine.alu.alu_execute computes for the same AluOp.
_ALU_FUNCS = {
    AluOp.ADD.value: lambda a, b: (a + b) & _WORD_MASK,
    AluOp.SUB.value: lambda a, b: (a - b) & _WORD_MASK,
    AluOp.AND.value: lambda a, b: a & b,
    AluOp.OR.value: lambda a, b: a | b,
    AluOp.XOR.value: lambda a, b: a ^ b,
    AluOp.NOR.value: lambda a, b: (~(a | b)) & _WORD_MASK,
    AluOp.SLT.value: lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    AluOp.SLTU.value:
        lambda a, b: 1 if (a & _WORD_MASK) < (b & _WORD_MASK) else 0,
    AluOp.SLL.value: lambda a, b: (a << (b & 31)) & _WORD_MASK,
    AluOp.SRL.value: lambda a, b: (a & _WORD_MASK) >> (b & 31),
    AluOp.SRA.value: lambda a, b: (_signed(a) >> (b & 31)) & _WORD_MASK,
    AluOp.LUI.value: lambda a, b: (b << 16) & _WORD_MASK,
    AluOp.PASS_A.value: lambda a, b: a & _WORD_MASK,
}

_BRANCH_FUNCS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blez": lambda a, b: _signed(a) <= 0,
    "bgtz": lambda a, b: _signed(a) > 0,
    "bltz": lambda a, b: _signed(a) < 0,
    "bgez": lambda a, b: _signed(a) >= 0,
}


class _BoundSchedule:
    """A :class:`CycleSchedule` resolved against a program's instruction
    objects: per-record handler tuples for the inline fast loop, plus
    (lazily) the instruction-bearing tuples the hooked loop needs."""

    __slots__ = ("schedule", "fast", "_hooked", "_program")

    def __init__(self, schedule: CycleSchedule, program: Program):
        self.schedule = schedule
        self._program = program
        self.fast = [self._bind_fast(record)
                     for record in schedule.records]
        self._hooked: Optional[list[tuple]] = None

    @staticmethod
    def _bind_fast(record: tuple) -> tuple:
        (_wb_idx, wb_dest, wb_sec, _mem_idx, mem_kind, mem_sec,
         _ex_idx, alu_name, unit_i, ex_sec, a_sel, b_sel, st_sel,
         ex_link, ctl, _id_idx, dec_live, a_reg, a_const, b_reg, b_const,
         st_reg, reads, writes, _fetch_idx, _fetch_active, _fetch_iword,
         ibus_ev, _l0_idx, _l0_iword, l0_ev, _l1_idx, s1, s2, s3) = record
        if ctl is not None:
            if ctl[0] == "b":
                ctl = (_BRANCH_FUNCS[ctl[1]], ctl[2])
            else:
                ctl = (None, ctl[1])
        alu_fn = _ALU_FUNCS[alu_name] if alu_name is not None else None
        wb_wr = wb_dest if wb_dest > 0 else -1
        sec_idx = ((8 if wb_sec else 0) | (4 if s1 else 0)
                   | (2 if s2 else 0) | (1 if s3 else 0))
        return (wb_wr, mem_kind, mem_sec, alu_fn, unit_i, ex_sec,
                a_sel, b_sel, st_sel, ex_link, ctl, dec_live,
                a_reg, a_const, b_reg, b_const, st_reg, reads + writes,
                ibus_ev, l0_ev, s1, s2, s3, sec_idx)

    @property
    def hooked(self) -> list[tuple]:
        if self._hooked is None:
            self._hooked = [self._bind_hooked(record)
                            for record in self.schedule.records]
        return self._hooked

    def _bind_hooked(self, record: tuple) -> tuple:
        (wb_idx, wb_dest, _wb_sec, mem_idx, mem_kind, _mem_sec,
         ex_idx, alu_name, _unit_i, _ex_sec, a_sel, b_sel, st_sel,
         ex_link, ctl, id_idx, dec_live, a_reg, a_const, b_reg, b_const,
         st_reg, reads, writes, fetch_idx, fetch_active, fetch_iword,
         _ibus_ev, l0_idx, l0_iword, _l0_ev, l1_idx, s1, s2, s3) = record
        text = self._program.text
        base = self._program.text_base

        def resolve(index: int) -> tuple[Instruction, int]:
            if index < 0:
                return BUBBLE, -1
            return text[index], base + (index << 2)

        if ctl is not None:
            if ctl[0] == "b":
                ctl = (_BRANCH_FUNCS[ctl[1]], ctl[2])
            else:
                ctl = (None, ctl[1])
        alu_fn = _ALU_FUNCS[alu_name] if alu_name is not None else None
        wb_ins, wb_pc = resolve(wb_idx)
        mem_ins, mem_pc = resolve(mem_idx)
        ex_ins, ex_pc = resolve(ex_idx)
        id_ins, id_pc = resolve(id_idx)
        fetch_ins, fetch_pc = resolve(fetch_idx)
        l0_ins, l0_pc = resolve(l0_idx)
        l1_ins, l1_pc = resolve(l1_idx)
        return (wb_ins, wb_pc, wb_dest, mem_ins, mem_pc, mem_kind,
                ex_ins, ex_pc, alu_fn, a_sel, b_sel, st_sel, ex_link, ctl,
                dec_live, a_reg, a_const, b_reg, b_const, st_reg,
                reads, writes, id_ins, id_pc, fetch_iword, fetch_active,
                fetch_ins, fetch_pc, l0_ins, l0_pc, l0_iword,
                l1_ins, l1_pc, s1, s2, s3)


# ---------------------------------------------------------------------------
# In-process + on-disk schedule cache
# ---------------------------------------------------------------------------

_BOUND: dict[tuple[str, bool], _BoundSchedule] = {}
#: ``(digest, operand_isolation) -> max_cycles`` recording budgets that
#: already failed; retried only with a larger budget.
_UNRECORDABLE: dict[tuple[str, bool], int] = {}
#: Digests whose replay diverged once; they go straight to the reference
#: engine afterwards (control flow is input-dependent for this program).
_DIVERGENT: set[tuple[str, bool]] = set()


def _clear_caches() -> None:
    """Test hook: forget all in-process schedule state."""
    _BOUND.clear()
    _UNRECORDABLE.clear()
    _DIVERGENT.clear()


def bound_schedule_for(program: Program, operand_isolation: bool = True,
                       max_cycles: int = _RECORD_MAX_CYCLES,
                       ) -> _BoundSchedule:
    """The program's bound schedule: in-process memo, then the shared
    :class:`~repro.harness.engine.CompileCache` disk layer, then a fresh
    recording run (stored back to both).

    Raises :class:`ScheduleUnavailable` when the fast engine cannot serve
    the run — unrecordable program, previously diverged digest, or a
    schedule longer than ``max_cycles`` (the reference engine then raises
    its :class:`~repro.machine.exceptions.CycleLimitExceeded` at the
    exact cycle the budget expires).
    """
    digest = program_digest(program)
    key = (digest, operand_isolation)
    if key in _DIVERGENT:
        raise ScheduleUnavailable(
            f"program {digest} diverged before; using reference engine")
    bound = _BOUND.get(key)
    if bound is None:
        from ..harness.engine import default_cache

        cache = default_cache()
        cache_key = _schedule_cache_key(digest, operand_isolation)
        schedule = cache.artifact(cache_key)
        if not isinstance(schedule, CycleSchedule) \
                or schedule.version != SCHEDULE_VERSION:
            tried = _UNRECORDABLE.get(key)
            if tried is not None and max_cycles <= tried:
                raise ScheduleUnavailable(
                    f"recording already failed within {tried} cycles")
            try:
                schedule = record_schedule(
                    program, operand_isolation=operand_isolation,
                    max_cycles=max_cycles)
            except ScheduleUnavailable:
                _UNRECORDABLE[key] = max(max_cycles,
                                         _UNRECORDABLE.get(key, 0))
                raise
            cache.store_artifact(cache_key, schedule)
        bound = _BoundSchedule(schedule, program)
        _BOUND[key] = bound
    if bound.schedule.cycles > max_cycles:
        raise ScheduleUnavailable(
            f"schedule needs {bound.schedule.cycles} cycles "
            f"> max_cycles={max_cycles}")
    return bound


def mark_divergent(program: Program, operand_isolation: bool = True) -> None:
    """Route future runs of this program straight to the reference engine."""
    _DIVERGENT.add((program_digest(program), operand_isolation))


def ensure_schedule(program: Program, operand_isolation: bool = True,
                    max_cycles: int = _RECORD_MAX_CYCLES) -> bool:
    """Pre-warm the schedule cache (parent side of a batch, before the
    process pool forks); returns True when a schedule is available."""
    try:
        bound_schedule_for(program, operand_isolation=operand_isolation,
                           max_cycles=max_cycles)
        return True
    except ScheduleFallback:
        return False


# ---------------------------------------------------------------------------
# Replay pipeline
# ---------------------------------------------------------------------------

class ReplayPipeline(Pipeline):
    """Drop-in :class:`Pipeline` that replays a recorded schedule.

    Exposes the same post-run surface (``markers``, ``stats``,
    ``opcode_mix``, ``regs``, ``cycle``, ``pc``, ``halted``, counters);
    :meth:`run` executes the whole schedule in one flat loop.  Raises
    :class:`ScheduleDivergence` when a recorded branch or indirect-jump
    outcome disagrees with the replayed data — the caller falls back to
    the reference engine and no tracker/memory state of *this* attempt is
    reused.
    """

    def __init__(self, program: Program, bound: _BoundSchedule,
                 memory: Optional[Memory] = None, tracker=None,
                 operand_isolation: bool = True, collect_mix: bool = False):
        super().__init__(program, memory, tracker=tracker,
                         operand_isolation=operand_isolation,
                         collect_mix=collect_mix)
        if bound.schedule.operand_isolation != operand_isolation:
            raise ScheduleUnavailable(
                "schedule recorded under a different isolation setting")
        self._bound = bound

    def run(self, max_cycles: int = 50_000_000) -> int:
        schedule = self._bound.schedule
        if schedule.cycles > max_cycles:
            raise ScheduleUnavailable(
                f"schedule needs {schedule.cycles} cycles "
                f"> max_cycles={max_cycles}")
        if self.halted or self.cycle:
            raise SimulationError("ReplayPipeline.run is one-shot")
        tracker = self.tracker
        try:
            if tracker is None:
                self._replay_data_only()
            elif tracker.attribution is not None \
                    or tracker.stream is not None:
                self._replay_hooked(tracker)
            else:
                self._replay_fast(tracker)
        except ScheduleDivergence:
            _DIVERGENT.add((program_digest(self.program),
                            self.operand_isolation))
            raise
        # Input-independent end-of-run state, recorded once.
        stats = schedule.stats
        self.cycle = schedule.cycles
        self.pc = schedule.final_pc
        self.halted = True
        self.retired = stats["retired"]
        self.stall_cycles = stats["stall_cycles"]
        self.squashed_instructions = stats["squashed_instructions"]
        self.branches_executed = stats["branches_executed"]
        self.branches_taken = stats["branches_taken"]
        self.loads_executed = stats["loads_executed"]
        self.stores_executed = stats["stores_executed"]
        self.secure_retired = stats["secure_retired"]
        if self._mix is not None:
            self._mix.update(schedule.mix)
        return self.cycle

    # -- data path core (shared by all three loops) ---------------------

    def _replay_data_only(self) -> None:
        """Architectural state + markers only (no tracker attached)."""
        records = self._bound.fast
        steps = self._bound.schedule.steps
        regs = self.regs._regs
        memory = self.memory
        read_word = memory.read_word
        read_byte = memory.read_byte
        write_word = memory.write_word
        write_byte = memory.write_byte
        markers_append = self.markers.append

        wb_value = 0
        mem_alu = 0
        mem_store = 0
        idex_a = idex_b = idex_st = 0
        cyc = 0
        for slot in steps:
            (wb_wr, mem_kind, _mem_sec, alu_fn, _unit_i, _ex_sec,
             a_sel, b_sel, st_sel, ex_link, ctl, dec_live,
             a_reg, a_const, b_reg, b_const, st_reg, _rw,
             _ibus_ev, _l0_ev, _s1, _s2, _s3, _sec_idx) = records[slot]
            if wb_wr >= 0:
                regs[wb_wr] = wb_value
            new_wb = mem_alu
            if mem_kind:
                if mem_kind == _MEM_LW:
                    new_wb = read_word(mem_alu)
                elif mem_kind == _MEM_LBU:
                    new_wb = read_byte(mem_alu)
                elif mem_kind == _MEM_LB:
                    value = read_byte(mem_alu)
                    if value & 0x80:
                        value |= 0xFFFF_FF00
                    new_wb = value
                elif mem_alu == MARKER_ADDR:
                    markers_append((cyc, mem_store))
                elif mem_kind == _MEM_SW:
                    write_word(mem_alu, mem_store)
                else:
                    write_byte(mem_alu, mem_store)
            a = idex_a if a_sel == 0 else (mem_alu if a_sel == 1
                                           else wb_value)
            b = idex_b if b_sel == 0 else (mem_alu if b_sel == 1
                                           else wb_value)
            store = idex_st if st_sel == 0 else (mem_alu if st_sel == 1
                                                 else wb_value)
            alu_out = alu_fn(a, b) if alu_fn is not None else 0
            if ex_link >= 0:
                alu_out = ex_link
            if ctl is not None:
                taken_fn, expected = ctl
                if taken_fn is not None:
                    if taken_fn(a, b) != expected:
                        raise ScheduleDivergence(cyc)
                elif a != expected:
                    raise ScheduleDivergence(cyc)
            if dec_live:
                next_a = regs[a_reg] if a_reg >= 0 else a_const
                next_b = regs[b_reg] if b_reg >= 0 else b_const
                next_st = regs[st_reg] if st_reg >= 0 else 0
            else:
                next_a = next_b = next_st = 0
            wb_value = new_wb
            mem_alu = alu_out
            mem_store = store
            idex_a, idex_b, idex_st = next_a, next_b, next_st
            cyc += 1

    def _replay_fast(self, tracker) -> None:
        """Inline data + energy loop; flat accumulators, one tracker commit.

        Floating-point additions happen in the exact order the reference
        hook sequence performs them (component order within a cycle, cycle
        order across the run, noise folded in draw order afterwards), so
        traces and totals are bit-identical.
        """
        records = self._bound.fast
        schedule = self._bound.schedule
        steps = schedule.steps
        params = tracker.params

        regs = self.regs._regs
        memory = self.memory
        read_word = memory.read_word
        read_byte = memory.read_byte
        write_word = memory.write_word
        write_byte = memory.write_byte
        markers_append = self.markers.append

        e_clock = params.e_clock_cycle
        e_port = params.e_regfile_port
        e_mem = params.e_memory_access
        e_ibus = tracker.ibus.event_energy
        e_latch = params.event_energy_latch
        dbus_transfer = tracker.dbus.transfer
        unit_fns = (None, tracker.alu.execute, tracker.xor_unit.execute,
                    tracker.shifter.execute)
        l1_secure = tracker.latches[1].secure_energy
        l2_secure = tracker.latches[2].secure_energy
        l3_secure = tracker.latches[3].secure_energy
        # 16-entry secure-energy table: bit3 = WB dummy load, bits 2..0 =
        # dual-rail ID/EX, EX/MEM, MEM/WB latches; accumulation order
        # matches the reference hook sequence (wb_stage, then latches).
        e_dummy = params.e_dummy_load
        e_sec_clk = params.e_secure_clock
        sec_table = []
        for sec_idx in range(16):
            value = 0.0
            if sec_idx & 8:
                value += e_dummy
            if sec_idx & 4:
                value += e_sec_clk
            if sec_idx & 2:
                value += e_sec_clk
            if sec_idx & 1:
                value += e_sec_clk
            sec_table.append(value)

        keep_trace = tracker.keep_trace
        collect_components = tracker.collect_components
        cycle_energy: list[float] = []
        trace_append = cycle_energy.append
        components: list[tuple[float, ...]] = []
        comp_append = components.append

        t_clock = t_ibus = t_regfile = t_funits = 0.0
        t_dbus = t_memport = t_latches = t_secure = 0.0

        # ID/EX latch previous values (latch 1, fields a/b/store), EX/MEM
        # (latch 2, fields alu_out/store), MEM/WB (latch 3, field value).
        p1a = p1b = p1st = 0
        p2a = p2st = 0
        p3 = 0

        wb_value = 0
        mem_alu = 0
        mem_store = 0
        idex_a = idex_b = idex_st = 0
        cyc = 0
        for slot in steps:
            (wb_wr, mem_kind, mem_sec, alu_fn, unit_i, ex_sec,
             a_sel, b_sel, st_sel, ex_link, ctl, dec_live,
             a_reg, a_const, b_reg, b_const, st_reg, rw,
             ibus_ev, l0_ev, s1, s2, s3, sec_idx) = records[slot]
            # ---- WB ----
            if wb_wr >= 0:
                regs[wb_wr] = wb_value
            # ---- MEM ----
            new_wb = mem_alu
            if mem_kind:
                if mem_kind == _MEM_LW:
                    new_wb = bus_value = read_word(mem_alu)
                elif mem_kind == _MEM_LBU:
                    new_wb = bus_value = read_byte(mem_alu)
                elif mem_kind == _MEM_LB:
                    value = read_byte(mem_alu)
                    if value & 0x80:
                        value |= 0xFFFF_FF00
                    new_wb = bus_value = value
                else:
                    if mem_alu == MARKER_ADDR:
                        markers_append((cyc, mem_store))
                    elif mem_kind == _MEM_SW:
                        write_word(mem_alu, mem_store)
                    else:
                        write_byte(mem_alu, mem_store)
                    bus_value = mem_store
                dbus_e = dbus_transfer(bus_value, mem_sec)
                memport_e = e_mem
            else:
                dbus_e = memport_e = 0.0
            # ---- EX (forwarding pre-resolved) ----
            a = idex_a if a_sel == 0 else (mem_alu if a_sel == 1
                                           else wb_value)
            b = idex_b if b_sel == 0 else (mem_alu if b_sel == 1
                                           else wb_value)
            store = idex_st if st_sel == 0 else (mem_alu if st_sel == 1
                                                 else wb_value)
            alu_out = alu_fn(a, b) if alu_fn is not None else 0
            if ex_link >= 0:
                alu_out = ex_link
            if ctl is not None:
                taken_fn, expected = ctl
                if taken_fn is not None:
                    if taken_fn(a, b) != expected:
                        raise ScheduleDivergence(cyc)
                elif a != expected:
                    raise ScheduleDivergence(cyc)
            if unit_i:
                funits_e = unit_fns[unit_i](a, b, alu_out, ex_sec)
            else:
                funits_e = 0.0
            # ---- ID (reads pre-gated; write-before-read holds: the WB
            # write above already landed in regs) ----
            if dec_live:
                next_a = regs[a_reg] if a_reg >= 0 else a_const
                next_b = regs[b_reg] if b_reg >= 0 else b_const
                next_st = regs[st_reg] if st_reg >= 0 else 0
            else:
                next_a = next_b = next_st = 0
            regfile_e = rw * e_port
            # ---- IF (static instruction stream: events precomputed) ----
            ibus_e = ibus_ev * e_ibus
            # ---- latch commit ----
            latches_e = l0_ev * e_latch
            if s1:
                p1a = p1b = p1st = _WORD_MASK
                latches_e += l1_secure
            else:
                events = ((next_a & ~p1a & _WORD_MASK).bit_count()
                          + (next_b & ~p1b & _WORD_MASK).bit_count()
                          + (next_st & ~p1st & _WORD_MASK).bit_count())
                p1a, p1b, p1st = next_a, next_b, next_st
                latches_e += events * e_latch
            if s2:
                p2a = p2st = _WORD_MASK
                latches_e += l2_secure
            else:
                events = ((alu_out & ~p2a & _WORD_MASK).bit_count()
                          + (store & ~p2st & _WORD_MASK).bit_count())
                p2a, p2st = alu_out, store
                latches_e += events * e_latch
            if s3:
                p3 = _WORD_MASK
                latches_e += l3_secure
            else:
                events = (new_wb & ~p3 & _WORD_MASK).bit_count()
                p3 = new_wb
                latches_e += events * e_latch
            secure_e = sec_table[sec_idx]
            # Reference end_cycle: total = 0.0 + clock + ibus + regfile
            # + funits + dbus + memport + latches + secure, in order.
            total = (e_clock + ibus_e + regfile_e + funits_e + dbus_e
                     + memport_e + latches_e + secure_e)
            t_clock += e_clock
            t_ibus += ibus_e
            t_regfile += regfile_e
            t_funits += funits_e
            t_dbus += dbus_e
            t_memport += memport_e
            t_latches += latches_e
            t_secure += secure_e
            trace_append(total)
            if collect_components:
                comp_append((e_clock, ibus_e, regfile_e, funits_e, dbus_e,
                             memport_e, latches_e, secure_e))
            # ---- state rotation ----
            wb_value = new_wb
            mem_alu = alu_out
            mem_store = store
            idex_a, idex_b, idex_st = next_a, next_b, next_st
            cyc += 1

        # Noise post-pass: the per-cycle schedule is noise-free; the
        # reference adds each draw after the component sum, so folding the
        # same draw sequence in afterwards is bit-identical.
        totals = {"clock": t_clock, "ibus": t_ibus, "regfile": t_regfile,
                  "funits": t_funits, "dbus": t_dbus, "memport": t_memport,
                  "latches": t_latches, "secure": t_secure}
        counts = dict(schedule.counts)
        if tracker.noise_sigma > 0:
            next_noise = tracker._next_noise
            t_noise = 0.0
            for index in range(cyc):
                noise = next_noise()
                cycle_energy[index] = cycle_energy[index] + noise
                t_noise += noise
            totals["noise"] = t_noise
            counts["noise"] = cyc
        tracker.commit_fastpath(
            cycle_energy if keep_trace else [],
            components, totals, counts, cyc)

    def _replay_hooked(self, tracker) -> None:
        """Replay driving the standard tracker hooks (attribution or
        streaming active): same call order and arguments as the reference
        ``Pipeline.step``, with control decisions pre-resolved."""
        records = self._bound.hooked
        steps = self._bound.schedule.steps
        regs = self.regs._regs
        memory = self.memory
        read_word = memory.read_word
        read_byte = memory.read_byte
        write_word = memory.write_word
        write_byte = memory.write_byte
        markers_append = self.markers.append
        begin_cycle = tracker.begin_cycle
        wb_stage = tracker.wb_stage
        mem_stage = tracker.mem_stage
        ex_stage = tracker.ex_stage
        regfile_access = tracker.regfile_access
        fetch = tracker.fetch
        latch = tracker.latch
        end_cycle = tracker.end_cycle

        wb_value = 0
        mem_alu = 0
        mem_store = 0
        idex_a = idex_b = idex_st = 0
        cyc = 0
        for slot in steps:
            (wb_ins, wb_pc, wb_dest, mem_ins, mem_pc, mem_kind,
             ex_ins, ex_pc, alu_fn, a_sel, b_sel, st_sel, ex_link, ctl,
             dec_live, a_reg, a_const, b_reg, b_const, st_reg,
             reads, writes, id_ins, id_pc, fetch_iword, fetch_active,
             fetch_ins, fetch_pc, l0_ins, l0_pc, l0_iword,
             l1_ins, l1_pc, s1, s2, s3) = records[slot]
            begin_cycle()
            # ---- WB ----
            if wb_dest > 0:
                regs[wb_dest] = wb_value
            wb_stage(wb_ins, wb_value, wb_pc)
            # ---- MEM ----
            new_wb = mem_alu
            bus_value = 0
            if mem_kind:
                if mem_kind == _MEM_LW:
                    new_wb = bus_value = read_word(mem_alu)
                elif mem_kind == _MEM_LBU:
                    new_wb = bus_value = read_byte(mem_alu)
                elif mem_kind == _MEM_LB:
                    value = read_byte(mem_alu)
                    if value & 0x80:
                        value |= 0xFFFF_FF00
                    new_wb = bus_value = value
                else:
                    if mem_alu == MARKER_ADDR:
                        markers_append((cyc, mem_store))
                    elif mem_kind == _MEM_SW:
                        write_word(mem_alu, mem_store)
                    else:
                        write_byte(mem_alu, mem_store)
                    bus_value = mem_store
            mem_stage(mem_ins, bus_value, bool(mem_kind), mem_pc)
            # ---- EX ----
            a = idex_a if a_sel == 0 else (mem_alu if a_sel == 1
                                           else wb_value)
            b = idex_b if b_sel == 0 else (mem_alu if b_sel == 1
                                           else wb_value)
            store = idex_st if st_sel == 0 else (mem_alu if st_sel == 1
                                                 else wb_value)
            alu_out = alu_fn(a, b) if alu_fn is not None else 0
            if ex_link >= 0:
                alu_out = ex_link
            if ctl is not None:
                taken_fn, expected = ctl
                if taken_fn is not None:
                    if taken_fn(a, b) != expected:
                        raise ScheduleDivergence(cyc)
                elif a != expected:
                    raise ScheduleDivergence(cyc)
            ex_stage(ex_ins, a, b, alu_out, ex_pc)
            # ---- ID ----
            if dec_live:
                next_a = regs[a_reg] if a_reg >= 0 else a_const
                next_b = regs[b_reg] if b_reg >= 0 else b_const
                next_st = regs[st_reg] if st_reg >= 0 else 0
            else:
                next_a = next_b = next_st = 0
            regfile_access(reads, writes, id_ins, id_pc, wb_ins, wb_pc)
            # ---- IF (hook args are pre-squash, as in the reference) ----
            fetch(fetch_iword, fetch_active, fetch_ins, fetch_pc)
            # ---- latch commit (post-squash contents) ----
            latch(0, (l0_iword,), l0_ins.secure, l0_ins, l0_pc)
            latch(1, (next_a, next_b, next_st), s1, l1_ins, l1_pc)
            latch(2, (alu_out, store), s2, ex_ins, ex_pc)
            latch(3, (new_wb,), s3, mem_ins, mem_pc)
            end_cycle()
            # ---- state rotation ----
            wb_value = new_wb
            mem_alu = alu_out
            mem_store = store
            idex_a, idex_b, idex_st = next_a, next_b, next_st
            cyc += 1


class ReplayCPU(CPU):
    """A :class:`~repro.machine.cpu.CPU` whose pipeline replays a recorded
    schedule instead of re-deriving control every cycle."""

    def __init__(self, program: Program, bound: _BoundSchedule,
                 tracker=None, operand_isolation: bool = True,
                 collect_mix: bool = False):
        self.program = program
        self.memory = Memory()
        self.pipeline = ReplayPipeline(program, bound, self.memory,
                                       tracker=tracker,
                                       operand_isolation=operand_isolation,
                                       collect_mix=collect_mix)
