"""Word-addressable memory for the simulated smart-card core.

The memory array itself is modeled as data-independent in energy (the paper:
"the memory access itself is not sensitive to the data being read due to the
differential nature of the memory reads"); the data-dependent energy lives on
the *bus* between memory and the pipeline, which the pipeline reports to the
energy tracker.  This module is purely functional state.
"""

from __future__ import annotations

from .exceptions import MemoryError_

_WORD_MASK = 0xFFFF_FFFF


class Memory:
    """Sparse little-endian byte-addressable memory, stored as 32-bit words."""

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    def clear(self) -> None:
        self._words.clear()

    def load_image(self, base: int, words: list[int]) -> None:
        """Copy a contiguous word image starting at byte address ``base``."""
        if base & 3:
            raise MemoryError_(f"image base not word aligned: 0x{base:08x}")
        start = base >> 2
        for offset, word in enumerate(words):
            self._words[start + offset] = word & _WORD_MASK

    # -- word access ----------------------------------------------------

    def read_word(self, address: int) -> int:
        if address & 3:
            raise MemoryError_(f"unaligned word read at 0x{address:08x}")
        return self._words.get(address >> 2, 0)

    def write_word(self, address: int, value: int) -> None:
        if address & 3:
            raise MemoryError_(f"unaligned word write at 0x{address:08x}")
        self._words[address >> 2] = value & _WORD_MASK

    # -- byte access ----------------------------------------------------

    def read_byte(self, address: int) -> int:
        word = self._words.get(address >> 2, 0)
        return (word >> ((address & 3) * 8)) & 0xFF

    def write_byte(self, address: int, value: int) -> None:
        index = address >> 2
        shift = (address & 3) * 8
        word = self._words.get(index, 0)
        word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self._words[index] = word & _WORD_MASK

    # -- convenience ----------------------------------------------------

    def read_words(self, address: int, count: int) -> list[int]:
        return [self.read_word(address + 4 * i) for i in range(count)]

    def write_words(self, address: int, values: list[int]) -> None:
        for i, value in enumerate(values):
            self.write_word(address + 4 * i, value)

    def __contains__(self, address: int) -> bool:
        return (address >> 2) in self._words
