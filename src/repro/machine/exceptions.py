"""Simulator exception types."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for runtime errors inside the simulated machine."""


class MemoryError_(SimulationError):
    """Unaligned or out-of-range memory access."""


class CpuError(SimulationError):
    """Pipeline-level error (bad PC, runaway execution, ...)."""


class CycleLimitExceeded(CpuError):
    """The cycle budget ran out before the program halted.

    Raised by :meth:`repro.machine.pipeline.Pipeline.run` (and the
    functional interpreter, counting instructions) so batch callers can
    distinguish a runaway simulation from other CPU faults and record
    *where* it was spinning: the failure carries the program counter and
    the cycle count at the moment the budget expired, and the harness
    surfaces both on the :class:`~repro.harness.resilience.JobFailure`.
    """

    def __init__(self, pc: int, cycles: int, max_cycles: int):
        super().__init__(
            f"exceeded max_cycles={max_cycles} without halting "
            f"(pc=0x{pc:08x}, cycle={cycles})")
        self.pc = pc
        self.cycles = cycles
        self.max_cycles = max_cycles

    def __reduce__(self):
        # Exceptions pickle as type(*args); args holds the formatted
        # message, so rebuild from the structured fields instead (the
        # instance must survive the pool's result channel intact).
        return (type(self), (self.pc, self.cycles, self.max_cycles))
