"""Simulator exception types."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for runtime errors inside the simulated machine."""


class MemoryError_(SimulationError):
    """Unaligned or out-of-range memory access."""


class CpuError(SimulationError):
    """Pipeline-level error (bad PC, runaway execution, ...)."""
