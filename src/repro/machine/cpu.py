"""Top-level CPU wrapper: program loading, execution, and result extraction."""

from __future__ import annotations

from typing import Optional

from ..isa.program import Program
from .memory import Memory
from .pipeline import Pipeline


class CPU:
    """Convenience driver around :class:`Pipeline`.

    Owns memory and exposes symbol-based data access, which the harness and
    tests use to inject plaintext/key images and read back ciphertext.
    """

    def __init__(self, program: Program, tracker=None,
                 operand_isolation: bool = True,
                 collect_mix: bool = False):
        self.program = program
        self.memory = Memory()
        self.pipeline = Pipeline(program, self.memory, tracker=tracker,
                                 operand_isolation=operand_isolation,
                                 collect_mix=collect_mix)

    @property
    def regs(self):
        return self.pipeline.regs

    @property
    def cycles(self) -> int:
        return self.pipeline.cycle

    @property
    def retired(self) -> int:
        return self.pipeline.retired

    @property
    def cpi(self) -> float:
        return self.pipeline.cycle / max(1, self.pipeline.retired)

    def write_symbol_words(self, symbol: str, values: list[int],
                           offset: int = 0) -> None:
        """Write 32-bit words into memory starting at ``symbol + offset``."""
        base = self.program.address_of(symbol) + offset
        self.memory.write_words(base, values)

    def read_symbol_words(self, symbol: str, count: int,
                          offset: int = 0) -> list[int]:
        """Read 32-bit words from memory starting at ``symbol + offset``."""
        base = self.program.address_of(symbol) + offset
        return self.memory.read_words(base, count)

    def run(self, max_cycles: int = 50_000_000) -> int:
        """Run to completion; returns total cycles."""
        return self.pipeline.run(max_cycles=max_cycles)


def run_to_halt(program: Program, tracker=None,
                inputs: Optional[dict[str, list[int]]] = None,
                max_cycles: int = 50_000_000) -> CPU:
    """Load ``program``, write ``inputs`` (symbol -> words), run to halt."""
    cpu = CPU(program, tracker=tracker)
    if inputs:
        for symbol, words in inputs.items():
            cpu.write_symbol_words(symbol, words)
    cpu.run(max_cycles=max_cycles)
    return cpu
