"""Functional (non-pipelined) reference interpreter.

Executes a program instruction-at-a-time with architectural semantics
only — no pipeline, no hazards, no energy.  It serves two purposes:

* **differential testing**: an independent second implementation of the
  ISA semantics; the test suite runs programs on both executors and
  requires identical architectural results (registers, memory,
  instruction counts per retirement path);
* **fast feedback**: quick program checks in tools (roughly an order of
  magnitude faster than the cycle-accurate pipeline), used by the CLI's
  ``run --fast``.
"""

from __future__ import annotations

from typing import Optional

from ..isa.instructions import Format, Instruction
from ..isa.program import Program
from .alu import alu_execute
from .exceptions import CpuError
from .memory import Memory
from .pipeline import MARKER_ADDR
from .regfile import RegisterFile

_WORD = 0xFFFF_FFFF


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class Interpreter:
    """Straight-line architectural executor."""

    def __init__(self, program: Program, memory: Optional[Memory] = None):
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.memory.load_image(program.data_base, program.data)
        self.regs = RegisterFile()
        self.pc = program.entry
        self.executed = 0
        self.halted = False
        self.markers: list[tuple[int, int]] = []

    def step(self) -> None:
        if self.halted:
            return
        index = (self.pc - self.program.text_base) >> 2
        if not 0 <= index < len(self.program.text):
            raise CpuError(f"pc out of text segment: 0x{self.pc:08x}")
        ins = self.program.text[index]
        self.pc = self._execute(ins, self.pc)
        self.executed += 1

    def _execute(self, ins: Instruction, pc: int) -> int:
        spec = ins.spec
        regs = self.regs
        next_pc = (pc + 4) & _WORD

        if spec.halts:
            self.halted = True
            return next_pc
        if spec.fmt == Format.NONE:  # nop
            return next_pc

        if spec.is_load:
            address = (regs.read(ins.rs) + (ins.imm or 0)) & _WORD
            if spec.width == 4:
                value = self.memory.read_word(address)
            else:
                value = self.memory.read_byte(address)
                if spec.signed_load and value & 0x80:
                    value |= 0xFFFF_FF00
            regs.write(ins.rt, value)
            return next_pc
        if spec.is_store:
            address = (regs.read(ins.rs) + (ins.imm or 0)) & _WORD
            value = regs.read(ins.rt)
            if address == MARKER_ADDR:
                self.markers.append((self.executed, value))
            elif spec.width == 4:
                self.memory.write_word(address, value)
            else:
                self.memory.write_byte(address, value)
            return next_pc

        if spec.is_branch:
            a = regs.read(ins.rs)
            if ins.op == "beq":
                taken = a == regs.read(ins.rt)
            elif ins.op == "bne":
                taken = a != regs.read(ins.rt)
            elif ins.op == "blez":
                taken = _signed(a) <= 0
            elif ins.op == "bgtz":
                taken = _signed(a) > 0
            elif ins.op == "bltz":
                taken = _signed(a) < 0
            else:  # bgez
                taken = _signed(a) >= 0
            return ins.target if taken else next_pc

        if spec.is_jump:
            if ins.op == "j":
                return ins.target
            if ins.op == "jal":
                regs.write(31, next_pc)
                return ins.target
            if ins.op == "jr":
                return regs.read(ins.rs)
            # jalr
            target = regs.read(ins.rs)
            regs.write(ins.rd, next_pc)
            return target

        fmt = spec.fmt
        if fmt == Format.R3:
            result = alu_execute(spec.alu, regs.read(ins.rs),
                                 regs.read(ins.rt))
            regs.write(ins.rd, result)
        elif fmt == Format.SHIFT:
            regs.write(ins.rd, alu_execute(spec.alu, regs.read(ins.rt),
                                           ins.shamt))
        elif fmt == Format.SHIFT_V:
            regs.write(ins.rd, alu_execute(spec.alu, regs.read(ins.rt),
                                           regs.read(ins.rs) & 31))
        elif fmt == Format.ARITH_I:
            imm = ins.imm if ins.imm is not None else 0
            operand = imm & 0xFFFF if spec.unsigned_imm else imm & _WORD
            regs.write(ins.rt, alu_execute(spec.alu, regs.read(ins.rs),
                                           operand))
        elif fmt == Format.LUI:
            regs.write(ins.rt, (ins.imm & 0xFFFF) << 16)
        else:  # pragma: no cover - formats above are exhaustive
            raise CpuError(f"cannot interpret {ins}")
        return next_pc

    def run(self, max_instructions: int = 50_000_000) -> int:
        while not self.halted:
            if self.executed >= max_instructions:
                raise CpuError(
                    f"exceeded max_instructions={max_instructions} "
                    f"(pc=0x{self.pc:08x})")
            self.step()
        return self.executed


def run_functional(program: Program,
                   inputs: Optional[dict[str, list[int]]] = None,
                   max_instructions: int = 50_000_000) -> Interpreter:
    """Load, inject inputs, run to halt; returns the interpreter."""
    interpreter = Interpreter(program)
    if inputs:
        for symbol, words in inputs.items():
            interpreter.memory.write_words(program.address_of(symbol), words)
    interpreter.run(max_instructions=max_instructions)
    return interpreter
