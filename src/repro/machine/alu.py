"""Integer ALU for the EX stage.

All values are 32-bit unsigned Python ints; signed comparisons convert on the
fly.  The ALU is purely functional; its switching energy is modeled by the
energy tracker from the (a, b, result) values the pipeline reports.
"""

from __future__ import annotations

from ..isa.instructions import AluOp
from .exceptions import SimulationError

_WORD_MASK = 0xFFFF_FFFF


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def alu_execute(op: AluOp, a: int, b: int) -> int:
    """Compute ``a op b`` as the EX-stage ALU does.

    For shifts, ``a`` is the value to shift and ``b`` the shift amount
    (only the low 5 bits are used, as on MIPS).
    """
    if op is AluOp.ADD:
        return (a + b) & _WORD_MASK
    if op is AluOp.SUB:
        return (a - b) & _WORD_MASK
    if op is AluOp.AND:
        return a & b
    if op is AluOp.OR:
        return a | b
    if op is AluOp.XOR:
        return a ^ b
    if op is AluOp.NOR:
        return (~(a | b)) & _WORD_MASK
    if op is AluOp.SLT:
        return 1 if _signed(a) < _signed(b) else 0
    if op is AluOp.SLTU:
        return 1 if (a & _WORD_MASK) < (b & _WORD_MASK) else 0
    if op is AluOp.SLL:
        return (a << (b & 31)) & _WORD_MASK
    if op is AluOp.SRL:
        return (a & _WORD_MASK) >> (b & 31)
    if op is AluOp.SRA:
        return (_signed(a) >> (b & 31)) & _WORD_MASK
    if op is AluOp.LUI:
        return (b << 16) & _WORD_MASK
    if op is AluOp.PASS_A:
        return a & _WORD_MASK
    if op is AluOp.NONE:
        return 0
    raise SimulationError(f"ALU cannot execute {op}")  # pragma: no cover
